//! Cross-executor conformance suite: the parallel shard executor must be
//! **byte-identical** to the sequential one on the same seed — same
//! proposals, same commits, same `ObservationLog`, same throughput
//! series — for every Table II protocol and k ∈ {1, 2, 4} shards.
//!
//! This is the safety net that lets `SMP_EXECUTOR=parallel` run the
//! whole suite in CI: if the parallel executor's scheduling, RNG
//! streams, or output merge ever diverge from the sequential reference,
//! one of these comparisons trips.

use proptest::prelude::*;
use stratus_repro::prelude::*;
use stratus_repro::types::ExecutorKind;

fn quick(protocol: Protocol, n: usize, rate: f64) -> ExperimentConfig {
    ExperimentConfig::new(protocol, n, rate)
        .with_duration(500_000, 1_500_000)
        .with_batch_size(16 * 1024)
}

/// Runs `base` at `k` shards under both executors and asserts the runs
/// are indistinguishable.
fn assert_conformant(base: &ExperimentConfig, k: usize) {
    // Exercise real worker threads even on single-core hosts (the
    // parallel executor would otherwise degrade to inline execution
    // there, making this suite vacuous).
    stratus_repro::shard::force_parallel_workers(true);
    let seq = run_experiment(
        &base
            .clone()
            .with_shards(k)
            .with_executor(ExecutorKind::Sequential),
    );
    let par = run_experiment(
        &base
            .clone()
            .with_shards(k)
            .with_executor(ExecutorKind::Parallel),
    );
    let label = format!("{} k={k} seed={}", base.protocol.label(), base.seed);
    assert_eq!(
        seq.observations, par.observations,
        "{label}: observation logs diverged"
    );
    assert_eq!(
        seq.committed_txs, par.committed_txs,
        "{label}: committed transactions diverged"
    );
    assert_eq!(
        seq.view_changes, par.view_changes,
        "{label}: view changes diverged"
    );
    assert_eq!(
        seq.throughput_series, par.throughput_series,
        "{label}: throughput series diverged"
    );
    assert_eq!(
        seq.summary.throughput_ktps, par.summary.throughput_ktps,
        "{label}: headline throughput diverged"
    );
    assert_eq!(
        seq.summary.p95_latency_ms, par.summary.p95_latency_ms,
        "{label}: latency percentiles diverged"
    );
}

#[test]
fn parallel_executor_is_byte_identical_for_every_protocol_and_shard_count() {
    for protocol in Protocol::all() {
        for k in [1usize, 2, 4] {
            assert_conformant(&quick(protocol, 4, 2_000.0), k);
        }
    }
}

#[test]
fn conformance_survives_byzantine_senders_and_wan_conditions() {
    // The adversarial paths (censoring senders, WAN delays, DLB under
    // skew) exercise RNG draws the happy path never reaches.
    let base = quick(Protocol::StratusHotStuff, 7, 2_000.0)
        .wan()
        .with_byzantine(2, 2)
        .with_distribution(LoadDistribution::Zipf { s: 1.01, v: 1.0 });
    assert_conformant(&base, 2);
    assert_conformant(&base, 4);
}

#[test]
fn telemetry_does_not_perturb_either_executor() {
    // Telemetry must be a pure observer: with recording enabled the
    // simulated results stay byte-identical to a plain run, under both
    // executors, and the two executors stay byte-identical to each other
    // with telemetry live.
    stratus_repro::shard::force_parallel_workers(true);
    let base = quick(Protocol::StratusHotStuff, 4, 2_000.0).with_shards(2);
    for kind in [ExecutorKind::Sequential, ExecutorKind::Parallel] {
        let plain = run_experiment(&base.clone().with_executor(kind));
        let traced = run_experiment(&base.clone().with_executor(kind).with_telemetry(true));
        assert_eq!(
            plain.observations, traced.observations,
            "{kind:?}: telemetry changed the observation log"
        );
        assert_eq!(
            plain.committed_txs, traced.committed_txs,
            "{kind:?}: telemetry changed the committed transactions"
        );
        assert_eq!(
            plain.throughput_series, traced.throughput_series,
            "{kind:?}: telemetry changed the throughput series"
        );
        assert!(
            traced.telemetry.is_enabled(),
            "{kind:?}: traced run should carry a live telemetry handle"
        );
    }
    let seq = run_experiment(
        &base
            .clone()
            .with_executor(ExecutorKind::Sequential)
            .with_telemetry(true),
    );
    let par = run_experiment(
        &base
            .clone()
            .with_executor(ExecutorKind::Parallel)
            .with_telemetry(true),
    );
    assert_eq!(
        seq.observations, par.observations,
        "executors diverged with telemetry enabled"
    );
    assert_eq!(
        seq.committed_txs, par.committed_txs,
        "executors committed differently with telemetry enabled"
    );
}

proptest! {
    // Each case runs two full simulations; a handful of random seeds per
    // CI run is plenty on top of the exhaustive fixed-seed sweep above.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn conformance_holds_for_random_seeds_loads_and_shard_counts(
        seed in any::<u64>(),
        rate in 500f64..6_000.0,
        k in 1usize..5,
        protocol_index in 0usize..11,
    ) {
        let protocol = Protocol::all()[protocol_index];
        let mut base = quick(protocol, 4, rate);
        base.seed = seed;
        assert_conformant(&base, k);
    }
}
