//! Workspace-level integration tests: whole protocol stacks (consensus +
//! mempool + simulated network + workload) exercised through the public
//! facade, checking the qualitative relationships the paper's evaluation
//! is built on.  Parameters are kept small so the suite stays fast in
//! debug builds.

use stratus_repro::prelude::*;

fn quick(protocol: Protocol, n: usize, rate: f64) -> ExperimentConfig {
    ExperimentConfig::new(protocol, n, rate)
        .with_duration(500_000, 2_000_000)
        .with_batch_size(16 * 1024)
}

#[test]
fn every_protocol_of_table_ii_commits_transactions() {
    for protocol in Protocol::all() {
        let result = run_experiment(&quick(protocol, 4, 1_000.0));
        assert!(
            result.committed_txs > 0,
            "{} committed no transactions",
            protocol.label()
        );
        assert!(
            result.summary.mean_latency_ms > 0.0,
            "{} reported zero latency",
            protocol.label()
        );
    }
}

#[test]
fn shared_mempool_beats_native_hotstuff_at_moderate_scale() {
    // At 16 replicas in the 100 Mb/s WAN environment, the leader
    // bandwidth bottleneck separates native HotStuff from the
    // shared-mempool designs (Figure 7's regional setting).
    let rate = 12_000.0;
    let native = run_experiment(&quick(Protocol::NativeHotStuff, 16, rate).wan());
    let stratus = run_experiment(&quick(Protocol::StratusHotStuff, 16, rate).wan());
    assert!(
        stratus.summary.throughput_ktps > native.summary.throughput_ktps,
        "S-HS ({:.1} KTx/s) should beat N-HS ({:.1} KTx/s) at n=16",
        stratus.summary.throughput_ktps,
        native.summary.throughput_ktps
    );
}

#[test]
fn stratus_tolerates_byzantine_senders_better_than_smp() {
    let n = 10;
    let rate = 10_000.0;
    let byz = 3;
    let smp = run_experiment(&quick(Protocol::SmpHotStuff, n, rate).with_byzantine(byz, 0));
    let q = (n - 1) / 3 + 1;
    let stratus = run_experiment(&quick(Protocol::StratusHotStuff, n, rate).with_byzantine(byz, q));
    // At this moderate (non-saturating) load both protocols keep up with the
    // offered rate; the damage shows up as commit latency, because SMP-HS
    // must fetch the censored microblocks from the leader before it can
    // vote, while S-HS proceeds on the availability proofs (Figure 9).
    assert!(
        stratus.summary.throughput_ktps >= 0.9 * smp.summary.throughput_ktps,
        "S-HS ({:.2}) should not do much worse than SMP-HS ({:.2}) under Byzantine senders",
        stratus.summary.throughput_ktps,
        smp.summary.throughput_ktps
    );
    assert!(
        stratus.summary.p95_latency_ms <= smp.summary.p95_latency_ms,
        "S-HS p95 latency ({:.1} ms) should stay below SMP-HS ({:.1} ms) under Byzantine senders",
        stratus.summary.p95_latency_ms,
        smp.summary.p95_latency_ms
    );
}

#[test]
fn view_changes_stay_at_zero_in_the_failure_free_case() {
    let result = run_experiment(&quick(Protocol::StratusHotStuff, 7, 5_000.0));
    assert_eq!(result.view_changes, 0);
}

#[test]
fn network_fluctuation_does_not_stall_stratus() {
    // A Figure-8-style asynchrony window in the middle of the run.
    let window = simnet::FaultWindow {
        start: 1_000_000,
        end: 2_000_000,
        min_delay_us: 100_000,
        max_delay_us: 300_000,
    };
    let cfg = quick(Protocol::StratusHotStuff, 7, 5_000.0)
        .wan()
        .with_duration(500_000, 3_000_000)
        .with_fault_window(window);
    let result = run_experiment(&cfg);
    assert!(
        result.committed_txs > 0,
        "Stratus should keep committing through the fluctuation"
    );
    // Throughput resumes after the window: the last series bucket is nonzero.
    let tail: f64 = result.throughput_series.iter().rev().take(1).sum();
    assert!(
        tail > 0.0,
        "no commits after the fluctuation window: {:?}",
        result.throughput_series
    );
}

#[test]
fn skewed_load_benefits_from_dlb() {
    let n = 10;
    let rate = 6_000.0;
    let base = ExperimentConfig::new(Protocol::StratusHotStuff, n, rate)
        .wan()
        .with_duration(500_000, 3_000_000)
        .with_batch_size(16 * 1024)
        .with_distribution(LoadDistribution::zipf1());
    let without = run_experiment(&base.clone().without_dlb());
    let with = run_experiment(&base.with_dlb_d(3));
    assert!(
        with.summary.throughput_ktps >= 0.9 * without.summary.throughput_ktps,
        "DLB should not hurt under skew (with {:.2} vs without {:.2})",
        with.summary.throughput_ktps,
        without.summary.throughput_ktps
    );
}

#[test]
fn bandwidth_breakdown_reports_proposals_and_votes() {
    let result = run_experiment(&quick(Protocol::StratusHotStuff, 7, 4_000.0));
    let rows = result.bandwidth.rows();
    assert!(rows
        .iter()
        .any(|(role, kind, _)| role == "leader" && kind == "proposal"));
    assert!(rows
        .iter()
        .any(|(role, kind, mbps)| role == "non-leader" && kind == "microblock" && *mbps >= 0.0));
}

#[test]
fn analytical_model_and_simulation_agree_on_the_trend() {
    // Appendix A predicts native throughput drops roughly as 1/n; the
    // simulator should show a clear decline from 4 to 16 replicas under an
    // identical offered load.
    let rate = 40_000.0;
    let small = run_experiment(&quick(Protocol::NativeHotStuff, 4, rate));
    let large = run_experiment(&quick(Protocol::NativeHotStuff, 16, rate));
    assert!(
        small.summary.throughput_ktps >= large.summary.throughput_ktps,
        "native throughput should not increase with n ({:.1} -> {:.1})",
        small.summary.throughput_ktps,
        large.summary.throughput_ktps
    );
}
