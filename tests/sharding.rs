//! End-to-end tests of the sharded shared mempool (`smp-shard`): full
//! protocol stacks running k dissemination pipelines per replica over the
//! simulated network.

use stratus_repro::prelude::*;
use stratus_repro::replica::MempoolWire;
use stratus_repro::types::ExecutorKind;

fn quick(protocol: Protocol, n: usize, rate: f64) -> ExperimentConfig {
    ExperimentConfig::new(protocol, n, rate)
        .with_duration(500_000, 2_000_000)
        .with_batch_size(16 * 1024)
}

#[test]
fn stratus_and_narwhal_commit_under_every_shard_count_and_executor() {
    for protocol in [Protocol::StratusHotStuff, Protocol::Narwhal] {
        let base = quick(protocol, 4, 4_000.0);
        for executor in [ExecutorKind::Sequential, ExecutorKind::Parallel] {
            for shards in [1usize, 2, 4] {
                let result =
                    run_experiment(&base.clone().with_shards(shards).with_executor(executor));
                assert!(
                    result.committed_txs > 1_000,
                    "{} with {} shards ({}) committed only {} txs",
                    protocol.label(),
                    shards,
                    executor.label(),
                    result.committed_txs
                );
                assert_eq!(
                    result.view_changes,
                    0,
                    "{} with {} shards ({}) caused view changes in the failure-free case",
                    protocol.label(),
                    shards,
                    executor.label()
                );
            }
        }
    }
}

#[test]
fn one_shard_commits_exactly_what_the_unsharded_backend_commits() {
    // `with_shards(1)` resolves to the unwrapped backend in the runner,
    // so on the same seed the two configs must be indistinguishable.
    for protocol in [Protocol::StratusHotStuff, Protocol::Narwhal] {
        let base = quick(protocol, 4, 4_000.0);
        let unsharded = run_experiment(&base);
        let one_shard = run_experiment(&base.clone().with_shards(1));
        assert_eq!(
            unsharded.committed_txs,
            one_shard.committed_txs,
            "{}: one shard must be byte-identical to the unsharded run",
            protocol.label()
        );
        assert_eq!(unsharded.view_changes, one_shard.view_changes);
        assert_eq!(
            unsharded.summary.throughput_ktps,
            one_shard.summary.throughput_ktps,
            "{}: throughput must match exactly on the same seed",
            protocol.label()
        );
    }
}

/// Runs a hand-assembled 4-replica HotStuff deployment over the simulated
/// LAN and returns the total transactions committed across replicas.
fn committed_in_manual_sim<M, F>(sys: &SystemConfig, make_mempool: F) -> u64
where
    M: Mempool,
    M::Msg: MempoolWire,
    F: Fn(ReplicaId) -> M,
{
    let horizon = 3_000_000;
    let nodes: Vec<Replica<HotStuffEngine, M>> = (0..sys.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            Replica::new(
                sys,
                id,
                HotStuffEngine::new(sys, id),
                make_mempool(id),
                Behavior::Honest,
                1_000.0,
                true,
                false,
            )
        })
        .collect();
    let mut sim = Simulation::new(nodes, NetConfig::lan(), sys.seed);
    sim.run_until(horizon);
    (0..sys.n)
        .map(|i| sim.node(i).metrics().throughput.total_in(0, horizon))
        .sum()
}

#[test]
fn wrapped_single_shard_pipeline_matches_the_bare_backend() {
    // The genuinely cross-path equivalence check: one simulation runs the
    // bare Stratus backend, the other runs ShardedMempool wrapped around
    // it with k = 1 (fast-path payloads, message envelope, timer mux all
    // engaged).  Same seed, same committed count — the wrapper is a
    // transparent pass-through.
    let sys = SystemConfig::new(4).with_seed(7);
    let bare = committed_in_manual_sim(&sys, |id| {
        StratusMempool::new(&sys, StratusConfig::default(), id)
    });
    let wrapped = committed_in_manual_sim(&sys, |id| {
        ShardedMempool::new(&sys, 1, |_, shard_sys| {
            StratusMempool::new(shard_sys, StratusConfig::default(), id)
        })
    });
    assert!(bare > 0, "baseline committed nothing");
    assert_eq!(
        bare, wrapped,
        "ShardedMempool at k = 1 must commit exactly what the bare backend commits"
    );
}

#[test]
fn parallel_and_sequential_wrappers_commit_identically_in_a_manual_sim() {
    // Same check as the conformance suite but through the hand-assembled
    // deployment path (no ExperimentConfig), at k = 2 where worker
    // threads are genuinely in play.
    stratus_repro::shard::force_parallel_workers(true);
    let sys = SystemConfig::new(4).with_seed(11).with_shards(2);
    let seq = committed_in_manual_sim(&sys, |id| {
        ShardedMempool::sequential(&sys, 2, id.0 as u64, |_, shard_sys| {
            StratusMempool::new(shard_sys, StratusConfig::default(), id)
        })
    });
    let par = committed_in_manual_sim(&sys, |id| {
        ShardedMempool::parallel(&sys, 2, id.0 as u64, |_, shard_sys| {
            StratusMempool::new(shard_sys, StratusConfig::default(), id)
        })
    });
    assert!(seq > 0, "sequential baseline committed nothing");
    assert_eq!(
        seq, par,
        "worker-thread execution must commit exactly what inline execution commits"
    );
}

#[test]
fn sharding_also_composes_with_the_simple_smp_baseline() {
    let result = run_experiment(&quick(Protocol::SmpHotStuff, 4, 3_000.0).with_shards(2));
    assert!(
        result.committed_txs > 1_000,
        "SMP-HS × 2 shards committed {}",
        result.committed_txs
    );
}

#[test]
fn sharded_stats_surface_multiple_pipelines() {
    // Sharding splits batching across instances, so at identical offered
    // load a sharded run seals at least as many (smaller) microblocks;
    // the roll-up keeps reporting them through the single MempoolStats.
    let base = quick(Protocol::StratusHotStuff, 4, 4_000.0);
    let sharded = run_experiment(&base.clone().with_shards(4));
    assert!(sharded.committed_txs > 1_000);
}
