//! # stratus-repro
//!
//! A full reproduction of *"Scaling Blockchain Consensus via a Robust
//! Shared Mempool"* (ICDE 2023): the Stratus shared mempool (provably
//! available broadcast + distributed load balancing), the baseline
//! mempools and consensus engines it is evaluated against, a
//! discrete-event network substrate standing in for the paper's cloud
//! testbed, and the experiment harnesses that regenerate every table and
//! figure of the evaluation.
//!
//! This facade crate re-exports the public API of every workspace member
//! so downstream users can depend on a single crate:
//!
//! ```
//! use stratus_repro::prelude::*;
//!
//! let config = ExperimentConfig::new(Protocol::StratusHotStuff, 4, 2_000.0)
//!     .with_duration(500_000, 1_500_000);
//! let result = run_experiment(&config);
//! assert!(result.committed_txs > 0);
//! ```
//!
//! See `examples/` for richer scenarios (a permissioned key-value chain,
//! Byzantine resilience, geo-distributed load balancing) and the
//! `smp-bench` crate for the per-figure harnesses.

pub use simnet;
pub use smp_analysis as analysis;
pub use smp_consensus as consensus;
pub use smp_crypto as crypto;
pub use smp_mempool as mempool;
pub use smp_metrics as metrics;
pub use smp_replica as replica;
pub use smp_shard as shard;
pub use smp_telemetry as telemetry;
pub use smp_types as types;
pub use smp_workload as workload;
pub use stratus;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use simnet::{FaultWindow, NetConfig, Simulation};
    pub use smp_consensus::{ConsensusEngine, HotStuffEngine, PbftEngine, StreamletEngine};
    pub use smp_mempool::{DagMempool, Mempool, MempoolEvent, SimpleSmp};
    pub use smp_metrics::RunSummary;
    pub use smp_replica::experiment::run as run_experiment;
    pub use smp_replica::{
        saturation_sweep, Behavior, ExperimentConfig, ExperimentResult, Protocol, Replica,
    };
    pub use smp_shard::{
        ParallelExecutor, SequentialExecutor, ShardExecutor, ShardRouter, ShardedMempool,
        ShardedMsg,
    };
    pub use smp_telemetry::Telemetry;
    pub use smp_types::{
        DagMode, ExecutorKind, MempoolConfig, NetworkPreset, Payload, Proposal, ReplicaId,
        SystemConfig, Transaction, View,
    };
    pub use smp_workload::{LoadDistribution, WorkloadSpec};
    pub use stratus::{DlbConfig, ShardLoadCoordinator, StratusConfig, StratusMempool};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let cfg = ExperimentConfig::new(Protocol::StratusHotStuff, 4, 100.0);
        assert_eq!(cfg.n, 4);
    }
}
