//! Quickstart: run Stratus-HotStuff on a small simulated LAN and print the
//! headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use stratus_repro::prelude::*;

fn main() {
    // Four replicas in the paper's LAN environment, offered 20 KTx/s of
    // 128-byte transactions spread evenly over the replicas.
    let config = ExperimentConfig::new(Protocol::StratusHotStuff, 4, 20_000.0)
        .with_duration(1_000_000, 5_000_000); // 1 s warm-up + 5 s measurement

    println!(
        "running {} with n = {} ...",
        config.protocol.label(),
        config.n
    );
    let result = run_experiment(&config);

    println!("\n== {} ==", config.protocol.description());
    println!("{}", result.row());
    println!(
        "committed {} transactions ({} view changes)",
        result.committed_txs, result.view_changes
    );
    println!("\nper-second committed throughput (tx/s):");
    for (sec, tps) in result.throughput_series.iter().enumerate() {
        println!("  t={sec:>2}s  {tps:>10.0}");
    }

    // Compare against native HotStuff under the identical setup.
    let native = run_experiment(
        &ExperimentConfig::new(Protocol::NativeHotStuff, 4, 20_000.0)
            .with_duration(1_000_000, 5_000_000),
    );
    println!("\nfor comparison:\n{}", native.row());
}
