//! Byzantine resilience: reproduce (at small scale) the Section VII-C
//! comparison between the best-effort shared mempool and Stratus when some
//! replicas disseminate their microblocks only to the leader.
//!
//! ```text
//! cargo run --release --example byzantine_resilience
//! ```

use stratus_repro::prelude::*;

fn main() {
    let n = 16;
    let rate = 30_000.0;
    println!("n = {n}, offered load = {rate} tx/s, LAN, Byzantine senders vary\n");
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>8}",
        "protocol", "byz", "KTx/s", "latency ms", "fetches"
    );

    for byz in [0usize, 2, 5] {
        // SMP-HS: Byzantine senders serve only the leader.
        let smp = run_experiment(
            &ExperimentConfig::new(Protocol::SmpHotStuff, n, rate)
                .with_duration(1_000_000, 4_000_000)
                .with_byzantine(byz, 0),
        );
        // S-HS: attackers must still reach f+1 replicas to obtain proofs.
        let q = (n - 1) / 3 + 1;
        let stratus = run_experiment(
            &ExperimentConfig::new(Protocol::StratusHotStuff, n, rate)
                .with_duration(1_000_000, 4_000_000)
                .with_byzantine(byz, q),
        );
        for r in [&smp, &stratus] {
            println!(
                "{:<10} {:>6} {:>14.2} {:>14.1} {:>8}",
                r.summary.label,
                byz,
                r.summary.throughput_ktps,
                r.summary.mean_latency_ms,
                r.view_changes
            );
        }
    }

    println!(
        "\nExpected shape (paper Figure 9): SMP-HS throughput collapses and its latency\n\
         surges as Byzantine senders increase, while S-HS degrades only slightly because\n\
         proposals carry availability proofs and consensus never blocks on missing data."
    );
}
