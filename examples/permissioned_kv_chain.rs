//! A permissioned key-value chain built directly on the library API.
//!
//! This example uses the Stratus mempool and the chained-HotStuff engine
//! as a library (no simulator): four in-process replicas order client
//! `SET key value` commands — batched into microblocks, disseminated with
//! PAB, referenced by id in HotStuff proposals, and finally applied to a
//! key-value store once committed.  It demonstrates the full
//! `ReceiveTx → ShareTx → MakeProposal → FillProposal → Commit` pipeline
//! of the paper's Figure 1, including the executor-side resolution of
//! microblock references.
//!
//! ```text
//! cargo run --release --example permissioned_kv_chain
//! ```

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_consensus::{CDest, CEvent, ConsensusEngine, HotStuffEngine, ProposalVerdict};
use smp_mempool::{Dest, Mempool, MempoolEvent};
use smp_types::{ClientId, MicroblockId, Payload, Proposal, ReplicaId, SystemConfig, Transaction};
use std::collections::{BTreeMap, HashMap, VecDeque};
use stratus::{StratusConfig, StratusMempool, StratusMsg};

const N: usize = 4;

struct KvReplica {
    id: ReplicaId,
    engine: HotStuffEngine,
    mempool: StratusMempool,
    /// Executor-side cache: microblock id -> decoded commands.
    mb_commands: HashMap<MicroblockId, Vec<String>>,
    store: BTreeMap<String, String>,
    applied_txs: usize,
    rng: SmallRng,
}

enum Wire {
    Consensus(smp_consensus::ConsensusMsg),
    Mempool(StratusMsg),
}

fn main() {
    let system = SystemConfig::new(N);
    let mut replicas: Vec<KvReplica> = (0..N as u32)
        .map(|i| KvReplica {
            id: ReplicaId(i),
            engine: HotStuffEngine::new(&system, ReplicaId(i)),
            mempool: StratusMempool::new(&system, StratusConfig::default(), ReplicaId(i)),
            mb_commands: HashMap::new(),
            store: BTreeMap::new(),
            applied_txs: 0,
            rng: SmallRng::seed_from_u64(1000 + i as u64),
        })
        .collect();

    let mut wire: VecDeque<(usize, usize, Wire)> = VecDeque::new();
    let mut now: u64 = 0;

    // Submit 600 SET commands; clients pick replicas round-robin.
    for i in 0..600u64 {
        let replica = (i % N as u64) as usize;
        let cmd = format!("SET account-{:03} {}", i % 100, 10 * i);
        let tx = Transaction::with_payload(ClientId(replica as u32), i, Bytes::from(cmd), now);
        let fx = {
            let r = &mut replicas[replica];
            r.mempool.on_client_txs(now, vec![tx], &mut r.rng)
        };
        enqueue_mempool(replica, fx, &mut replicas, &mut wire);
        now += 500;
    }
    // Flush partial batches.
    for r in 0..N {
        let fx = {
            let node = &mut replicas[r];
            node.mempool
                .on_timer(now, smp_mempool::BATCH_TIMEOUT_TAG, &mut node.rng)
        };
        enqueue_mempool(r, fx, &mut replicas, &mut wire);
    }

    // Start consensus.
    for r in 0..N {
        let fx = replicas[r].engine.on_start(now);
        apply_consensus(r, fx, &mut replicas, &mut wire, now);
    }

    // Deliver messages until quiescence.
    let mut delivered = 0u64;
    while let Some((from, to, msg)) = wire.pop_front() {
        delivered += 1;
        now += 50;
        match msg {
            Wire::Consensus(cm) => {
                let fx = replicas[to]
                    .engine
                    .on_message(now, ReplicaId(from as u32), cm);
                apply_consensus(to, fx, &mut replicas, &mut wire, now);
            }
            Wire::Mempool(mm) => {
                cache_commands(&mut replicas[to], &mm);
                let fx = {
                    let r = &mut replicas[to];
                    r.mempool
                        .on_message(now, ReplicaId(from as u32), mm, &mut r.rng)
                };
                handle_mempool_effects(to, fx, &mut replicas, &mut wire, now);
            }
        }
        if delivered > 2_000_000 {
            break;
        }
    }

    println!("== permissioned key-value chain (Stratus + chained HotStuff) ==");
    for r in &replicas {
        println!(
            "{}: applied {:>4} transactions, {:>3} keys, committed blocks = {}",
            r.id,
            r.applied_txs,
            r.store.len(),
            r.engine.committed_count()
        );
    }
    let reference = &replicas[0].store;
    let consistent = replicas.iter().all(|r| &r.store == reference);
    println!("replica key-value stores identical: {consistent}");
    println!("sample: account-042 = {:?}", reference.get("account-042"));
    assert!(
        replicas[0].applied_txs > 0,
        "the chain should have applied transactions"
    );
}

/// Decodes and caches the commands carried by data-bearing messages so the
/// executor can resolve microblock references at commit time.
fn cache_commands(replica: &mut KvReplica, msg: &StratusMsg) {
    let mbs: Vec<&smp_types::Microblock> = match msg {
        StratusMsg::PabMsg(mb) | StratusMsg::LbForward(mb) => vec![mb],
        StratusMsg::PabResponse { mbs } => mbs.iter().collect(),
        _ => return,
    };
    for mb in mbs {
        let commands = mb
            .txs
            .iter()
            .map(|t| String::from_utf8_lossy(&t.payload).to_string())
            .collect();
        replica.mb_commands.insert(mb.id, commands);
    }
}

fn enqueue_mempool(
    from: usize,
    fx: smp_mempool::Effects<StratusMsg>,
    replicas: &mut [KvReplica],
    wire: &mut VecDeque<(usize, usize, Wire)>,
) {
    for (dest, msg) in fx.msgs {
        // The sender also caches its own outgoing data for execution.
        cache_commands(&mut replicas[from], &msg);
        match dest {
            Dest::One(r) => wire.push_back((from, r.index(), Wire::Mempool(msg))),
            Dest::AllButSelf => {
                for to in 0..N {
                    if to != from {
                        wire.push_back((from, to, Wire::Mempool(msg.clone())));
                    }
                }
            }
            Dest::Many(rs) => {
                for r in rs {
                    wire.push_back((from, r.index(), Wire::Mempool(msg.clone())));
                }
            }
        }
    }
}

fn apply_consensus(
    at: usize,
    fx: smp_consensus::CEffects,
    replicas: &mut Vec<KvReplica>,
    wire: &mut VecDeque<(usize, usize, Wire)>,
    now: u64,
) {
    for (dest, msg) in fx.msgs {
        match dest {
            CDest::One(r) => {
                if r.index() == at {
                    let fx2 = replicas[at]
                        .engine
                        .on_message(now, ReplicaId(at as u32), msg);
                    apply_consensus(at, fx2, replicas, wire, now);
                } else {
                    wire.push_back((at, r.index(), Wire::Consensus(msg)));
                }
            }
            CDest::AllButSelf => {
                for to in 0..N {
                    if to != at {
                        wire.push_back((at, to, Wire::Consensus(msg.clone())));
                    }
                }
            }
        }
    }
    for ev in fx.events {
        match ev {
            CEvent::NeedPayload { view } => {
                let payload = replicas[at].mempool.make_payload(now);
                let fx2 = replicas[at].engine.on_payload(now, view, payload);
                apply_consensus(at, fx2, replicas, wire, now);
            }
            CEvent::VerifyProposal { proposal } => {
                let (status, mfx) = {
                    let r = &mut replicas[at];
                    r.mempool.on_proposal(now, &proposal, &mut r.rng)
                };
                handle_mempool_effects(at, mfx, replicas, wire, now);
                let verdict = if status.is_ready() {
                    ProposalVerdict::Accept
                } else {
                    ProposalVerdict::Reject
                };
                let fx2 = replicas[at]
                    .engine
                    .on_proposal_verdict(now, proposal.id, verdict);
                apply_consensus(at, fx2, replicas, wire, now);
            }
            CEvent::Committed { proposal } => {
                let mfx = replicas[at].mempool.on_commit(now, &proposal);
                apply_committed(at, &proposal, replicas);
                handle_mempool_effects(at, mfx, replicas, wire, now);
            }
            CEvent::ViewChange { .. } => {}
        }
    }
}

fn handle_mempool_effects(
    at: usize,
    fx: smp_mempool::Effects<StratusMsg>,
    replicas: &mut Vec<KvReplica>,
    wire: &mut VecDeque<(usize, usize, Wire)>,
    now: u64,
) {
    let events = fx.events.clone();
    enqueue_mempool(at, fx, replicas, wire);
    for ev in events {
        if let MempoolEvent::ProposalReady { proposal } = ev {
            let fx2 =
                replicas[at]
                    .engine
                    .on_proposal_verdict(now, proposal, ProposalVerdict::Accept);
            apply_consensus(at, fx2, replicas, wire, now);
        }
    }
}

/// Applies the committed proposal to the replica's key-value store.
fn apply_committed(at: usize, proposal: &Proposal, replicas: &mut [KvReplica]) {
    let replica = &mut replicas[at];
    match &proposal.payload {
        Payload::Inline(txs) => {
            for t in txs.iter() {
                let cmd = String::from_utf8_lossy(&t.payload).to_string();
                apply_command(replica, &cmd);
            }
        }
        Payload::Refs(refs) => {
            for r in refs {
                if let Some(commands) = replica.mb_commands.get(&r.id).cloned() {
                    for cmd in commands {
                        apply_command(replica, &cmd);
                    }
                }
            }
        }
        // This example runs an unsharded Stratus mempool, so sharded
        // payloads never appear.
        Payload::Sharded(_) | Payload::Empty => {}
    }
}

fn apply_command(replica: &mut KvReplica, cmd: &str) {
    let mut parts = cmd.split_whitespace();
    if let (Some("SET"), Some(k), Some(v)) = (parts.next(), parts.next(), parts.next()) {
        replica.store.insert(k.to_string(), v.to_string());
        replica.applied_txs += 1;
    }
}
