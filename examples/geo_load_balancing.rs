//! Geo-distributed load balancing: reproduce (at small scale) the
//! Section VII-D experiment where client load is Zipf-skewed across
//! replicas and Stratus's distributed load balancer forwards excess load
//! from hot replicas to under-utilised proxies.
//!
//! ```text
//! cargo run --release --example geo_load_balancing
//! ```

use stratus_repro::prelude::*;

fn main() {
    let n = 16;
    let rate = 12_000.0;
    println!("n = {n}, offered load = {rate} tx/s, WAN, highly skewed (Zipf1) workload\n");

    let base = ExperimentConfig::new(Protocol::StratusHotStuff, n, rate)
        .wan()
        .with_duration(1_000_000, 5_000_000)
        .with_distribution(LoadDistribution::zipf1());

    println!(
        "{:<22} {:>12} {:>14}",
        "configuration", "KTx/s", "latency ms"
    );
    // Simple shared mempool: the hot replica's outbound link is the bottleneck.
    let smp = run_experiment(
        &ExperimentConfig::new(Protocol::SmpHotStuff, n, rate)
            .wan()
            .with_duration(1_000_000, 5_000_000)
            .with_distribution(LoadDistribution::zipf1()),
    );
    println!(
        "{:<22} {:>12.2} {:>14.1}",
        "SMP-HS (no balancing)", smp.summary.throughput_ktps, smp.summary.mean_latency_ms
    );

    // Stratus without DLB (S-HS-Even would be the even-load upper bound).
    let no_dlb = run_experiment(&base.clone().without_dlb());
    println!(
        "{:<22} {:>12.2} {:>14.1}",
        "S-HS (DLB off)", no_dlb.summary.throughput_ktps, no_dlb.summary.mean_latency_ms
    );

    // Stratus with power-of-d-choices load balancing, d = 1 and d = 3.
    for d in [1usize, 3] {
        let r = run_experiment(&base.clone().with_dlb_d(d));
        println!(
            "{:<22} {:>12.2} {:>14.1}",
            format!("S-HS (DLB, d = {d})"),
            r.summary.throughput_ktps,
            r.summary.mean_latency_ms
        );
    }

    println!(
        "\nExpected shape (paper Figure 11): under skew the balanced configurations\n\
         sustain several times the throughput of SMP-HS, and d = 3 performs best."
    );
}
