//! Appendix B: throughput of the shared-mempool design.

use crate::ModelParams;

/// The shared-mempool model: microblocks of `η` bits are disseminated by
/// all replicas, proposals carry `γ`-bit identifiers.
#[derive(Clone, Copy, Debug)]
pub struct SmpModel {
    /// Model parameters.
    pub params: ModelParams,
    /// Identifier size `γ` in bits (a 32-byte digest by default).
    pub id_bits: f64,
}

impl SmpModel {
    /// Creates the model with 32-byte identifiers.
    pub fn new(params: ModelParams) -> Self {
        SmpModel {
            params,
            id_bits: 32.0 * 8.0,
        }
    }

    /// Leader workload for a `proposal_bits`-sized proposal whose ids
    /// reference `η`-bit microblocks (Appendix B):
    /// `W_l = Kη/γ + (n − 1)K`.
    pub fn leader_work_bits(&self, n: usize, microblock_bits: f64) -> f64 {
        let k = self.params.proposal_bits;
        k * microblock_bits / self.id_bits + (n as f64 - 1.0) * k
    }

    /// Non-leader workload: `W_nl = 2Kη/γ + K`.
    pub fn non_leader_work_bits(&self, microblock_bits: f64) -> f64 {
        let k = self.params.proposal_bits;
        2.0 * k * microblock_bits / self.id_bits + k
    }

    /// Maximum throughput for a given microblock size `η`.
    pub fn max_throughput_tps(&self, n: usize, microblock_bits: f64) -> f64 {
        let p = &self.params;
        let k = p.proposal_bits;
        let txs_per_proposal = (k / self.id_bits) * (microblock_bits / p.tx_bits);
        let leader = p.capacity_bps / self.leader_work_bits(n, microblock_bits);
        let non_leader = p.capacity_bps / self.non_leader_work_bits(microblock_bits);
        txs_per_proposal * leader.min(non_leader)
    }

    /// The balanced microblock size `η = (n − 2)γ` that equalizes leader
    /// and non-leader work.
    pub fn balanced_microblock_bits(&self, n: usize) -> f64 {
        (n as f64 - 2.0) * self.id_bits
    }

    /// Maximum throughput at the balanced point, which approaches
    /// `C / 2B` for large `n`.
    pub fn balanced_throughput_tps(&self, n: usize) -> f64 {
        let nf = n as f64;
        self.params.capacity_bps * (nf - 2.0) / (self.params.tx_bits * (2.0 * nf - 3.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{absolute_upper_bound_tps, LbftModel};

    #[test]
    fn balanced_point_equalizes_work() {
        let m = SmpModel::new(ModelParams::default());
        for n in [16usize, 64, 256] {
            let eta = m.balanced_microblock_bits(n);
            let l = m.leader_work_bits(n, eta);
            let nl = m.non_leader_work_bits(eta);
            assert!((l - nl).abs() / l < 1e-9, "n={n}: {l} vs {nl}");
        }
    }

    #[test]
    fn balanced_throughput_approaches_half_the_upper_bound() {
        let m = SmpModel::new(ModelParams::default());
        let bound = absolute_upper_bound_tps(&m.params);
        let t = m.balanced_throughput_tps(400);
        assert!(t > 0.45 * bound && t < 0.51 * bound, "t={t}, bound={bound}");
    }

    #[test]
    fn smp_scales_far_better_than_lbft() {
        let params = ModelParams::default();
        let lbft = LbftModel::new(params);
        let smp = SmpModel::new(params);
        for n in [64usize, 128, 256] {
            let ratio = smp.balanced_throughput_tps(n) / lbft.max_throughput_tps(n);
            // The paper reports 5x-20x gains at 128+ replicas; the model
            // predicts roughly (n - 1)/2.
            assert!(ratio > n as f64 / 3.0, "n={n}: ratio {ratio}");
        }
    }

    #[test]
    fn throughput_is_insensitive_to_oversized_microblocks_at_the_leader() {
        let m = SmpModel::new(ModelParams::default());
        // Far beyond the balanced point the non-leader side dominates and
        // throughput saturates near C/2B rather than collapsing.
        let big = m.max_throughput_tps(128, 1024.0 * 1024.0 * 8.0);
        let bound = absolute_upper_bound_tps(&m.params);
        assert!(big > 0.3 * bound);
    }
}
