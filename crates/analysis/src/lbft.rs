//! Appendix A: the leader bottleneck of LBFT protocols.

use crate::ModelParams;

/// The generic LBFT model: the leader disseminates every transaction to
/// `n − 1` replicas, each non-leader processes it once.
#[derive(Clone, Copy, Debug)]
pub struct LbftModel {
    /// Model parameters.
    pub params: ModelParams,
}

impl LbftModel {
    /// Creates the model.
    pub fn new(params: ModelParams) -> Self {
        LbftModel { params }
    }

    /// Leader workload per transaction, in bits (`W_l = B(n − 1)`).
    pub fn leader_work_bits(&self, n: usize) -> f64 {
        self.params.tx_bits * (n as f64 - 1.0)
    }

    /// Non-leader workload per transaction, in bits (`W_nl = B`).
    pub fn non_leader_work_bits(&self) -> f64 {
        self.params.tx_bits
    }

    /// Maximum throughput `T_max = C / (B(n − 1))` in transactions per
    /// second.
    pub fn max_throughput_tps(&self, n: usize) -> f64 {
        let leader = self.params.capacity_bps / self.leader_work_bits(n);
        let non_leader = self.params.capacity_bps / self.non_leader_work_bits();
        leader.min(non_leader)
    }
}

/// The PBFT-specific refinement including vote overhead and batching
/// (Appendix A, second half).
#[derive(Clone, Copy, Debug)]
pub struct PbftModel {
    /// Model parameters.
    pub params: ModelParams,
}

impl PbftModel {
    /// Creates the model.
    pub fn new(params: ModelParams) -> Self {
        PbftModel { params }
    }

    /// Maximum throughput with batching: proposals of `batch_bits` amortize
    /// the `4(n − 1)σ` vote overhead over `batch_bits / B` transactions.
    pub fn max_throughput_tps(&self, n: usize, batch_bits: f64) -> f64 {
        let p = &self.params;
        let nf = n as f64;
        let leader_work = nf * batch_bits + 4.0 * (nf - 1.0) * p.vote_bits;
        let non_leader_work = batch_bits + 4.0 * (nf - 1.0) * p.vote_bits;
        let per_proposal = (p.capacity_bps / leader_work).min(p.capacity_bps / non_leader_work);
        per_proposal * batch_bits / p.tx_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_drops_inversely_with_n() {
        let m = LbftModel::new(ModelParams::default());
        let t4 = m.max_throughput_tps(4);
        let t64 = m.max_throughput_tps(64);
        // (n - 1) scaling: 63 / 3 = 21x drop.
        assert!((t4 / t64 - 21.0).abs() < 0.1, "ratio {}", t4 / t64);
    }

    #[test]
    fn leader_is_always_the_bottleneck() {
        let m = LbftModel::new(ModelParams::default());
        for n in [4usize, 16, 64, 256] {
            assert!(m.leader_work_bits(n) > m.non_leader_work_bits());
        }
    }

    #[test]
    fn batching_helps_but_does_not_remove_the_1_over_n_scaling() {
        let m = PbftModel::new(ModelParams::default());
        let batch = 256.0 * 1024.0 * 8.0;
        let small_batch = 4.0 * 1024.0 * 8.0;
        // Larger batches amortize votes: more throughput at the same n.
        assert!(m.max_throughput_tps(64, batch) > m.max_throughput_tps(64, small_batch));
        // But scaling with n remains ~1/n for large batches.
        let t16 = m.max_throughput_tps(16, batch);
        let t128 = m.max_throughput_tps(128, batch);
        let ratio = t16 / t128;
        assert!(ratio > 6.0 && ratio < 10.0, "ratio {ratio}");
    }
}
