//! Analytical throughput models from the paper's appendix.
//!
//! Appendix A derives the maximum throughput of a leader-based BFT
//! protocol (LBFT) as a function of the per-replica processing capacity
//! `C`, the transaction size `B`, the replica count `n`, and the vote
//! size `σ` — showing that the leader's dissemination work makes
//! throughput drop as `1/n` no matter how the commit phase is optimized.
//! Appendix B repeats the analysis for a shared mempool, where
//! dissemination is spread over all replicas, and derives the balanced
//! optimum `η = (n − 2)γ` at which throughput approaches `C / 2B`.

pub mod lbft;
pub mod smp;

pub use lbft::{LbftModel, PbftModel};
pub use smp::SmpModel;

/// Common model parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Per-replica processing capacity in bits per second.
    pub capacity_bps: f64,
    /// Transaction size in bits.
    pub tx_bits: f64,
    /// Vote / signature message size in bits.
    pub vote_bits: f64,
    /// Proposal size in bits (batch of transactions or ids).
    pub proposal_bits: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        // 100 Mb/s of usable capacity, 128-byte transactions, 100-byte
        // votes, 256 KB proposals — the WAN setting of the evaluation.
        ModelParams {
            capacity_bps: 100e6,
            tx_bits: 128.0 * 8.0,
            vote_bits: 100.0 * 8.0,
            proposal_bits: 256.0 * 1024.0 * 8.0,
        }
    }
}

/// The theoretical upper bound `C / B` on any BFT protocol's throughput
/// (every replica must at least receive every transaction once).
pub fn absolute_upper_bound_tps(params: &ModelParams) -> f64 {
    params.capacity_bps / params.tx_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_matches_capacity_over_tx_size() {
        let p = ModelParams::default();
        let bound = absolute_upper_bound_tps(&p);
        assert!((bound - 100e6 / 1024.0).abs() < 1e-6);
    }
}
