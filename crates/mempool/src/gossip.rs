//! A gossip-based shared mempool (SMP-HS-G in the paper).
//!
//! Instead of having the creator broadcast a microblock to everyone,
//! the creator sends it to `fanout` random peers, and every replica relays
//! it to `fanout` further random peers the first time it sees it.  This
//! spreads dissemination cost but adds redundancy and a long tail latency
//! (Section III-E, Solution-II discussion), which is why it underperforms
//! Stratus under skewed load (Figure 11).

use crate::api::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use crate::batcher::{TxBatcher, BATCH_TIMEOUT_TAG};
use crate::fetcher::FetchRetryState;
use crate::messages::SmpMsg;
use crate::simple::DEFAULT_FETCH_TIMEOUT;
use crate::store::{FillTracker, MicroblockStore, ProposalQueue};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use smp_telemetry::Telemetry;
use smp_types::{
    Microblock, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig, Transaction,
};

/// Default gossip fan-out (the evaluation uses 3).
pub const DEFAULT_FANOUT: usize = 3;

/// Maximum relay hops.  With fan-out 3 this covers networks far larger
/// than the 400 replicas evaluated in the paper.
pub const MAX_HOPS: u8 = 16;

/// Gossip-based shared mempool.
#[derive(Clone, Debug)]
pub struct GossipSmp {
    me: ReplicaId,
    n: usize,
    fanout: usize,
    max_refs: usize,
    batcher: TxBatcher,
    store: MicroblockStore,
    queue: ProposalQueue,
    tracker: FillTracker,
    fetcher: FetchRetryState,
    created: u64,
    relayed: u64,
    telemetry: Telemetry,
}

impl GossipSmp {
    /// Creates the mempool for replica `me` with the default fan-out.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        Self::with_fanout(config, me, DEFAULT_FANOUT)
    }

    /// Creates the mempool with an explicit fan-out.
    pub fn with_fanout(config: &SystemConfig, me: ReplicaId, fanout: usize) -> Self {
        GossipSmp {
            me,
            n: config.n,
            fanout: fanout.max(1),
            max_refs: config.mempool.max_refs_per_proposal,
            batcher: TxBatcher::new(me, config.mempool),
            store: MicroblockStore::new(),
            queue: ProposalQueue::new(),
            tracker: FillTracker::new(),
            fetcher: FetchRetryState::new(DEFAULT_FETCH_TIMEOUT),
            created: 0,
            relayed: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Number of microblocks this replica relayed onward.
    pub fn relayed(&self) -> u64 {
        self.relayed
    }

    fn random_peers(&self, rng: &mut SmallRng, exclude: &[ReplicaId]) -> Vec<ReplicaId> {
        let mut peers: Vec<ReplicaId> = (0..self.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != self.me && !exclude.contains(r))
            .collect();
        peers.shuffle(rng);
        peers.truncate(self.fanout);
        peers
    }

    fn gossip_out(
        &mut self,
        mb: Microblock,
        hops: u8,
        exclude: &[ReplicaId],
        rng: &mut SmallRng,
        effects: &mut Effects<SmpMsg>,
    ) {
        if hops == 0 {
            return;
        }
        let peers = self.random_peers(rng, exclude);
        if peers.is_empty() {
            return;
        }
        effects.multicast(peers, SmpMsg::Gossip { mb, hops: hops - 1 });
    }
}

impl Mempool for GossipSmp {
    type Msg = SmpMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        rng: &mut SmallRng,
    ) -> Effects<SmpMsg> {
        let _span = self.telemetry.span_at("batcher.add", now);
        let mut effects = Effects::none();
        let outcome = self.batcher.add(now, txs);
        if outcome.arm_timer {
            effects.timer(self.batcher.timeout(), BATCH_TIMEOUT_TAG);
        }
        for mb in outcome.sealed {
            self.created += 1;
            self.telemetry.counter_inc("batcher.sealed");
            self.queue.push(mb.id);
            self.store.insert(mb.clone());
            self.gossip_out(mb, MAX_HOPS, &[], rng, &mut effects);
        }
        effects
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: SmpMsg,
        rng: &mut SmallRng,
    ) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        match msg {
            SmpMsg::Gossip { .. } | SmpMsg::Microblock(_) => {
                let (mb, hops) = match msg {
                    SmpMsg::Gossip { mb, hops } => (mb, hops),
                    SmpMsg::Microblock(mb) => (mb, MAX_HOPS),
                    _ => unreachable!("outer match guarantees a microblock variant"),
                };
                if self.store.contains(&mb.id) {
                    // Duplicate: do not relay again (bounded redundancy).
                    return effects;
                }
                let id = mb.id;
                let creator = mb.creator;
                self.store.insert(mb.clone());
                self.queue.push(id);
                for ev in self.tracker.on_microblock(id, &self.store, now) {
                    effects.event(ev);
                }
                self.fetcher.prune(&self.store);
                // Relay on first receipt.
                self.relayed += 1;
                self.telemetry.counter_inc("gossip.relayed");
                self.gossip_out(
                    mb,
                    hops.saturating_sub(1),
                    &[from, creator],
                    rng,
                    &mut effects,
                );
            }
            SmpMsg::Fetch { ids } => {
                let mbs: Vec<Microblock> = ids
                    .iter()
                    .filter_map(|id| self.store.get(id).cloned())
                    .collect();
                if !mbs.is_empty() {
                    effects.send(from, SmpMsg::FetchResp { mbs });
                }
            }
            SmpMsg::FetchResp { mbs } => {
                for mb in mbs {
                    let id = mb.id;
                    if self.store.insert(mb) {
                        for ev in self.tracker.on_microblock(id, &self.store, now) {
                            effects.event(ev);
                        }
                    }
                }
                self.fetcher.prune(&self.store);
            }
        }
        effects
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, _rng: &mut SmallRng) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        if tag == BATCH_TIMEOUT_TAG {
            if let Some(mb) = self.batcher.on_timeout(now) {
                self.created += 1;
                self.queue.push(mb.id);
                self.store.insert(mb.clone());
                // The relay uses a dedicated RNG-free path on timeout: pick
                // the first `fanout` peers deterministically after a rotation
                // keyed by the microblock id for spread.
                let start = (mb.id.digest().short() % self.n as u64) as u32;
                let peers: Vec<ReplicaId> = (0..self.n as u32)
                    .map(|i| ReplicaId((start + i) % self.n as u32))
                    .filter(|r| *r != self.me)
                    .take(self.fanout)
                    .collect();
                effects.multicast(
                    peers,
                    SmpMsg::Gossip {
                        mb,
                        hops: MAX_HOPS - 1,
                    },
                );
            }
        } else if FetchRetryState::owns_tag(tag) {
            if let Some(action) = self.fetcher.on_timer(tag, &self.store) {
                effects.send(action.target, SmpMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
            }
        }
        effects
    }

    fn make_payload(&mut self, _now: SimTime) -> Payload {
        let mut refs = Vec::new();
        while refs.len() < self.max_refs {
            let Some(id) = self.queue.pop() else { break };
            let Some(mb) = self.store.get(&id) else {
                continue;
            };
            refs.push(MicroblockRef::unproven(id, mb.creator, mb.len() as u32));
        }
        if refs.is_empty() {
            Payload::Empty
        } else {
            Payload::Refs(refs)
        }
    }

    fn on_proposal(
        &mut self,
        _now: SimTime,
        proposal: &Proposal,
        _rng: &mut SmallRng,
    ) -> (FillStatus, Effects<SmpMsg>) {
        let mut effects = Effects::none();
        let refs = match &proposal.payload {
            Payload::Refs(refs) => refs,
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; a whole sharded payload reaching an
            // unsharded backend must not bypass reference verification.
            Payload::Sharded(_) => {
                return (
                    FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                    effects,
                )
            }
            _ => return (FillStatus::Ready, effects),
        };
        let mut missing = Vec::new();
        let mut creators = Vec::new();
        for r in refs {
            self.queue.remove(&r.id);
            if !self.store.contains(&r.id) {
                missing.push(r.id);
                creators.push(r.creator);
            }
        }
        if missing.is_empty() {
            return (FillStatus::Ready, effects);
        }
        self.telemetry
            .counter_add("fetcher.fetch", missing.len() as u64);
        self.tracker.track(proposal, missing.clone(), true);
        // Fetch from the creators first, then fall back to the proposer.
        let mut candidates = creators;
        candidates.push(proposal.proposer);
        candidates.dedup();
        let action = self.fetcher.register(missing.clone(), candidates);
        effects.send(action.target, SmpMsg::Fetch { ids: action.ids });
        effects.timer(self.fetcher.timeout, action.tag);
        effects.event(MempoolEvent::FetchIssued {
            count: missing.len() as u32,
        });
        (FillStatus::MustWait(missing), effects)
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        if let Payload::Refs(refs) = &proposal.payload {
            for r in refs {
                self.queue.remove(&r.id);
            }
        }
        for ev in self.tracker.on_commit(proposal, &self.store, now) {
            effects.event(ev);
        }
        effects
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.batcher.pending_txs(),
            stored_microblocks: self.store.len(),
            proposable_microblocks: self.queue.len(),
            created_microblocks: self.created,
            forwarded_microblocks: self.relayed,
            fetches_issued: self.fetcher.issued(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smp_types::{BlockId, ClientId, MempoolConfig, View};

    fn config(n: usize) -> SystemConfig {
        SystemConfig::new(n).with_mempool(MempoolConfig {
            batch_size_bytes: 168 * 4,
            ..MempoolConfig::default()
        })
    }

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(3), i as u64, 128, 0))
            .collect()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2)
    }

    #[test]
    fn creator_gossips_to_fanout_peers_only() {
        let mut mp = GossipSmp::new(&config(20), ReplicaId(0));
        let fx = mp.on_client_txs(0, txs(4), &mut rng());
        assert_eq!(fx.msgs.len(), 1);
        match &fx.msgs[0].0 {
            crate::api::Dest::Many(peers) => {
                assert_eq!(peers.len(), DEFAULT_FANOUT);
                assert!(!peers.contains(&ReplicaId(0)));
            }
            other => panic!("unexpected dest {other:?}"),
        }
    }

    #[test]
    fn first_receipt_is_relayed_duplicates_are_not() {
        let mut a = GossipSmp::new(&config(20), ReplicaId(0));
        let mut b = GossipSmp::new(&config(20), ReplicaId(1));
        let fx = a.on_client_txs(0, txs(4), &mut rng());
        let mb = match &fx.msgs[0].1 {
            SmpMsg::Gossip { mb, .. } => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let fx1 = b.on_message(
            1,
            ReplicaId(0),
            SmpMsg::Gossip {
                mb: mb.clone(),
                hops: 8,
            },
            &mut rng(),
        );
        assert!(fx1
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, SmpMsg::Gossip { .. })));
        let fx2 = b.on_message(2, ReplicaId(0), SmpMsg::Gossip { mb, hops: 8 }, &mut rng());
        assert!(fx2.msgs.is_empty(), "duplicates are not relayed");
        assert_eq!(b.relayed(), 1);
    }

    #[test]
    fn missing_refs_fetch_from_creator() {
        let mut a = GossipSmp::new(&config(8), ReplicaId(0));
        let mut b = GossipSmp::new(&config(8), ReplicaId(1));
        let _ = a.on_client_txs(0, txs(4), &mut rng());
        let proposal = Proposal::new(
            View(2),
            1,
            BlockId::GENESIS,
            ReplicaId(5),
            a.make_payload(1),
            true,
        );
        let (status, fx) = b.on_proposal(5, &proposal, &mut rng());
        assert!(matches!(status, FillStatus::MustWait(_)));
        // First fetch target is the creator (replica 0), not the proposer.
        match &fx.msgs[0] {
            (crate::api::Dest::One(target), SmpMsg::Fetch { .. }) => {
                assert_eq!(*target, ReplicaId(0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gossiped_microblocks_are_proposable_by_receivers() {
        let mut a = GossipSmp::new(&config(8), ReplicaId(0));
        let mut b = GossipSmp::new(&config(8), ReplicaId(1));
        let fx = a.on_client_txs(0, txs(4), &mut rng());
        let mb = match &fx.msgs[0].1 {
            SmpMsg::Gossip { mb, .. } => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        b.on_message(1, ReplicaId(0), SmpMsg::Gossip { mb, hops: 4 }, &mut rng());
        assert_eq!(b.make_payload(2).ref_count(), 1);
    }
}
