//! The shared-mempool abstraction (Section III of the paper).
//!
//! A mempool implementation is an event-driven state machine: every
//! handler receives the current simulated time plus an input (client
//! transactions, a peer message, a timer) and returns [`Effects`] —
//! messages to send, timers to arm, and notifications for the consensus
//! layer.  The replica assembly (in `smp-replica`) routes these effects
//! onto the simulated network.
//!
//! The trait mirrors the paper's four primitives:
//!
//! * `ReceiveTx(tx)` + `ShareTx(tx)` → [`Mempool::on_client_txs`] (and the
//!   dissemination messages it returns),
//! * `MakeProposal()` → [`Mempool::make_payload`],
//! * `FillProposal(p)` → [`Mempool::on_proposal`] (whose [`FillStatus`]
//!   tells consensus whether it may enter the commit phase immediately).

use rand::rngs::SmallRng;
use smp_telemetry::Telemetry;
use smp_types::{BlockId, MicroblockId, Payload, Proposal, ReplicaId, SimTime, Transaction};

/// Timer tag namespace owned by a mempool instance.
pub type TimerTag = u64;

/// Message destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dest {
    /// A single replica.
    One(ReplicaId),
    /// Every replica except the sender.
    AllButSelf,
    /// An explicit set of replicas.
    Many(Vec<ReplicaId>),
}

/// Notifications from the mempool to the consensus layer / replica.
#[derive(Clone, Debug, PartialEq)]
pub enum MempoolEvent {
    /// A proposal that previously returned [`FillStatus::MustWait`] now has
    /// every referenced microblock locally available; consensus may resume.
    ProposalReady {
        /// The proposal that became ready.
        proposal: BlockId,
    },
    /// A microblock created by this replica became provably available
    /// (Stratus) or fully certified (Narwhal).  `stable_time` is the
    /// broadcast-to-stability delay used by the DLB workload estimator.
    MicroblockStable {
        /// The stable microblock.
        id: MicroblockId,
        /// Time from broadcast to stability.
        stable_time: SimTime,
    },
    /// A committed proposal has all of its transaction data locally and has
    /// been handed to the executor.  Carries everything the metrics layer
    /// needs: the number of ordered transactions and the first-reception
    /// times of those whose provenance is known.
    Executed {
        /// The executed proposal.
        proposal: BlockId,
        /// Number of transactions ordered by the proposal.
        tx_count: u32,
        /// First-reception times of the transactions (for latency).
        receive_times: Vec<SimTime>,
    },
    /// Missing microblocks had to be fetched while filling a proposal.
    FetchIssued {
        /// How many microblocks were requested.
        count: u32,
    },
}

/// Side effects produced by a mempool handler.
#[derive(Clone, Debug, Default)]
pub struct Effects<M> {
    /// Messages to transmit.
    pub msgs: Vec<(Dest, M)>,
    /// Timers to arm, as `(delay, tag)` pairs.
    pub timers: Vec<(SimTime, TimerTag)>,
    /// Notifications for the consensus layer / replica.
    pub events: Vec<MempoolEvent>,
}

impl<M> Effects<M> {
    /// No effects.
    pub fn none() -> Self {
        Effects {
            msgs: Vec::new(),
            timers: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Queues a unicast message.
    pub fn send(&mut self, to: ReplicaId, msg: M) {
        self.msgs.push((Dest::One(to), msg));
    }

    /// Queues a broadcast to every other replica.
    pub fn broadcast(&mut self, msg: M) {
        self.msgs.push((Dest::AllButSelf, msg));
    }

    /// Queues a multicast to an explicit set of replicas.
    pub fn multicast(&mut self, targets: Vec<ReplicaId>, msg: M) {
        self.msgs.push((Dest::Many(targets), msg));
    }

    /// Arms a timer.
    pub fn timer(&mut self, delay: SimTime, tag: TimerTag) {
        self.timers.push((delay, tag));
    }

    /// Emits an event.
    pub fn event(&mut self, event: MempoolEvent) {
        self.events.push(event);
    }

    /// Appends all effects from `other`.
    pub fn merge(&mut self, other: Effects<M>) {
        self.msgs.extend(other.msgs);
        self.timers.extend(other.timers);
        self.events.extend(other.events);
    }

    /// Whether this value carries no effects at all.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty() && self.timers.is_empty() && self.events.is_empty()
    }
}

/// Load-coordination snapshot drained from one mempool instance so an
/// external coordinator (the sharded wrapper's
/// `stratus::ShardLoadCoordinator`) can merge per-shard DLB state into
/// one coherent cross-shard view.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoadSnapshot {
    /// `LbInfo` load-status replies observed since the last snapshot, in
    /// arrival order (`None` = the peer reported itself busy).
    pub samples: Vec<(ReplicaId, Option<SimTime>)>,
    /// The instance's current *own* bans (forwards in flight / timed
    /// out), sorted for determinism.
    pub own_bans: Vec<ReplicaId>,
    /// Whether the periodic banList reset fired since the last snapshot.
    pub reset: bool,
}

/// Outcome of verifying / filling an incoming proposal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FillStatus {
    /// Consensus may enter the commit phase immediately (all data present,
    /// or availability proofs guarantee it can be fetched in the
    /// background — the Stratus property).
    Ready,
    /// Consensus must wait for the listed microblocks before voting (the
    /// behaviour of a best-effort shared mempool).
    MustWait(Vec<MicroblockId>),
    /// The proposal is invalid (e.g. bad availability proof); consensus
    /// should trigger a view change.
    Invalid(&'static str),
}

impl FillStatus {
    /// Whether consensus can proceed without waiting.
    pub fn is_ready(&self) -> bool {
        matches!(self, FillStatus::Ready)
    }
}

/// Counters exposed by every mempool for reporting and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MempoolStats {
    /// Transactions buffered but not yet sealed into a microblock.
    pub unbatched_txs: usize,
    /// Microblocks available locally (disseminated or received).
    pub stored_microblocks: usize,
    /// Microblocks eligible for inclusion in a future proposal.
    pub proposable_microblocks: usize,
    /// Microblocks this replica created and disseminated itself.
    pub created_microblocks: u64,
    /// Microblocks this replica forwarded to a proxy (DLB only).
    pub forwarded_microblocks: u64,
    /// Fetch requests issued for missing microblocks.
    pub fetches_issued: u64,
}

/// The shared-mempool interface (paper Section III-C).
pub trait Mempool {
    /// Wire message type used between mempool instances.
    type Msg: Clone + std::fmt::Debug;

    /// `ReceiveTx` + `ShareTx`: ingest transactions arriving from clients.
    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg>;

    /// Handle a mempool message from another replica.
    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: Self::Msg,
        rng: &mut SmallRng,
    ) -> Effects<Self::Msg>;

    /// Handle a timer armed by a previous handler.
    fn on_timer(&mut self, now: SimTime, tag: TimerTag, rng: &mut SmallRng) -> Effects<Self::Msg>;

    /// `MakeProposal`: pull pending content into a proposal payload.
    fn make_payload(&mut self, now: SimTime) -> Payload;

    /// `FillProposal`: verify an incoming proposal and start resolving its
    /// referenced data.  Returns whether consensus may proceed plus any
    /// fetch traffic / notifications.
    fn on_proposal(
        &mut self,
        now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<Self::Msg>);

    /// Consensus committed `proposal`: hand it to the executor (possibly
    /// deferred until missing data arrives) and garbage-collect.
    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<Self::Msg>;

    /// Current counters.
    fn stats(&self) -> MempoolStats;

    /// Installs a telemetry handle (already prefixed for this replica).
    /// Implementations that instrument their hot paths store it; the
    /// default ignores it, so plain mempools need no changes.  Telemetry
    /// must never influence behavior — results have to stay byte-identical
    /// whether the handle is live or disabled.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}

    /// Drains the instance's load-coordination state for an external
    /// coordinator.  `None` (the default) means the mempool performs no
    /// distributed load balancing and needs no coordination.
    fn load_snapshot(&mut self) -> Option<LoadSnapshot> {
        None
    }

    /// Imposes a coordinator-merged ban view on this instance (replacing
    /// any previously imposed view; the instance's own bans are
    /// unaffected).  The default ignores it.
    fn apply_load_view(&mut self, _banned: &[ReplicaId]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_builders_accumulate() {
        let mut e: Effects<&'static str> = Effects::none();
        assert!(e.is_empty());
        e.send(ReplicaId(1), "a");
        e.broadcast("b");
        e.multicast(vec![ReplicaId(2), ReplicaId(3)], "c");
        e.timer(100, 7);
        e.event(MempoolEvent::FetchIssued { count: 2 });
        assert_eq!(e.msgs.len(), 3);
        assert_eq!(e.timers, vec![(100, 7)]);
        assert_eq!(e.events.len(), 1);
        assert!(!e.is_empty());
    }

    #[test]
    fn effects_merge_concatenates() {
        let mut a: Effects<u8> = Effects::none();
        a.send(ReplicaId(0), 1);
        let mut b: Effects<u8> = Effects::none();
        b.send(ReplicaId(1), 2);
        b.timer(5, 5);
        a.merge(b);
        assert_eq!(a.msgs.len(), 2);
        assert_eq!(a.timers.len(), 1);
    }

    #[test]
    fn fill_status_ready_flag() {
        assert!(FillStatus::Ready.is_ready());
        assert!(!FillStatus::MustWait(vec![]).is_ready());
        assert!(!FillStatus::Invalid("x").is_ready());
    }
}
