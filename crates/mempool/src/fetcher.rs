//! Retry bookkeeping for fetching missing microblocks.
//!
//! Every shared-mempool variant needs to request microblocks it does not
//! have (from the leader, the creator, or the availability-proof signers)
//! and retry if the request is not answered within a timeout (the paper's
//! `PAB-Fetch` procedure re-invokes itself after `δ`).  [`FetchRetryState`]
//! owns that bookkeeping: it assigns timer tags, remembers which ids were
//! requested from which candidates, and on timeout reports which ids are
//! still missing together with the next candidate target to try.

use crate::store::MicroblockStore;
use smp_types::{MicroblockId, ReplicaId, SimTime};
use std::collections::HashMap;

/// Base value for fetch timer tags (so they never collide with the batch
/// timer tag).
pub const FETCH_TAG_BASE: u64 = 0x4645_5443_0000_0000; // "FETC"

/// One outstanding fetch.
#[derive(Clone, Debug)]
struct FetchEntry {
    ids: Vec<MicroblockId>,
    candidates: Vec<ReplicaId>,
    next_candidate: usize,
    attempts: u32,
}

/// Bookkeeping for outstanding fetches and their retries.
#[derive(Clone, Debug)]
pub struct FetchRetryState {
    entries: HashMap<u64, FetchEntry>,
    next_tag: u64,
    /// Retry period.
    pub timeout: SimTime,
    issued: u64,
}

/// A fetch action to perform now: ask `target` for `ids` and re-arm the
/// timer identified by `tag`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchAction {
    /// Replica to ask.
    pub target: ReplicaId,
    /// Microblocks to request.
    pub ids: Vec<MicroblockId>,
    /// Timer tag to re-arm with the retry timeout.
    pub tag: u64,
}

impl FetchRetryState {
    /// Creates an empty retry table with the given retry `timeout`.
    pub fn new(timeout: SimTime) -> Self {
        FetchRetryState {
            entries: HashMap::new(),
            next_tag: FETCH_TAG_BASE,
            timeout,
            issued: 0,
        }
    }

    /// Number of fetch requests issued so far (including retries).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of outstanding fetch entries.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }

    /// Whether `tag` belongs to this retry table.
    pub fn owns_tag(tag: u64) -> bool {
        tag >= FETCH_TAG_BASE
    }

    /// Registers a new fetch for `ids` with an ordered candidate target
    /// list, returning the action to perform immediately.
    pub fn register(&mut self, ids: Vec<MicroblockId>, candidates: Vec<ReplicaId>) -> FetchAction {
        assert!(
            !candidates.is_empty(),
            "fetch needs at least one candidate target"
        );
        let tag = self.next_tag;
        self.next_tag += 1;
        let target = candidates[0];
        let entry = FetchEntry {
            ids: ids.clone(),
            candidates,
            next_candidate: 1,
            attempts: 1,
        };
        self.entries.insert(tag, entry);
        self.issued += 1;
        FetchAction { target, ids, tag }
    }

    /// Handles a retry timer.  Returns the next action if some of the ids
    /// are still missing from `store`, or `None` if the fetch is complete
    /// (the entry is dropped either way when complete).
    pub fn on_timer(&mut self, tag: u64, store: &MicroblockStore) -> Option<FetchAction> {
        let entry = self.entries.get_mut(&tag)?;
        entry.ids.retain(|id| !store.contains(id));
        if entry.ids.is_empty() {
            self.entries.remove(&tag);
            return None;
        }
        let target = entry.candidates[entry.next_candidate % entry.candidates.len()];
        entry.next_candidate += 1;
        entry.attempts += 1;
        self.issued += 1;
        Some(FetchAction {
            target,
            ids: entry.ids.clone(),
            tag,
        })
    }

    /// Drops entries whose ids are all present in `store` (called after a
    /// batch of arrivals to keep the table small).
    pub fn prune(&mut self, store: &MicroblockStore) {
        self.entries.retain(|_, e| {
            e.ids.retain(|id| !store.contains(id));
            !e.ids.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::{ClientId, Microblock, Transaction};

    fn mb(creator: u32, seq: u64) -> Microblock {
        let txs = vec![Transaction::synthetic(ClientId(creator), seq, 128, 0)];
        Microblock::seal(ReplicaId(creator), txs, 0)
    }

    #[test]
    fn register_targets_first_candidate() {
        let mut f = FetchRetryState::new(1000);
        let a = mb(1, 0);
        let action = f.register(vec![a.id], vec![ReplicaId(3), ReplicaId(4)]);
        assert_eq!(action.target, ReplicaId(3));
        assert_eq!(action.ids, vec![a.id]);
        assert!(FetchRetryState::owns_tag(action.tag));
        assert_eq!(f.issued(), 1);
        assert_eq!(f.outstanding(), 1);
    }

    #[test]
    fn retry_rotates_candidates_until_satisfied() {
        let mut f = FetchRetryState::new(1000);
        let a = mb(1, 0);
        let mut store = MicroblockStore::new();
        let action = f.register(vec![a.id], vec![ReplicaId(3), ReplicaId(4)]);
        let retry = f.on_timer(action.tag, &store).expect("still missing");
        assert_eq!(retry.target, ReplicaId(4));
        let retry2 = f.on_timer(action.tag, &store).expect("still missing");
        assert_eq!(retry2.target, ReplicaId(3));
        store.insert(a.clone());
        assert!(f.on_timer(action.tag, &store).is_none());
        assert_eq!(f.outstanding(), 0);
    }

    #[test]
    fn unknown_tag_is_ignored() {
        let mut f = FetchRetryState::new(1000);
        let store = MicroblockStore::new();
        assert!(f.on_timer(12345, &store).is_none());
    }

    #[test]
    fn prune_drops_satisfied_entries() {
        let mut f = FetchRetryState::new(1000);
        let a = mb(1, 0);
        let b = mb(2, 0);
        let mut store = MicroblockStore::new();
        f.register(vec![a.id], vec![ReplicaId(1)]);
        f.register(vec![b.id], vec![ReplicaId(2)]);
        store.insert(a);
        f.prune(&store);
        assert_eq!(f.outstanding(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn register_requires_candidates() {
        let mut f = FetchRetryState::new(1000);
        let _ = f.register(vec![mb(0, 0).id], vec![]);
    }
}
