//! The native (non-shared) mempool used by the paper's baselines
//! (N-HS, N-PBFT).
//!
//! Each replica keeps the transactions it receives from clients in a local
//! queue; when it becomes the leader it pulls them into a proposal *with
//! full transaction data*, so the leader's outbound link carries the whole
//! batch to every other replica — the leader bottleneck analysed in
//! Appendix A.

use crate::api::{Effects, FillStatus, Mempool, MempoolStats, TimerTag};
use rand::rngs::SmallRng;
use smp_types::{MempoolConfig, Payload, Proposal, ReplicaId, SimTime, SystemConfig, Transaction};
use std::collections::VecDeque;

/// Marker message type: the native mempool never talks to its peers.
#[derive(Clone, Debug, PartialEq)]
pub enum NativeMsg {}

impl smp_types::WireSize for NativeMsg {
    fn wire_size(&self) -> usize {
        match *self {}
    }
}

/// The native mempool.
#[derive(Clone, Debug)]
pub struct NativeMempool {
    me: ReplicaId,
    config: MempoolConfig,
    pending: VecDeque<Transaction>,
    executed_txs: u64,
}

impl NativeMempool {
    /// Creates the native mempool for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        NativeMempool {
            me,
            config: config.mempool,
            pending: VecDeque::new(),
            executed_txs: 0,
        }
    }

    /// Total transactions executed through committed proposals.
    pub fn executed_txs(&self) -> u64 {
        self.executed_txs
    }
}

impl Mempool for NativeMempool {
    type Msg = NativeMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        _rng: &mut SmallRng,
    ) -> Effects<NativeMsg> {
        for mut tx in txs {
            tx.mark_received(self.me, now);
            self.pending.push_back(tx);
        }
        Effects::none()
    }

    fn on_message(
        &mut self,
        _now: SimTime,
        _from: ReplicaId,
        msg: NativeMsg,
        _rng: &mut SmallRng,
    ) -> Effects<NativeMsg> {
        match msg {}
    }

    fn on_timer(
        &mut self,
        _now: SimTime,
        _tag: TimerTag,
        _rng: &mut SmallRng,
    ) -> Effects<NativeMsg> {
        Effects::none()
    }

    fn make_payload(&mut self, _now: SimTime) -> Payload {
        if self.pending.is_empty() {
            return Payload::Empty;
        }
        let take = self
            .config
            .max_inline_txs_per_proposal
            .min(self.pending.len());
        let txs: Vec<Transaction> = self.pending.drain(..take).collect();
        Payload::inline(txs)
    }

    fn on_proposal(
        &mut self,
        _now: SimTime,
        proposal: &Proposal,
        _rng: &mut SmallRng,
    ) -> (FillStatus, Effects<NativeMsg>) {
        match &proposal.payload {
            Payload::Inline(_) | Payload::Empty => (FillStatus::Ready, Effects::none()),
            Payload::Refs(_) => (
                FillStatus::Invalid("native mempool cannot resolve referenced payloads"),
                Effects::none(),
            ),
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; reaching here is a layering error.
            Payload::Sharded(_) => (
                FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                Effects::none(),
            ),
        }
    }

    fn on_commit(&mut self, _now: SimTime, proposal: &Proposal) -> Effects<NativeMsg> {
        let mut effects = Effects::none();
        match &proposal.payload {
            Payload::Inline(txs) => {
                self.executed_txs += txs.len() as u64;
                effects.event(crate::api::MempoolEvent::Executed {
                    proposal: proposal.id,
                    tx_count: txs.len() as u32,
                    receive_times: txs.iter().filter_map(|t| t.received_at).collect(),
                });
            }
            Payload::Empty => {
                effects.event(crate::api::MempoolEvent::Executed {
                    proposal: proposal.id,
                    tx_count: 0,
                    receive_times: Vec::new(),
                });
            }
            Payload::Refs(_) | Payload::Sharded(_) => {}
        }
        effects
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.pending.len(),
            stored_microblocks: 0,
            proposable_microblocks: 0,
            created_microblocks: 0,
            forwarded_microblocks: 0,
            fetches_issued: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MempoolEvent;
    use rand::SeedableRng;
    use smp_types::{BlockId, ClientId, View};

    fn setup() -> (NativeMempool, SmallRng) {
        let cfg = SystemConfig::new(4);
        (
            NativeMempool::new(&cfg, ReplicaId(1)),
            SmallRng::seed_from_u64(0),
        )
    }

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(5), i as u64, 128, 0))
            .collect()
    }

    #[test]
    fn client_txs_are_buffered_and_proposed_inline() {
        let (mut mp, mut rng) = setup();
        assert!(mp.on_client_txs(100, txs(10), &mut rng).is_empty());
        let payload = mp.make_payload(200);
        assert_eq!(payload.inline_tx_count(), 10);
        assert_eq!(mp.stats().unbatched_txs, 0);
        // Second call has nothing left.
        assert!(matches!(mp.make_payload(300), Payload::Empty));
    }

    #[test]
    fn proposal_size_is_capped() {
        let cfg = SystemConfig::new(4).with_mempool(MempoolConfig {
            max_inline_txs_per_proposal: 4,
            ..MempoolConfig::default()
        });
        let mut mp = NativeMempool::new(&cfg, ReplicaId(0));
        let mut rng = SmallRng::seed_from_u64(0);
        mp.on_client_txs(0, txs(10), &mut rng);
        assert_eq!(mp.make_payload(1).inline_tx_count(), 4);
        assert_eq!(mp.stats().unbatched_txs, 6);
    }

    #[test]
    fn inline_proposals_are_always_ready() {
        let (mut mp, mut rng) = setup();
        mp.on_client_txs(0, txs(3), &mut rng);
        let payload = mp.make_payload(1);
        let p = Proposal::new(View(1), 1, BlockId::GENESIS, ReplicaId(0), payload, true);
        let (status, fx) = mp.on_proposal(2, &p, &mut rng);
        assert_eq!(status, FillStatus::Ready);
        assert!(fx.is_empty());
    }

    #[test]
    fn commit_reports_executed_txs_with_latencies() {
        let (mut mp, mut rng) = setup();
        mp.on_client_txs(50, txs(5), &mut rng);
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(1),
            mp.make_payload(60),
            true,
        );
        let fx = mp.on_commit(100, &p);
        assert_eq!(fx.events.len(), 1);
        match &fx.events[0] {
            MempoolEvent::Executed {
                tx_count,
                receive_times,
                ..
            } => {
                assert_eq!(*tx_count, 5);
                assert_eq!(receive_times, &vec![50; 5]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(mp.executed_txs(), 5);
    }

    #[test]
    fn refs_payload_is_rejected() {
        let (mut mp, mut rng) = setup();
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Refs(vec![]),
            true,
        );
        let (status, _) = mp.on_proposal(0, &p, &mut rng);
        assert!(matches!(status, FillStatus::Invalid(_)));
    }
}
