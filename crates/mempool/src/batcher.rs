//! Transaction batching into microblocks.
//!
//! Transactions are collected from clients and batched into microblocks
//! for dissemination (Section III-D): a batch is sealed as soon as the
//! configured byte size is reached, or after a timeout (200 ms by default)
//! so lightly loaded replicas still make progress (Section VII-B).

use smp_types::{MempoolConfig, Microblock, ReplicaId, SimTime, Transaction, WireSize};

/// Timer tag used by the batcher for its seal timeout.
pub const BATCH_TIMEOUT_TAG: u64 = 0x42_41_54_43; // "BATC"

/// Accumulates transactions and seals them into microblocks.
#[derive(Clone, Debug)]
pub struct TxBatcher {
    me: ReplicaId,
    config: MempoolConfig,
    buffer: Vec<Transaction>,
    buffer_bytes: usize,
    timer_armed: bool,
    sealed_count: u64,
}

/// Result of feeding transactions into the batcher.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Microblocks sealed by this call.
    pub sealed: Vec<Microblock>,
    /// Whether the caller should arm the batch timeout timer (a partial
    /// batch is buffered and no timer is currently armed).
    pub arm_timer: bool,
}

impl TxBatcher {
    /// Creates a batcher for replica `me`.
    pub fn new(me: ReplicaId, config: MempoolConfig) -> Self {
        TxBatcher {
            me,
            config,
            buffer: Vec::new(),
            buffer_bytes: 0,
            timer_armed: false,
            sealed_count: 0,
        }
    }

    /// Ingests client transactions, stamping their reception time, and
    /// seals as many full microblocks as the configured batch size allows.
    pub fn add(&mut self, now: SimTime, txs: Vec<Transaction>) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        for mut tx in txs {
            tx.mark_received(self.me, now);
            self.buffer_bytes += tx.wire_size();
            self.buffer.push(tx);
            if self.buffer_bytes >= self.config.batch_size_bytes {
                outcome.sealed.push(self.seal(now));
            }
        }
        if !self.buffer.is_empty() && !self.timer_armed {
            self.timer_armed = true;
            outcome.arm_timer = true;
        }
        outcome
    }

    /// Handles the batch timeout: seals whatever is buffered.
    pub fn on_timeout(&mut self, now: SimTime) -> Option<Microblock> {
        self.timer_armed = false;
        if self.buffer.is_empty() {
            return None;
        }
        Some(self.seal(now))
    }

    /// Number of buffered (unsealed) transactions.
    pub fn pending_txs(&self) -> usize {
        self.buffer.len()
    }

    /// Total microblocks sealed so far.
    pub fn sealed_count(&self) -> u64 {
        self.sealed_count
    }

    /// The configured batch timeout.
    pub fn timeout(&self) -> SimTime {
        self.config.batch_timeout
    }

    fn seal(&mut self, now: SimTime) -> Microblock {
        let txs = std::mem::take(&mut self.buffer);
        self.buffer_bytes = 0;
        self.sealed_count += 1;
        Microblock::seal(self.me, txs, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::ClientId;

    fn cfg(batch_bytes: usize) -> MempoolConfig {
        MempoolConfig {
            batch_size_bytes: batch_bytes,
            ..MempoolConfig::default()
        }
    }

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(9), i as u64, 128, 0))
            .collect()
    }

    #[test]
    fn seals_when_batch_size_reached() {
        // 128-byte payload + 40-byte overhead = 168 bytes per tx; a 1680-byte
        // batch seals after 10 transactions.
        let mut b = TxBatcher::new(ReplicaId(0), cfg(1680));
        let out = b.add(100, txs(25));
        assert_eq!(out.sealed.len(), 2);
        assert_eq!(out.sealed[0].len(), 10);
        assert_eq!(b.pending_txs(), 5);
        assert!(out.arm_timer);
        assert_eq!(b.sealed_count(), 2);
    }

    #[test]
    fn timeout_seals_partial_batch() {
        let mut b = TxBatcher::new(ReplicaId(0), cfg(1_000_000));
        let out = b.add(100, txs(3));
        assert!(out.sealed.is_empty());
        assert!(out.arm_timer);
        let mb = b.on_timeout(300).expect("partial batch sealed");
        assert_eq!(mb.len(), 3);
        assert_eq!(b.pending_txs(), 0);
        assert!(b.on_timeout(400).is_none());
    }

    #[test]
    fn reception_time_is_stamped() {
        let mut b = TxBatcher::new(ReplicaId(7), cfg(1_000_000));
        b.add(12_345, txs(1));
        let mb = b.on_timeout(20_000).unwrap();
        assert_eq!(mb.txs[0].received_at, Some(12_345));
        assert_eq!(mb.txs[0].entry_replica, Some(ReplicaId(7)));
    }

    #[test]
    fn timer_is_armed_once_per_partial_batch() {
        let mut b = TxBatcher::new(ReplicaId(0), cfg(1_000_000));
        assert!(b.add(0, txs(1)).arm_timer);
        assert!(!b.add(1, txs(1)).arm_timer, "timer already armed");
        let _ = b.on_timeout(10).unwrap();
        assert!(b.add(20, txs(1)).arm_timer, "new partial batch arms again");
    }

    #[test]
    fn empty_add_has_no_effect() {
        let mut b = TxBatcher::new(ReplicaId(0), cfg(1000));
        let out = b.add(0, vec![]);
        assert!(out.sealed.is_empty());
        assert!(!out.arm_timer);
        assert_eq!(b.pending_txs(), 0);
    }
}
