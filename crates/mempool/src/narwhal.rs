//! A Narwhal-style shared mempool: Byzantine reliable broadcast of batches
//! with availability certificates.
//!
//! Narwhal (Danezis et al., 2021) disseminates worker batches with a
//! reliable-broadcast pattern and has the consensus layer order *batch
//! certificates*.  The paper compares against Narwhal as the
//! "heavyweight" shared mempool: its availability guarantee is as strong
//! as Stratus's, but the echo/ready phases cost `O(n²)` small messages per
//! batch (Table I), which is what limits its scalability in Figure 7 when
//! primaries and workers share one machine.
//!
//! The implementation here reproduces that mechanism on our substrate:
//!
//! * the creator broadcasts the batch (`Batch`),
//! * every replica broadcasts a signed `Echo`, then — after `2f + 1`
//!   echoes — a signed `Ready`,
//! * `2f + 1` `Ready` signatures form the availability certificate that a
//!   leader embeds next to the batch id in its proposal.

use crate::api::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use crate::batcher::{TxBatcher, BATCH_TIMEOUT_TAG};
use crate::fetcher::FetchRetryState;
use crate::messages::NarwhalMsg;
use crate::simple::DEFAULT_FETCH_TIMEOUT;
use crate::store::{FillTracker, MicroblockStore, ProposalQueue};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use smp_crypto::{KeyPair, PublicKey, QuorumProof, Signature};
use smp_types::{
    Microblock, MicroblockId, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig,
    Transaction,
};
use std::collections::{HashMap, HashSet};

/// Narwhal-style reliable-broadcast mempool.
#[derive(Clone, Debug)]
pub struct NarwhalMempool {
    me: ReplicaId,
    keys: Vec<PublicKey>,
    my_key: KeyPair,
    rb_quorum: usize,
    max_refs: usize,
    batcher: TxBatcher,
    store: MicroblockStore,
    queue: ProposalQueue,
    tracker: FillTracker,
    fetcher: FetchRetryState,
    echoes: HashMap<MicroblockId, QuorumProof>,
    readies: HashMap<MicroblockId, QuorumProof>,
    ready_sent: HashSet<MicroblockId>,
    certified: HashMap<MicroblockId, QuorumProof>,
    meta: HashMap<MicroblockId, (ReplicaId, u32, SimTime)>,
    created: u64,
}

impl NarwhalMempool {
    /// Creates the mempool for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        let keypairs = KeyPair::derive_all(config.seed, config.n);
        NarwhalMempool {
            me,
            keys: keypairs.iter().map(|k| k.public).collect(),
            my_key: keypairs[me.index()],
            rb_quorum: config.consensus_quorum(),
            max_refs: config.mempool.max_refs_per_proposal,
            batcher: TxBatcher::new(me, config.mempool),
            store: MicroblockStore::new(),
            queue: ProposalQueue::new(),
            tracker: FillTracker::new(),
            fetcher: FetchRetryState::new(DEFAULT_FETCH_TIMEOUT),
            echoes: HashMap::new(),
            readies: HashMap::new(),
            ready_sent: HashSet::new(),
            certified: HashMap::new(),
            meta: HashMap::new(),
            created: 0,
        }
    }

    /// Whether `id` is certified locally.
    pub fn is_certified(&self, id: &MicroblockId) -> bool {
        self.certified.contains_key(id)
    }

    fn sign_for(&self, id: &MicroblockId) -> Signature {
        Signature::sign(&self.my_key.secret, &id.digest())
    }

    fn disseminate(&mut self, mb: Microblock, effects: &mut Effects<NarwhalMsg>) {
        self.created += 1;
        self.meta
            .insert(mb.id, (mb.creator, mb.len() as u32, mb.created_at));
        self.store.insert(mb.clone());
        // Creator's own echo counts toward the quorum.
        let own_echo = self.sign_for(&mb.id);
        self.echoes
            .entry(mb.id)
            .or_insert_with(|| QuorumProof::new(mb.id.digest()))
            .add(own_echo);
        effects.broadcast(NarwhalMsg::Batch(mb));
    }

    fn record_echo(
        &mut self,
        now: SimTime,
        id: MicroblockId,
        sig: Signature,
        effects: &mut Effects<NarwhalMsg>,
    ) {
        if !sig.verify(
            &self.keys[sig.signer as usize % self.keys.len()],
            &id.digest(),
        ) {
            return;
        }
        let proof = self
            .echoes
            .entry(id)
            .or_insert_with(|| QuorumProof::new(id.digest()));
        proof.add(sig);
        if proof.has_quorum(self.rb_quorum) && self.ready_sent.insert(id) {
            let own_ready = self.sign_for(&id);
            self.readies
                .entry(id)
                .or_insert_with(|| QuorumProof::new(id.digest()))
                .add(own_ready);
            effects.broadcast(NarwhalMsg::Ready { id, sig: own_ready });
            self.maybe_certify(now, id, effects);
        }
    }

    fn record_ready(
        &mut self,
        now: SimTime,
        id: MicroblockId,
        sig: Signature,
        effects: &mut Effects<NarwhalMsg>,
    ) {
        if !sig.verify(
            &self.keys[sig.signer as usize % self.keys.len()],
            &id.digest(),
        ) {
            return;
        }
        self.readies
            .entry(id)
            .or_insert_with(|| QuorumProof::new(id.digest()))
            .add(sig);
        self.maybe_certify(now, id, effects);
    }

    fn maybe_certify(&mut self, now: SimTime, id: MicroblockId, effects: &mut Effects<NarwhalMsg>) {
        if self.certified.contains_key(&id) {
            return;
        }
        let Some(readies) = self.readies.get(&id) else {
            return;
        };
        if !readies.has_quorum(self.rb_quorum) {
            return;
        }
        self.certified.insert(id, readies.clone());
        if self.store.contains(&id) {
            self.queue.push(id);
        }
        if let Some((creator, _, created_at)) = self.meta.get(&id) {
            if *creator == self.me {
                effects.event(MempoolEvent::MicroblockStable {
                    id,
                    stable_time: now.saturating_sub(*created_at),
                });
            }
        }
    }
}

impl Mempool for NarwhalMempool {
    type Msg = NarwhalMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        _rng: &mut SmallRng,
    ) -> Effects<NarwhalMsg> {
        let mut effects = Effects::none();
        let outcome = self.batcher.add(now, txs);
        if outcome.arm_timer {
            effects.timer(self.batcher.timeout(), BATCH_TIMEOUT_TAG);
        }
        for mb in outcome.sealed {
            self.disseminate(mb, &mut effects);
        }
        effects
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: NarwhalMsg,
        rng: &mut SmallRng,
    ) -> Effects<NarwhalMsg> {
        let mut effects = Effects::none();
        match msg {
            NarwhalMsg::Batch(mb) => {
                let id = mb.id;
                self.meta
                    .insert(id, (mb.creator, mb.len() as u32, mb.created_at));
                if self.store.insert(mb) {
                    // Echo the batch to everyone (the O(n²) step).
                    let sig = self.sign_for(&id);
                    self.echoes
                        .entry(id)
                        .or_insert_with(|| QuorumProof::new(id.digest()))
                        .add(sig);
                    effects.broadcast(NarwhalMsg::Echo { id, sig });
                    for ev in self.tracker.on_microblock(id, &self.store, now) {
                        effects.event(ev);
                    }
                    if self.certified.contains_key(&id) {
                        self.queue.push(id);
                    }
                    self.fetcher.prune(&self.store);
                }
            }
            NarwhalMsg::Echo { id, sig } => self.record_echo(now, id, sig, &mut effects),
            NarwhalMsg::Ready { id, sig } => self.record_ready(now, id, sig, &mut effects),
            NarwhalMsg::Certificate {
                id,
                creator,
                tx_count,
                proof,
            } => {
                if proof.verify(&self.keys, self.rb_quorum).is_ok() {
                    self.meta.entry(id).or_insert((creator, tx_count, now));
                    self.certified.entry(id).or_insert(proof);
                    if self.store.contains(&id) {
                        self.queue.push(id);
                    }
                }
            }
            NarwhalMsg::Fetch { ids } => {
                let mbs: Vec<Microblock> = ids
                    .iter()
                    .filter_map(|id| self.store.get(id).cloned())
                    .collect();
                if !mbs.is_empty() {
                    effects.send(from, NarwhalMsg::FetchResp { mbs });
                }
            }
            NarwhalMsg::FetchResp { mbs } => {
                for mb in mbs {
                    let id = mb.id;
                    if self.store.insert(mb) {
                        for ev in self.tracker.on_microblock(id, &self.store, now) {
                            effects.event(ev);
                        }
                    }
                }
                self.fetcher.prune(&self.store);
            }
        }
        let _ = rng;
        effects
    }

    fn on_timer(
        &mut self,
        now: SimTime,
        tag: TimerTag,
        _rng: &mut SmallRng,
    ) -> Effects<NarwhalMsg> {
        let mut effects = Effects::none();
        if tag == BATCH_TIMEOUT_TAG {
            if let Some(mb) = self.batcher.on_timeout(now) {
                self.disseminate(mb, &mut effects);
            }
        } else if FetchRetryState::owns_tag(tag) {
            if let Some(action) = self.fetcher.on_timer(tag, &self.store) {
                effects.send(action.target, NarwhalMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
            }
        }
        effects
    }

    fn make_payload(&mut self, _now: SimTime) -> Payload {
        let mut refs = Vec::new();
        while refs.len() < self.max_refs {
            let Some(id) = self.queue.pop() else { break };
            let Some(proof) = self.certified.get(&id) else {
                continue;
            };
            let Some((creator, tx_count, _)) = self.meta.get(&id) else {
                continue;
            };
            refs.push(MicroblockRef::proven(
                id,
                *creator,
                *tx_count,
                proof.clone(),
            ));
        }
        if refs.is_empty() {
            Payload::Empty
        } else {
            Payload::Refs(refs)
        }
    }

    fn on_proposal(
        &mut self,
        _now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<NarwhalMsg>) {
        let mut effects = Effects::none();
        let refs = match &proposal.payload {
            Payload::Refs(refs) => refs,
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; a whole sharded payload reaching an
            // unsharded backend must not bypass reference verification.
            Payload::Sharded(_) => {
                return (
                    FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                    effects,
                )
            }
            _ => return (FillStatus::Ready, effects),
        };
        // Every reference must carry a valid certificate.
        for r in refs {
            let Some(proof) = &r.proof else {
                return (FillStatus::Invalid("missing batch certificate"), effects);
            };
            if proof.digest != r.id.digest() || proof.verify(&self.keys, self.rb_quorum).is_err() {
                return (FillStatus::Invalid("bad batch certificate"), effects);
            }
        }
        let mut missing = Vec::new();
        let mut signer_pool: Vec<ReplicaId> = Vec::new();
        for r in refs {
            self.queue.remove(&r.id);
            if !self.store.contains(&r.id) {
                missing.push(r.id);
                if let Some(proof) = &r.proof {
                    signer_pool.extend(proof.signers().into_iter().map(ReplicaId));
                }
            }
        }
        if missing.is_empty() {
            return (FillStatus::Ready, effects);
        }
        // Certified batches are guaranteed recoverable: consensus proceeds
        // and the data is fetched in the background from the certifiers.
        self.tracker.track(proposal, missing.clone(), false);
        signer_pool.retain(|r| *r != self.me);
        signer_pool.shuffle(rng);
        if signer_pool.is_empty() {
            signer_pool.push(proposal.proposer);
        }
        let action = self.fetcher.register(missing.clone(), signer_pool);
        effects.send(action.target, NarwhalMsg::Fetch { ids: action.ids });
        effects.timer(self.fetcher.timeout, action.tag);
        effects.event(MempoolEvent::FetchIssued {
            count: missing.len() as u32,
        });
        (FillStatus::Ready, effects)
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<NarwhalMsg> {
        let mut effects = Effects::none();
        if let Payload::Refs(refs) = &proposal.payload {
            for r in refs {
                self.queue.remove(&r.id);
            }
        }
        for ev in self.tracker.on_commit(proposal, &self.store, now) {
            effects.event(ev);
        }
        effects
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.batcher.pending_txs(),
            stored_microblocks: self.store.len(),
            proposable_microblocks: self.queue.len(),
            created_microblocks: self.created,
            forwarded_microblocks: 0,
            fetches_issued: self.fetcher.issued(),
        }
    }
}

#[cfg(test)]
mod tests {
    // The message-routing loops below use the index both to address the
    // node array and as the replica identity.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use rand::SeedableRng;
    use smp_types::{BlockId, ClientId, MempoolConfig, View};

    fn config() -> SystemConfig {
        SystemConfig::new(4).with_mempool(MempoolConfig {
            batch_size_bytes: 168 * 4,
            ..MempoolConfig::default()
        })
    }

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(7), i as u64, 128, 0))
            .collect()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    /// Builds a 4-replica network of Narwhal mempools and runs reliable
    /// broadcast of one batch from replica 0 to completion, returning the
    /// mempools and the certified batch id.
    fn certify_one_batch() -> (Vec<NarwhalMempool>, MicroblockId) {
        let cfg = config();
        let mut nodes: Vec<NarwhalMempool> = (0..4)
            .map(|i| NarwhalMempool::new(&cfg, ReplicaId(i)))
            .collect();
        let mut r = rng();
        let fx = nodes[0].on_client_txs(0, txs(4), &mut r);
        let batch = fx
            .msgs
            .iter()
            .find_map(|(_, m)| match m {
                NarwhalMsg::Batch(mb) => Some(mb.clone()),
                _ => None,
            })
            .expect("batch broadcast");
        let id = batch.id;
        // Deliver the batch to 1..3, collect echoes.
        let mut echoes = Vec::new();
        for i in 1..4usize {
            let fx =
                nodes[i].on_message(10, ReplicaId(0), NarwhalMsg::Batch(batch.clone()), &mut r);
            for (_, m) in fx.msgs {
                if matches!(m, NarwhalMsg::Echo { .. }) {
                    echoes.push((ReplicaId(i as u32), m));
                }
            }
        }
        // Deliver every echo to every node, collect readies.
        let mut readies = Vec::new();
        for (from, echo) in &echoes {
            for i in 0..4usize {
                let fx = nodes[i].on_message(20, *from, echo.clone(), &mut r);
                for (_, m) in fx.msgs {
                    if matches!(m, NarwhalMsg::Ready { .. }) {
                        readies.push((ReplicaId(i as u32), m));
                    }
                }
            }
        }
        for (from, ready) in &readies {
            for i in 0..4usize {
                let _ = nodes[i].on_message(30, *from, ready.clone(), &mut r);
            }
        }
        (nodes, id)
    }

    #[test]
    fn reliable_broadcast_certifies_batches() {
        let (nodes, id) = certify_one_batch();
        for (i, node) in nodes.iter().enumerate() {
            assert!(node.is_certified(&id), "replica {i} did not certify");
        }
    }

    #[test]
    fn certified_batches_are_proposed_with_proofs() {
        let (mut nodes, _) = certify_one_batch();
        let payload = nodes[1].make_payload(100);
        match &payload {
            Payload::Refs(refs) => {
                assert_eq!(refs.len(), 1);
                assert!(refs[0].proof.is_some());
            }
            other => panic!("unexpected payload {other:?}"),
        }
        // A proposal carrying that payload passes verification everywhere
        // and does not block consensus.
        let p = Proposal::new(View(5), 1, BlockId::GENESIS, ReplicaId(1), payload, true);
        let mut r = rng();
        let (status, _) = nodes[2].on_proposal(200, &p, &mut r);
        assert_eq!(status, FillStatus::Ready);
    }

    #[test]
    fn bad_certificates_are_rejected() {
        let (mut nodes, id) = certify_one_batch();
        // Build a ref with a truncated (sub-quorum) proof.
        let weak = QuorumProof::new(id.digest());
        let p = Proposal::new(
            View(5),
            1,
            BlockId::GENESIS,
            ReplicaId(1),
            Payload::Refs(vec![MicroblockRef::proven(id, ReplicaId(0), 4, weak)]),
            true,
        );
        let mut r = rng();
        let (status, _) = nodes[2].on_proposal(200, &p, &mut r);
        assert!(matches!(status, FillStatus::Invalid(_)));
    }

    #[test]
    fn missing_certified_data_is_fetched_in_background() {
        let (mut nodes, id) = certify_one_batch();
        // Node 3 pretends it never stored the batch data.
        let payload = nodes[1].make_payload(100);
        let p = Proposal::new(View(5), 1, BlockId::GENESIS, ReplicaId(1), payload, true);
        let mut fresh = NarwhalMempool::new(&config(), ReplicaId(3));
        // Give the fresh node the certificate knowledge only.
        let cert = nodes[0].certified.get(&id).unwrap().clone();
        let mut r = rng();
        let _ = fresh.on_message(
            50,
            ReplicaId(0),
            NarwhalMsg::Certificate {
                id,
                creator: ReplicaId(0),
                tx_count: 4,
                proof: cert,
            },
            &mut r,
        );
        let (status, fx) = fresh.on_proposal(60, &p, &mut r);
        assert_eq!(status, FillStatus::Ready, "consensus is not blocked");
        assert!(fx
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, NarwhalMsg::Fetch { .. })));
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, MempoolEvent::FetchIssued { .. })));
    }

    #[test]
    fn creator_observes_stability() {
        let cfg = config();
        let mut nodes: Vec<NarwhalMempool> = (0..4)
            .map(|i| NarwhalMempool::new(&cfg, ReplicaId(i)))
            .collect();
        let mut r = rng();
        let fx = nodes[0].on_client_txs(0, txs(4), &mut r);
        let batch = match &fx.msgs[0].1 {
            NarwhalMsg::Batch(mb) => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // Deliver batch, echoes and readies back to node 0.
        let mut stable_seen = false;
        let mut pending: Vec<(ReplicaId, NarwhalMsg)> = Vec::new();
        for i in 1..4usize {
            let fx =
                nodes[i].on_message(10, ReplicaId(0), NarwhalMsg::Batch(batch.clone()), &mut r);
            pending.extend(fx.msgs.into_iter().map(|(_, m)| (ReplicaId(i as u32), m)));
        }
        // Two message rounds are enough to certify at the creator.
        for _ in 0..2 {
            let mut next = Vec::new();
            for (from, m) in pending.drain(..) {
                for target in 0..4usize {
                    let fx = nodes[target].on_message(20, from, m.clone(), &mut r);
                    stable_seen |= fx
                        .events
                        .iter()
                        .any(|e| matches!(e, MempoolEvent::MicroblockStable { .. }));
                    if target != from.index() {
                        next.extend(
                            fx.msgs
                                .into_iter()
                                .map(|(_, msg)| (ReplicaId(target as u32), msg)),
                        );
                    }
                }
            }
            pending = next;
        }
        assert!(
            stable_seen,
            "creator should observe stability after certification"
        );
    }
}
