//! Shared-mempool abstraction and baseline implementations.
//!
//! This crate defines the mempool interface used by every protocol in the
//! reproduction ([`Mempool`], mirroring the paper's `ReceiveTx` /
//! `ShareTx` / `MakeProposal` / `FillProposal` primitives) plus the
//! baseline implementations the paper evaluates against:
//!
//! * [`NativeMempool`] — no sharing at all; the leader ships full
//!   transaction data in its proposals (N-HS / N-PBFT).
//! * [`SimpleSmp`] — best-effort broadcast of microblocks with
//!   fetch-from-the-leader recovery (SMP-HS).
//! * [`GossipSmp`] — epidemic dissemination with a configurable fan-out
//!   (SMP-HS-G).
//! * [`NarwhalMempool`] — reliable-broadcast dissemination with
//!   availability certificates (the Narwhal baseline).
//! * [`DagMempool`] — Mysticeti-style DAG dissemination where acks and
//!   votes piggyback on the blocks themselves (D-HS / D-HS-F).
//!
//! The paper's own contribution — Stratus, with provably available
//! broadcast and distributed load balancing — lives in the `stratus`
//! crate and implements the same [`Mempool`] trait.

pub mod api;
pub mod batcher;
pub mod dag;
pub mod fetcher;
pub mod gossip;
pub mod messages;
pub mod narwhal;
pub mod native;
pub mod simple;
pub mod store;

pub use api::{
    Dest, Effects, FillStatus, LoadSnapshot, Mempool, MempoolEvent, MempoolStats, TimerTag,
};
pub use batcher::{BatchOutcome, TxBatcher, BATCH_TIMEOUT_TAG};
pub use dag::{DagAck, DagBlock, DagMempool, DagMsg, DagParentRef};
pub use fetcher::{FetchAction, FetchRetryState, FETCH_TAG_BASE};
pub use gossip::GossipSmp;
pub use messages::{NarwhalMsg, SmpMsg};
pub use narwhal::NarwhalMempool;
pub use native::{NativeMempool, NativeMsg};
pub use simple::{SimpleSmp, DEFAULT_FETCH_TIMEOUT};
pub use store::{FillTracker, MicroblockStore, ProposalQueue};
