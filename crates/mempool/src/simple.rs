//! The simple shared mempool (SMP-HS in the paper): best-effort broadcast
//! of microblocks plus fetch-from-the-leader for anything missing.
//!
//! This is the baseline Stratus is compared against in Figures 7–9.  Its
//! weakness (Problem-I, Section III-E) is that a proposal can reference
//! microblocks a replica never received — the replica must then fetch them
//! from the leader *before consensus can make progress*, which congests
//! the leader and triggers view changes under asynchrony or Byzantine
//! senders.

use crate::api::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use crate::batcher::{TxBatcher, BATCH_TIMEOUT_TAG};
use crate::fetcher::FetchRetryState;
use crate::messages::SmpMsg;
use crate::store::{FillTracker, MicroblockStore, ProposalQueue};
use rand::rngs::SmallRng;
use smp_telemetry::Telemetry;
use smp_types::{
    Microblock, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig, Transaction,
};

/// Default fetch retry timeout (the paper's `δ`).
pub const DEFAULT_FETCH_TIMEOUT: SimTime = 500 * smp_types::MICROS_PER_MS;

/// Best-effort shared mempool.
#[derive(Clone, Debug)]
pub struct SimpleSmp {
    me: ReplicaId,
    max_refs: usize,
    batcher: TxBatcher,
    store: MicroblockStore,
    queue: ProposalQueue,
    tracker: FillTracker,
    fetcher: FetchRetryState,
    created: u64,
    telemetry: Telemetry,
}

impl SimpleSmp {
    /// Creates the mempool for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        SimpleSmp {
            me,
            max_refs: config.mempool.max_refs_per_proposal,
            batcher: TxBatcher::new(me, config.mempool),
            store: MicroblockStore::new(),
            queue: ProposalQueue::new(),
            tracker: FillTracker::new(),
            fetcher: FetchRetryState::new(DEFAULT_FETCH_TIMEOUT),
            created: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Access to the microblock store (used by tests and the replica).
    pub fn store(&self) -> &MicroblockStore {
        &self.store
    }

    /// The replica this mempool belongs to.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    fn disseminate(&mut self, mb: Microblock, effects: &mut Effects<SmpMsg>) {
        self.created += 1;
        self.telemetry.counter_inc("batcher.sealed");
        self.telemetry
            .counter_add("batcher.sealed_txs", mb.len() as u64);
        self.queue.push(mb.id);
        self.store.insert(mb.clone());
        effects.broadcast(SmpMsg::Microblock(mb));
    }

    fn ingest_microblock(&mut self, now: SimTime, mb: Microblock, effects: &mut Effects<SmpMsg>) {
        let id = mb.id;
        if !self.store.insert(mb) {
            return;
        }
        self.telemetry.counter_inc("dissemination.mb_in");
        // Newly learned microblocks become proposable by this replica too.
        self.queue.push(id);
        for ev in self.tracker.on_microblock(id, &self.store, now) {
            effects.event(ev);
        }
        self.fetcher.prune(&self.store);
    }
}

impl Mempool for SimpleSmp {
    type Msg = SmpMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        _rng: &mut SmallRng,
    ) -> Effects<SmpMsg> {
        let _span = self.telemetry.span_at("batcher.add", now);
        let mut effects = Effects::none();
        let outcome = self.batcher.add(now, txs);
        if outcome.arm_timer {
            effects.timer(self.batcher.timeout(), BATCH_TIMEOUT_TAG);
        }
        for mb in outcome.sealed {
            self.disseminate(mb, &mut effects);
        }
        effects
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: SmpMsg,
        _rng: &mut SmallRng,
    ) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        match msg {
            SmpMsg::Microblock(mb) | SmpMsg::Gossip { mb, .. } => {
                self.ingest_microblock(now, mb, &mut effects);
            }
            SmpMsg::Fetch { ids } => {
                let mbs: Vec<Microblock> = ids
                    .iter()
                    .filter_map(|id| self.store.get(id).cloned())
                    .collect();
                if !mbs.is_empty() {
                    effects.send(from, SmpMsg::FetchResp { mbs });
                }
            }
            SmpMsg::FetchResp { mbs } => {
                for mb in mbs {
                    let id = mb.id;
                    if self.store.insert(mb) {
                        for ev in self.tracker.on_microblock(id, &self.store, now) {
                            effects.event(ev);
                        }
                    }
                }
                self.fetcher.prune(&self.store);
            }
        }
        effects
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, _rng: &mut SmallRng) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        if tag == BATCH_TIMEOUT_TAG {
            if let Some(mb) = self.batcher.on_timeout(now) {
                self.disseminate(mb, &mut effects);
            }
        } else if FetchRetryState::owns_tag(tag) {
            if let Some(action) = self.fetcher.on_timer(tag, &self.store) {
                self.telemetry.counter_inc("fetcher.retry");
                effects.send(action.target, SmpMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
            }
        }
        effects
    }

    fn make_payload(&mut self, _now: SimTime) -> Payload {
        let mut refs = Vec::new();
        while refs.len() < self.max_refs {
            let Some(id) = self.queue.pop() else { break };
            let Some(mb) = self.store.get(&id) else {
                continue;
            };
            refs.push(MicroblockRef::unproven(id, mb.creator, mb.len() as u32));
        }
        if refs.is_empty() {
            Payload::Empty
        } else {
            Payload::Refs(refs)
        }
    }

    fn on_proposal(
        &mut self,
        _now: SimTime,
        proposal: &Proposal,
        _rng: &mut SmallRng,
    ) -> (FillStatus, Effects<SmpMsg>) {
        let mut effects = Effects::none();
        let refs = match &proposal.payload {
            Payload::Refs(refs) => refs,
            Payload::Inline(_) | Payload::Empty => return (FillStatus::Ready, effects),
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; reaching here is a layering error.
            Payload::Sharded(_) => {
                return (
                    FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                    effects,
                )
            }
        };
        let mut missing = Vec::new();
        for r in refs {
            // Referenced microblocks are no longer proposable by us.
            self.queue.remove(&r.id);
            if !self.store.contains(&r.id) {
                missing.push(r.id);
            }
        }
        if missing.is_empty() {
            return (FillStatus::Ready, effects);
        }
        // Best-effort SMP: consensus is blocked; fetch everything from the
        // leader that proposed it (Section III-E, Problem-I).
        self.telemetry
            .counter_add("fetcher.fetch", missing.len() as u64);
        self.tracker.track(proposal, missing.clone(), true);
        let action = self
            .fetcher
            .register(missing.clone(), vec![proposal.proposer]);
        effects.send(action.target, SmpMsg::Fetch { ids: action.ids });
        effects.timer(self.fetcher.timeout, action.tag);
        effects.event(MempoolEvent::FetchIssued {
            count: missing.len() as u32,
        });
        (FillStatus::MustWait(missing), effects)
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<SmpMsg> {
        let mut effects = Effects::none();
        if let Payload::Refs(refs) = &proposal.payload {
            for r in refs {
                self.queue.remove(&r.id);
            }
        }
        for ev in self.tracker.on_commit(proposal, &self.store, now) {
            effects.event(ev);
        }
        effects
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.batcher.pending_txs(),
            stored_microblocks: self.store.len(),
            proposable_microblocks: self.queue.len(),
            created_microblocks: self.created,
            forwarded_microblocks: 0,
            fetches_issued: self.fetcher.issued(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smp_types::{BlockId, ClientId, MempoolConfig, View};

    fn config() -> SystemConfig {
        SystemConfig::new(4).with_mempool(MempoolConfig {
            batch_size_bytes: 168 * 4, // 4 transactions of 128 B payload
            ..MempoolConfig::default()
        })
    }

    fn txs(base: u64, n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(9), base + i as u64, 128, 0))
            .collect()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn sealed_microblocks_are_broadcast_and_queued() {
        let mut mp = SimpleSmp::new(&config(), ReplicaId(0));
        let fx = mp.on_client_txs(0, txs(0, 4), &mut rng());
        assert_eq!(fx.msgs.len(), 1, "one broadcast for the sealed batch");
        assert!(matches!(fx.msgs[0].1, SmpMsg::Microblock(_)));
        let payload = mp.make_payload(1);
        assert_eq!(payload.ref_count(), 1);
    }

    #[test]
    fn partial_batch_is_sealed_on_timeout() {
        let mut mp = SimpleSmp::new(&config(), ReplicaId(0));
        let fx = mp.on_client_txs(0, txs(0, 2), &mut rng());
        assert!(fx.msgs.is_empty());
        assert_eq!(fx.timers, vec![(200_000, BATCH_TIMEOUT_TAG)]);
        let fx = mp.on_timer(200_000, BATCH_TIMEOUT_TAG, &mut rng());
        assert_eq!(fx.msgs.len(), 1);
    }

    #[test]
    fn received_microblocks_become_proposable() {
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let mut b = SimpleSmp::new(&config(), ReplicaId(1));
        let fx = a.on_client_txs(0, txs(0, 4), &mut rng());
        let mb = match &fx.msgs[0].1 {
            SmpMsg::Microblock(mb) => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        b.on_message(10, ReplicaId(0), SmpMsg::Microblock(mb), &mut rng());
        assert_eq!(b.make_payload(20).ref_count(), 1);
    }

    #[test]
    fn missing_refs_block_consensus_and_fetch_from_leader() {
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let mut b = SimpleSmp::new(&config(), ReplicaId(1));
        // Replica 0 seals a microblock that replica 1 never receives.
        let _ = a.on_client_txs(0, txs(0, 4), &mut rng());
        let payload = a.make_payload(1);
        let proposal = Proposal::new(View(3), 1, BlockId::GENESIS, ReplicaId(0), payload, true);
        let (status, fx) = b.on_proposal(10, &proposal, &mut rng());
        match status {
            FillStatus::MustWait(ids) => assert_eq!(ids.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        // Fetch goes to the proposer (leader).
        assert!(fx.msgs.iter().any(|(dest, msg)| {
            matches!(msg, SmpMsg::Fetch { .. }) && *dest == crate::api::Dest::One(ReplicaId(0))
        }));
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, MempoolEvent::FetchIssued { count: 1 })));
    }

    #[test]
    fn fetch_response_unblocks_proposal() {
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let mut b = SimpleSmp::new(&config(), ReplicaId(1));
        let fx = a.on_client_txs(0, txs(0, 4), &mut rng());
        let mb = match &fx.msgs[0].1 {
            SmpMsg::Microblock(mb) => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let proposal = Proposal::new(
            View(3),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            a.make_payload(1),
            true,
        );
        let (_, _) = b.on_proposal(10, &proposal, &mut rng());
        // The leader answers the fetch.
        let fetch_fx = a.on_message(
            20,
            ReplicaId(1),
            SmpMsg::Fetch { ids: vec![mb.id] },
            &mut rng(),
        );
        let resp = fetch_fx.msgs[0].1.clone();
        let fx = b.on_message(30, ReplicaId(0), resp, &mut rng());
        assert!(fx.events.iter().any(
            |e| matches!(e, MempoolEvent::ProposalReady { proposal: p } if *p == proposal.id)
        ));
    }

    #[test]
    fn fetch_timer_retries_until_satisfied() {
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let mut b = SimpleSmp::new(&config(), ReplicaId(1));
        let _ = a.on_client_txs(0, txs(0, 4), &mut rng());
        let proposal = Proposal::new(
            View(3),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            a.make_payload(1),
            true,
        );
        let (_, fx) = b.on_proposal(10, &proposal, &mut rng());
        let (_, tag) = fx.timers[0];
        // Timer fires with the microblock still missing: a retry is issued.
        let retry_fx = b.on_timer(10 + DEFAULT_FETCH_TIMEOUT, tag, &mut rng());
        assert!(retry_fx
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, SmpMsg::Fetch { .. })));
        assert_eq!(b.stats().fetches_issued, 2);
    }

    #[test]
    fn commit_executes_locally_available_proposals() {
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let _ = a.on_client_txs(5, txs(0, 4), &mut rng());
        let proposal = Proposal::new(
            View(3),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            a.make_payload(1),
            true,
        );
        let fx = a.on_commit(50, &proposal);
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, MempoolEvent::Executed { tx_count: 4, .. })));
    }

    #[test]
    fn duplicate_microblocks_are_ignored() {
        let mut b = SimpleSmp::new(&config(), ReplicaId(1));
        let mut a = SimpleSmp::new(&config(), ReplicaId(0));
        let fx = a.on_client_txs(0, txs(0, 4), &mut rng());
        let mb = match &fx.msgs[0].1 {
            SmpMsg::Microblock(mb) => mb.clone(),
            other => panic!("unexpected {other:?}"),
        };
        b.on_message(1, ReplicaId(0), SmpMsg::Microblock(mb.clone()), &mut rng());
        b.on_message(2, ReplicaId(0), SmpMsg::Microblock(mb), &mut rng());
        assert_eq!(b.stats().stored_microblocks, 1);
        assert_eq!(b.stats().proposable_microblocks, 1);
    }
}
