//! `smp-dag`: a Mysticeti-style DAG mempool (the D-HS rows).
//!
//! The paper's Table II never runs the DAG dissemination family that
//! superseded Narwhal-style reliable broadcast.  This backend fills that
//! gap: every replica's batches form a DAG built by consistent broadcast
//! of *blocks*.  A block carries at most one freshly sealed batch (so
//! transaction bodies cross the wire once), references the latest known
//! blocks of at least `2f + 1` peers, and piggybacks signed acks for
//! every batch the emitter delivered since its previous block — there are
//! no separate vote messages.  Commit sets are derived deterministically
//! from DAG *support patterns*: a batch acknowledged by `2f + 1` distinct
//! replicas is supported, and the accumulated ack signatures form a
//! Narwhal-strength availability certificate as a by-product.
//!
//! Two modes share the same DAG ([`DagMode`]):
//!
//! * **Certified** — a batch becomes proposable only once its support
//!   pattern yields a certificate, which is embedded in the proposal
//!   reference and re-verified by every replica (Narwhal-equivalent
//!   guarantees at `O(n)` broadcasts per batch instead of the echo/ready
//!   `O(n²)`).
//! * **FastPath** — a batch is proposable on first delivery; references
//!   are unproven and replicas that miss the data must fetch it before
//!   consensus proceeds (one network hop cheaper, SMP-HS-strength
//!   availability).
//!
//! Block emission is purely message-driven and quiescent: a replica emits
//! a new block only when it holds an unsent batch or unsent acks, and a
//! non-genesis block requires the `2f + 1` parent frontier, so an idle
//! network emits nothing.

use crate::api::{Effects, FillStatus, Mempool, MempoolEvent, MempoolStats, TimerTag};
use crate::batcher::{TxBatcher, BATCH_TIMEOUT_TAG};
use crate::fetcher::FetchRetryState;
use crate::simple::DEFAULT_FETCH_TIMEOUT;
use crate::store::{FillTracker, MicroblockStore, ProposalQueue};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use smp_crypto::{Digest, Hasher, KeyPair, PublicKey, QuorumProof, SecretKey, Signature};
use smp_telemetry::Telemetry;
use smp_types::{
    wire, DagMode, Microblock, MicroblockId, MicroblockRef, Payload, Proposal, ReplicaId, SimTime,
    SystemConfig, Transaction, WireSize,
};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Reference to the latest known block of a peer (DAG edge).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagParentRef {
    /// Creator of the referenced block.
    pub creator: ReplicaId,
    /// Round of the referenced block.
    pub round: u64,
}

/// A piggybacked acknowledgement: the emitter's signature over a batch id
/// it has delivered.  `2f + 1` distinct acks certify the batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagAck {
    /// Acknowledged batch.
    pub id: MicroblockId,
    /// Emitter's signature over the batch id.
    pub sig: Signature,
}

/// One vertex of the mempool DAG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DagBlock {
    /// Emitting replica.
    pub creator: ReplicaId,
    /// Emission round (strictly increasing per creator; `0` is the
    /// genesis round and the only round allowed fewer than `2f + 1`
    /// parents).
    pub round: u64,
    /// Per-creator emission index: `0, 1, 2, ...` with no gaps.  Rounds
    /// may skip numbers (a block's round tracks the whole frontier), so
    /// `seq` is what lets a receiver reconstruct the creator's exact
    /// emission order regardless of delivery reordering.
    pub seq: u64,
    /// The creator's freshly sealed batch, if one was pending (bodies are
    /// shared exactly once, inside the block that introduces them).
    pub batch: Option<Microblock>,
    /// Latest known blocks of the peers (`>= 2f + 1` entries for every
    /// non-genesis block).
    pub parents: Vec<DagParentRef>,
    /// Acks piggybacked on this block (one per batch delivered since the
    /// creator's previous block, plus a self-ack for `batch`).
    pub acks: Vec<DagAck>,
    /// Creator's signature over [`DagBlock::digest`].
    pub sig: Signature,
}

impl DagBlock {
    /// Builds a block and signs its digest.
    #[allow(clippy::too_many_arguments)]
    pub fn signed(
        creator: ReplicaId,
        round: u64,
        seq: u64,
        batch: Option<Microblock>,
        parents: Vec<DagParentRef>,
        acks: Vec<DagAck>,
        secret: &SecretKey,
    ) -> Self {
        let mut block = DagBlock {
            creator,
            round,
            seq,
            batch,
            parents,
            acks,
            sig: Signature { signer: 0, tag: 0 },
        };
        block.sig = Signature::sign(secret, &block.digest());
        block
    }

    /// Content digest covering everything except the signature itself.
    pub fn digest(&self) -> Digest {
        let mut h = Hasher::with_domain(0x4441_4742); // "DAGB"
        h.update_u64(self.creator.0 as u64);
        h.update_u64(self.round);
        h.update_u64(self.seq);
        match &self.batch {
            Some(mb) => {
                h.update_u64(1);
                h.update_digest(&mb.id.0);
            }
            None => h.update_u64(0),
        }
        h.update_u64(self.parents.len() as u64);
        for p in &self.parents {
            h.update_u64(p.creator.0 as u64);
            h.update_u64(p.round);
        }
        h.update_u64(self.acks.len() as u64);
        for a in &self.acks {
            h.update_digest(&a.id.0);
            h.update_u64(a.sig.signer as u64);
            h.update_u64(a.sig.tag);
        }
        h.finalize()
    }
}

/// Messages exchanged by the DAG mempool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DagMsg {
    /// Consistent broadcast of a DAG block.
    Block(DagBlock),
    /// Request for missing batches.
    Fetch {
        /// Identifiers being requested.
        ids: Vec<MicroblockId>,
    },
    /// Response with the requested batches.
    FetchResp {
        /// The returned batches.
        mbs: Vec<Microblock>,
    },
}

impl DagMsg {
    /// Stable label for bandwidth accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            DagMsg::Block(b) if b.batch.is_some() => "microblock",
            DagMsg::Block(_) => "dag-ack",
            DagMsg::Fetch { .. } => "fetch-req",
            DagMsg::FetchResp { .. } => "fetch-resp",
        }
    }
}

impl WireSize for DagMsg {
    fn wire_size(&self) -> usize {
        match self {
            // Header (creator, round, seq, counts, signature) + one edge
            // per parent + (id, signature) per ack + the batch body.
            DagMsg::Block(b) => 40 + b.parents.len() * 12 + b.acks.len() * 44 + b.batch.wire_size(),
            DagMsg::Fetch { ids } => wire::FETCH_REQUEST_BYTES + ids.len() * 32,
            DagMsg::FetchResp { mbs } => 16 + mbs.iter().map(WireSize::wire_size).sum::<usize>(),
        }
    }
}

/// Mysticeti-style DAG mempool.
#[derive(Clone, Debug)]
pub struct DagMempool {
    me: ReplicaId,
    keys: Vec<PublicKey>,
    my_key: KeyPair,
    quorum: usize,
    mode: DagMode,
    max_refs: usize,
    batcher: TxBatcher,
    store: MicroblockStore,
    queue: ProposalQueue,
    tracker: FillTracker,
    fetcher: FetchRetryState,
    /// Sealed batches waiting for a block slot.
    pending_batches: VecDeque<Microblock>,
    /// Delivered batches to ack on the next emitted block (insertion
    /// order; each id enters at most once, guarded by `my_acked`).
    unacked: Vec<MicroblockId>,
    my_acked: HashSet<MicroblockId>,
    /// Per-creator emission ledgers.  Batches enter the proposal queue in
    /// their creator's emission (`seq`) order, never in arrival or
    /// certification-completion order: both transports reorder messages
    /// (the simulator adds per-message propagation jitter, and ack
    /// groupings differ between runtimes), so `seq` is the only order
    /// every replica can reconstruct identically — this is what keeps
    /// the socket commit sequence byte-identical to the simulator's.
    ledgers: HashMap<ReplicaId, CreatorLedger>,
    /// Accumulating support patterns (ack signatures per batch).
    support: HashMap<MicroblockId, QuorumProof>,
    /// Batches whose support pattern reached `2f + 1`.
    certified: HashMap<MicroblockId, QuorumProof>,
    meta: HashMap<MicroblockId, (ReplicaId, u32, SimTime)>,
    /// Digests of accepted blocks (duplicate suppression that stays
    /// correct across crash-restart re-emissions).
    seen: HashSet<Digest>,
    /// Latest known round per creator — the parent frontier.  A `BTreeMap`
    /// so parent lists are deterministically ordered.
    latest: BTreeMap<ReplicaId, u64>,
    emitted: bool,
    /// Next `seq` to stamp on an own emission.
    my_seq: u64,
    created: u64,
    blocks_out: u64,
    telemetry: Telemetry,
}

/// Receiver-side view of one creator's emission sequence: blocks are noted
/// by `seq`, buffered while out of order, and their batches released to
/// the proposal queue strictly in emission order.
#[derive(Clone, Debug, Default)]
struct CreatorLedger {
    /// Next emission index expected from this creator.
    next: u64,
    /// Blocks seen ahead of `next`: `seq -> batch id` (`None` for
    /// batch-less ack blocks).
    ahead: BTreeMap<u64, Option<MicroblockId>>,
    /// Batch ids in emission order, awaiting release eligibility.
    ready: VecDeque<MicroblockId>,
}

impl DagMempool {
    /// Creates the mempool for replica `me` with the mode configured in
    /// `config.dag_mode`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        Self::with_mode(config, me, config.dag_mode)
    }

    /// Creates the mempool with an explicit commit-derivation mode.
    pub fn with_mode(config: &SystemConfig, me: ReplicaId, mode: DagMode) -> Self {
        let keypairs = KeyPair::derive_all(config.seed, config.n);
        DagMempool {
            me,
            keys: keypairs.iter().map(|k| k.public).collect(),
            my_key: keypairs[me.index()],
            quorum: config.consensus_quorum(),
            mode,
            max_refs: config.mempool.max_refs_per_proposal,
            batcher: TxBatcher::new(me, config.mempool),
            store: MicroblockStore::new(),
            queue: ProposalQueue::new(),
            tracker: FillTracker::new(),
            fetcher: FetchRetryState::new(DEFAULT_FETCH_TIMEOUT),
            pending_batches: VecDeque::new(),
            unacked: Vec::new(),
            ledgers: HashMap::new(),
            my_seq: 0,
            my_acked: HashSet::new(),
            support: HashMap::new(),
            certified: HashMap::new(),
            meta: HashMap::new(),
            seen: HashSet::new(),
            latest: BTreeMap::new(),
            emitted: false,
            created: 0,
            blocks_out: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The configured commit-derivation mode.
    pub fn mode(&self) -> DagMode {
        self.mode
    }

    /// Whether `id`'s support pattern reached `2f + 1` locally.
    pub fn is_certified(&self, id: &MicroblockId) -> bool {
        self.certified.contains_key(id)
    }

    /// The round of this replica's latest emitted block.
    pub fn current_round(&self) -> Option<u64> {
        self.latest.get(&self.me).copied()
    }

    /// Notes one accepted block in its creator's ledger and advances the
    /// in-order prefix.  A `seq` below the cursor (a crash-restarted
    /// creator re-emitting from zero) is ignored here: its batches still
    /// store, certify, and commit through peers' proposals — they just
    /// stop entering this replica's own proposal queue.
    fn note_block(&mut self, creator: ReplicaId, seq: u64, batch: Option<MicroblockId>) {
        let ledger = self.ledgers.entry(creator).or_default();
        if seq < ledger.next {
            return;
        }
        ledger.ahead.insert(seq, batch);
        while let Some(batch) = ledger.ahead.remove(&ledger.next) {
            if let Some(id) = batch {
                ledger.ready.push_back(id);
            }
            ledger.next += 1;
        }
        self.release_in_order(creator);
    }

    /// Moves the creator's eligible batches from its ledger into the
    /// proposal queue, strictly in emission order.  Eligibility is
    /// mode-dependent: Certified waits for the support certificate,
    /// FastPath only for the stored body.
    fn release_in_order(&mut self, creator: ReplicaId) {
        let Some(ledger) = self.ledgers.get_mut(&creator) else {
            return;
        };
        while let Some(id) = ledger.ready.front() {
            if !self.store.contains(id) {
                break;
            }
            if self.mode == DagMode::Certified && !self.certified.contains_key(id) {
                break;
            }
            let id = *id;
            ledger.ready.pop_front();
            self.queue.push(id);
        }
    }

    fn ingest_payload(&mut self, now: SimTime, mb: Microblock, effects: &mut Effects<DagMsg>) {
        let id = mb.id;
        self.meta
            .entry(id)
            .or_insert((mb.creator, mb.len() as u32, mb.created_at));
        if !self.store.insert(mb) {
            return;
        }
        self.telemetry.counter_inc("dag.payload_in");
        if self.my_acked.insert(id) {
            self.unacked.push(id);
        }
        for ev in self.tracker.on_microblock(id, &self.store, now) {
            effects.event(ev);
        }
        self.fetcher.prune(&self.store);
    }

    fn record_ack(
        &mut self,
        now: SimTime,
        id: MicroblockId,
        sig: Signature,
        effects: &mut Effects<DagMsg>,
    ) {
        if !sig.verify(
            &self.keys[sig.signer as usize % self.keys.len()],
            &id.digest(),
        ) {
            return;
        }
        if self.certified.contains_key(&id) {
            return;
        }
        let proof = self
            .support
            .entry(id)
            .or_insert_with(|| QuorumProof::new(id.digest()));
        proof.add(sig);
        if !proof.has_quorum(self.quorum) {
            return;
        }
        let proof = self.support.remove(&id).expect("entry inserted above");
        self.certified.insert(id, proof);
        self.telemetry.counter_inc("dag.certified");
        if self.mode == DagMode::Certified {
            if let Some((creator, _, _)) = self.meta.get(&id) {
                let creator = *creator;
                self.release_in_order(creator);
            }
        }
        if let Some((creator, _, created_at)) = self.meta.get(&id) {
            if *creator == self.me {
                let latency = now.saturating_sub(*created_at);
                self.telemetry.observe_us("dag.commit.latency", latency);
                effects.event(MempoolEvent::MicroblockStable {
                    id,
                    stable_time: latency,
                });
            }
        }
    }

    fn accept_block(&mut self, now: SimTime, block: DagBlock, effects: &mut Effects<DagMsg>) {
        let digest = block.digest();
        if self.seen.contains(&digest) {
            return;
        }
        if !block
            .sig
            .verify(&self.keys[block.creator.index() % self.keys.len()], &digest)
        {
            return;
        }
        // Only the genesis round may reference fewer than 2f + 1 parents.
        if block.round > 0 && block.parents.len() < self.quorum {
            return;
        }
        // A block may only introduce its own creator's batch.
        if let Some(mb) = &block.batch {
            if mb.creator != block.creator {
                return;
            }
        }
        self.seen.insert(digest);
        let frontier = self.latest.entry(block.creator).or_insert(block.round);
        *frontier = (*frontier).max(block.round);
        self.telemetry.counter_inc("dag.block_in");
        let batch_id = block.batch.as_ref().map(|mb| mb.id);
        if let Some(mb) = block.batch {
            self.ingest_payload(now, mb, effects);
        }
        self.note_block(block.creator, block.seq, batch_id);
        for ack in block.acks {
            self.record_ack(now, ack.id, ack.sig, effects);
        }
        self.maybe_emit(now, effects);
    }

    /// Emits blocks while there is something to say (an unsent batch or
    /// unsent acks) and the DAG frontier permits a new round.
    fn maybe_emit(&mut self, now: SimTime, effects: &mut Effects<DagMsg>) {
        loop {
            if self.pending_batches.is_empty() && self.unacked.is_empty() {
                return;
            }
            let round = if self.latest.len() >= self.quorum {
                1 + self
                    .latest
                    .values()
                    .copied()
                    .max()
                    .expect("frontier is non-empty")
            } else if !self.emitted {
                // Genesis: nothing to reference yet, so the parent-quorum
                // rule is waived for a replica's first block.
                0
            } else {
                // Frontier too thin to advance; the batch/acks stay queued
                // until more peers have blocks.
                return;
            };
            let _span = self.telemetry.span_at("dag.emit", now);
            let batch = self.pending_batches.pop_front();
            let mut acks: Vec<DagAck> = Vec::with_capacity(self.unacked.len() + 1);
            for id in self.unacked.drain(..) {
                acks.push(DagAck {
                    id,
                    sig: Signature::sign(&self.my_key.secret, &id.digest()),
                });
            }
            if let Some(mb) = &batch {
                // Self-ack for the batch this block introduces.
                self.my_acked.insert(mb.id);
                acks.push(DagAck {
                    id: mb.id,
                    sig: Signature::sign(&self.my_key.secret, &mb.id.digest()),
                });
            }
            let parents: Vec<DagParentRef> = self
                .latest
                .iter()
                .map(|(c, r)| DagParentRef {
                    creator: *c,
                    round: *r,
                })
                .collect();
            let seq = self.my_seq;
            self.my_seq += 1;
            // Built and signed inline so the digest is computed once and
            // reused for duplicate suppression below.
            let mut block = DagBlock {
                creator: self.me,
                round,
                seq,
                batch,
                parents,
                acks,
                sig: Signature { signer: 0, tag: 0 },
            };
            let digest = block.digest();
            block.sig = Signature::sign(&self.my_key.secret, &digest);
            self.emitted = true;
            self.blocks_out += 1;
            self.seen.insert(digest);
            let frontier = self.latest.entry(self.me).or_insert(round);
            *frontier = (*frontier).max(round);
            self.telemetry.counter_inc("dag.block_out");
            self.telemetry.gauge_set("dag.round", round as f64);
            if let Some(mb) = block.batch.clone() {
                self.created += 1;
                self.ingest_payload(now, mb, effects);
            }
            self.note_block(self.me, seq, block.batch.as_ref().map(|mb| mb.id));
            for ack in block.acks.clone() {
                self.record_ack(now, ack.id, ack.sig, effects);
            }
            effects.broadcast(DagMsg::Block(block));
        }
    }
}

impl Mempool for DagMempool {
    type Msg = DagMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        _rng: &mut SmallRng,
    ) -> Effects<DagMsg> {
        let _span = self.telemetry.span_at("batcher.add", now);
        let mut effects = Effects::none();
        let outcome = self.batcher.add(now, txs);
        if outcome.arm_timer {
            effects.timer(self.batcher.timeout(), BATCH_TIMEOUT_TAG);
        }
        for mb in outcome.sealed {
            self.telemetry.counter_inc("batcher.sealed");
            self.pending_batches.push_back(mb);
        }
        self.maybe_emit(now, &mut effects);
        effects
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: DagMsg,
        _rng: &mut SmallRng,
    ) -> Effects<DagMsg> {
        let mut effects = Effects::none();
        match msg {
            DagMsg::Block(block) => self.accept_block(now, block, &mut effects),
            DagMsg::Fetch { ids } => {
                let mbs: Vec<Microblock> = ids
                    .iter()
                    .filter_map(|id| self.store.get(id).cloned())
                    .collect();
                if !mbs.is_empty() {
                    effects.send(from, DagMsg::FetchResp { mbs });
                }
            }
            DagMsg::FetchResp { mbs } => {
                for mb in mbs {
                    self.ingest_payload(now, mb, &mut effects);
                }
                self.maybe_emit(now, &mut effects);
            }
        }
        effects
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, _rng: &mut SmallRng) -> Effects<DagMsg> {
        let mut effects = Effects::none();
        if tag == BATCH_TIMEOUT_TAG {
            if let Some(mb) = self.batcher.on_timeout(now) {
                self.telemetry.counter_inc("batcher.sealed");
                self.pending_batches.push_back(mb);
                self.maybe_emit(now, &mut effects);
            }
        } else if FetchRetryState::owns_tag(tag) {
            if let Some(action) = self.fetcher.on_timer(tag, &self.store) {
                effects.send(action.target, DagMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
            }
        }
        effects
    }

    fn make_payload(&mut self, now: SimTime) -> Payload {
        let _span = self.telemetry.span_at("dag.make_payload", now);
        let mut refs = Vec::new();
        while refs.len() < self.max_refs {
            let Some(id) = self.queue.pop() else { break };
            let Some((creator, tx_count, _)) = self.meta.get(&id) else {
                continue;
            };
            match self.mode {
                DagMode::Certified => {
                    let Some(proof) = self.certified.get(&id) else {
                        continue;
                    };
                    refs.push(MicroblockRef::proven(
                        id,
                        *creator,
                        *tx_count,
                        proof.clone(),
                    ));
                }
                DagMode::FastPath => {
                    refs.push(MicroblockRef::unproven(id, *creator, *tx_count));
                }
            }
        }
        self.telemetry.counter_add("dag.refs", refs.len() as u64);
        if refs.is_empty() {
            Payload::Empty
        } else {
            Payload::Refs(refs)
        }
    }

    fn on_proposal(
        &mut self,
        _now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<DagMsg>) {
        let mut effects = Effects::none();
        let refs = match &proposal.payload {
            Payload::Refs(refs) => refs,
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; a whole sharded payload reaching an
            // unsharded backend must not bypass reference verification.
            Payload::Sharded(_) => {
                return (
                    FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                    effects,
                )
            }
            _ => return (FillStatus::Ready, effects),
        };
        match self.mode {
            DagMode::Certified => {
                // Every reference must carry a valid support certificate.
                for r in refs {
                    let Some(proof) = &r.proof else {
                        return (
                            FillStatus::Invalid("missing dag support certificate"),
                            effects,
                        );
                    };
                    if proof.digest != r.id.digest()
                        || proof.verify(&self.keys, self.quorum).is_err()
                    {
                        return (FillStatus::Invalid("bad dag support certificate"), effects);
                    }
                }
                let mut missing = Vec::new();
                let mut signer_pool: Vec<ReplicaId> = Vec::new();
                for r in refs {
                    self.queue.remove(&r.id);
                    if !self.store.contains(&r.id) {
                        missing.push(r.id);
                        if let Some(proof) = &r.proof {
                            signer_pool.extend(proof.signers().into_iter().map(ReplicaId));
                        }
                    }
                }
                if missing.is_empty() {
                    return (FillStatus::Ready, effects);
                }
                // Supported batches are recoverable from their ackers:
                // consensus proceeds and the data arrives in the background.
                self.tracker.track(proposal, missing.clone(), false);
                signer_pool.retain(|r| *r != self.me);
                signer_pool.shuffle(rng);
                if signer_pool.is_empty() {
                    signer_pool.push(proposal.proposer);
                }
                let action = self.fetcher.register(missing.clone(), signer_pool);
                effects.send(action.target, DagMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
                effects.event(MempoolEvent::FetchIssued {
                    count: missing.len() as u32,
                });
                (FillStatus::Ready, effects)
            }
            DagMode::FastPath => {
                let mut missing = Vec::new();
                let mut creators = Vec::new();
                for r in refs {
                    self.queue.remove(&r.id);
                    if !self.store.contains(&r.id) {
                        missing.push(r.id);
                        creators.push(r.creator);
                    }
                }
                if missing.is_empty() {
                    return (FillStatus::Ready, effects);
                }
                self.tracker.track(proposal, missing.clone(), true);
                // Fetch from the creators first, then the proposer.
                let mut candidates = creators;
                candidates.push(proposal.proposer);
                candidates.dedup();
                let action = self.fetcher.register(missing.clone(), candidates);
                effects.send(action.target, DagMsg::Fetch { ids: action.ids });
                effects.timer(self.fetcher.timeout, action.tag);
                effects.event(MempoolEvent::FetchIssued {
                    count: missing.len() as u32,
                });
                (FillStatus::MustWait(missing), effects)
            }
        }
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<DagMsg> {
        let mut effects = Effects::none();
        if let Payload::Refs(refs) = &proposal.payload {
            for r in refs {
                self.queue.remove(&r.id);
            }
        }
        for ev in self.tracker.on_commit(proposal, &self.store, now) {
            effects.event(ev);
        }
        effects
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.batcher.pending_txs(),
            stored_microblocks: self.store.len(),
            proposable_microblocks: self.queue.len(),
            created_microblocks: self.created,
            forwarded_microblocks: self.blocks_out,
            fetches_issued: self.fetcher.issued(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }
}

#[cfg(test)]
mod tests {
    // The message-routing loops below use the index both to address the
    // node array and as the replica identity.
    #![allow(clippy::needless_range_loop)]
    use super::*;
    use crate::api::Dest;
    use rand::SeedableRng;
    use smp_types::{BlockId, ClientId, MempoolConfig, View};

    fn config() -> SystemConfig {
        SystemConfig::new(4).with_mempool(MempoolConfig {
            batch_size_bytes: 168 * 4,
            ..MempoolConfig::default()
        })
    }

    fn txs(n: usize) -> Vec<Transaction> {
        (0..n)
            .map(|i| Transaction::synthetic(ClientId(7), i as u64, 128, 0))
            .collect()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn nodes(mode: DagMode) -> Vec<DagMempool> {
        let cfg = config();
        (0..4)
            .map(|i| DagMempool::with_mode(&cfg, ReplicaId(i), mode))
            .collect()
    }

    /// Delivers every broadcast/multicast/send in `pending` to its targets,
    /// collecting newly produced messages, until the network is quiescent.
    /// Returns all events observed along the way, tagged with the observer.
    fn pump(
        net: &mut [DagMempool],
        mut pending: Vec<(ReplicaId, Dest, DagMsg)>,
        now: SimTime,
    ) -> Vec<(ReplicaId, MempoolEvent)> {
        let mut r = rng();
        let mut events = Vec::new();
        let mut rounds = 0;
        while !pending.is_empty() {
            rounds += 1;
            assert!(rounds < 64, "network failed to quiesce");
            let mut next = Vec::new();
            for (from, dest, msg) in pending.drain(..) {
                let targets: Vec<usize> = match &dest {
                    Dest::One(t) => vec![t.index()],
                    Dest::AllButSelf => (0..net.len()).filter(|i| *i != from.index()).collect(),
                    Dest::Many(ts) => ts.iter().map(|t| t.index()).collect(),
                };
                for t in targets {
                    let fx = net[t].on_message(now, from, msg.clone(), &mut r);
                    let me = ReplicaId(t as u32);
                    events.extend(fx.events.into_iter().map(|e| (me, e)));
                    next.extend(fx.msgs.into_iter().map(|(d, m)| (me, d, m)));
                }
            }
            pending = next;
        }
        events
    }

    /// Seals one batch at replica 0 and runs the DAG to quiescence,
    /// returning the network, the batch id, and all observed events.
    fn one_batch(
        mode: DagMode,
    ) -> (
        Vec<DagMempool>,
        MicroblockId,
        Vec<(ReplicaId, MempoolEvent)>,
    ) {
        let mut net = nodes(mode);
        let mut r = rng();
        let fx = net[0].on_client_txs(0, txs(4), &mut r);
        let block = fx
            .msgs
            .iter()
            .find_map(|(_, m)| match m {
                DagMsg::Block(b) => Some(b.clone()),
                _ => None,
            })
            .expect("block broadcast");
        let id = block.batch.as_ref().expect("batch rides the block").id;
        let pending = fx
            .msgs
            .into_iter()
            .map(|(d, m)| (ReplicaId(0), d, m))
            .collect();
        let events = pump(&mut net, pending, 10);
        (net, id, events)
    }

    #[test]
    fn support_pattern_certifies_in_one_ack_round() {
        let (net, id, events) = one_batch(DagMode::Certified);
        for (i, node) in net.iter().enumerate() {
            assert!(node.is_certified(&id), "replica {i} did not certify");
        }
        // The creator observes stability of its own batch.
        assert!(events.iter().any(|(who, e)| *who == ReplicaId(0)
            && matches!(e, MempoolEvent::MicroblockStable { id: sid, .. } if *sid == id)));
    }

    #[test]
    fn quiescent_after_certification() {
        let (mut net, _, _) = one_batch(DagMode::Certified);
        // Re-delivering any stored block is a duplicate: no node says
        // anything new, proving emissions terminate with the workload.
        let mut r = rng();
        for i in 0..4usize {
            let stats = net[i].stats();
            assert!(stats.proposable_microblocks <= 1);
            let fx = net[i].on_client_txs(1000, vec![], &mut r);
            assert!(fx.msgs.is_empty(), "replica {i} kept talking");
        }
    }

    #[test]
    fn certified_batches_are_proposed_with_proofs() {
        let (mut net, _, _) = one_batch(DagMode::Certified);
        let payload = net[1].make_payload(100);
        match &payload {
            Payload::Refs(refs) => {
                assert_eq!(refs.len(), 1);
                assert!(refs[0].proof.is_some());
            }
            other => panic!("unexpected payload {other:?}"),
        }
        let p = Proposal::new(View(5), 1, BlockId::GENESIS, ReplicaId(1), payload, true);
        let mut r = rng();
        let (status, _) = net[2].on_proposal(200, &p, &mut r);
        assert_eq!(status, FillStatus::Ready);
    }

    #[test]
    fn fast_path_proposes_on_first_delivery_without_proofs() {
        let cfg = config();
        let mut a = DagMempool::with_mode(&cfg, ReplicaId(0), DagMode::FastPath);
        let mut b = DagMempool::with_mode(&cfg, ReplicaId(1), DagMode::FastPath);
        let mut r = rng();
        let fx = a.on_client_txs(0, txs(4), &mut r);
        let block = match &fx.msgs[0].1 {
            DagMsg::Block(bl) => bl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // One delivery, no acks yet: already proposable, ref unproven.
        let _ = b.on_message(5, ReplicaId(0), DagMsg::Block(block), &mut r);
        let payload = b.make_payload(10);
        match &payload {
            Payload::Refs(refs) => {
                assert_eq!(refs.len(), 1);
                assert!(refs[0].proof.is_none());
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    #[test]
    fn fast_path_missing_data_blocks_until_fetched() {
        let cfg = config();
        let mut a = DagMempool::with_mode(&cfg, ReplicaId(0), DagMode::FastPath);
        let mut fresh = DagMempool::with_mode(&cfg, ReplicaId(3), DagMode::FastPath);
        let mut r = rng();
        let _ = a.on_client_txs(0, txs(4), &mut r);
        let p = Proposal::new(
            View(2),
            1,
            BlockId::GENESIS,
            ReplicaId(5),
            a.make_payload(1),
            true,
        );
        let (status, fx) = fresh.on_proposal(5, &p, &mut r);
        assert!(matches!(status, FillStatus::MustWait(_)));
        // First fetch target is the creator (replica 0), not the proposer.
        match &fx.msgs[0] {
            (Dest::One(target), DagMsg::Fetch { .. }) => assert_eq!(*target, ReplicaId(0)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn certified_mode_rejects_bad_certificates() {
        let (mut net, id, _) = one_batch(DagMode::Certified);
        let weak = QuorumProof::new(id.digest());
        let p = Proposal::new(
            View(5),
            1,
            BlockId::GENESIS,
            ReplicaId(1),
            Payload::Refs(vec![MicroblockRef::proven(id, ReplicaId(0), 4, weak)]),
            true,
        );
        let mut r = rng();
        let (status, _) = net[2].on_proposal(200, &p, &mut r);
        assert!(matches!(status, FillStatus::Invalid(_)));
        let unproven = Proposal::new(
            View(6),
            1,
            BlockId::GENESIS,
            ReplicaId(1),
            Payload::Refs(vec![MicroblockRef::unproven(id, ReplicaId(0), 4)]),
            true,
        );
        let (status, _) = net[2].on_proposal(210, &unproven, &mut r);
        assert!(matches!(status, FillStatus::Invalid(_)));
    }

    #[test]
    fn missing_certified_data_is_fetched_in_background() {
        let (mut net, _, _) = one_batch(DagMode::Certified);
        let payload = net[1].make_payload(100);
        let p = Proposal::new(View(5), 1, BlockId::GENESIS, ReplicaId(1), payload, true);
        // A fresh node knows nothing but can still verify the embedded
        // certificate and fetch the data from its signers.
        let mut fresh = DagMempool::new(&config(), ReplicaId(3));
        let mut r = rng();
        let (status, fx) = fresh.on_proposal(60, &p, &mut r);
        assert_eq!(status, FillStatus::Ready, "consensus is not blocked");
        assert!(fx
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, DagMsg::Fetch { .. })));
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, MempoolEvent::FetchIssued { .. })));
    }

    #[test]
    fn blocks_with_bad_signatures_are_dropped() {
        let cfg = config();
        let mut a = DagMempool::new(&cfg, ReplicaId(0));
        let mut b = DagMempool::new(&cfg, ReplicaId(1));
        let mut r = rng();
        let fx = a.on_client_txs(0, txs(4), &mut r);
        let mut block = match &fx.msgs[0].1 {
            DagMsg::Block(bl) => bl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        block.round = 7; // tamper: digest no longer matches the signature
        let _ = b.on_message(5, ReplicaId(0), DagMsg::Block(block), &mut r);
        assert_eq!(b.stats().stored_microblocks, 0);
    }

    #[test]
    fn non_genesis_blocks_require_a_parent_quorum() {
        let cfg = config();
        let keys = KeyPair::derive_all(cfg.seed, cfg.n);
        let mut b = DagMempool::new(&cfg, ReplicaId(1));
        let mb = Microblock::seal(ReplicaId(0), txs(4), 0);
        let thin = DagBlock::signed(
            ReplicaId(0),
            3,
            1,
            Some(mb),
            vec![DagParentRef {
                creator: ReplicaId(0),
                round: 2,
            }],
            vec![],
            &keys[0].secret,
        );
        let mut r = rng();
        let _ = b.on_message(5, ReplicaId(0), DagMsg::Block(thin), &mut r);
        assert_eq!(b.stats().stored_microblocks, 0, "thin block accepted");
    }

    #[test]
    fn rounds_advance_and_reference_the_frontier() {
        let (mut net, _, _) = one_batch(DagMode::Certified);
        let first_round = net[0].current_round().expect("emitted");
        let mut r = rng();
        let fx = net[0].on_client_txs(500, txs(4), &mut r);
        let block = fx
            .msgs
            .iter()
            .find_map(|(_, m)| match m {
                DagMsg::Block(b) => Some(b.clone()),
                _ => None,
            })
            .expect("second batch emits a block");
        assert!(block.round > first_round);
        assert!(block.parents.len() >= 3, "frontier references 2f+1 peers");
        let pending = fx
            .msgs
            .into_iter()
            .map(|(d, m)| (ReplicaId(0), d, m))
            .collect();
        let _ = pump(&mut net, pending, 510);
        let id = block.batch.expect("batch rides the block").id;
        for (i, node) in net.iter().enumerate() {
            assert!(node.is_certified(&id), "replica {i} did not certify");
        }
    }

    #[test]
    fn duplicate_blocks_and_acks_do_not_double_count() {
        let cfg = config();
        let mut net = nodes(DagMode::Certified);
        let mut r = rng();
        let fx = net[0].on_client_txs(0, txs(4), &mut r);
        let block = match &fx.msgs[0].1 {
            DagMsg::Block(bl) => bl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        let id = block.batch.as_ref().unwrap().id;
        let fx1 = net[1].on_message(10, ReplicaId(0), DagMsg::Block(block.clone()), &mut r);
        let ack_block = match &fx1.msgs[0].1 {
            DagMsg::Block(bl) => bl.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // Replica 3 sees the creator's self-ack and adds its own on its
        // genesis block: two of three needed.
        let _ = net[3].on_message(20, ReplicaId(0), DagMsg::Block(block.clone()), &mut r);
        assert!(!net[3].is_certified(&id));
        // Duplicate block deliveries are suppressed outright and add no
        // support.
        for _ in 0..3 {
            let fx = net[3].on_message(21, ReplicaId(0), DagMsg::Block(block.clone()), &mut r);
            assert!(fx.msgs.is_empty(), "duplicate block re-processed");
        }
        assert!(!net[3].is_certified(&id), "duplicate acks counted twice");
        // One genuine third ack reaches quorum; replaying it adds nothing.
        for _ in 0..3 {
            let _ = net[3].on_message(22, ReplicaId(1), DagMsg::Block(ack_block.clone()), &mut r);
        }
        assert!(net[3].is_certified(&id));
        assert_eq!(net[3].certified.get(&id).unwrap().signers().len(), 3);
        let _ = cfg;
    }
}
