//! Microblock storage and proposal fill tracking.
//!
//! Every shared-mempool variant needs the same two pieces of bookkeeping:
//!
//! * a content-addressed store of microblocks received so far
//!   ([`MicroblockStore`]), and
//! * a tracker of proposals whose referenced microblocks are not all
//!   locally available yet ([`FillTracker`]) — when the last missing
//!   microblock arrives, the tracker emits `ProposalReady` (if consensus
//!   was blocked on it) and/or `Executed` (if the proposal had already
//!   committed and was waiting for data before execution).

use crate::api::MempoolEvent;
use smp_types::{BlockId, Microblock, MicroblockId, Payload, Proposal, SimTime};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Content-addressed store of microblocks.
#[derive(Clone, Debug, Default)]
pub struct MicroblockStore {
    mbs: HashMap<MicroblockId, Microblock>,
}

impl MicroblockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MicroblockStore {
            mbs: HashMap::new(),
        }
    }

    /// Inserts a microblock; returns `true` if it was not already present.
    pub fn insert(&mut self, mb: Microblock) -> bool {
        use std::collections::hash_map::Entry;
        match self.mbs.entry(mb.id) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(mb);
                true
            }
        }
    }

    /// Looks up a microblock.
    pub fn get(&self, id: &MicroblockId) -> Option<&Microblock> {
        self.mbs.get(id)
    }

    /// Whether the store holds `id`.
    pub fn contains(&self, id: &MicroblockId) -> bool {
        self.mbs.contains_key(id)
    }

    /// Removes a microblock (garbage collection after commit).
    pub fn remove(&mut self, id: &MicroblockId) -> Option<Microblock> {
        self.mbs.remove(id)
    }

    /// Number of stored microblocks.
    pub fn len(&self) -> usize {
        self.mbs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.mbs.is_empty()
    }

    /// First-reception times of every transaction in the listed
    /// microblocks that is locally available.
    pub fn receive_times(&self, ids: impl IntoIterator<Item = MicroblockId>) -> Vec<SimTime> {
        let mut out = Vec::new();
        for id in ids {
            if let Some(mb) = self.get(&id) {
                out.extend(mb.txs.iter().filter_map(|t| t.received_at));
            }
        }
        out
    }
}

/// A FIFO of microblock ids eligible for inclusion in a future proposal —
/// the paper's `avaQue`.
#[derive(Clone, Debug, Default)]
pub struct ProposalQueue {
    queue: VecDeque<MicroblockId>,
    members: BTreeSet<MicroblockId>,
}

impl ProposalQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ProposalQueue::default()
    }

    /// Pushes an id if not already queued.
    pub fn push(&mut self, id: MicroblockId) {
        if self.members.insert(id) {
            self.queue.push_back(id);
        }
    }

    /// Pops the oldest id.
    pub fn pop(&mut self) -> Option<MicroblockId> {
        while let Some(id) = self.queue.pop_front() {
            if self.members.remove(&id) {
                return Some(id);
            }
        }
        None
    }

    /// Removes an id wherever it is in the queue (e.g. it was proposed by
    /// another leader).
    pub fn remove(&mut self, id: &MicroblockId) {
        self.members.remove(id);
        // The id stays in the VecDeque but is skipped by `pop`.
    }

    /// Whether the queue currently contains `id`.
    pub fn contains(&self, id: &MicroblockId) -> bool {
        self.members.contains(id)
    }

    /// Number of queued ids.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[derive(Clone, Debug)]
struct PendingProposal {
    missing: BTreeSet<MicroblockId>,
    all_refs: Vec<MicroblockId>,
    tx_count: u32,
    /// Consensus is blocked waiting for this proposal (`MustWait`).
    awaiting_ready: bool,
    /// The proposal has committed and will be executed once full.
    committed: bool,
}

/// Tracks proposals whose referenced microblocks are not yet all local.
#[derive(Clone, Debug, Default)]
pub struct FillTracker {
    pending: HashMap<BlockId, PendingProposal>,
    executed: u64,
}

impl FillTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        FillTracker::default()
    }

    /// Number of proposals executed through this tracker.
    pub fn executed_count(&self) -> u64 {
        self.executed
    }

    /// Number of proposals still waiting for data.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Registers an incoming proposal.  `missing` lists the referenced
    /// microblocks not currently in the store; `awaiting_ready` says
    /// whether consensus is blocked on them (best-effort mempools) or can
    /// proceed immediately (Stratus / Narwhal).
    pub fn track(&mut self, proposal: &Proposal, missing: Vec<MicroblockId>, awaiting_ready: bool) {
        if missing.is_empty() {
            return;
        }
        let (all_refs, tx_count) = match &proposal.payload {
            Payload::Refs(refs) => (
                refs.iter().map(|r| r.id).collect::<Vec<_>>(),
                refs.iter().map(|r| r.tx_count).sum(),
            ),
            _ => (Vec::new(), 0),
        };
        self.pending.insert(
            proposal.id,
            PendingProposal {
                missing: missing.into_iter().collect(),
                all_refs,
                tx_count,
                awaiting_ready,
                committed: false,
            },
        );
    }

    /// Whether `proposal` is still waiting for data.
    pub fn is_pending(&self, proposal: &BlockId) -> bool {
        self.pending.contains_key(proposal)
    }

    /// Records the arrival of a microblock; returns the notifications to
    /// emit (`ProposalReady` for proposals consensus was blocked on,
    /// `Executed` for committed proposals that just became full).
    pub fn on_microblock(
        &mut self,
        id: MicroblockId,
        store: &MicroblockStore,
        _now: SimTime,
    ) -> Vec<MempoolEvent> {
        let mut events = Vec::new();
        let mut completed = Vec::new();
        for (pid, pending) in self.pending.iter_mut() {
            if pending.missing.remove(&id) && pending.missing.is_empty() {
                completed.push(*pid);
            }
        }
        for pid in completed {
            let pending = self
                .pending
                .remove(&pid)
                .expect("completed proposal is pending");
            if pending.awaiting_ready {
                events.push(MempoolEvent::ProposalReady { proposal: pid });
            }
            if pending.committed {
                self.executed += 1;
                events.push(MempoolEvent::Executed {
                    proposal: pid,
                    tx_count: pending.tx_count,
                    receive_times: store.receive_times(pending.all_refs.iter().copied()),
                });
            }
        }
        events
    }

    /// Records that `proposal` committed.  If all of its data is local the
    /// `Executed` event is returned immediately; otherwise execution is
    /// deferred until the last missing microblock arrives.
    pub fn on_commit(
        &mut self,
        proposal: &Proposal,
        store: &MicroblockStore,
        _now: SimTime,
    ) -> Vec<MempoolEvent> {
        match &proposal.payload {
            Payload::Refs(refs) => {
                if let Some(pending) = self.pending.get_mut(&proposal.id) {
                    pending.committed = true;
                    return Vec::new();
                }
                self.executed += 1;
                let tx_count = refs.iter().map(|r| r.tx_count).sum();
                vec![MempoolEvent::Executed {
                    proposal: proposal.id,
                    tx_count,
                    receive_times: store.receive_times(refs.iter().map(|r| r.id)),
                }]
            }
            Payload::Inline(txs) => {
                self.executed += 1;
                vec![MempoolEvent::Executed {
                    proposal: proposal.id,
                    tx_count: txs.len() as u32,
                    receive_times: txs.iter().filter_map(|t| t.received_at).collect(),
                }]
            }
            // Sharded payloads are split into per-shard groups before any
            // backend commits them, so a whole sharded payload carries no
            // locally attributable transactions at this layer.
            Payload::Empty | Payload::Sharded(_) => {
                self.executed += 1;
                vec![MempoolEvent::Executed {
                    proposal: proposal.id,
                    tx_count: 0,
                    receive_times: Vec::new(),
                }]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::{ClientId, MicroblockRef, ReplicaId, Transaction, View};

    fn mb(creator: u32, base: u64, n: usize) -> Microblock {
        let txs: Vec<Transaction> = (0..n)
            .map(|i| {
                let mut t = Transaction::synthetic(ClientId(creator), base + i as u64, 128, 0);
                t.mark_received(ReplicaId(creator), 10 + i as u64);
                t
            })
            .collect();
        Microblock::seal(ReplicaId(creator), txs, 0)
    }

    fn refs_proposal(mbs: &[&Microblock]) -> Proposal {
        let refs = mbs
            .iter()
            .map(|m| MicroblockRef::unproven(m.id, m.creator, m.len() as u32))
            .collect();
        Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Refs(refs),
            true,
        )
    }

    #[test]
    fn store_deduplicates() {
        let mut store = MicroblockStore::new();
        let m = mb(0, 0, 3);
        assert!(store.insert(m.clone()));
        assert!(!store.insert(m.clone()));
        assert_eq!(store.len(), 1);
        assert!(store.contains(&m.id));
        assert_eq!(store.receive_times([m.id]).len(), 3);
        assert!(store.remove(&m.id).is_some());
        assert!(store.is_empty());
    }

    #[test]
    fn proposal_queue_dedups_and_skips_removed() {
        let mut q = ProposalQueue::new();
        let a = mb(0, 0, 1).id;
        let b = mb(0, 10, 1).id;
        q.push(a);
        q.push(a);
        q.push(b);
        assert_eq!(q.len(), 2);
        q.remove(&a);
        assert_eq!(q.pop(), Some(b));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn tracker_emits_ready_when_last_missing_arrives() {
        let mut store = MicroblockStore::new();
        let m1 = mb(1, 0, 2);
        let m2 = mb(2, 100, 3);
        store.insert(m1.clone());
        let p = refs_proposal(&[&m1, &m2]);
        let mut tracker = FillTracker::new();
        tracker.track(&p, vec![m2.id], true);
        assert!(tracker.is_pending(&p.id));
        store.insert(m2.clone());
        let events = tracker.on_microblock(m2.id, &store, 50);
        assert_eq!(events, vec![MempoolEvent::ProposalReady { proposal: p.id }]);
        assert!(!tracker.is_pending(&p.id));
    }

    #[test]
    fn tracker_defers_execution_until_full() {
        let mut store = MicroblockStore::new();
        let m1 = mb(1, 0, 2);
        let m2 = mb(2, 100, 3);
        store.insert(m1.clone());
        let p = refs_proposal(&[&m1, &m2]);
        let mut tracker = FillTracker::new();
        tracker.track(&p, vec![m2.id], false);
        // Commit arrives while data is still missing: execution deferred.
        assert!(tracker.on_commit(&p, &store, 40).is_empty());
        store.insert(m2.clone());
        let events = tracker.on_microblock(m2.id, &store, 50);
        assert_eq!(events.len(), 1);
        match &events[0] {
            MempoolEvent::Executed {
                tx_count,
                receive_times,
                ..
            } => {
                assert_eq!(*tx_count, 5);
                assert_eq!(receive_times.len(), 5);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(tracker.executed_count(), 1);
    }

    #[test]
    fn commit_with_all_data_executes_immediately() {
        let mut store = MicroblockStore::new();
        let m1 = mb(1, 0, 4);
        store.insert(m1.clone());
        let p = refs_proposal(&[&m1]);
        let mut tracker = FillTracker::new();
        let events = tracker.on_commit(&p, &store, 99);
        assert_eq!(events.len(), 1);
        match &events[0] {
            MempoolEvent::Executed { tx_count, .. } => assert_eq!(*tx_count, 4),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn inline_and_empty_payloads_execute_directly() {
        let store = MicroblockStore::new();
        let mut tracker = FillTracker::new();
        let txs: Vec<Transaction> = (0..3)
            .map(|i| {
                let mut t = Transaction::synthetic(ClientId(0), i, 128, 0);
                t.mark_received(ReplicaId(0), 5);
                t
            })
            .collect();
        let inline = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::inline(txs),
            true,
        );
        let events = tracker.on_commit(&inline, &store, 10);
        match &events[0] {
            MempoolEvent::Executed {
                tx_count,
                receive_times,
                ..
            } => {
                assert_eq!(*tx_count, 3);
                assert_eq!(receive_times.len(), 3);
            }
            other => panic!("unexpected event {other:?}"),
        }
        let empty = Proposal::new(
            View(2),
            2,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        let events = tracker.on_commit(&empty, &store, 10);
        match &events[0] {
            MempoolEvent::Executed { tx_count, .. } => assert_eq!(*tx_count, 0),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn unrelated_microblock_does_not_complete_anything() {
        let mut store = MicroblockStore::new();
        let m1 = mb(1, 0, 2);
        let m2 = mb(2, 100, 3);
        let m3 = mb(3, 200, 1);
        store.insert(m1.clone());
        let p = refs_proposal(&[&m1, &m2]);
        let mut tracker = FillTracker::new();
        tracker.track(&p, vec![m2.id], true);
        store.insert(m3.clone());
        assert!(tracker.on_microblock(m3.id, &store, 10).is_empty());
        assert!(tracker.is_pending(&p.id));
    }
}
