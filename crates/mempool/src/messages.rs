//! Wire messages used by the baseline shared-mempool implementations.

use serde::{Deserialize, Serialize};
use smp_crypto::{QuorumProof, Signature};
use smp_types::{wire, Microblock, MicroblockId, ReplicaId, WireSize};

/// Messages exchanged by the best-effort and gossip shared mempools.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SmpMsg {
    /// Best-effort broadcast of a microblock.
    Microblock(Microblock),
    /// Gossip relay of a microblock with a remaining hop budget.
    Gossip {
        /// The relayed microblock.
        mb: Microblock,
        /// Remaining relay hops.
        hops: u8,
    },
    /// Request for missing microblocks.
    Fetch {
        /// Identifiers being requested.
        ids: Vec<MicroblockId>,
    },
    /// Response carrying the requested microblocks that the responder has.
    FetchResp {
        /// The returned microblocks.
        mbs: Vec<Microblock>,
    },
}

impl SmpMsg {
    /// Stable label for bandwidth accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            SmpMsg::Microblock(_) => "microblock",
            SmpMsg::Gossip { .. } => "microblock",
            SmpMsg::Fetch { .. } => "fetch-req",
            SmpMsg::FetchResp { .. } => "fetch-resp",
        }
    }
}

impl WireSize for SmpMsg {
    fn wire_size(&self) -> usize {
        match self {
            SmpMsg::Microblock(mb) => mb.wire_size(),
            SmpMsg::Gossip { mb, .. } => mb.wire_size() + 1,
            SmpMsg::Fetch { ids } => wire::FETCH_REQUEST_BYTES + ids.len() * 32,
            SmpMsg::FetchResp { mbs } => 16 + mbs.iter().map(WireSize::wire_size).sum::<usize>(),
        }
    }
}

/// Messages exchanged by the Narwhal-style reliable-broadcast mempool.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NarwhalMsg {
    /// The worker batch (microblock) itself.
    Batch(Microblock),
    /// Echo of a batch digest, signed by the echoing replica.
    Echo {
        /// Batch being echoed.
        id: MicroblockId,
        /// Echoing replica's signature over the batch id.
        sig: Signature,
    },
    /// Ready message of Bracha-style reliable broadcast, signed.
    Ready {
        /// Batch the replica is ready to deliver.
        id: MicroblockId,
        /// Signature over the batch id.
        sig: Signature,
    },
    /// Availability certificate assembled from `2f + 1` ready signatures.
    Certificate {
        /// Certified batch.
        id: MicroblockId,
        /// Creator of the batch.
        creator: ReplicaId,
        /// Number of transactions in the batch.
        tx_count: u32,
        /// The certificate.
        proof: QuorumProof,
    },
    /// Request for missing batches.
    Fetch {
        /// Identifiers being requested.
        ids: Vec<MicroblockId>,
    },
    /// Response with the requested batches.
    FetchResp {
        /// The returned batches.
        mbs: Vec<Microblock>,
    },
}

impl NarwhalMsg {
    /// Stable label for bandwidth accounting.
    pub fn kind(&self) -> &'static str {
        match self {
            NarwhalMsg::Batch(_) => "microblock",
            NarwhalMsg::Echo { .. } => "rb-echo",
            NarwhalMsg::Ready { .. } => "rb-ready",
            NarwhalMsg::Certificate { .. } => "rb-cert",
            NarwhalMsg::Fetch { .. } => "fetch-req",
            NarwhalMsg::FetchResp { .. } => "fetch-resp",
        }
    }
}

impl WireSize for NarwhalMsg {
    fn wire_size(&self) -> usize {
        match self {
            NarwhalMsg::Batch(mb) => mb.wire_size(),
            NarwhalMsg::Echo { .. } | NarwhalMsg::Ready { .. } => wire::ACK_BYTES,
            NarwhalMsg::Certificate { proof, .. } => 40 + proof.wire_size(),
            NarwhalMsg::Fetch { ids } => wire::FETCH_REQUEST_BYTES + ids.len() * 32,
            NarwhalMsg::FetchResp { mbs } => {
                16 + mbs.iter().map(WireSize::wire_size).sum::<usize>()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::{ClientId, Transaction};

    fn mb(n: usize) -> Microblock {
        let txs = (0..n)
            .map(|i| Transaction::synthetic(ClientId(0), i as u64, 128, 0))
            .collect();
        Microblock::seal(ReplicaId(0), txs, 0)
    }

    #[test]
    fn smp_msg_kinds_and_sizes() {
        let m = SmpMsg::Microblock(mb(10));
        assert_eq!(m.kind(), "microblock");
        assert!(m.wire_size() > 10 * 128);
        let f = SmpMsg::Fetch {
            ids: vec![mb(1).id, mb(2).id],
        };
        assert_eq!(f.kind(), "fetch-req");
        assert!(f.wire_size() < 200);
        let g = SmpMsg::Gossip { mb: mb(5), hops: 3 };
        assert_eq!(g.kind(), "microblock");
    }

    #[test]
    fn narwhal_control_messages_are_small() {
        let kp = smp_crypto::KeyPair::derive(1, 0);
        let sig = Signature::sign(&kp.secret, &mb(1).id.digest());
        assert!(NarwhalMsg::Echo { id: mb(1).id, sig }.wire_size() <= 128);
        assert!(NarwhalMsg::Ready { id: mb(1).id, sig }.wire_size() <= 128);
        assert_eq!(NarwhalMsg::Batch(mb(3)).kind(), "microblock");
    }
}
