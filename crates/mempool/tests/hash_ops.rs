//! One-hash-per-payload regression tests (ROADMAP item (b)).
//!
//! `MicroblockId::derive` is the only payload-proportional hash in the
//! dissemination plane, and it must run exactly once per batch — at
//! `Microblock::seal` on the creator.  Gossip relays, DAG blocks, fill
//! resolution, and commit garbage collection all move the cached id
//! around; none of them may re-hash transaction data.  These tests drive
//! a full seal → disseminate → fill → commit flow on a 4-replica
//! in-process network and diff the derivation counter around it.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{DagMempool, Dest, GossipSmp, Mempool};
use smp_types::{
    mb_id_derivations, BlockId, ClientId, MempoolConfig, Payload, Proposal, ReplicaId,
    SystemConfig, Transaction, View,
};

const N: usize = 4;
/// 60 transactions at 4 per batch (168 wire bytes each, 672-byte batches).
const TXS: usize = 60;
const BATCHES: u64 = 15;

fn config() -> SystemConfig {
    SystemConfig::new(N).with_mempool(MempoolConfig {
        batch_size_bytes: 168 * 4,
        ..MempoolConfig::default()
    })
}

fn txs() -> Vec<Transaction> {
    (0..TXS)
        .map(|i| Transaction::synthetic(ClientId(7), i as u64, 128, 0))
        .collect()
}

/// Delivers every queued message to its targets until the network is
/// quiescent.
fn pump<M: Mempool>(net: &mut [M], mut pending: Vec<(ReplicaId, Dest, M::Msg)>) {
    let mut r = SmallRng::seed_from_u64(11);
    let mut rounds = 0;
    while !pending.is_empty() {
        rounds += 1;
        assert!(rounds < 128, "network failed to quiesce");
        let mut next = Vec::new();
        for (from, dest, msg) in pending.drain(..) {
            let targets: Vec<usize> = match &dest {
                Dest::One(t) => vec![t.index()],
                Dest::AllButSelf => (0..net.len()).filter(|i| *i != from.index()).collect(),
                Dest::Many(ts) => ts.iter().map(|t| t.index()).collect(),
            };
            for t in targets {
                let fx = net[t].on_message(100, from, msg.clone(), &mut r);
                let me = ReplicaId(t as u32);
                next.extend(fx.msgs.into_iter().map(|(d, m)| (me, d, m)));
            }
        }
        pending = next;
    }
}

/// Runs seal → disseminate → fill → commit for one backend and returns
/// `(payload hashes performed, refs committed)`.
fn drive<M: Mempool>(mut net: Vec<M>) -> (u64, u64) {
    let mut r = SmallRng::seed_from_u64(9);
    let before = mb_id_derivations();

    // Seal: replica 0 batches the whole workload and disseminates it.
    let fx = net[0].on_client_txs(0, txs(), &mut r);
    let pending: Vec<_> = fx
        .msgs
        .into_iter()
        .map(|(d, m)| (ReplicaId(0), d, m))
        .collect();
    pump(&mut net, pending);

    // Fill + commit: replica 0 proposes its queue; everyone resolves and
    // commits each proposal.
    let mut committed = 0u64;
    let mut view = 1u64;
    loop {
        let payload = net[0].make_payload(1_000);
        let refs = match &payload {
            Payload::Refs(refs) => refs.len() as u64,
            _ => break,
        };
        committed += refs;
        let p = Proposal::new(
            View(view),
            view,
            BlockId::GENESIS,
            ReplicaId(0),
            payload,
            true,
        );
        view += 1;
        let mut msgs = Vec::new();
        for (i, node) in net.iter_mut().enumerate() {
            let me = ReplicaId(i as u32);
            let (_, fx) = node.on_proposal(1_000, &p, &mut r);
            msgs.extend(fx.msgs.into_iter().map(|(d, m)| (me, d, m)));
            let fx = node.on_commit(1_100, &p);
            msgs.extend(fx.msgs.into_iter().map(|(d, m)| (me, d, m)));
        }
        pump(&mut net, msgs);
    }
    (mb_id_derivations() - before, committed)
}

#[test]
fn gossip_path_hashes_each_payload_exactly_once() {
    let cfg = config();
    let net: Vec<GossipSmp> = (0..N)
        .map(|i| GossipSmp::new(&cfg, ReplicaId(i as u32)))
        .collect();
    let (hashes, committed) = drive(net);
    assert_eq!(committed, BATCHES, "workload did not commit fully");
    assert_eq!(
        hashes, BATCHES,
        "gossip/fill path re-hashed a payload (expected one derivation per sealed batch)"
    );
}

#[test]
fn dag_path_hashes_each_payload_exactly_once() {
    let cfg = config();
    let net: Vec<DagMempool> = (0..N)
        .map(|i| DagMempool::new(&cfg, ReplicaId(i as u32)))
        .collect();
    let (hashes, committed) = drive(net);
    assert_eq!(committed, BATCHES, "workload did not commit fully");
    assert_eq!(
        hashes, BATCHES,
        "DAG block/ack path re-hashed a payload (expected one derivation per sealed batch)"
    );
}
