//! Criterion micro-benchmarks of the consensus engines: a full
//! empty-payload round on a small in-process network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_consensus::testkit::{drive_until_quiet, EngineNet};
use smp_consensus::{HotStuffEngine, PbftEngine};
use smp_types::{ReplicaId, SystemConfig};

fn bench_hotstuff_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotstuff_empty_rounds");
    for &n in &[4usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| {
                let config = SystemConfig::new(n);
                let engines = (0..n as u32)
                    .map(|i| HotStuffEngine::new(&config, ReplicaId(i)))
                    .collect();
                let mut net: EngineNet<HotStuffEngine> = EngineNet::new(engines);
                net.start();
                drive_until_quiet(&mut net, 10);
                net.committed_chains()[0].len()
            })
        });
    }
    group.finish();
}

fn bench_pbft_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("pbft_empty_rounds");
    for &n in &[4usize, 16] {
        group.bench_with_input(BenchmarkId::new("n", n), &n, |b, &n| {
            b.iter(|| {
                let config = SystemConfig::new(n);
                let engines = (0..n as u32)
                    .map(|i| PbftEngine::new(&config, ReplicaId(i)))
                    .collect();
                let mut net: EngineNet<PbftEngine> = EngineNet::new(engines);
                net.start();
                drive_until_quiet(&mut net, 10);
                net.committed_chains()[0].len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hotstuff_rounds, bench_pbft_rounds);
criterion_main!(benches);
