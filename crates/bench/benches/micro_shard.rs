//! Criterion micro-benchmarks of the sharded mempool hot paths: routing,
//! client-transaction fan-out, and cross-shard payload assembly as the
//! shard count grows.

use criterion::{criterion_group, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_bench::{BenchRecorder, Scale};
use smp_mempool::{Mempool, SimpleSmp};
use smp_shard::{ShardRouter, ShardedMempool};
use smp_types::{ClientId, MempoolConfig, ReplicaId, SystemConfig, Transaction};

fn txs(n: usize, base: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| Transaction::synthetic(ClientId(1), base + i as u64, 128, 0))
        .collect()
}

fn system(shards: usize) -> SystemConfig {
    SystemConfig::new(16)
        .with_shards(shards)
        .with_mempool(MempoolConfig {
            batch_size_bytes: 16 * 1024,
            ..MempoolConfig::default()
        })
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_router_1k_txs");
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("partition", shards),
            &shards,
            |b, &shards| {
                let router = ShardRouter::new(shards);
                let mut base = 0u64;
                b.iter(|| {
                    base += 1_000;
                    router.partition(txs(1_000, base))
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_ingest_1k_txs");
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("simple_smp", shards),
            &shards,
            |b, &shards| {
                let sys = system(shards);
                let mut rng = SmallRng::seed_from_u64(1);
                let mut mp = ShardedMempool::from_system(&sys, 0, |_, scfg| {
                    SimpleSmp::new(scfg, ReplicaId(0))
                });
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1_000;
                    mp.on_client_txs(seq, txs(1_000, seq), &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_cross_shard_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_shard_make_payload");
    for shards in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("assemble", shards),
            &shards,
            |b, &shards| {
                let sys = system(shards);
                let mut rng = SmallRng::seed_from_u64(2);
                let mut mp = ShardedMempool::from_system(&sys, 0, |_, scfg| {
                    SimpleSmp::new(scfg, ReplicaId(0))
                });
                let mut seq = 0u64;
                b.iter(|| {
                    // Keep refilling so every call assembles real content.
                    seq += 2_000;
                    let _ = mp.on_client_txs(seq, txs(2_000, seq), &mut rng);
                    mp.make_payload(seq)
                })
            },
        );
    }
    group.finish();
}

fn bench_executor_comparison(c: &mut Criterion) {
    // Sequential vs parallel executor on the same workload: ingest a
    // large client batch and assemble the cross-shard payload.  The two
    // produce byte-identical results; this measures the wall-clock gain
    // of spreading the pipelines over worker threads once the per-shard
    // work outweighs the inbox hand-off.  Deployment behaviour is what
    // is measured: on a single-core host the parallel executor degrades
    // to inline execution, which the warning below makes explicit.
    if std::thread::available_parallelism()
        .map(|p| p.get() < 2)
        .unwrap_or(false)
    {
        eprintln!(
            "note: single-core host — ParallelExecutor degrades to inline execution, so the \
             'parallel' rows measure what a deployment would run here, not worker threads \
             (set SMP_FORCE_PARALLEL=1 to force them)"
        );
    }
    let mut group = c.benchmark_group("executor_ingest_4k_txs");
    for shards in [2usize, 4] {
        for kind in ["sequential", "parallel"] {
            group.bench_with_input(BenchmarkId::new(kind, shards), &shards, |b, &shards| {
                let sys = system(shards);
                let mut rng = SmallRng::seed_from_u64(3);
                let mut mp = if kind == "sequential" {
                    ShardedMempool::sequential(&sys, shards, 0, |_, scfg| {
                        SimpleSmp::new(scfg, ReplicaId(0))
                    })
                } else {
                    ShardedMempool::parallel(&sys, shards, 0, |_, scfg| {
                        SimpleSmp::new(scfg, ReplicaId(0))
                    })
                };
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 4_000;
                    let _ = mp.on_client_txs(seq, txs(4_000, seq), &mut rng);
                    mp.make_payload(seq)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_router,
    bench_sharded_ingest,
    bench_cross_shard_payload,
    bench_executor_comparison
);

// Custom main instead of `criterion_main!`: runs the groups, then exports
// the collected measurements as a `BENCH_micro_shard.json` artifact when
// `--bench-out <path>` is passed (e.g. via
// `cargo bench --bench micro_shard -- --bench-out bench-out/`).
fn main() {
    let mut rec = BenchRecorder::from_args("micro_shard", Scale::from_args());
    benches();
    for r in criterion::take_reports() {
        rec.metric(&r.id, "ns_per_iter", r.ns_per_iter);
    }
    rec.finish();
}
