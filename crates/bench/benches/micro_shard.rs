//! Criterion micro-benchmarks of the sharded mempool hot paths: routing,
//! client-transaction fan-out, and cross-shard payload assembly as the
//! shard count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{Mempool, SimpleSmp};
use smp_shard::{ShardRouter, ShardedMempool};
use smp_types::{ClientId, MempoolConfig, ReplicaId, SystemConfig, Transaction};

fn txs(n: usize, base: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| Transaction::synthetic(ClientId(1), base + i as u64, 128, 0))
        .collect()
}

fn system(shards: usize) -> SystemConfig {
    SystemConfig::new(16)
        .with_shards(shards)
        .with_mempool(MempoolConfig {
            batch_size_bytes: 16 * 1024,
            ..MempoolConfig::default()
        })
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_router_1k_txs");
    for shards in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("partition", shards),
            &shards,
            |b, &shards| {
                let router = ShardRouter::new(shards);
                let mut base = 0u64;
                b.iter(|| {
                    base += 1_000;
                    router.partition(txs(1_000, base))
                })
            },
        );
    }
    group.finish();
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_ingest_1k_txs");
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("simple_smp", shards),
            &shards,
            |b, &shards| {
                let sys = system(shards);
                let mut rng = SmallRng::seed_from_u64(1);
                let mut mp =
                    ShardedMempool::from_system(&sys, |_| SimpleSmp::new(&sys, ReplicaId(0)));
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1_000;
                    mp.on_client_txs(seq, txs(1_000, seq), &mut rng)
                })
            },
        );
    }
    group.finish();
}

fn bench_cross_shard_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_shard_make_payload");
    for shards in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("assemble", shards),
            &shards,
            |b, &shards| {
                let sys = system(shards);
                let mut rng = SmallRng::seed_from_u64(2);
                let mut mp =
                    ShardedMempool::from_system(&sys, |_| SimpleSmp::new(&sys, ReplicaId(0)));
                let mut seq = 0u64;
                b.iter(|| {
                    // Keep refilling so every call assembles real content.
                    seq += 2_000;
                    let _ = mp.on_client_txs(seq, txs(2_000, seq), &mut rng);
                    mp.make_payload(seq)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_router,
    bench_sharded_ingest,
    bench_cross_shard_payload
);
criterion_main!(benches);
