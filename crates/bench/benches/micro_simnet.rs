//! Criterion micro-benchmarks of the discrete-event simulator itself:
//! event throughput for broadcast-heavy workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simnet::{NetConfig, Node, NodeCtx, SimMessage, Simulation, TimerTag};
use smp_types::ReplicaId;

#[derive(Clone, Debug)]
struct Ping(u64);
impl SimMessage for Ping {
    fn wire_size(&self) -> usize {
        256
    }
    fn kind(&self) -> &'static str {
        "ping"
    }
    fn cpu_cost_us(&self) -> f64 {
        1.0
    }
}

/// Every node rebroadcasts each ping it receives, up to a hop budget.
struct Flooder;
impl Node for Flooder {
    type Msg = Ping;
    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Ping>) {
        if ctx.id() == ReplicaId(0) {
            ctx.broadcast(Ping(3));
        }
    }
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Ping>, _from: ReplicaId, msg: Ping) {
        if msg.0 > 0 {
            ctx.broadcast(Ping(msg.0 - 1));
        }
    }
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, Ping>, _tag: TimerTag) {}
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_flood");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        group.bench_with_input(BenchmarkId::new("nodes", n), &n, |b, &n| {
            b.iter(|| {
                let nodes = (0..n).map(|_| Flooder).collect();
                let mut sim = Simulation::new(nodes, NetConfig::lan(), 1);
                sim.run_until(10_000_000);
                sim.events_processed()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_throughput);
criterion_main!(benches);
