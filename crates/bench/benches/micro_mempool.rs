//! Criterion micro-benchmarks of the mempool hot paths: batching client
//! transactions, building proposals, and the DLB estimator / sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{Mempool, SimpleSmp};
use smp_types::{ClientId, MempoolConfig, ReplicaId, SystemConfig, Transaction};
use stratus::{DlbConfig, LoadBalancer, StableTimeEstimator, StratusConfig, StratusMempool};

fn txs(n: usize, base: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| Transaction::synthetic(ClientId(1), base + i as u64, 128, 0))
        .collect()
}

fn system() -> SystemConfig {
    SystemConfig::new(16).with_mempool(MempoolConfig {
        batch_size_bytes: 128 * 1024,
        ..MempoolConfig::default()
    })
}

fn bench_client_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("mempool_ingest_1k_txs");
    group.bench_function("stratus", |b| {
        let sys = system();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seq = 0u64;
        let mut mp = StratusMempool::new(&sys, StratusConfig::default(), ReplicaId(0));
        b.iter(|| {
            seq += 1_000;
            mp.on_client_txs(seq, txs(1_000, seq), &mut rng)
        })
    });
    group.bench_function("simple_smp", |b| {
        let sys = system();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seq = 0u64;
        let mut mp = SimpleSmp::new(&sys, ReplicaId(0));
        b.iter(|| {
            seq += 1_000;
            mp.on_client_txs(seq, txs(1_000, seq), &mut rng)
        })
    });
    group.finish();
}

fn bench_estimator(c: &mut Criterion) {
    c.bench_function("stable_time_estimator_record_and_query", |b| {
        let mut est = StableTimeEstimator::new(100, 95.0, 2.0);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            est.record(100_000 + (t % 37) * 1_000);
            (est.estimate(), est.is_busy())
        })
    });
}

fn bench_pod_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dlb_pod_sampling");
    for &d in &[1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("d", d), &d, |b, &d| {
            let mut lb = LoadBalancer::new(ReplicaId(0), 400, DlbConfig::default().with_d(d));
            let mut rng = SmallRng::seed_from_u64(5);
            let mb = smp_types::Microblock::seal(ReplicaId(0), txs(16, 0), 0);
            b.iter(|| {
                if let Some((token, targets)) = lb.start_sampling(mb.clone(), &mut rng) {
                    for (i, t) in targets.iter().enumerate() {
                        let _ = lb.on_load_info(token, *t, Some(1_000 + i as u64));
                    }
                }
                lb.reset_banlist();
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_client_ingest,
    bench_estimator,
    bench_pod_sampling
);
criterion_main!(benches);
