//! Criterion micro-benchmarks of the PAB primitive: availability-proof
//! generation, verification, and the push-phase ack path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_crypto::{KeyPair, QuorumProof, Signature};
use smp_types::{ClientId, Microblock, ReplicaId, Transaction};
use stratus::PabEngine;

fn microblock(txs: usize) -> Microblock {
    let txs = (0..txs)
        .map(|i| Transaction::synthetic(ClientId(0), i as u64, 128, 0))
        .collect();
    Microblock::seal(ReplicaId(0), txs, 0)
}

fn bench_proof_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("pab_proof");
    for &q in &[2usize, 11, 22, 45] {
        let n = 3 * (q - 1) + 1;
        let keys = KeyPair::derive_all(7, n.max(q + 1));
        let mb = microblock(16);
        group.bench_with_input(BenchmarkId::new("aggregate", q), &q, |b, &q| {
            b.iter(|| {
                let mut proof = QuorumProof::new(mb.id.digest());
                for k in keys.iter().take(q) {
                    proof.add(Signature::sign(&k.secret, &mb.id.digest()));
                }
                proof
            })
        });
        let proof = QuorumProof::from_signatures(
            mb.id.digest(),
            keys.iter()
                .take(q)
                .map(|k| Signature::sign(&k.secret, &mb.id.digest())),
        );
        let pks: Vec<_> = keys.iter().map(|k| k.public).collect();
        group.bench_with_input(BenchmarkId::new("verify", q), &q, |b, &q| {
            b.iter(|| proof.verify(&pks, q).unwrap())
        });
    }
    group.finish();
}

fn bench_push_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("pab_push_phase");
    for &n in &[4usize, 16, 64] {
        let quorum = (n - 1) / 3 + 1;
        group.bench_with_input(BenchmarkId::new("acks_to_proof", n), &n, |b, &n| {
            let mb = microblock(64);
            b.iter(|| {
                let mut engines: Vec<PabEngine> = (0..n as u32)
                    .map(|i| PabEngine::new(7, n, ReplicaId(i), quorum, 0.5))
                    .collect();
                engines[0].start_push(&mb, 0, None);
                let mut ready = None;
                for i in 1..n {
                    let ack = engines[i].ack_for(&mb.id);
                    if let Some(r) = engines[0].on_ack(mb.id, ack, i as u64) {
                        ready = Some(r);
                        break;
                    }
                }
                ready.expect("quorum reached")
            })
        });
    }
    group.finish();
}

fn bench_fetch_target_selection(c: &mut Criterion) {
    let n = 100;
    let quorum = 34;
    let keys = KeyPair::derive_all(7, n);
    let mb = microblock(4);
    let proof = QuorumProof::from_signatures(
        mb.id.digest(),
        keys.iter()
            .take(quorum)
            .map(|k| Signature::sign(&k.secret, &mb.id.digest())),
    );
    let engine = PabEngine::new(7, n, ReplicaId(99), quorum, 0.5);
    let mut rng = SmallRng::seed_from_u64(3);
    c.bench_function("pab_fetch_targets_n100", |b| {
        b.iter(|| engine.fetch_targets(&proof, &[], &mut rng))
    });
}

criterion_group!(
    benches,
    bench_proof_generation,
    bench_push_phase,
    bench_fetch_target_selection
);
criterion_main!(benches);
