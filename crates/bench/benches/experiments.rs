//! End-to-end experiment benchmarks: small versions of the paper's
//! headline comparison (Figure 7's 16-replica point) run under Criterion
//! so `cargo bench` exercises the full stack.  The paper-scale sweeps are
//! produced by the `fig*`/`table*` binaries (see DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smp_replica::{run, ExperimentConfig, Protocol};

fn bench_protocol_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_n16_lan");
    group.sample_size(10);
    for protocol in [
        Protocol::NativeHotStuff,
        Protocol::SmpHotStuff,
        Protocol::StratusHotStuff,
        Protocol::StratusPbft,
    ] {
        group.bench_with_input(
            BenchmarkId::new("protocol", protocol.label()),
            &protocol,
            |b, &protocol| {
                b.iter(|| {
                    let cfg = ExperimentConfig::new(protocol, 16, 10_000.0)
                        .with_duration(500_000, 1_500_000)
                        .with_batch_size(32 * 1024);
                    run(&cfg).committed_txs
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_comparison);
criterion_main!(benches);
