//! DAG head-to-head: the Table-II-style comparison the paper never ran —
//! the Mysticeti-style DAG mempool (D-HS certified, D-HS-F fast path)
//! against Narwhal reliable broadcast, Stratus (S-HS), and the native
//! baseline (N-HS), on the LAN and WAN presets.
//!
//! Where Narwhal pays `O(n²)` echo/ready messages per batch and S-HS
//! pays a separate ack round, the DAG pays one block broadcast per batch
//! with acks piggybacked — the interesting question is how much of that
//! message-complexity win survives contention and WAN latency.
//!
//! `--quick` / `--full`; `--sizes 4,8` overrides the replica grid;
//! `--bench-out <dir>` records a schema-v2 artifact for `bench_gate`.

use smp_bench::{arg_value, header, print_point, rate_grid, saturated, BenchRecorder, Scale};
use smp_replica::{ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    header("DAG head-to-head — D-HS vs N-HS vs S-HS", scale);
    let mut rec = BenchRecorder::from_args("fig_dag_headtohead", scale);

    let sizes: Vec<usize> = match arg_value("--sizes") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--sizes takes replica counts"))
            .collect(),
        None => scale.pick(vec![4, 8], vec![8, 16, 32]),
    };
    let protocols = [
        Protocol::DagHotStuff,
        Protocol::DagHotStuffFast,
        Protocol::Narwhal,
        Protocol::StratusHotStuff,
        Protocol::NativeHotStuff,
    ];

    for wan in [false, true] {
        let net = if wan { "wan" } else { "lan" };
        let rates = rate_grid(scale, wan);
        for &n in &sizes {
            println!("\n--- {} n = {n} ---", net.to_uppercase());
            for protocol in protocols {
                let mut cfg = ExperimentConfig::new(protocol, n, rates[0])
                    .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC);
                if wan {
                    cfg = cfg.wan();
                }
                let best = saturated(&cfg, &rates);
                print_point("n", n, &best);
                rec.result(&format!("{net}/n={n}/{}", best.summary.label), &best);
            }
        }
    }
    rec.finish();
    println!("\nExpected shape: D-HS tracks or beats Narwhal (same certificates, O(n) instead");
    println!("of O(n^2) messages per batch); D-HS-F trades the certificate for one fewer hop");
    println!("and leads on LAN latency; S-HS stays the throughput reference; N-HS trails as");
    println!("proposals carry full transaction data.");
}
