//! Figure 7: scalability of every protocol in LAN and WAN settings —
//! saturated throughput and latency as the replica count grows.
//!
//! `--net lan` (default) or `--net wan`; `--quick` / `--full`.
//! `--sizes 16,32` overrides the replica-count grid — CI uses this to
//! keep the recorded-baseline run bounded (the O(n^2) protocols make
//! n = 64 an hour-scale simulation on one core).

use smp_bench::{arg_value, header, print_point, rate_grid, saturated, BenchRecorder, Scale};
use smp_replica::{ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    let net = arg_value("--net").unwrap_or_else(|| "lan".to_string());
    let wan = net == "wan";
    header(
        &format!("Figure 7 — scalability ({})", net.to_uppercase()),
        scale,
    );
    let mut rec = BenchRecorder::from_args("fig7_scalability", scale);

    let sizes: Vec<usize> = match arg_value("--sizes") {
        Some(list) => list
            .split(',')
            .map(|s| s.trim().parse().expect("--sizes takes replica counts"))
            .collect(),
        None => scale.pick(vec![16, 32, 64], vec![16, 64, 128, 256, 400]),
    };
    let rates = rate_grid(scale, wan);

    for n in sizes {
        println!("\n--- n = {n} ---");
        for protocol in Protocol::figure7_set() {
            let mut cfg = ExperimentConfig::new(protocol, n, rates[0])
                .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC)
                .with_batch_size(if n >= 256 { 256 * 1024 } else { 128 * 1024 });
            if wan {
                cfg = cfg.wan();
            }
            let best = saturated(&cfg, &rates);
            print_point("n", n, &best);
            rec.result(&format!("{net}/n={n}/{}", best.summary.label), &best);
        }
    }
    rec.finish();
    println!("\nExpected shape (paper Figure 7): the native protocols collapse as n grows; the");
    println!("shared-mempool protocols stay flat, with S-HS/S-PBFT ahead of Narwhal (O(n^2) RB)");
    println!("and MirBFT; at 128+ replicas the gap to the native baselines reaches 5-20x.");
}
