//! Figure 5: inter-datacenter round-trip delay stability (synthetic trace
//! with the statistical shape of the paper's Virginia ↔ Singapore
//! measurements).

use smp_bench::{header, BenchRecorder, Scale};
use smp_workload::{DelayTrace, TraceConfig};

fn main() {
    let scale = Scale::from_args();
    header(
        "Figure 5 — WAN round-trip delay stability (synthetic trace)",
        scale,
    );
    let config = TraceConfig {
        minutes: scale.pick(120, 1_440),
        samples_per_minute: scale.pick(1_000, 4_000),
        ..TraceConfig::default()
    };
    let trace = DelayTrace::generate(config, 2023);

    println!("\n(a) heat map: samples per 1 ms bin, aggregated over the whole trace");
    for (bin, count) in trace.histogram_1ms() {
        let bar = "#".repeat(((count as f64).log10() * 8.0).max(1.0) as usize);
        println!("  {bin:>4} ms  {count:>9}  {bar}");
    }

    println!("\n(b) distribution within one minute (minute 12h equivalent)");
    let minute = trace.samples.len() / 2;
    for p in [1.0, 25.0, 50.0, 75.0, 99.0] {
        println!("  p{p:<4} = {:.2} ms", trace.minute_percentile(minute, p));
    }
    println!("\nmean over the trace: {:.2} ms", trace.mean_ms());
    let mut rec = BenchRecorder::from_args("fig5_delay_trace", scale);
    rec.metric("trace", "mean_ms", trace.mean_ms());
    rec.metric("trace", "p50_ms", trace.minute_percentile(minute, 50.0));
    rec.metric("trace", "p99_ms", trace.minute_percentile(minute, 99.0));
    rec.finish();
    println!(
        "=> delays are stable and predictable, which is what the stable-time estimator relies on."
    );
}
