//! Figure 9: throughput and latency as the number of Byzantine senders
//! grows — SMP-HS vs S-HS with the f+1 and 2f+1 PAB quorums (LAN).

use smp_bench::{header, BenchRecorder, Scale};
use smp_replica::{run, ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    header("Figure 9 — impact of Byzantine senders (LAN)", scale);
    let mut rec = BenchRecorder::from_args("fig9_byzantine", scale);

    // (network size, byzantine counts) as in the paper; scaled down in
    // quick mode.
    let grids: Vec<(usize, Vec<usize>)> = scale.pick(
        vec![(16, vec![0, 2, 5]), (32, vec![0, 5, 10])],
        vec![(100, vec![0, 10, 20, 30]), (200, vec![0, 20, 40, 60])],
    );
    let rate = scale.pick(20_000.0, 60_000.0);

    for (n, byz_counts) in grids {
        println!("\n--- {n} total replicas ---");
        println!(
            "{:<10} {:>6} {:>12} {:>12} {:>8}",
            "protocol", "byz", "KTx/s", "lat ms", "vc"
        );
        for byz in byz_counts {
            let f = (n - 1) / 3;
            let configs = [
                ("SMP-HS", Protocol::SmpHotStuff, None, 0usize),
                ("S-HS-f", Protocol::StratusHotStuff, Some(f + 1), f + 1),
                (
                    "S-HS-2f",
                    Protocol::StratusHotStuff,
                    Some(2 * f + 1),
                    2 * f + 1,
                ),
            ];
            for (label, protocol, quorum, extra) in configs {
                let mut cfg = ExperimentConfig::new(protocol, n, rate)
                    .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC)
                    .with_byzantine(byz, extra);
                if let Some(q) = quorum {
                    cfg = cfg.with_pab_quorum(q);
                }
                let r = run(&cfg);
                println!(
                    "{label:<10} {byz:>6} {:>12.2} {:>12.1} {:>8}",
                    r.summary.throughput_ktps, r.summary.mean_latency_ms, r.view_changes
                );
                rec.result(&format!("n={n}/byz={byz}/{label}"), &r);
            }
        }
    }
    rec.finish();
    println!(
        "\nExpected shape (paper Figure 9): SMP-HS throughput collapses and latency surges as"
    );
    println!("Byzantine senders grow (every proposal forces fetches from the leader); S-HS only");
    println!("dips slightly, with the 2f+1 quorum trading a little latency for fewer fetches.");
}
