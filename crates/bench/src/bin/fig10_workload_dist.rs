//! Figure 10: the Zipfian workload distributions used in the
//! load-balancing evaluation.

use smp_bench::{header, BenchRecorder, Scale};
use smp_workload::ZipfWeights;

fn main() {
    let scale = Scale::from_args();
    header("Figure 10 — Zipfian workload distributions", scale);
    let mut rec = BenchRecorder::from_args("fig10_workload_dist", scale);
    let sizes: Vec<usize> = scale.pick(vec![100, 200], vec![100, 200, 300, 400]);
    for n in sizes {
        let z1 = ZipfWeights::zipf1(n);
        let z10 = ZipfWeights::zipf10(n);
        println!("\n--- {n} replicas ---");
        println!(
            "Zipf1  (s=1.01, v=1):  head share = {:.3}   top-10% share = {:.3}",
            z1.share(0),
            z1.top_share(n / 10)
        );
        println!(
            "Zipf10 (s=1.01, v=10): head share = {:.3}   top-10% share = {:.3}",
            z10.share(0),
            z10.top_share(n / 10)
        );
        println!("share by rank (first 10):");
        print!("  Zipf1 :");
        for k in 0..10 {
            print!(" {:.3}", z1.share(k));
        }
        print!("\n  Zipf10:");
        for k in 0..10 {
            print!(" {:.3}", z10.share(k));
        }
        println!();
        let label = format!("n={n}");
        rec.metric(&label, "zipf1_head_share", z1.share(0));
        rec.metric(&label, "zipf10_head_share", z10.share(0));
        rec.metric(&label, "zipf1_top10pct_share", z1.top_share(n / 10));
        rec.metric(&label, "zipf10_top10pct_share", z10.top_share(n / 10));
    }
    rec.finish();
    println!("\nPaper reference points: with 100 replicas the most loaded replica receives ~0.196");
    println!("of the load under Zipf1 and ~0.041 under Zipf10 (Figure 10a).");
}
