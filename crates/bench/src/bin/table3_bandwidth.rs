//! Table III: outbound bandwidth consumption by role and message type for
//! N-HS, SMP-HS and S-HS with 64 replicas and 100 Mb/s per replica.

use smp_bench::{header, rate_grid, saturated, BenchRecorder, Scale};
use smp_replica::{ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    header(
        "Table III — outbound bandwidth by role and message type (WAN, saturated)",
        scale,
    );
    let mut rec = BenchRecorder::from_args("table3_bandwidth", scale);
    let n = scale.pick(16, 64);
    let rates = rate_grid(scale, true);

    for protocol in [
        Protocol::NativeHotStuff,
        Protocol::SmpHotStuff,
        Protocol::StratusHotStuff,
    ] {
        let cfg = ExperimentConfig::new(protocol, n, rates[0])
            .wan()
            .with_duration(MICROS_PER_SEC, scale.pick(3, 6) * MICROS_PER_SEC);
        let best = saturated(&cfg, &rates);
        println!(
            "\n=== {} (n = {n}, saturated at {:.0} tx/s offered) ===",
            protocol.label(),
            best.offered_tps
        );
        println!("{:<12} {:<14} {:>10}", "role", "message", "Mb/s");
        rec.result(protocol.label(), &best);
        for (role, kind, mbps) in best.bandwidth.rows() {
            println!("{role:<12} {kind:<14} {mbps:>10.1}");
            rec.metric(protocol.label(), &format!("{role}.{kind}_mbps"), mbps);
        }
    }
    rec.finish();
    println!("\nExpected shape (paper Table III): N-HS concentrates its outbound bandwidth in the");
    println!("leader's proposals while non-leaders sit almost idle; SMP-HS and S-HS spread the");
    println!(
        "microblock traffic over all replicas, with S-HS adding ~10% overhead for acks/proofs."
    );
}
