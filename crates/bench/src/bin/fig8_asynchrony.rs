//! Figure 8: throughput timeline while a 10-second network fluctuation
//! (delays of 100–300 ms) is injected — SMP-HS vs S-HS at a fixed offered
//! rate of 25 KTx/s in the WAN setting.

use simnet::FaultWindow;
use smp_bench::{header, BenchRecorder, Scale};
use smp_replica::{run, ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    header(
        "Figure 8 — throughput under a network fluctuation (WAN)",
        scale,
    );

    let n = scale.pick(16, 32);
    let rate = scale.pick(10_000.0, 25_000.0);
    let total_secs = scale.pick(15u64, 30u64);
    let fluct_start = scale.pick(5u64, 10u64);
    let fluct_len = scale.pick(5u64, 10u64);
    let window = FaultWindow {
        start: fluct_start * MICROS_PER_SEC,
        end: (fluct_start + fluct_len) * MICROS_PER_SEC,
        min_delay_us: 100_000,
        max_delay_us: 300_000,
    };

    let mut rec = BenchRecorder::from_args("fig8_asynchrony", scale);
    let mut series = Vec::new();
    for protocol in [Protocol::SmpHotStuff, Protocol::StratusHotStuff] {
        let cfg = ExperimentConfig::new(protocol, n, rate)
            .wan()
            .with_duration(0, total_secs * MICROS_PER_SEC)
            .with_fault_window(window);
        let r = run(&cfg);
        println!(
            "{}: total committed = {}, view changes = {}",
            protocol.label(),
            r.committed_txs,
            r.view_changes
        );
        rec.result(protocol.label(), &r);
        series.push((protocol.label(), r.throughput_series.clone()));
    }
    rec.finish();

    println!(
        "\nper-second committed throughput (KTx/s); fluctuation during t = {fluct_start}..{} s",
        fluct_start + fluct_len
    );
    println!("{:<6} {:>12} {:>12}", "t (s)", series[0].0, series[1].0);
    let len = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    for t in 0..len {
        let a = series[0].1.get(t).copied().unwrap_or(0.0) / 1_000.0;
        let b = series[1].1.get(t).copied().unwrap_or(0.0) / 1_000.0;
        let marker = if (t as u64) >= fluct_start && (t as u64) < fluct_start + fluct_len {
            "  <-- fluctuation"
        } else {
            ""
        };
        println!("{t:<6} {a:>12.1} {b:>12.1}{marker}");
    }
    println!(
        "\nExpected shape (paper Figure 8): SMP-HS drops to ~0 during the fluctuation (missing"
    );
    println!("microblocks block consensus, view changes fire) and recovers slowly; S-HS keeps");
    println!("committing at network speed with no view changes.");
}
