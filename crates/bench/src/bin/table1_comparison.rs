//! Table I: approaches to the leader bottleneck — availability guarantee,
//! load balancing, and *measured* per-microblock message complexity on our
//! substrate.

use smp_bench::{header, BenchRecorder, Scale};
use smp_replica::{run, ExperimentConfig, Protocol};

fn main() {
    let scale = Scale::from_args();
    header(
        "Table I — existing work addressing the leader bottleneck",
        scale,
    );
    let mut rec = BenchRecorder::from_args("table1_comparison", scale);
    let n = scale.pick(16, 64);
    let rate = 10_000.0;

    println!(
        "{:<12} {:<12} {:>12} {:>12} {:>22}",
        "Protocol", "Approach", "Avail.", "Load bal.", "msgs per microblock"
    );
    let rows = [
        (Protocol::SmpHotStuffGossip, "Gossip", "no", "partial"),
        (Protocol::SmpHotStuff, "SMP", "no", "no"),
        (Protocol::Narwhal, "SMP (RB)", "yes", "no"),
        (Protocol::MirBft, "Multi-leader", "no", "no"),
        (Protocol::StratusHotStuff, "SMP (PAB)", "yes", "yes"),
    ];
    for (protocol, approach, avail, lb) in rows {
        let cfg = ExperimentConfig::new(protocol, n, rate)
            .with_duration(1_000_000, 3_000_000)
            .with_batch_size(32 * 1024);
        let result = run(&cfg);
        // Message complexity: dissemination + ack/vote messages per
        // committed microblock-equivalent (2,000 tx batches).
        let msgs = if result.committed_txs == 0 {
            f64::NAN
        } else {
            // proposals + votes + microblocks + acks, normalized.
            let per_kind = &result.bandwidth.non_leader.mbps_by_kind;
            let control: f64 = per_kind
                .iter()
                .filter(|(k, _)| k.as_str() != "microblock")
                .map(|(_, v)| *v)
                .sum();
            let data = per_kind.get("microblock").copied().unwrap_or(0.0);
            if data == 0.0 {
                0.0
            } else {
                (control + data) / data * n as f64
            }
        };
        println!(
            "{:<12} {:<12} {:>12} {:>12} {:>18.0} (~O({}))",
            protocol.label(),
            approach,
            avail,
            lb,
            msgs,
            if matches!(protocol, Protocol::Narwhal | Protocol::MirBft) {
                "n^2"
            } else {
                "n"
            }
        );
        rec.result(protocol.label(), &result);
        if msgs.is_finite() {
            rec.metric(protocol.label(), "msgs_per_microblock", msgs);
        }
    }
    rec.finish();
    println!("\n(The qualitative columns restate Table I; the last column is measured on the simulator.)");
}
