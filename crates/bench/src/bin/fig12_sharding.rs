//! Figure 12 (extension): throughput vs. shard count for the sharded
//! shared mempool (`smp-shard`).
//!
//! Runs Stratus-HotStuff and Narwhal with k ∈ {1, 2, 4, 8} dissemination
//! shards per replica at a saturating offered load and prints a
//! throughput-vs-shards table.  One shard is the unwrapped backend
//! (pass-through), so the k = 1 row doubles as the baseline.
//!
//! `--net lan` (default) or `--net wan`; `--quick` / `--full`.

use smp_bench::{arg_value, header, print_point, rate_grid, saturated, Scale};
use smp_replica::{ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    let net = arg_value("--net").unwrap_or_else(|| "lan".to_string());
    let wan = net == "wan";
    header(
        &format!(
            "Figure 12 — sharded mempool scaling ({})",
            net.to_uppercase()
        ),
        scale,
    );

    let n = scale.pick(8, 32);
    let shard_counts: Vec<usize> = scale.pick(vec![1, 2, 4], vec![1, 2, 4, 8]);
    let rates = rate_grid(scale, wan);

    for protocol in [Protocol::StratusHotStuff, Protocol::Narwhal] {
        println!("\n--- {} (n = {n}) ---", protocol.label());
        for &shards in &shard_counts {
            let mut cfg = ExperimentConfig::new(protocol, n, rates[0])
                .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC)
                .with_shards(shards);
            if wan {
                cfg = cfg.wan();
            }
            let best = saturated(&cfg, &rates);
            print_point("shards", shards, &best);
        }
    }
    println!("\nExpected shape: with one shard the sharded wrapper matches the unwrapped");
    println!("backend exactly; as k grows, dissemination work spreads over k independent");
    println!("pipelines per replica, so saturated throughput holds or improves while");
    println!("per-pipeline batching latency rises slightly at low offered load.");
}
