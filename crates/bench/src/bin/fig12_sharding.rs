//! Figure 12 (extension): throughput vs. shard count for the sharded
//! shared mempool (`smp-shard`), under both shard executors.
//!
//! Runs Stratus-HotStuff and Narwhal with k ∈ {1, 2, 4, 8} dissemination
//! shards per replica at a saturating offered load and prints a
//! throughput-vs-shards table.  One shard is the unwrapped backend
//! (pass-through), so the k = 1 row doubles as the baseline.  Every
//! point runs twice — sequential executor and parallel (one worker
//! thread per shard) — and reports the parallel/sequential throughput
//! ratio; the two are byte-identical in *simulated* results, so the
//! ratio isolates the wall-clock speed-up of multi-core dissemination.
//!
//! `--quick` is a LAN sanity sweep at n = 8; `--full` is the
//! paper-scale figure-12 setting: the WAN preset (100 Mb/s, 100 ms RTT)
//! at n = 32.  `--net lan|wan` overrides the preset either way.

use smp_bench::{arg_value, header, print_point, rate_grid, saturated, BenchRecorder, Scale};
use smp_replica::{ExperimentConfig, Protocol};
use smp_types::{ExecutorKind, MICROS_PER_SEC};
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    // Paper-scale fig12 is a WAN experiment; quick mode stays on the LAN
    // so the sanity sweep saturates in seconds.
    let net = arg_value("--net").unwrap_or_else(|| scale.pick("lan", "wan").to_string());
    let wan = net == "wan";
    header(
        &format!(
            "Figure 12 — sharded mempool scaling ({}, sequential vs parallel executor)",
            net.to_uppercase()
        ),
        scale,
    );

    let n = scale.pick(8, 32);
    let shard_counts: Vec<usize> = scale.pick(vec![1, 2, 4], vec![1, 2, 4, 8]);
    let rates = rate_grid(scale, wan);
    let mut rec = BenchRecorder::from_args("fig12_sharding", scale);

    for protocol in [Protocol::StratusHotStuff, Protocol::Narwhal] {
        println!("\n--- {} (n = {n}) ---", protocol.label());
        for &shards in &shard_counts {
            let mut cfg = ExperimentConfig::new(protocol, n, rates[0])
                .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC)
                .with_shards(shards);
            if wan {
                cfg = cfg.wan();
            }
            let started = Instant::now();
            let seq = saturated(&cfg.clone().with_executor(ExecutorKind::Sequential), &rates);
            let seq_wall = started.elapsed().as_secs_f64();
            let started = Instant::now();
            let par = saturated(&cfg.clone().with_executor(ExecutorKind::Parallel), &rates);
            let par_wall = started.elapsed().as_secs_f64();
            print_point("shards", shards, &seq);
            let label = format!("{}/k={shards}", protocol.label());
            rec.result(&label, &seq);
            rec.metric(&label, "par_throughput_ktps", par.summary.throughput_ktps);
            rec.metric(&label, "seq_wall_secs", seq_wall);
            rec.metric(&label, "par_wall_secs", par_wall);
            println!(
                "             parallel: thr={:>9.2} KTx/s  parallel/sequential thr={:.3}  wall={:.3} (<1 = parallel faster)",
                par.summary.throughput_ktps,
                par.summary.throughput_ktps / seq.summary.throughput_ktps.max(f64::EPSILON),
                par_wall / seq_wall.max(f64::EPSILON),
            );
        }
    }
    rec.finish();
    println!("\nExpected shape: with one shard the sharded wrapper matches the unwrapped");
    println!("backend exactly; as k grows, dissemination work spreads over k independent");
    println!("pipelines per replica, so saturated throughput holds or improves while");
    println!("per-pipeline batching latency rises slightly at low offered load.  The");
    println!("parallel/sequential throughput ratio is 1.000 by construction (the executors");
    println!("are byte-identical); the wall-clock ratio shows the multi-core gain.");
}
