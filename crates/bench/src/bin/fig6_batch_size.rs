//! Figure 6: throughput vs latency for S-HS as the microblock batch size
//! and the offered load vary (LAN, 128-byte payloads).

use smp_bench::{header, BenchRecorder, Scale};
use smp_replica::{run, ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;

fn main() {
    let scale = Scale::from_args();
    header(
        "Figure 6 — throughput vs latency across batch sizes (S-HS, LAN)",
        scale,
    );
    let mut rec = BenchRecorder::from_args("fig6_batch_size", scale);

    // (network size, batch sizes) pairs as in the paper; quick mode scales
    // the replica counts down but keeps the batch-size sweep.
    let settings: Vec<(usize, Vec<usize>)> = scale.pick(
        vec![
            (16, vec![32 * 1024, 64 * 1024, 128 * 1024]),
            (32, vec![128 * 1024, 256 * 1024, 512 * 1024]),
        ],
        vec![
            (128, vec![32 * 1024, 64 * 1024, 128 * 1024]),
            (256, vec![128 * 1024, 256 * 1024, 512 * 1024]),
        ],
    );
    let loads = scale.pick(
        vec![10_000.0, 40_000.0, 80_000.0],
        vec![20_000.0, 60_000.0, 120_000.0, 200_000.0],
    );

    println!(
        "\n{:<16} {:>12} {:>14} {:>12}",
        "setting", "offered tx/s", "KTx/s", "latency ms"
    );
    for (n, batches) in settings {
        for batch in batches {
            for load in &loads {
                let cfg = ExperimentConfig::new(Protocol::StratusHotStuff, n, *load)
                    .with_batch_size(batch)
                    .with_duration(MICROS_PER_SEC, 4 * MICROS_PER_SEC);
                let r = run(&cfg);
                println!(
                    "n{n}-b{:<6} {:>12.0} {:>14.2} {:>12.1}",
                    batch / 1024 * 1024 / 1024,
                    load,
                    r.summary.throughput_ktps,
                    r.summary.mean_latency_ms
                );
                rec.result(&format!("n{n}/b{}k/load{load}", batch / 1024), &r);
            }
        }
    }
    rec.finish();
    println!("\nExpected shape: larger batches raise the achievable throughput (fewer acks per");
    println!("transaction) at the cost of higher latency; larger networks need larger batches.");
}
