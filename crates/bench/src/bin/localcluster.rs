//! `localcluster` — an n-process loopback cluster over real sockets.
//!
//! Parent mode (default) reserves `n` loopback ports, re-executes itself
//! once per replica in child mode, collects every child's committed
//! transaction sequence and counters over stdout, and checks that all
//! replicas agree.  With `--check-sim` it additionally runs the
//! deterministic simulator on the same `ExperimentConfig` and seed and
//! requires the socket cluster's commit sequence to be byte-identical.
//!
//! ```text
//! localcluster [--protocol N-HS] [--n 4] [--rate 4000] [--tx-limit 60]
//!              [--horizon-us 2500000] [--seed 42] [--batch-bytes 16384]
//!              [--source <replica index|even>] [--check-sim] [--chaos]
//!              [--bench-out <path>] [--trace-out <dir>]
//! ```
//!
//! With `--chaos` the parent SIGKILLs the last replica at 30% of the
//! horizon, restarts it 200 ms later in recovery mode (`--recover`), and
//! holds the resurrected process to the same agreement (and, with
//! `--check-sim`, simulator-conformance) bar as everyone else: the
//! recovered replica must re-sync the committed sequence over the `Sync`
//! wire family and finish byte-identical.  The kill/restart instants are
//! stamped into `cluster_trace.json` as global instant events when
//! `--trace-out` is active.
//!
//! With `--trace-out <dir>` the run becomes fully observed: each child
//! serves an admin endpoint the parent polls mid-run (`HEALTH`,
//! `METRICS`, and `SERIES` must all answer), runs a flight-recorder
//! sampler, and writes its per-replica trace / flight-recorder series /
//! metrics snapshot into `<dir>`.  After the run the parent merges them
//! into two cluster-wide artifacts: `cluster_trace.json` (one
//! chrome://tracing timeline, one track per replica, wall-clocks aligned
//! by epoch offsets) and `cluster_flightrec.json` (per-replica window
//! series plus a cluster metrics rollup).
//!
//! Child mode (`--replica <i> --addrs a,b,...`) is internal: it calls
//! [`smp_replica::run_replica_over_net`] and reports on stdout with
//! `commit <64-hex-txid>` / `stat <key> <value>` / `peer_error <msg>` /
//! `frame_error <msg>` lines.
//!
//! Exit codes: 0 success, 1 divergence (replicas disagree, sim mismatch,
//! peer/frame errors, or an unresponsive admin endpoint), 2 usage/spawn
//! failures.

use smp_bench::{arg_value, BenchRecorder, Scale};
use smp_crypto::Digest;
use smp_metrics::JsonValue;
use smp_replica::{
    run_replica_over_net, sim_commit_logs, ExperimentConfig, NetRunOptions, NetRunSummary, Protocol,
};
use smp_telemetry::{merge_chrome_traces, merge_cluster_series, rollup_snapshots, MetricsSnapshot};
use smp_types::{ReplicaId, TxId};
use smp_workload::LoadDistribution;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

fn parse_protocol(s: &str) -> Option<Protocol> {
    Protocol::all()
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(s) || format!("{p:?}").eq_ignore_ascii_case(s))
}

/// Cluster parameters shared by parent and children, rebuilt from the
/// command line so every process derives the identical config.
#[derive(Clone)]
struct ClusterArgs {
    protocol: Protocol,
    n: usize,
    rate: f64,
    tx_limit: u64,
    horizon_us: u64,
    seed: u64,
    batch_bytes: usize,
    source: Option<usize>,
}

impl ClusterArgs {
    fn from_env() -> ClusterArgs {
        let num = |flag: &str, default: f64| -> f64 {
            arg_value(flag)
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("localcluster: {flag} takes a number, got '{v}'");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(default)
        };
        let protocol = match arg_value("--protocol") {
            Some(name) => parse_protocol(&name).unwrap_or_else(|| {
                let labels: Vec<&str> = Protocol::all().iter().map(|p| p.label()).collect();
                eprintln!(
                    "localcluster: unknown protocol '{name}' (one of {})",
                    labels.join(", ")
                );
                std::process::exit(2);
            }),
            None => Protocol::NativeHotStuff,
        };
        let source = match arg_value("--source").as_deref() {
            None => Some(0),
            Some("even") => None,
            Some(i) => Some(i.parse().unwrap_or_else(|_| {
                eprintln!("localcluster: --source takes a replica index or 'even'");
                std::process::exit(2);
            })),
        };
        ClusterArgs {
            protocol,
            n: num("--n", 4.0) as usize,
            rate: num("--rate", 4_000.0),
            tx_limit: num("--tx-limit", 60.0) as u64,
            horizon_us: num("--horizon-us", 2_500_000.0) as u64,
            seed: num("--seed", 42.0) as u64,
            batch_bytes: num("--batch-bytes", 16_384.0) as usize,
            source,
        }
    }

    fn config(&self) -> ExperimentConfig {
        let mut config = ExperimentConfig::new(self.protocol, self.n, self.rate)
            .with_batch_size(self.batch_bytes);
        if let Some(i) = self.source {
            config = config.with_distribution(LoadDistribution::SingleReplica(i));
        }
        config.seed = self.seed;
        config
    }

    /// The flags a child needs to rebuild this exact config.
    fn forward(&self) -> Vec<String> {
        let mut f = vec![
            "--protocol".into(),
            self.protocol.label().to_string(),
            "--n".into(),
            self.n.to_string(),
            "--rate".into(),
            self.rate.to_string(),
            "--tx-limit".into(),
            self.tx_limit.to_string(),
            "--horizon-us".into(),
            self.horizon_us.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--batch-bytes".into(),
            self.batch_bytes.to_string(),
            "--source".into(),
            match self.source {
                Some(i) => i.to_string(),
                None => "even".into(),
            },
        ];
        if let Some(dir) = arg_value("--trace-out") {
            f.push("--trace-out".into());
            f.push(dir);
        }
        f
    }
}

fn txid_hex(id: &TxId) -> String {
    let Digest(words) = id.0;
    words.iter().map(|w| format!("{w:016x}")).collect()
}

fn txid_from_hex(s: &str) -> Option<TxId> {
    if s.len() != 64 {
        return None;
    }
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_str_radix(&s[i * 16..(i + 1) * 16], 16).ok()?;
    }
    Some(TxId(Digest(words)))
}

// ---------------------------------------------------------------- child

fn run_child(me: usize, args: &ClusterArgs) -> ! {
    let addrs: Vec<SocketAddr> = arg_value("--addrs")
        .unwrap_or_default()
        .split(',')
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("localcluster: bad --addrs entry '{a}'");
                std::process::exit(2);
            })
        })
        .collect();
    let trace_out = arg_value("--trace-out");
    let admin_addr: Option<SocketAddr> = arg_value("--admin-addr").map(|a| {
        a.parse().unwrap_or_else(|_| {
            eprintln!("localcluster: bad --admin-addr '{a}'");
            std::process::exit(2);
        })
    });
    let observed = trace_out.is_some() || admin_addr.is_some();
    let opts = NetRunOptions {
        tx_limit: Some(args.tx_limit),
        horizon_us: args.horizon_us,
        telemetry: trace_out.is_some(),
        admin_addr,
        // Sample often enough that even a short CI run records several
        // windows per replica.
        flight_cadence_us: observed.then_some(250_000),
        recover: std::env::args().any(|a| a == "--recover"),
    };
    let summary = run_replica_over_net(&args.config(), ReplicaId(me as u32), addrs, &opts)
        .unwrap_or_else(|e| {
            eprintln!("localcluster: replica {me} failed: {e}");
            std::process::exit(2);
        });
    report_child(me, &summary, trace_out.as_deref());
    let clean = summary.peer_errors.is_empty() && summary.frame_errors.is_empty();
    std::process::exit(if clean { 0 } else { 1 });
}

fn report_child(me: usize, summary: &NetRunSummary, trace_out: Option<&str>) {
    for id in &summary.commit_log {
        println!("commit {}", txid_hex(id));
    }
    let stats: [(&str, u64); 9] = [
        ("committed_txs", summary.committed_txs),
        ("client_txs", summary.client_txs),
        ("view_changes", summary.view_changes),
        ("frames_in", summary.frames_in),
        ("frames_out", summary.frames_out),
        ("bytes_in", summary.bytes_in),
        ("bytes_out", summary.bytes_out),
        ("wall_us", summary.wall_us),
        ("epoch_unix_us", summary.epoch_unix_us.unwrap_or(0)),
    ];
    for (key, value) in stats {
        println!("stat {key} {value}");
    }
    for e in &summary.peer_errors {
        println!("peer_error {e}");
    }
    for e in &summary.frame_errors {
        println!("frame_error {e}");
    }
    if let Some(dir) = trace_out {
        let _ = std::fs::create_dir_all(dir);
        let write = |name: String, doc: &JsonValue| {
            let path = Path::new(dir).join(name);
            if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
                eprintln!("localcluster: cannot write {}: {e}", path.display());
            }
        };
        write(
            format!("trace_replica_{me}.json"),
            &summary.telemetry.trace_json(),
        );
        write(
            format!("metrics_replica_{me}.json"),
            &summary.telemetry.registry_json(),
        );
        if let Some(series) = &summary.flight_series {
            write(format!("flightrec_replica_{me}.json"), series);
        }
    }
}

// --------------------------------------------------------------- parent

#[derive(Default)]
struct ChildReport {
    commits: Vec<TxId>,
    stats: std::collections::BTreeMap<String, u64>,
    peer_errors: Vec<String>,
    frame_errors: Vec<String>,
}

fn parse_child_output(text: &str) -> ChildReport {
    let mut r = ChildReport::default();
    for line in text.lines() {
        if let Some(hex) = line.strip_prefix("commit ") {
            if let Some(id) = txid_from_hex(hex.trim()) {
                r.commits.push(id);
            }
        } else if let Some(rest) = line.strip_prefix("stat ") {
            if let Some((key, value)) = rest.split_once(' ') {
                if let Ok(v) = value.trim().parse() {
                    r.stats.insert(key.to_string(), v);
                }
            }
        } else if let Some(e) = line.strip_prefix("peer_error ") {
            r.peer_errors.push(e.to_string());
        } else if let Some(e) = line.strip_prefix("frame_error ") {
            r.frame_errors.push(e.to_string());
        }
    }
    r
}

/// Pinpoints where two commit sequences diverge: the first differing
/// index plus a short-hex excerpt of the surrounding entries on each
/// side, so a divergence report identifies the exact commits at fault
/// rather than just the lengths.
fn divergence_excerpt(reference: &[TxId], other: &[TxId]) -> String {
    let common = reference.len().min(other.len());
    let idx = (0..common)
        .find(|&k| reference[k] != other[k])
        .unwrap_or(common);
    let short = |id: &TxId| txid_hex(id)[..8].to_string();
    let excerpt = |log: &[TxId]| -> String {
        let lo = idx.saturating_sub(1);
        let hi = (idx + 2).min(log.len());
        if lo >= hi {
            return "(end of log)".into();
        }
        log[lo..hi]
            .iter()
            .enumerate()
            .map(|(off, id)| format!("[{}]={}", lo + off, short(id)))
            .collect::<Vec<_>>()
            .join(" ")
    };
    format!(
        "first divergence at index {idx}: reference {} | diverged {}",
        excerpt(reference),
        excerpt(other)
    )
}

/// One line-oriented admin request/reply against a child's endpoint.
fn admin_ask(addr: SocketAddr, cmd: &str) -> io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(format!("{cmd}\n").as_bytes())?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "empty admin reply",
        ));
    }
    Ok(reply.trim_end().to_string())
}

/// Polls every child's admin endpoint mid-run: `HEALTH`, `METRICS`, and
/// `SERIES` must all answer before the run's horizon elapses.  Returns
/// one error line per replica that failed.
fn poll_admin_endpoints(admin_addrs: Vec<SocketAddr>, horizon_us: u64) -> Vec<String> {
    let start = Instant::now();
    // Let the cluster form and commit some work first, but stay well
    // inside the horizon so this is genuinely a *mid-run* observation.
    thread::sleep(Duration::from_micros(horizon_us / 3));
    let deadline = start + Duration::from_micros(horizon_us.saturating_sub(horizon_us / 5));
    let mut failures = Vec::new();
    for (i, addr) in admin_addrs.into_iter().enumerate() {
        let verdict = loop {
            match check_admin(addr, i) {
                Ok(detail) => break Ok(detail),
                Err(e) => {
                    if Instant::now() >= deadline {
                        break Err(e);
                    }
                    thread::sleep(Duration::from_millis(100));
                }
            }
        };
        match verdict {
            Ok(detail) => println!("localcluster: replica {i} admin ok mid-run ({detail})"),
            Err(e) => failures.push(format!("replica {i} admin endpoint at {addr}: {e}")),
        }
    }
    failures
}

fn check_admin(addr: SocketAddr, i: usize) -> Result<String, String> {
    let health = admin_ask(addr, "HEALTH").map_err(|e| format!("HEALTH: {e}"))?;
    if !health.starts_with(&format!("ok replica={i} ")) {
        return Err(format!("HEALTH replied '{health}'"));
    }
    let metrics = admin_ask(addr, "METRICS").map_err(|e| format!("METRICS: {e}"))?;
    if !metrics.starts_with('{') {
        return Err(format!("METRICS not a JSON object: '{metrics}'"));
    }
    let series = admin_ask(addr, "SERIES").map_err(|e| format!("SERIES: {e}"))?;
    if !series.contains("smp-flightrec-v1") {
        return Err(format!("SERIES not schema-versioned: '{series}'"));
    }
    Ok(health)
}

/// Merges the per-replica artifacts the children wrote under `dir` into
/// `cluster_trace.json` (one chrome://tracing timeline, one process
/// track per replica, wall-clocks aligned via epoch offsets) and
/// `cluster_flightrec.json` (per-replica window series + metrics
/// rollup).  Chaos fault instants (`faults`: name + wall-clock µs) are
/// stamped into the merged trace as global chrome instant events on the
/// same epoch-aligned timeline.
fn merge_cluster_artifacts(
    dir: &str,
    n: usize,
    epochs: &[u64],
    faults: &[(String, u64)],
) -> io::Result<(PathBuf, PathBuf)> {
    let read_json = |name: String| -> io::Result<JsonValue> {
        let path = Path::new(dir).join(&name);
        let text = std::fs::read_to_string(&path)?;
        JsonValue::parse(&text)
            .map_err(|e| io::Error::other(format!("{}: bad JSON: {e:?}", path.display())))
    };
    let min_epoch = epochs.iter().copied().filter(|&e| e > 0).min().unwrap_or(0);
    let mut trace_sources = Vec::new();
    let mut series_sources = Vec::new();
    let mut snapshots = Vec::new();
    for i in 0..n {
        let label = format!("replica.{i}");
        let offset_us = epochs
            .get(i)
            .copied()
            .unwrap_or(0)
            .saturating_sub(min_epoch) as i64;
        trace_sources.push((
            label.clone(),
            offset_us,
            read_json(format!("trace_replica_{i}.json"))?,
        ));
        series_sources.push((
            label.clone(),
            read_json(format!("flightrec_replica_{i}.json"))?,
        ));
        let metrics = read_json(format!("metrics_replica_{i}.json"))?;
        snapshots.push((label, MetricsSnapshot::from_json(&metrics)));
    }
    let trace_path = Path::new(dir).join("cluster_trace.json");
    let mut trace_doc = merge_chrome_traces(&trace_sources);
    if let JsonValue::Object(fields) = &mut trace_doc {
        if let Some((_, JsonValue::Array(events))) =
            fields.iter_mut().find(|(k, _)| k == "traceEvents")
        {
            for (name, at_unix_us) in faults {
                let ts = at_unix_us.saturating_sub(min_epoch) as f64;
                events.push(JsonValue::Object(vec![
                    ("name".into(), JsonValue::String(name.clone())),
                    ("ph".into(), JsonValue::String("i".into())),
                    ("s".into(), JsonValue::String("g".into())),
                    ("ts".into(), JsonValue::Number(ts)),
                    ("pid".into(), JsonValue::Number(0.0)),
                    ("tid".into(), JsonValue::Number(0.0)),
                ]));
            }
        }
    }
    std::fs::write(&trace_path, trace_doc.to_pretty())?;
    let rollup = rollup_snapshots(&snapshots).to_json();
    let flight_path = Path::new(dir).join("cluster_flightrec.json");
    std::fs::write(
        &flight_path,
        merge_cluster_series(&series_sources, Some(rollup)).to_pretty(),
    )?;
    Ok((trace_path, flight_path))
}

fn unix_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before unix epoch")
        .as_micros() as u64
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    // Bind-then-drop reserves distinct ephemeral ports; children rebind
    // them immediately after, so reuse by another process is unlikely.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn main() {
    let args = ClusterArgs::from_env();
    if let Some(me) = arg_value("--replica") {
        let me: usize = me.parse().unwrap_or_else(|_| {
            eprintln!("localcluster: --replica takes an index");
            std::process::exit(2);
        });
        run_child(me, &args);
    }

    let mut rec = BenchRecorder::from_args("localcluster", Scale::from_args());
    let config = args.config();
    println!(
        "localcluster: {} n={} rate={} tx_limit={} horizon={}us seed={}",
        args.protocol.label(),
        args.n,
        args.rate,
        args.tx_limit,
        args.horizon_us,
        args.seed
    );

    let addrs = free_addrs(args.n);
    let addr_list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    // With --trace-out, the run is observed: every child gets an admin
    // endpoint (the parent reserves the ports so it knows where to
    // poll — children only report stdout after they exit).
    let trace_dir = arg_value("--trace-out");
    let admin_addrs = if trace_dir.is_some() {
        free_addrs(args.n)
    } else {
        Vec::new()
    };
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    for i in 0..args.n {
        let mut cmd = Command::new(&exe);
        cmd.args(["--replica", &i.to_string(), "--addrs", &addr_list])
            .args(args.forward());
        if let Some(admin) = admin_addrs.get(i) {
            cmd.args(["--admin-addr", &admin.to_string()]);
        }
        let child = cmd
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("localcluster: cannot spawn replica {i}: {e}");
                std::process::exit(2);
            });
        children.push(child);
    }

    // Live observation: while children run, poll each admin endpoint
    // once mid-run (HEALTH + METRICS + SERIES must answer).
    let poller = (!admin_addrs.is_empty()).then(|| {
        let admin_addrs = admin_addrs.clone();
        let horizon_us = args.horizon_us;
        thread::spawn(move || poll_admin_endpoints(admin_addrs, horizon_us))
    });

    // Chaos: SIGKILL the last replica at 30% of the horizon, then
    // respawn it 200 ms later with `--recover`.  The first incarnation's
    // output and exit status are discarded; the resurrected process is
    // held to the same agreement bar as everyone else, which forces the
    // `Sync` re-sync path over real sockets.
    let chaos = std::env::args().any(|a| a == "--chaos");
    if chaos && args.n < 2 {
        eprintln!("localcluster: --chaos needs at least 2 replicas");
        std::process::exit(2);
    }
    let chaos_handle = chaos.then(|| {
        let victim = args.n - 1;
        let mut first = children.pop().expect("victim child");
        let exe = exe.clone();
        let mut respawn_args: Vec<String> = vec![
            "--replica".into(),
            victim.to_string(),
            "--addrs".into(),
            addr_list.clone(),
        ];
        respawn_args.extend(args.forward());
        if let Some(admin) = admin_addrs.get(victim) {
            respawn_args.push("--admin-addr".into());
            respawn_args.push(admin.to_string());
        }
        respawn_args.push("--recover".into());
        let kill_after = Duration::from_micros(args.horizon_us * 3 / 10);
        thread::spawn(move || {
            thread::sleep(kill_after);
            let kill_unix_us = unix_us();
            first.kill().expect("kill victim");
            first.wait().expect("reap victim");
            thread::sleep(Duration::from_millis(200));
            let child = Command::new(&exe)
                .args(&respawn_args)
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .expect("respawn victim");
            (kill_unix_us, unix_us(), child)
        })
    });

    let mut reports = Vec::new();
    let mut failed = false;
    for (i, mut child) in children.into_iter().enumerate() {
        let mut text = String::new();
        child
            .stdout
            .take()
            .expect("piped stdout")
            .read_to_string(&mut text)
            .expect("read child stdout");
        let status = child.wait().expect("wait for child");
        if !status.success() {
            eprintln!("localcluster: replica {i} exited with {status}");
            failed = true;
        }
        reports.push(parse_child_output(&text));
    }

    // Collect the resurrected victim last: its run started late and ends
    // after the survivors, so this read naturally waits out recovery.
    let mut fault_timeline: Vec<(String, u64)> = Vec::new();
    if let Some(handle) = chaos_handle {
        let victim = args.n - 1;
        let (kill_us, restart_us, mut child) = handle.join().expect("chaos thread");
        println!(
            "localcluster: chaos SIGKILLed replica {victim} and respawned it \
             {}ms later with --recover",
            restart_us.saturating_sub(kill_us) / 1_000
        );
        fault_timeline.push((format!("fault.kill.replica.{victim}"), kill_us));
        fault_timeline.push((format!("fault.restart.replica.{victim}"), restart_us));
        let mut text = String::new();
        child
            .stdout
            .take()
            .expect("piped stdout")
            .read_to_string(&mut text)
            .expect("read recovered child stdout");
        let status = child.wait().expect("wait for recovered child");
        if !status.success() {
            eprintln!("localcluster: recovered replica {victim} exited with {status}");
            failed = true;
        }
        reports.push(parse_child_output(&text));
    }

    if let Some(poller) = poller {
        for e in poller.join().expect("admin poller thread") {
            eprintln!("localcluster: mid-run admin poll failed: {e}");
            failed = true;
        }
    }

    for (i, r) in reports.iter().enumerate() {
        for e in &r.peer_errors {
            eprintln!("localcluster: replica {i} peer error: {e}");
            failed = true;
        }
        for e in &r.frame_errors {
            eprintln!("localcluster: replica {i} frame error: {e}");
            failed = true;
        }
        println!(
            "  replica {i}: {} committed, {} frames in, {} bytes in, {}us wall",
            r.commits.len(),
            r.stats.get("frames_in").copied().unwrap_or(0),
            r.stats.get("bytes_in").copied().unwrap_or(0),
            r.stats.get("wall_us").copied().unwrap_or(0),
        );
        rec.metric(
            &format!("replica{i}"),
            "committed_txs",
            r.stats.get("committed_txs").copied().unwrap_or(0) as f64,
        );
        rec.metric(
            &format!("replica{i}"),
            "wall_us",
            r.stats.get("wall_us").copied().unwrap_or(0) as f64,
        );
    }

    // Agreement: every replica must report the same committed sequence.
    let mut agree = true;
    for (i, r) in reports.iter().enumerate().skip(1) {
        if r.commits != reports[0].commits {
            eprintln!(
                "localcluster: replica {i} commit sequence diverges from replica 0 \
                 ({} vs {} txs); {}",
                r.commits.len(),
                reports[0].commits.len(),
                divergence_excerpt(&reports[0].commits, &r.commits)
            );
            agree = false;
        }
    }
    if agree {
        println!(
            "localcluster: all {} replicas agree on {} committed txs",
            args.n,
            reports[0].commits.len()
        );
    }

    // Cross-runtime conformance: the socket cluster must replay the
    // simulator's sequence for the same config and seed.
    let mut sim_ok = true;
    if std::env::args().any(|a| a == "--check-sim") {
        let sim = sim_commit_logs(&config, Some(args.tx_limit), args.horizon_us + 1_000_000);
        if reports[0].commits == sim[0] {
            println!(
                "localcluster: socket commit sequence matches the simulator ({} txs)",
                sim[0].len()
            );
        } else {
            eprintln!(
                "localcluster: socket commit sequence diverges from the simulator \
                 ({} vs {} txs); {}",
                reports[0].commits.len(),
                sim[0].len(),
                divergence_excerpt(&sim[0], &reports[0].commits)
            );
            sim_ok = false;
        }
    }

    // Cross-process aggregation: merge the children's artifacts into
    // one cluster timeline and one cluster flight-recorder document.
    if let Some(dir) = &trace_dir {
        let epochs: Vec<u64> = reports
            .iter()
            .map(|r| r.stats.get("epoch_unix_us").copied().unwrap_or(0))
            .collect();
        match merge_cluster_artifacts(dir, args.n, &epochs, &fault_timeline) {
            Ok((trace_path, flight_path)) => println!(
                "localcluster: merged cluster artifacts: {} {}",
                trace_path.display(),
                flight_path.display()
            ),
            Err(e) => {
                eprintln!("localcluster: cannot merge cluster artifacts: {e}");
                failed = true;
            }
        }
    }

    let total: u64 = reports
        .iter()
        .map(|r| r.stats.get("committed_txs").copied().unwrap_or(0))
        .sum();
    rec.metric("cluster", "committed_txs_total", total as f64);
    rec.metric("cluster", "agreed_txs", reports[0].commits.len() as f64);
    rec.metric("cluster", "agree", (agree && sim_ok) as u64 as f64);
    rec.finish();

    if failed || !agree || !sim_ok {
        std::process::exit(1);
    }
}
