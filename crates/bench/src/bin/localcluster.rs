//! `localcluster` — an n-process loopback cluster over real sockets.
//!
//! Parent mode (default) reserves `n` loopback ports, re-executes itself
//! once per replica in child mode, collects every child's committed
//! transaction sequence and counters over stdout, and checks that all
//! replicas agree.  With `--check-sim` it additionally runs the
//! deterministic simulator on the same `ExperimentConfig` and seed and
//! requires the socket cluster's commit sequence to be byte-identical.
//!
//! ```text
//! localcluster [--protocol N-HS] [--n 4] [--rate 4000] [--tx-limit 60]
//!              [--horizon-us 2500000] [--seed 42] [--batch-bytes 16384]
//!              [--source <replica index|even>] [--check-sim]
//!              [--bench-out <path>] [--trace-out <dir>]
//! ```
//!
//! Child mode (`--replica <i> --addrs a,b,...`) is internal: it calls
//! [`smp_replica::run_replica_over_net`] and reports on stdout with
//! `commit <64-hex-txid>` / `stat <key> <value>` / `peer_error <msg>`
//! lines.
//!
//! Exit codes: 0 success, 1 divergence (replicas disagree, sim mismatch,
//! or peer errors), 2 usage/spawn failures.

use smp_bench::{arg_value, BenchRecorder, Scale};
use smp_crypto::Digest;
use smp_replica::{
    run_replica_over_net, sim_commit_logs, ExperimentConfig, NetRunOptions, NetRunSummary, Protocol,
};
use smp_types::{ReplicaId, TxId};
use smp_workload::LoadDistribution;
use std::io::Read;
use std::net::{SocketAddr, TcpListener};
use std::process::{Command, Stdio};

fn parse_protocol(s: &str) -> Option<Protocol> {
    Protocol::all()
        .into_iter()
        .find(|p| p.label().eq_ignore_ascii_case(s) || format!("{p:?}").eq_ignore_ascii_case(s))
}

/// Cluster parameters shared by parent and children, rebuilt from the
/// command line so every process derives the identical config.
#[derive(Clone)]
struct ClusterArgs {
    protocol: Protocol,
    n: usize,
    rate: f64,
    tx_limit: u64,
    horizon_us: u64,
    seed: u64,
    batch_bytes: usize,
    source: Option<usize>,
}

impl ClusterArgs {
    fn from_env() -> ClusterArgs {
        let num = |flag: &str, default: f64| -> f64 {
            arg_value(flag)
                .map(|v| {
                    v.parse().unwrap_or_else(|_| {
                        eprintln!("localcluster: {flag} takes a number, got '{v}'");
                        std::process::exit(2);
                    })
                })
                .unwrap_or(default)
        };
        let protocol = match arg_value("--protocol") {
            Some(name) => parse_protocol(&name).unwrap_or_else(|| {
                let labels: Vec<&str> = Protocol::all().iter().map(|p| p.label()).collect();
                eprintln!(
                    "localcluster: unknown protocol '{name}' (one of {})",
                    labels.join(", ")
                );
                std::process::exit(2);
            }),
            None => Protocol::NativeHotStuff,
        };
        let source = match arg_value("--source").as_deref() {
            None => Some(0),
            Some("even") => None,
            Some(i) => Some(i.parse().unwrap_or_else(|_| {
                eprintln!("localcluster: --source takes a replica index or 'even'");
                std::process::exit(2);
            })),
        };
        ClusterArgs {
            protocol,
            n: num("--n", 4.0) as usize,
            rate: num("--rate", 4_000.0),
            tx_limit: num("--tx-limit", 60.0) as u64,
            horizon_us: num("--horizon-us", 2_500_000.0) as u64,
            seed: num("--seed", 42.0) as u64,
            batch_bytes: num("--batch-bytes", 16_384.0) as usize,
            source,
        }
    }

    fn config(&self) -> ExperimentConfig {
        let mut config = ExperimentConfig::new(self.protocol, self.n, self.rate)
            .with_batch_size(self.batch_bytes);
        if let Some(i) = self.source {
            config = config.with_distribution(LoadDistribution::SingleReplica(i));
        }
        config.seed = self.seed;
        config
    }

    /// The flags a child needs to rebuild this exact config.
    fn forward(&self) -> Vec<String> {
        let mut f = vec![
            "--protocol".into(),
            self.protocol.label().to_string(),
            "--n".into(),
            self.n.to_string(),
            "--rate".into(),
            self.rate.to_string(),
            "--tx-limit".into(),
            self.tx_limit.to_string(),
            "--horizon-us".into(),
            self.horizon_us.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--batch-bytes".into(),
            self.batch_bytes.to_string(),
            "--source".into(),
            match self.source {
                Some(i) => i.to_string(),
                None => "even".into(),
            },
        ];
        if let Some(dir) = arg_value("--trace-out") {
            f.push("--trace-out".into());
            f.push(dir);
        }
        f
    }
}

fn txid_hex(id: &TxId) -> String {
    let Digest(words) = id.0;
    words.iter().map(|w| format!("{w:016x}")).collect()
}

fn txid_from_hex(s: &str) -> Option<TxId> {
    if s.len() != 64 {
        return None;
    }
    let mut words = [0u64; 4];
    for (i, w) in words.iter_mut().enumerate() {
        *w = u64::from_str_radix(&s[i * 16..(i + 1) * 16], 16).ok()?;
    }
    Some(TxId(Digest(words)))
}

// ---------------------------------------------------------------- child

fn run_child(me: usize, args: &ClusterArgs) -> ! {
    let addrs: Vec<SocketAddr> = arg_value("--addrs")
        .unwrap_or_default()
        .split(',')
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("localcluster: bad --addrs entry '{a}'");
                std::process::exit(2);
            })
        })
        .collect();
    let trace_out = arg_value("--trace-out");
    let opts = NetRunOptions {
        tx_limit: Some(args.tx_limit),
        horizon_us: args.horizon_us,
        telemetry: trace_out.is_some(),
    };
    let summary = run_replica_over_net(&args.config(), ReplicaId(me as u32), addrs, &opts)
        .unwrap_or_else(|e| {
            eprintln!("localcluster: replica {me} failed: {e}");
            std::process::exit(2);
        });
    report_child(me, &summary, trace_out.as_deref());
    std::process::exit(if summary.peer_errors.is_empty() { 0 } else { 1 });
}

fn report_child(me: usize, summary: &NetRunSummary, trace_out: Option<&str>) {
    for id in &summary.commit_log {
        println!("commit {}", txid_hex(id));
    }
    let stats: [(&str, u64); 8] = [
        ("committed_txs", summary.committed_txs),
        ("client_txs", summary.client_txs),
        ("view_changes", summary.view_changes),
        ("frames_in", summary.frames_in),
        ("frames_out", summary.frames_out),
        ("bytes_in", summary.bytes_in),
        ("bytes_out", summary.bytes_out),
        ("wall_us", summary.wall_us),
    ];
    for (key, value) in stats {
        println!("stat {key} {value}");
    }
    for e in &summary.peer_errors {
        println!("peer_error {e}");
    }
    if let Some(dir) = trace_out {
        let path = std::path::Path::new(dir).join(format!("trace_replica_{me}.json"));
        let _ = std::fs::create_dir_all(dir);
        if let Err(e) = std::fs::write(&path, summary.telemetry.trace_json().to_pretty()) {
            eprintln!("localcluster: cannot write {}: {e}", path.display());
        }
    }
}

// --------------------------------------------------------------- parent

#[derive(Default)]
struct ChildReport {
    commits: Vec<TxId>,
    stats: std::collections::BTreeMap<String, u64>,
    peer_errors: Vec<String>,
}

fn parse_child_output(text: &str) -> ChildReport {
    let mut r = ChildReport::default();
    for line in text.lines() {
        if let Some(hex) = line.strip_prefix("commit ") {
            if let Some(id) = txid_from_hex(hex.trim()) {
                r.commits.push(id);
            }
        } else if let Some(rest) = line.strip_prefix("stat ") {
            if let Some((key, value)) = rest.split_once(' ') {
                if let Ok(v) = value.trim().parse() {
                    r.stats.insert(key.to_string(), v);
                }
            }
        } else if let Some(e) = line.strip_prefix("peer_error ") {
            r.peer_errors.push(e.to_string());
        }
    }
    r
}

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    // Bind-then-drop reserves distinct ephemeral ports; children rebind
    // them immediately after, so reuse by another process is unlikely.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn main() {
    let args = ClusterArgs::from_env();
    if let Some(me) = arg_value("--replica") {
        let me: usize = me.parse().unwrap_or_else(|_| {
            eprintln!("localcluster: --replica takes an index");
            std::process::exit(2);
        });
        run_child(me, &args);
    }

    let mut rec = BenchRecorder::from_args("localcluster", Scale::from_args());
    let config = args.config();
    println!(
        "localcluster: {} n={} rate={} tx_limit={} horizon={}us seed={}",
        args.protocol.label(),
        args.n,
        args.rate,
        args.tx_limit,
        args.horizon_us,
        args.seed
    );

    let addrs = free_addrs(args.n);
    let addr_list = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let exe = std::env::current_exe().expect("current exe");
    let mut children = Vec::new();
    for i in 0..args.n {
        let child = Command::new(&exe)
            .args(["--replica", &i.to_string(), "--addrs", &addr_list])
            .args(args.forward())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("localcluster: cannot spawn replica {i}: {e}");
                std::process::exit(2);
            });
        children.push(child);
    }

    let mut reports = Vec::new();
    let mut failed = false;
    for (i, mut child) in children.into_iter().enumerate() {
        let mut text = String::new();
        child
            .stdout
            .take()
            .expect("piped stdout")
            .read_to_string(&mut text)
            .expect("read child stdout");
        let status = child.wait().expect("wait for child");
        if !status.success() {
            eprintln!("localcluster: replica {i} exited with {status}");
            failed = true;
        }
        reports.push(parse_child_output(&text));
    }

    for (i, r) in reports.iter().enumerate() {
        for e in &r.peer_errors {
            eprintln!("localcluster: replica {i} peer error: {e}");
            failed = true;
        }
        println!(
            "  replica {i}: {} committed, {} frames in, {} bytes in, {}us wall",
            r.commits.len(),
            r.stats.get("frames_in").copied().unwrap_or(0),
            r.stats.get("bytes_in").copied().unwrap_or(0),
            r.stats.get("wall_us").copied().unwrap_or(0),
        );
        rec.metric(
            &format!("replica{i}"),
            "committed_txs",
            r.stats.get("committed_txs").copied().unwrap_or(0) as f64,
        );
        rec.metric(
            &format!("replica{i}"),
            "wall_us",
            r.stats.get("wall_us").copied().unwrap_or(0) as f64,
        );
    }

    // Agreement: every replica must report the same committed sequence.
    let mut agree = true;
    for (i, r) in reports.iter().enumerate().skip(1) {
        if r.commits != reports[0].commits {
            eprintln!(
                "localcluster: replica {i} commit sequence diverges from replica 0 \
                 ({} vs {} txs)",
                r.commits.len(),
                reports[0].commits.len()
            );
            agree = false;
        }
    }
    if agree {
        println!(
            "localcluster: all {} replicas agree on {} committed txs",
            args.n,
            reports[0].commits.len()
        );
    }

    // Cross-runtime conformance: the socket cluster must replay the
    // simulator's sequence for the same config and seed.
    let mut sim_ok = true;
    if std::env::args().any(|a| a == "--check-sim") {
        let sim = sim_commit_logs(&config, Some(args.tx_limit), args.horizon_us + 1_000_000);
        if reports[0].commits == sim[0] {
            println!(
                "localcluster: socket commit sequence matches the simulator ({} txs)",
                sim[0].len()
            );
        } else {
            eprintln!(
                "localcluster: socket commit sequence diverges from the simulator \
                 ({} vs {} txs)",
                reports[0].commits.len(),
                sim[0].len()
            );
            sim_ok = false;
        }
    }

    let total: u64 = reports
        .iter()
        .map(|r| r.stats.get("committed_txs").copied().unwrap_or(0))
        .sum();
    rec.metric("cluster", "committed_txs_total", total as f64);
    rec.metric("cluster", "agreed_txs", reports[0].commits.len() as f64);
    rec.metric("cluster", "agree", (agree && sim_ok) as u64 as f64);
    rec.finish();

    if failed || !agree || !sim_ok {
        std::process::exit(1);
    }
}
