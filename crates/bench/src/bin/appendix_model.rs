//! Appendix A/B: the analytical throughput models, printed as the curves
//! that motivate the shared-mempool design.

use smp_analysis::{absolute_upper_bound_tps, LbftModel, ModelParams, PbftModel, SmpModel};
use smp_bench::{header, BenchRecorder, Scale};

fn main() {
    let scale = Scale::from_args();
    header("Appendix A/B — analytical throughput models", scale);
    let mut rec = BenchRecorder::from_args("appendix_model", scale);
    let params = ModelParams::default();
    let lbft = LbftModel::new(params);
    let pbft = PbftModel::new(params);
    let smp = SmpModel::new(params);
    let bound = absolute_upper_bound_tps(&params);

    println!(
        "parameters: C = {:.0} Mb/s, B = {:.0} bits, σ = {:.0} bits",
        params.capacity_bps / 1e6,
        params.tx_bits,
        params.vote_bits
    );
    println!("absolute upper bound C/B = {:.0} tx/s\n", bound);
    println!(
        "{:>6} {:>16} {:>16} {:>18} {:>14}",
        "n", "LBFT (tx/s)", "PBFT+batch", "SMP balanced", "SMP/LBFT"
    );
    for n in [4usize, 16, 64, 128, 256, 400] {
        let l = lbft.max_throughput_tps(n);
        let p = pbft.max_throughput_tps(n, 256.0 * 1024.0 * 8.0);
        let s = smp.balanced_throughput_tps(n);
        println!("{n:>6} {l:>16.0} {p:>16.0} {s:>18.0} {:>13.1}x", s / l);
        let label = format!("n={n}");
        rec.metric(&label, "lbft_tps", l);
        rec.metric(&label, "pbft_tps", p);
        rec.metric(&label, "smp_tps", s);
    }
    rec.finish();
    println!("\nAppendix B balanced microblock size η = (n-2)γ:");
    for n in [64usize, 128, 256] {
        println!(
            "  n = {n:>4}: η = {:.0} KB",
            smp.balanced_microblock_bits(n) / 8.0 / 1024.0
        );
    }
    println!("\nThe model shows LBFT throughput decaying as 1/(n-1) regardless of commit-phase");
    println!(
        "optimizations, while the shared mempool approaches C/2B — the motivation for Stratus."
    );
}
