//! CI regression gate over recorded `BENCH_*.json` artifacts.
//!
//! Usage: `bench_gate <baseline.json> <candidate.json> [--threshold 0.15]
//! [--gate-wall]`
//!
//! Compares every metric of every baseline point against the candidate
//! artifact and exits non-zero when any metric regressed by more than the
//! threshold (relative).  Metric direction is inferred from the name:
//! `latency`, `*_ms`, `ns_per_iter`, `wall` and `view_changes` are
//! lower-is-better, everything else higher-is-better.  Wall-clock metrics
//! are reported but not gated unless `--gate-wall` is passed — sim-time
//! results are deterministic, wall time is hardware-dependent.
//!
//! A point or metric present in the baseline but missing from the
//! candidate is itself a failure: a benchmark silently dropping coverage
//! must not pass the gate.

use smp_bench::{arg_value, BenchArtifact};

fn lower_is_better(key: &str) -> bool {
    key.contains("latency")
        || key.contains("_ms")
        || key.ends_with("ms")
        || key.contains("ns_per_iter")
        || key.contains("wall")
        || key.contains("view_changes")
}

fn is_wall(key: &str) -> bool {
    key.contains("wall")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let paths: Vec<&String> = args
        .iter()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        // Skip the value that follows `--threshold`.
        .filter(|a| {
            args.iter()
                .position(|x| x == *a)
                .map(|i| i == 0 || args[i - 1] != "--threshold")
                .unwrap_or(true)
        })
        .collect();
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_gate <baseline.json> <candidate.json> [--threshold 0.15] [--gate-wall]"
        );
        std::process::exit(2);
    }
    let threshold: f64 = arg_value("--threshold")
        .map(|t| t.parse().expect("--threshold takes a number"))
        .unwrap_or(0.15);
    let gate_wall = args.iter().any(|a| a == "--gate-wall");

    let load = |path: &str| -> BenchArtifact {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchArtifact::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot parse {path}: {e:?}");
            std::process::exit(2);
        })
    };
    let baseline = load(paths[0]);
    let candidate = load(paths[1]);

    if baseline.schema != candidate.schema {
        eprintln!(
            "bench_gate: schema mismatch (baseline v{}, candidate v{})",
            baseline.schema, candidate.schema
        );
        std::process::exit(2);
    }

    println!(
        "bench_gate: {} — baseline {} ({} points) vs candidate {} ({} points), threshold {:.0}%",
        baseline.name,
        if baseline.git_rev.is_empty() {
            "?"
        } else {
            &baseline.git_rev
        },
        baseline.points.len(),
        if candidate.git_rev.is_empty() {
            "?"
        } else {
            &candidate.git_rev
        },
        candidate.points.len(),
        threshold * 100.0
    );

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    for bp in &baseline.points {
        let Some(cp) = candidate.point(&bp.label) else {
            failures.push(format!("point '{}' missing from candidate", bp.label));
            continue;
        };
        for (key, base) in &bp.metrics {
            let Some(cand) = cp.metrics.get(key).copied() else {
                failures.push(format!(
                    "metric '{}/{}' missing from candidate",
                    bp.label, key
                ));
                continue;
            };
            let wall = is_wall(key);
            if wall && !gate_wall {
                println!(
                    "  (info) {}/{}: {:.3} -> {:.3} (wall, not gated)",
                    bp.label, key, base, cand
                );
                continue;
            }
            compared += 1;
            if base.abs() < 1e-9 {
                // No meaningful relative comparison against a zero
                // baseline; report only.
                println!(
                    "  (info) {}/{}: {:.3} -> {:.3} (zero baseline)",
                    bp.label, key, base, cand
                );
                continue;
            }
            let delta = if lower_is_better(key) {
                (cand - base) / base
            } else {
                (base - cand) / base
            };
            if delta > threshold {
                failures.push(format!(
                    "{}/{} regressed {:.1}%: {:.4} -> {:.4}",
                    bp.label,
                    key,
                    delta * 100.0,
                    base,
                    cand
                ));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench_gate: PASS ({compared} metrics within {:.0}%)",
            threshold * 100.0
        );
    } else {
        eprintln!("bench_gate: FAIL — {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
