//! CI regression gate over recorded `BENCH_*.json` artifacts.
//!
//! Usage: `bench_gate <baseline.json> <candidate.json> [--threshold 0.15]
//! [--gate-wall]`
//!
//! Compares every metric of every baseline point against the candidate
//! artifact and exits non-zero when any metric regressed by more than the
//! threshold (relative).  Since schema v2 the artifact records the gating
//! direction per metric; for older (v1) artifacts the direction is
//! inferred from the name (`latency`, `*_ms`, `ns_per_iter`, `wall` and
//! `view_changes` are lower-is-better, everything else
//! higher-is-better).  Wall-clock metrics are reported but not gated
//! unless `--gate-wall` is passed — sim-time results are deterministic,
//! wall time is hardware-dependent.
//!
//! A point or metric present in the baseline but missing from the
//! candidate is itself a failure: a benchmark silently dropping coverage
//! must not pass the gate.

use smp_bench::{inferred_lower_is_better, BenchArtifact, BenchPoint};

fn is_wall(key: &str) -> bool {
    key.contains("wall")
}

/// Parsed command line: the two artifact paths, the relative regression
/// threshold, and whether wall-clock metrics are gated.
#[derive(Debug, PartialEq)]
struct GateArgs {
    baseline: String,
    candidate: String,
    threshold: f64,
    gate_wall: bool,
}

/// Single-pass parser over the argument list (without the program name).
/// Each flag consumes its value in place, so positional paths are never
/// confused with flag values — even when a path equals the threshold
/// literal or when baseline and candidate are the same file.
fn parse_args(args: &[String]) -> Result<GateArgs, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.15f64;
    let mut gate_wall = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--threshold takes a value".to_string())?;
                threshold = v
                    .parse()
                    .map_err(|_| format!("--threshold takes a number, got '{v}'"))?;
            }
            "--gate-wall" => gate_wall = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag '{flag}'"));
            }
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        return Err(format!(
            "expected exactly 2 artifact paths, got {}",
            paths.len()
        ));
    }
    let candidate = paths.pop().expect("two paths");
    let baseline = paths.pop().expect("two paths");
    Ok(GateArgs {
        baseline,
        candidate,
        threshold,
        gate_wall,
    })
}

/// The gating direction for `key`: the artifact's explicit record when
/// present (baseline wins over candidate), the name-based inference
/// otherwise (pre-v2 artifacts).
fn lower_is_better(bp: &BenchPoint, cp: &BenchPoint, key: &str) -> bool {
    bp.lower_is_better(key)
        .or_else(|| cp.lower_is_better(key))
        .unwrap_or_else(|| inferred_lower_is_better(key))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args).unwrap_or_else(|e| {
        eprintln!("bench_gate: {e}");
        eprintln!(
            "usage: bench_gate <baseline.json> <candidate.json> [--threshold 0.15] [--gate-wall]"
        );
        std::process::exit(2);
    });
    let threshold = parsed.threshold;

    let load = |path: &str| -> BenchArtifact {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        });
        BenchArtifact::parse(&text).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot parse {path}: {e:?}");
            std::process::exit(2);
        })
    };
    let baseline = load(&parsed.baseline);
    let candidate = load(&parsed.candidate);

    if baseline.schema != candidate.schema {
        eprintln!(
            "bench_gate: schema mismatch (baseline v{}, candidate v{})",
            baseline.schema, candidate.schema
        );
        std::process::exit(2);
    }

    println!(
        "bench_gate: {} — baseline {} ({} points) vs candidate {} ({} points), threshold {:.0}%",
        baseline.name,
        if baseline.git_rev.is_empty() {
            "?"
        } else {
            &baseline.git_rev
        },
        baseline.points.len(),
        if candidate.git_rev.is_empty() {
            "?"
        } else {
            &candidate.git_rev
        },
        candidate.points.len(),
        threshold * 100.0
    );

    let mut failures: Vec<String> = Vec::new();
    let mut compared = 0usize;
    for bp in &baseline.points {
        let Some(cp) = candidate.point(&bp.label) else {
            failures.push(format!("point '{}' missing from candidate", bp.label));
            continue;
        };
        for (key, base) in &bp.metrics {
            let Some(cand) = cp.metrics.get(key).copied() else {
                failures.push(format!(
                    "metric '{}/{}' missing from candidate",
                    bp.label, key
                ));
                continue;
            };
            let wall = is_wall(key);
            if wall && !parsed.gate_wall {
                println!(
                    "  (info) {}/{}: {:.3} -> {:.3} (wall, not gated)",
                    bp.label, key, base, cand
                );
                continue;
            }
            compared += 1;
            if base.abs() < 1e-9 {
                // No meaningful relative comparison against a zero
                // baseline; report only.
                println!(
                    "  (info) {}/{}: {:.3} -> {:.3} (zero baseline)",
                    bp.label, key, base, cand
                );
                continue;
            }
            let delta = if lower_is_better(bp, cp, key) {
                (cand - base) / base
            } else {
                (base - cand) / base
            };
            if delta > threshold {
                failures.push(format!(
                    "{}/{} regressed {:.1}%: {:.4} -> {:.4}",
                    bp.label,
                    key,
                    delta * 100.0,
                    base,
                    cand
                ));
            }
        }
    }

    if failures.is_empty() {
        println!(
            "bench_gate: PASS ({compared} metrics within {:.0}%)",
            threshold * 100.0
        );
    } else {
        eprintln!("bench_gate: FAIL — {} regression(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_baseline_and_candidate_paths_both_survive() {
        // The old positional filter deduplicated by value: comparing an
        // artifact against itself (the obvious smoke test) was rejected
        // as "one path".
        let parsed = parse_args(&strs(&["a.json", "a.json"])).unwrap();
        assert_eq!(parsed.baseline, "a.json");
        assert_eq!(parsed.candidate, "a.json");
    }

    #[test]
    fn path_equal_to_threshold_value_is_not_swallowed() {
        // The old filter dropped any positional that happened to follow
        // a `--threshold` occurrence *by value* — a file literally named
        // `0.2` vanished when `--threshold 0.2` was also passed.
        let parsed = parse_args(&strs(&["--threshold", "0.2", "base.json", "0.2"])).unwrap();
        assert_eq!(parsed.baseline, "base.json");
        assert_eq!(parsed.candidate, "0.2");
        assert!((parsed.threshold - 0.2).abs() < 1e-12);
    }

    #[test]
    fn flags_parse_in_any_position() {
        let parsed = parse_args(&strs(&[
            "a.json",
            "--gate-wall",
            "b.json",
            "--threshold",
            "0.05",
        ]))
        .unwrap();
        assert_eq!(
            parsed,
            GateArgs {
                baseline: "a.json".to_string(),
                candidate: "b.json".to_string(),
                threshold: 0.05,
                gate_wall: true,
            }
        );
    }

    #[test]
    fn bad_usage_is_rejected() {
        assert!(parse_args(&strs(&["a.json"])).is_err());
        assert!(parse_args(&strs(&["a.json", "b.json", "c.json"])).is_err());
        assert!(parse_args(&strs(&["a.json", "b.json", "--threshold"])).is_err());
        assert!(parse_args(&strs(&["a.json", "b.json", "--threshold", "x"])).is_err());
        assert!(parse_args(&strs(&["a.json", "b.json", "--bogus"])).is_err());
    }

    #[test]
    fn explicit_direction_overrides_the_name_heuristic() {
        // A metric named like a lower-is-better one but recorded as
        // higher-is-better must gate on the recorded direction.
        let mut bp = BenchPoint::new("p");
        bp.metrics.insert("settle_ms".to_string(), 10.0);
        bp.directions.insert("settle_ms".to_string(), false);
        let cp = BenchPoint::new("p");
        assert!(!lower_is_better(&bp, &cp, "settle_ms"));
        // Without a recorded direction the heuristic applies.
        let bare = BenchPoint::new("p");
        assert!(lower_is_better(&bare, &cp, "settle_ms"));
    }
}
