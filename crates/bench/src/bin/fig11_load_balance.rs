//! Figure 11: throughput under skewed workloads — S-HS with d ∈ {1,2,3},
//! SMP-HS, gossip-based SMP, and the even-load upper bound (WAN).

use smp_bench::{header, BenchRecorder, Scale};
use smp_replica::{run, ExperimentConfig, Protocol};
use smp_types::MICROS_PER_SEC;
use smp_workload::LoadDistribution;

fn main() {
    let scale = Scale::from_args();
    header(
        "Figure 11 — throughput under unbalanced workloads (WAN)",
        scale,
    );
    let mut rec = BenchRecorder::from_args("fig11_load_balance", scale);

    let sizes: Vec<usize> = scale.pick(vec![16, 32], vec![100, 200, 300, 400]);
    let rate = scale.pick(10_000.0, 40_000.0);

    for (dist_label, dist_key, dist) in [
        ("Zipf1 (highly skewed)", "zipf1", LoadDistribution::zipf1()),
        (
            "Zipf10 (lightly skewed)",
            "zipf10",
            LoadDistribution::zipf10(),
        ),
    ] {
        println!("\n=== {dist_label} ===");
        println!(
            "{:<14} {:>6} {:>12} {:>12}",
            "config", "n", "KTx/s", "lat ms"
        );
        for &n in &sizes {
            let base = |protocol| {
                ExperimentConfig::new(protocol, n, rate)
                    .wan()
                    .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC)
                    .with_distribution(dist.clone())
            };
            // S-HS-Even: the even-workload upper bound.
            let even = run(&ExperimentConfig::new(Protocol::StratusHotStuff, n, rate)
                .wan()
                .with_duration(MICROS_PER_SEC, scale.pick(3, 5) * MICROS_PER_SEC));
            println!(
                "{:<14} {n:>6} {:>12.2} {:>12.1}",
                "S-HS-Even", even.summary.throughput_ktps, even.summary.mean_latency_ms
            );
            rec.result(&format!("{dist_key}/S-HS-Even/n={n}"), &even);
            let smp = run(&base(Protocol::SmpHotStuff));
            println!(
                "{:<14} {n:>6} {:>12.2} {:>12.1}",
                "SMP-HS", smp.summary.throughput_ktps, smp.summary.mean_latency_ms
            );
            rec.result(&format!("{dist_key}/SMP-HS/n={n}"), &smp);
            let gossip = run(&base(Protocol::SmpHotStuffGossip));
            println!(
                "{:<14} {n:>6} {:>12.2} {:>12.1}",
                "SMP-HS-G", gossip.summary.throughput_ktps, gossip.summary.mean_latency_ms
            );
            rec.result(&format!("{dist_key}/SMP-HS-G/n={n}"), &gossip);
            for d in [1usize, 2, 3] {
                let r = run(&base(Protocol::StratusHotStuff).with_dlb_d(d));
                println!(
                    "{:<14} {n:>6} {:>12.2} {:>12.1}",
                    format!("S-HS-d{d}"),
                    r.summary.throughput_ktps,
                    r.summary.mean_latency_ms
                );
                rec.result(&format!("{dist_key}/S-HS-d{d}/n={n}"), &r);
            }
        }
    }
    rec.finish();
    println!("\nExpected shape (paper Figure 11): under Zipf1 the load-balanced configurations");
    println!(
        "reach 5-10x the throughput of SMP-HS; d = 3 is best, and gossip does not scale under"
    );
    println!("the lightly skewed workload because of its redundancy.");
}
