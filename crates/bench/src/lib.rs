//! Shared support for the per-figure / per-table benchmark harnesses.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §5 for the index).  The binaries
//! accept `--quick` (default: a scaled-down run that finishes in minutes
//! on a laptop) and `--full` (the paper-scale parameter grid).

pub mod artifact;

pub use artifact::{
    inferred_lower_is_better, write_artifact, BenchArtifact, BenchPoint, BenchRecorder,
    BENCH_SCHEMA_VERSION,
};

use smp_replica::{ExperimentConfig, ExperimentResult};

/// Harness scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down parameters: small replica counts, short runs.
    Quick,
    /// Paper-scale parameters (hundreds of replicas, longer runs).
    Full,
}

impl Scale {
    /// Parses `--quick` / `--full` from the process arguments (defaults to
    /// quick).
    pub fn from_args() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Picks `quick` or `full` depending on the scale.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Returns an extra free-form `--net <value>` style argument.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Prints the standard harness header.
pub fn header(title: &str, scale: Scale) {
    println!("==============================================================");
    println!("{title}");
    println!("scale: {scale:?} (use --full for the paper-scale grid)");
    println!("==============================================================");
}

/// Prints one figure point as a row.
pub fn print_point(x_label: &str, x: impl std::fmt::Display, result: &ExperimentResult) {
    println!(
        "{x_label}={x:<8} {:<10} thr={:>9.2} KTx/s  lat={:>8.1} ms  p95={:>8.1} ms  vc={}",
        result.summary.label,
        result.summary.throughput_ktps,
        result.summary.mean_latency_ms,
        result.summary.p95_latency_ms,
        result.view_changes
    );
}

/// Offered-load grid (tx/s) used by the saturation search, scaled to the
/// replica count and network (larger networks saturate at lower rates for
/// the native protocols but higher for shared-mempool ones).
pub fn rate_grid(scale: Scale, wan: bool) -> Vec<f64> {
    let base: Vec<f64> = match scale {
        Scale::Quick => vec![5_000.0, 20_000.0, 60_000.0],
        Scale::Full => vec![5_000.0, 20_000.0, 60_000.0, 120_000.0, 200_000.0],
    };
    if wan {
        base.into_iter().map(|r| r / 2.5).collect()
    } else {
        base
    }
}

/// Convenience: runs a saturation sweep and returns the best point.
pub fn saturated(base: &ExperimentConfig, rates: &[f64]) -> ExperimentResult {
    let (best, results) = smp_replica::saturation_sweep(base, rates, 20_000.0);
    results
        .into_iter()
        .nth(best)
        .expect("sweep returned at least one result")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn rate_grid_is_smaller_for_wan() {
        let lan = rate_grid(Scale::Quick, false);
        let wan = rate_grid(Scale::Quick, true);
        assert_eq!(lan.len(), wan.len());
        assert!(wan[0] < lan[0]);
    }
}
