//! Recorded benchmark artifacts (`BENCH_<name>.json`).
//!
//! Every harness binary and micro-benchmark can write a schema-versioned
//! JSON artifact describing the run: configuration, git revision,
//! wall-clock time, and a list of labelled measurement points.  The
//! `bench_gate` binary compares two artifacts and fails on regressions,
//! which is how CI keeps a perf trajectory (`bench/baselines/`) honest.

use crate::Scale;
use smp_metrics::{JsonError, JsonValue};
use smp_replica::ExperimentResult;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Version stamped into every artifact; bump on incompatible layout
/// changes so the gate can refuse cross-schema comparisons.
///
/// v2 added per-metric `directions` (`"lower"` / `"higher"`), making the
/// gating direction explicit instead of inferred from the metric name.
pub const BENCH_SCHEMA_VERSION: u64 = 2;

/// The schema-1 fallback: infer the gating direction from the metric
/// name.  Only used for artifacts that predate explicit directions —
/// v2 artifacts record the direction per metric.
pub fn inferred_lower_is_better(key: &str) -> bool {
    key.contains("latency")
        || key.contains("_ms")
        || key.ends_with("ms")
        || key.contains("ns_per_iter")
        || key.contains("wall")
        || key.contains("view_changes")
}

/// One labelled measurement point: a set of named scalar metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchPoint {
    /// Unique label within the artifact (e.g. `n=64/S-HS`).
    pub label: String,
    /// Metric name → value.
    pub metrics: BTreeMap<String, f64>,
    /// Metric name → whether a smaller value is an improvement.  Written
    /// for every metric since schema v2; may be missing entries (or be
    /// empty) in older artifacts, where the gate falls back to
    /// [`inferred_lower_is_better`].
    pub directions: BTreeMap<String, bool>,
}

impl BenchPoint {
    /// A point with no metrics yet.
    pub fn new(label: impl Into<String>) -> Self {
        BenchPoint {
            label: label.into(),
            metrics: BTreeMap::new(),
            directions: BTreeMap::new(),
        }
    }

    /// The recorded direction for `key`, if any (`true` = lower is
    /// better).
    pub fn lower_is_better(&self, key: &str) -> Option<bool> {
        self.directions.get(key).copied()
    }

    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("label".to_string(), JsonValue::String(self.label.clone())),
            (
                "metrics".to_string(),
                JsonValue::Object(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Number(*v)))
                        .collect(),
                ),
            ),
            (
                "directions".to_string(),
                JsonValue::Object(
                    self.directions
                        .iter()
                        .map(|(k, lower)| {
                            let d = if *lower { "lower" } else { "higher" };
                            (k.clone(), JsonValue::String(d.to_string()))
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let label = v
            .get("label")
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        let mut metrics = BTreeMap::new();
        if let Some(obj) = v.get("metrics").and_then(JsonValue::as_object) {
            for (k, m) in obj {
                if let Some(x) = m.as_f64() {
                    metrics.insert(k.clone(), x);
                }
            }
        }
        let mut directions = BTreeMap::new();
        if let Some(obj) = v.get("directions").and_then(JsonValue::as_object) {
            for (k, d) in obj {
                // Accept the canonical strings and plain booleans.
                let lower = match (d.as_str(), d.as_bool()) {
                    (Some("lower"), _) => Some(true),
                    (Some("higher"), _) => Some(false),
                    (_, Some(b)) => Some(b),
                    _ => None,
                };
                if let Some(lower) = lower {
                    directions.insert(k.clone(), lower);
                }
            }
        }
        Ok(BenchPoint {
            label,
            metrics,
            directions,
        })
    }
}

/// A recorded benchmark run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchArtifact {
    /// Artifact layout version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Benchmark name (e.g. `fig7_scalability`).
    pub name: String,
    /// `git rev-parse --short HEAD` at record time (empty if unknown).
    pub git_rev: String,
    /// Harness scale (`quick` / `full`) the run used.
    pub scale: String,
    /// The process arguments, for reproducing the run.
    pub args: Vec<String>,
    /// Wall-clock duration of the whole run in seconds.
    pub wall_secs: f64,
    /// The measurement points.
    pub points: Vec<BenchPoint>,
}

impl BenchArtifact {
    /// Serializes to the canonical JSON layout.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::Number(self.schema as f64)),
            ("name".to_string(), JsonValue::String(self.name.clone())),
            (
                "git_rev".to_string(),
                JsonValue::String(self.git_rev.clone()),
            ),
            ("scale".to_string(), JsonValue::String(self.scale.clone())),
            (
                "args".to_string(),
                JsonValue::Array(
                    self.args
                        .iter()
                        .map(|a| JsonValue::String(a.clone()))
                        .collect(),
                ),
            ),
            ("wall_secs".to_string(), JsonValue::Number(self.wall_secs)),
            (
                "points".to_string(),
                JsonValue::Array(self.points.iter().map(BenchPoint::to_json).collect()),
            ),
        ])
    }

    /// Parses the canonical JSON layout.
    pub fn from_json(v: &JsonValue) -> Result<Self, JsonError> {
        let schema = v.get("schema").and_then(JsonValue::as_u64).unwrap_or(0);
        let str_field = |k: &str| {
            v.get(k)
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string()
        };
        let args = v
            .get("args")
            .and_then(JsonValue::as_array)
            .map(|a| {
                a.iter()
                    .filter_map(|x| x.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let points = v
            .get("points")
            .and_then(JsonValue::as_array)
            .map(|a| {
                a.iter()
                    .map(BenchPoint::from_json)
                    .collect::<Result<_, _>>()
            })
            .transpose()?
            .unwrap_or_default();
        Ok(BenchArtifact {
            schema,
            name: str_field("name"),
            git_rev: str_field("git_rev"),
            scale: str_field("scale"),
            args,
            wall_secs: v
                .get("wall_secs")
                .and_then(JsonValue::as_f64)
                .unwrap_or(0.0),
            points,
        })
    }

    /// Parses an artifact from JSON text.
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        Self::from_json(&JsonValue::parse(text)?)
    }

    /// Looks up a point by label.
    pub fn point(&self, label: &str) -> Option<&BenchPoint> {
        self.points.iter().find(|p| p.label == label)
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_default()
}

/// Collects measurement points during a harness run and writes the
/// artifact on [`finish`](BenchRecorder::finish) when the process was
/// started with `--bench-out <path>`.
///
/// With no `--bench-out` argument every method is a cheap no-op, so the
/// harness binaries record unconditionally.
#[derive(Debug)]
pub struct BenchRecorder {
    artifact: BenchArtifact,
    out: Option<PathBuf>,
    started: Instant,
}

impl BenchRecorder {
    /// Builds a recorder for benchmark `name`, reading `--bench-out` from
    /// the process arguments.  A path ending in `/` (or naming an
    /// existing directory) receives `BENCH_<name>.json`; any other path
    /// is used verbatim.
    pub fn from_args(name: &str, scale: Scale) -> Self {
        let out = crate::arg_value("--bench-out").map(|raw| {
            let p = PathBuf::from(&raw);
            if raw.ends_with('/') || p.is_dir() {
                p.join(format!("BENCH_{name}.json"))
            } else {
                p
            }
        });
        BenchRecorder {
            artifact: BenchArtifact {
                schema: BENCH_SCHEMA_VERSION,
                name: name.to_string(),
                git_rev: if out.is_some() {
                    git_rev()
                } else {
                    String::new()
                },
                scale: format!("{scale:?}").to_lowercase(),
                args: std::env::args().skip(1).collect(),
                wall_secs: 0.0,
                points: Vec::new(),
            },
            out,
            started: Instant::now(),
        }
    }

    /// Whether an artifact will be written.
    pub fn enabled(&self) -> bool {
        self.out.is_some()
    }

    /// Adds (or extends) the point `label` with one metric, inferring the
    /// gating direction from the metric name.  Use
    /// [`metric_directed`](Self::metric_directed) when the name does not
    /// say which way is better.
    pub fn metric(&mut self, label: &str, key: &str, value: f64) {
        self.metric_directed(label, key, value, inferred_lower_is_better(key));
    }

    /// Adds (or extends) the point `label` with one metric carrying an
    /// explicit gating direction (`true` = lower is better).
    pub fn metric_directed(&mut self, label: &str, key: &str, value: f64, lower_is_better: bool) {
        if self.out.is_none() {
            return;
        }
        let point = match self.artifact.points.iter_mut().find(|p| p.label == label) {
            Some(p) => p,
            None => {
                self.artifact.points.push(BenchPoint::new(label));
                self.artifact.points.last_mut().expect("just pushed")
            }
        };
        point.metrics.insert(key.to_string(), value);
        point.directions.insert(key.to_string(), lower_is_better);
    }

    /// Records the standard summary metrics of one experiment result
    /// under `label`.
    pub fn result(&mut self, label: &str, r: &ExperimentResult) {
        if self.out.is_none() {
            return;
        }
        self.metric_directed(label, "throughput_ktps", r.summary.throughput_ktps, false);
        self.metric_directed(label, "mean_latency_ms", r.summary.mean_latency_ms, true);
        self.metric_directed(label, "p95_latency_ms", r.summary.p95_latency_ms, true);
        self.metric_directed(label, "p99_latency_ms", r.summary.p99_latency_ms, true);
        self.metric_directed(label, "committed_txs", r.committed_txs as f64, false);
        self.metric_directed(label, "view_changes", r.view_changes as f64, true);
    }

    /// Stamps the wall-clock duration and writes the artifact (if
    /// `--bench-out` was given).  Returns the path written to.
    pub fn finish(mut self) -> Option<PathBuf> {
        let out = self.out.take()?;
        self.artifact.wall_secs = self.started.elapsed().as_secs_f64();
        write_artifact(&self.artifact, &out);
        Some(out)
    }
}

/// Writes `artifact` to `path` (creating parent directories), printing
/// the destination.  Exits the process on I/O failure: a harness asked
/// to record that cannot record should fail loudly, not silently.
pub fn write_artifact(artifact: &BenchArtifact, path: &Path) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("bench-out: cannot create {}: {e}", parent.display());
                std::process::exit(2);
            }
        }
    }
    let mut text = artifact.to_json().to_pretty();
    text.push('\n');
    if let Err(e) = std::fs::write(path, text) {
        eprintln!("bench-out: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!("bench artifact written to {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_through_json() {
        let mut p = BenchPoint::new("n=16/S-HS");
        p.metrics.insert("throughput_ktps".to_string(), 42.5);
        p.metrics.insert("p95_latency_ms".to_string(), 8.0);
        p.directions.insert("throughput_ktps".to_string(), false);
        p.directions.insert("p95_latency_ms".to_string(), true);
        let a = BenchArtifact {
            schema: BENCH_SCHEMA_VERSION,
            name: "fig7_scalability".to_string(),
            git_rev: "abc1234".to_string(),
            scale: "quick".to_string(),
            args: vec!["--quick".to_string()],
            wall_secs: 12.25,
            points: vec![p],
        };
        let text = a.to_json().to_pretty();
        let back = BenchArtifact::parse(&text).unwrap();
        assert_eq!(a, back);
        assert_eq!(
            back.point("n=16/S-HS").unwrap().metrics["throughput_ktps"],
            42.5
        );
    }

    #[test]
    fn missing_fields_default_instead_of_failing() {
        let a = BenchArtifact::parse(r#"{"schema": 1, "name": "x"}"#).unwrap();
        assert_eq!(a.schema, 1);
        assert_eq!(a.name, "x");
        assert!(a.points.is_empty());
        assert_eq!(a.wall_secs, 0.0);
    }

    #[test]
    fn v1_points_parse_without_directions() {
        let a = BenchArtifact::parse(
            r#"{"schema": 1, "name": "x",
                "points": [{"label": "p", "metrics": {"ns_per_iter": 5.0}}]}"#,
        )
        .unwrap();
        let p = a.point("p").unwrap();
        assert_eq!(p.metrics["ns_per_iter"], 5.0);
        assert_eq!(p.lower_is_better("ns_per_iter"), None);
        // The name-based fallback still classifies the metric.
        assert!(inferred_lower_is_better("ns_per_iter"));
        assert!(!inferred_lower_is_better("throughput_ktps"));
    }

    #[test]
    fn directions_accept_strings_and_booleans() {
        let a = BenchArtifact::parse(
            r#"{"schema": 2, "name": "x",
                "points": [{"label": "p",
                            "metrics": {"a": 1.0, "b": 2.0, "c": 3.0},
                            "directions": {"a": "lower", "b": "higher", "c": true}}]}"#,
        )
        .unwrap();
        let p = a.point("p").unwrap();
        assert_eq!(p.lower_is_better("a"), Some(true));
        assert_eq!(p.lower_is_better("b"), Some(false));
        assert_eq!(p.lower_is_better("c"), Some(true));
    }
}
