//! The replica: consensus engine + mempool + workload generation wired
//! onto the network simulator (paper Figure 1).

use crate::wire::{MempoolWire, ReplicaMsg, ReplicaPayload, SyncMsg};
use simnet::{Node, NodeCtx, ObsKind, TimerTag};
use smp_consensus::{CDest, CEffects, CEvent, ConsensusEngine, ProposalVerdict};
use smp_mempool::{Dest, Effects, FillStatus, Mempool, MempoolEvent};
use smp_metrics::{LatencyHistogram, ThroughputMeter};
use smp_types::{BlockId, Payload, Proposal, ReplicaId, SimTime, SystemConfig, TxId, View};
use smp_workload::TxFactory;
use std::collections::{HashMap, HashSet};

/// Timer tag used for the client-workload tick.
const TICK_TAG: TimerTag = u64::MAX;
/// Timer tag used for crash-recovery sync retries.  Like [`TICK_TAG`] it
/// has bit 63 set, so `on_timer` must match it *before* testing
/// [`MEMPOOL_TAG_FLAG`].
const SYNC_TAG: TimerTag = u64::MAX - 1;
/// Bit marking a timer as belonging to the mempool (consensus and workload
/// tags never have it set because they are below 2^63).
const MEMPOOL_TAG_FLAG: u64 = 1 << 63;
/// Interval of the workload tick.
const TICK_INTERVAL: SimTime = 5 * smp_types::MICROS_PER_MS;
/// How often a recovering replica re-asks its peers for the committed
/// tail it is missing.
const SYNC_INTERVAL: SimTime = 200 * smp_types::MICROS_PER_MS;
/// Maximum commit-log entries served in one `SyncResponse` (bounds the
/// frame size; the requester keeps asking from its new tail).
const SYNC_CHUNK: usize = 4_096;

/// How a replica behaves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// Follows the protocol.
    Honest,
    /// Crashed / silent: sends and processes nothing (the "up to one third
    /// silent" setting of Section VII-B).
    Silent,
    /// A Byzantine *sender* (Section VII-C): disseminates its microblocks
    /// only to the current leader plus `extra` additional replicas, so
    /// that honest replicas see proposals referencing data they never
    /// received.
    ByzantineSender {
        /// Number of additional replicas (besides the leader) that still
        /// receive the data.  `0` reproduces the SMP-HS attack; Stratus
        /// attackers must use at least `q - 1` to obtain proofs.
        extra: usize,
    },
}

/// Per-replica measurement state.
#[derive(Clone, Debug, Default)]
pub struct ReplicaMetrics {
    /// Committed-transaction throughput (recorded at execution time).
    pub throughput: ThroughputMeter,
    /// Commit latency histogram (only populated when `record_latencies`).
    pub latency: LatencyHistogram,
    /// View changes observed by the consensus engine.
    pub view_changes: u64,
    /// Total transactions this replica received from clients.
    pub client_txs: u64,
    /// Fetches for missing microblocks issued by the mempool.
    pub missing_fetches: u64,
}

/// A full replica node: consensus + mempool + client workload.
pub struct Replica<E, M>
where
    E: ConsensusEngine,
    M: Mempool,
    M::Msg: MempoolWire,
{
    me: ReplicaId,
    n: usize,
    engine: E,
    mempool: M,
    behavior: Behavior,
    /// Offered client load for this replica, transactions per second.
    rate_tps: f64,
    factory: TxFactory,
    /// Prioritize consensus / control messages on the wire (the Stratus
    /// optimization; disabled for the baselines).
    prioritize_control: bool,
    record_latencies: bool,
    metrics: ReplicaMetrics,
    /// Proposals whose mempool verification is still pending
    /// (`FillStatus::MustWait`).
    pending_verdicts: HashSet<BlockId>,
    /// Proposals indexed by id, needed when a deferred verdict resolves.
    known_proposals: HashMap<BlockId, View>,
    /// Cap on the total client transactions this replica offers (used by
    /// the runtime-conformance harness to make workloads finite).
    tx_limit: Option<u64>,
    /// When enabled, every inline transaction id of every committed
    /// proposal, in commit order.  This is the cross-runtime conformance
    /// artifact: a simnet run and an `smp-net` run of the same
    /// configuration must produce byte-identical logs.
    commit_log: Option<Vec<TxId>>,
    /// Crash-recovery mode: the replica rejoined after losing its state
    /// and is replaying the committed sequence from live peers.  While
    /// recovering it neither votes nor proposes (crash-fault model) —
    /// it only issues `SyncRequest`s and applies `SyncResponse`s.
    recovering: bool,
}

impl<E, M> Replica<E, M>
where
    E: ConsensusEngine,
    M: Mempool,
    M::Msg: MempoolWire,
{
    /// Builds a replica.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &SystemConfig,
        me: ReplicaId,
        engine: E,
        mempool: M,
        behavior: Behavior,
        rate_tps: f64,
        prioritize_control: bool,
        record_latencies: bool,
    ) -> Self {
        Replica {
            me,
            n: config.n,
            engine,
            mempool,
            behavior,
            rate_tps,
            factory: TxFactory::new(me, config.mempool.tx_payload_bytes),
            prioritize_control,
            record_latencies,
            metrics: ReplicaMetrics::default(),
            pending_verdicts: HashSet::new(),
            known_proposals: HashMap::new(),
            tx_limit: None,
            commit_log: None,
            recovering: false,
        }
    }

    /// Marks this replica as a crash-recovery rejoin: `on_start` will
    /// skip the consensus engine and workload and instead replay the
    /// committed sequence from live peers via the `Sync` wire family.
    /// Used by a freshly exec'd process rejoining an in-flight cluster.
    pub fn start_recovery(&mut self) {
        self.recovering = true;
    }

    /// Whether the replica is in crash-recovery mode.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Epoch-style teardown for an in-process restart: abandons every
    /// piece of volatile protocol state (pending verdicts, tracked
    /// proposals, metrics — and the consensus/mempool rounds, which are
    /// simply never consulted again) and re-enters as a recovering
    /// observer with an empty commit log, exactly like a freshly exec'd
    /// process.  This mirrors the teardown/respawn dance Narwhal-style
    /// designs perform on an epoch change.
    pub fn drain_and_restart(&mut self) {
        self.pending_verdicts.clear();
        self.known_proposals.clear();
        self.metrics = ReplicaMetrics::default();
        if self.commit_log.is_some() {
            self.commit_log = Some(Vec::new());
        }
        self.recovering = true;
    }

    /// Caps the total number of client transactions this replica offers.
    /// Once `limit` transactions have been generated the workload tick
    /// stops producing (the tick timer keeps running).
    pub fn limit_client_txs(&mut self, limit: u64) {
        self.tx_limit = Some(limit);
    }

    /// Starts recording committed inline transaction ids in commit order.
    pub fn enable_commit_log(&mut self) {
        self.commit_log = Some(Vec::new());
    }

    /// The recorded commit log (`None` unless
    /// [`enable_commit_log`](Self::enable_commit_log) was called).
    pub fn commit_log(&self) -> Option<&[TxId]> {
        self.commit_log.as_deref()
    }

    /// The replica's identity.
    pub fn id(&self) -> ReplicaId {
        self.me
    }

    /// Measurement state.
    pub fn metrics(&self) -> &ReplicaMetrics {
        &self.metrics
    }

    /// The consensus engine (for inspection).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// The mempool (for inspection).
    pub fn mempool(&self) -> &M {
        &self.mempool
    }

    /// The behaviour assigned to this replica.
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    fn is_silent(&self) -> bool {
        self.behavior == Behavior::Silent
    }

    // ----- effect application ------------------------------------------------

    fn apply_consensus_effects(&mut self, ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>, fx: CEffects) {
        for (dest, msg) in fx.msgs {
            let wrapped = ReplicaMsg::consensus(msg, self.prioritize_control);
            match dest {
                CDest::One(r) => ctx.send(r, wrapped),
                CDest::AllButSelf => ctx.broadcast(wrapped),
            }
        }
        for (delay, tag) in fx.timers {
            ctx.set_timer(delay, tag);
        }
        for ev in fx.events {
            self.handle_consensus_event(ctx, ev);
        }
    }

    fn handle_consensus_event(&mut self, ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>, ev: CEvent) {
        let now = ctx.now();
        match ev {
            CEvent::NeedPayload { view } => {
                let span = ctx.telemetry().span_at("replica.make_payload", now);
                let payload = self.mempool.make_payload(now);
                drop(span);
                let fx = self.engine.on_payload(now, view, payload);
                self.apply_consensus_effects(ctx, fx);
            }
            CEvent::VerifyProposal { proposal } => {
                self.known_proposals.insert(proposal.id, proposal.view);
                let span = ctx.telemetry().span_at("replica.verify_proposal", now);
                let (status, mfx) = self.mempool.on_proposal(now, &proposal, ctx.rng());
                drop(span);
                self.apply_mempool_effects(ctx, mfx);
                match status {
                    FillStatus::Ready => {
                        let fx = self.engine.on_proposal_verdict(
                            now,
                            proposal.id,
                            ProposalVerdict::Accept,
                        );
                        self.apply_consensus_effects(ctx, fx);
                    }
                    FillStatus::Invalid(_) => {
                        let fx = self.engine.on_proposal_verdict(
                            now,
                            proposal.id,
                            ProposalVerdict::Reject,
                        );
                        self.apply_consensus_effects(ctx, fx);
                    }
                    FillStatus::MustWait(_) => {
                        // Consensus stays blocked until the mempool reports
                        // the proposal ready (the SMP-HS weakness).
                        self.pending_verdicts.insert(proposal.id);
                    }
                }
            }
            CEvent::Committed { proposal } => {
                self.handle_commit(ctx, proposal);
            }
            CEvent::ViewChange { abandoned } => {
                self.metrics.view_changes += 1;
                ctx.observe(ObsKind::ViewChange { view: abandoned.0 });
            }
        }
    }

    fn handle_commit(&mut self, ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>, proposal: Proposal) {
        if let Some(log) = self.commit_log.as_mut() {
            record_inline_txs(log, &proposal.payload);
        }
        let now = ctx.now();
        let span = ctx.telemetry().span_at("replica.commit", now);
        let fx = self.mempool.on_commit(now, &proposal);
        drop(span);
        self.apply_mempool_effects(ctx, fx);
    }

    fn apply_mempool_effects(
        &mut self,
        ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>,
        fx: Effects<M::Msg>,
    ) {
        for (dest, msg) in fx.msgs {
            self.route_mempool_message(ctx, dest, msg);
        }
        for (delay, tag) in fx.timers {
            ctx.set_timer(delay, tag | MEMPOOL_TAG_FLAG);
        }
        for ev in fx.events {
            self.handle_mempool_event(ctx, ev);
        }
    }

    fn route_mempool_message(
        &mut self,
        ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>,
        dest: Dest,
        msg: M::Msg,
    ) {
        let priority = self.prioritize_control && !msg.is_bulk();
        let wrapped = ReplicaMsg::mempool(msg, priority);
        match (&self.behavior, dest) {
            (Behavior::ByzantineSender { extra }, Dest::AllButSelf)
                if wrapped.payload_is_bulk() =>
            {
                // Censoring sender: only the current leader (plus `extra`
                // random replicas) receive the data.
                let leader = self.engine.current_view().leader(self.n);
                let mut targets: Vec<ReplicaId> = vec![leader];
                let mut candidates: Vec<ReplicaId> = (0..self.n as u32)
                    .map(ReplicaId)
                    .filter(|r| *r != self.me && *r != leader)
                    .collect();
                use rand::seq::SliceRandom;
                candidates.shuffle(ctx.rng());
                targets.extend(candidates.into_iter().take(*extra));
                targets.retain(|r| *r != self.me);
                ctx.multicast(&targets, wrapped);
            }
            (_, Dest::One(r)) => ctx.send(r, wrapped),
            (_, Dest::AllButSelf) => ctx.broadcast(wrapped),
            (_, Dest::Many(targets)) => ctx.multicast(&targets, wrapped),
        }
    }

    fn handle_mempool_event(
        &mut self,
        ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>,
        ev: MempoolEvent,
    ) {
        let now = ctx.now();
        match ev {
            MempoolEvent::ProposalReady { proposal } => {
                if self.pending_verdicts.remove(&proposal) {
                    let fx =
                        self.engine
                            .on_proposal_verdict(now, proposal, ProposalVerdict::Accept);
                    self.apply_consensus_effects(ctx, fx);
                }
            }
            MempoolEvent::MicroblockStable { stable_time, .. } => {
                ctx.observe(ObsKind::MicroblockStable {
                    stable_time_us: stable_time,
                });
            }
            MempoolEvent::Executed {
                tx_count,
                receive_times,
                ..
            } => {
                self.metrics.throughput.record(now, tx_count as u64);
                ctx.telemetry().counter_add("commit.txs", tx_count as u64);
                let mut latency_sum = 0u64;
                let mut latency_count = 0u32;
                for t in &receive_times {
                    let lat = now.saturating_sub(*t);
                    latency_sum += lat;
                    latency_count += 1;
                    ctx.telemetry().observe_us("commit.latency", lat);
                    if self.record_latencies {
                        self.metrics.latency.record(lat);
                    }
                }
                ctx.observe(ObsKind::Committed {
                    txs: tx_count,
                    latency_sum_us: latency_sum,
                    latency_count,
                });
            }
            MempoolEvent::FetchIssued { count } => {
                self.metrics.missing_fetches += count as u64;
                ctx.observe(ObsKind::MissingFetch { count });
            }
        }
    }

    // ----- crash-recovery sync ----------------------------------------------

    /// Broadcasts a `SyncRequest` for everything past our current tail.
    fn request_sync(&mut self, ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>) {
        let from_index = self.commit_log.as_ref().map_or(0, Vec::len) as u64;
        ctx.broadcast(ReplicaMsg::sync(SyncMsg::Request { from_index }));
    }

    fn handle_sync(
        &mut self,
        ctx: &mut NodeCtx<'_, ReplicaMsg<M::Msg>>,
        from: ReplicaId,
        msg: SyncMsg,
    ) {
        match msg {
            SyncMsg::Request { from_index } => {
                // Serve from whatever committed prefix we hold (a
                // recovering replica may itself answer with its partial
                // log; committed prefixes never conflict).
                let Some(log) = self.commit_log.as_ref() else {
                    return;
                };
                let from_index = from_index as usize;
                if from_index >= log.len() {
                    return;
                }
                let entries: Vec<TxId> =
                    log[from_index..].iter().take(SYNC_CHUNK).copied().collect();
                ctx.send(
                    from,
                    ReplicaMsg::sync(SyncMsg::Response {
                        from_index: from_index as u64,
                        entries,
                    }),
                );
            }
            SyncMsg::Response {
                from_index,
                entries,
            } => {
                if !self.recovering {
                    return;
                }
                let Some(log) = self.commit_log.as_mut() else {
                    return;
                };
                let from_index = from_index as usize;
                if from_index > log.len() {
                    // A gap: wait for a chunk that starts at our tail.
                    return;
                }
                let skip = log.len() - from_index;
                if skip >= entries.len() {
                    return;
                }
                log.extend_from_slice(&entries[skip..]);
            }
        }
    }
}

/// Appends every inline transaction id of `payload` to `log`, in payload
/// order (shard groups in group order).  Referenced payloads contribute
/// nothing: the conformance harness only runs inline-payload protocols.
fn record_inline_txs(log: &mut Vec<TxId>, payload: &Payload) {
    match payload {
        Payload::Inline(txs) => log.extend(txs.iter().map(|t| t.id)),
        // Ref payloads commit whole microblocks; the microblock id digest
        // stands in for its transactions so ref-based protocols (SMP,
        // Narwhal, Stratus) still produce a comparable commit sequence
        // across runtimes.
        Payload::Refs(refs) => log.extend(refs.iter().map(|r| TxId(r.id.0))),
        Payload::Empty => {}
        Payload::Sharded(groups) => {
            for (_, p) in groups {
                record_inline_txs(log, p);
            }
        }
    }
}

impl<M> ReplicaMsg<M>
where
    M: MempoolWire,
{
    fn payload_is_bulk(&self) -> bool {
        match &self.payload {
            ReplicaPayload::Mempool(m) => m.is_bulk(),
            ReplicaPayload::Consensus(_) => false,
            ReplicaPayload::Sync(s) => matches!(s, SyncMsg::Response { .. }),
        }
    }
}

impl<E, M> Node for Replica<E, M>
where
    E: ConsensusEngine,
    M: Mempool,
    M::Msg: MempoolWire,
{
    type Msg = ReplicaMsg<M::Msg>;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        if self.is_silent() {
            return;
        }
        if self.recovering {
            // Passive rejoin: don't boot the consensus engine or the
            // workload — ask peers for the committed sequence instead.
            self.request_sync(ctx);
            ctx.set_timer(SYNC_INTERVAL, SYNC_TAG);
            return;
        }
        let fx = self.engine.on_start(ctx.now());
        self.apply_consensus_effects(ctx, fx);
        if self.rate_tps > 0.0 {
            ctx.set_timer(TICK_INTERVAL, TICK_TAG);
        }
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        if self.is_silent() {
            return;
        }
        self.drain_and_restart();
        self.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, from: ReplicaId, msg: Self::Msg) {
        if self.is_silent() {
            return;
        }
        let now = ctx.now();
        match msg.payload {
            ReplicaPayload::Sync(sm) => self.handle_sync(ctx, from, sm),
            // A recovering replica abandoned its consensus/mempool
            // epoch: protocol traffic addressed to the old incarnation
            // is dropped, only Sync is live.
            _ if self.recovering => {}
            ReplicaPayload::Consensus(cm) => {
                let span = ctx.telemetry().span_at("replica.consensus.on_message", now);
                let fx = self.engine.on_message(now, from, cm);
                drop(span);
                self.apply_consensus_effects(ctx, fx);
            }
            ReplicaPayload::Mempool(mm) => {
                let span = ctx.telemetry().span_at("replica.mempool.on_message", now);
                let fx = self.mempool.on_message(now, from, mm, ctx.rng());
                drop(span);
                self.apply_mempool_effects(ctx, fx);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, tag: TimerTag) {
        if self.is_silent() {
            return;
        }
        let now = ctx.now();
        // SYNC_TAG has bit 63 set, so it must be matched before the
        // MEMPOOL_TAG_FLAG test below.
        if tag == SYNC_TAG {
            if self.recovering {
                self.request_sync(ctx);
                ctx.set_timer(SYNC_INTERVAL, SYNC_TAG);
            }
            return;
        }
        if self.recovering {
            // Timers armed by the abandoned pre-crash epoch.
            return;
        }
        if tag == TICK_TAG {
            let mut txs = self.factory.tick(now, TICK_INTERVAL, self.rate_tps);
            if let Some(limit) = self.tx_limit {
                let left = limit.saturating_sub(self.metrics.client_txs) as usize;
                txs.truncate(left);
            }
            if !txs.is_empty() {
                self.metrics.client_txs += txs.len() as u64;
                let fx = self.mempool.on_client_txs(now, txs, ctx.rng());
                self.apply_mempool_effects(ctx, fx);
            }
            ctx.set_timer(TICK_INTERVAL, TICK_TAG);
        } else if tag & MEMPOOL_TAG_FLAG != 0 {
            let fx = self
                .mempool
                .on_timer(now, tag & !MEMPOOL_TAG_FLAG, ctx.rng());
            self.apply_mempool_effects(ctx, fx);
        } else {
            let fx = self.engine.on_timer(now, tag);
            self.apply_consensus_effects(ctx, fx);
        }
    }
}
