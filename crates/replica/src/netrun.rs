//! Running a replica under the real-socket runtime (`smp-net`).
//!
//! The same [`Replica`] state machines that [`experiment::run`]
//! (crate::experiment::run) drives inside the simulator run here over
//! real TCP: this module supplies the [`smp_net::WireMsg`] impl for
//! [`ReplicaMsg`] (framing via [`wire::codec`](crate::wire::codec)), the
//! per-protocol dispatch that assembles *one* replica for *this*
//! process, and a simulator reference runner producing the commit log an
//! `smp-net` cluster must reproduce byte-for-byte.

use crate::experiment::ExperimentConfig;
use crate::protocols::Protocol;
use crate::replica::Replica;
use crate::wire::codec::{self, WireCodec};
use crate::wire::{MempoolWire, ReplicaMsg};
use simnet::{Node, Simulation, Telemetry};
use smp_consensus::{ConsensusEngine, HotStuffEngine, MirBftEngine, PbftEngine, StreamletEngine};
use smp_mempool::{DagMempool, GossipSmp, Mempool, NarwhalMempool, NativeMempool, SimpleSmp};
use smp_net::{spawn_admin, AdminState, ClusterSpec, NetRuntime, WireError, WireMsg};
use smp_shard::ShardedMempool;
use smp_telemetry::{FlightSampler, DEFAULT_WINDOW_CAPACITY};
use smp_types::{DagMode, ExecutorKind, ReplicaId, SystemConfig, TxId};
use std::io;
use std::net::SocketAddr;
use stratus::StratusMempool;

impl<MM> WireMsg for ReplicaMsg<MM>
where
    MM: MempoolWire + WireCodec + Send + 'static,
{
    const HEADER_BYTES: usize = codec::FRAME_HEADER_BYTES;

    fn encode(&self) -> Vec<u8> {
        codec::encode_frame(self)
    }

    fn body_len(header: &[u8]) -> Result<usize, WireError> {
        codec::decode_header(header)
            .map(|h| h.body_len)
            .map_err(|e| WireError::new(e.taxonomy(), e.to_string()))
    }

    fn decode(header: &[u8], body: &[u8]) -> Result<Self, WireError> {
        let h = codec::decode_header(header)
            .map_err(|e| WireError::new(e.taxonomy(), e.to_string()))?;
        codec::decode_body(body, h.priority)
            .map_err(|e| WireError::new(e.taxonomy(), e.to_string()))
    }
}

/// Options for a socket-runtime run.
#[derive(Clone, Debug)]
pub struct NetRunOptions {
    /// Cap on client transactions offered per replica (finite workloads
    /// make cross-runtime commit logs comparable).
    pub tx_limit: Option<u64>,
    /// Wall-clock run duration in microseconds.
    pub horizon_us: u64,
    /// Attach a live telemetry sink (wall-clock timestamps).
    pub telemetry: bool,
    /// Serve a line-oriented admin endpoint (`HEALTH`/`METRICS`/`SERIES`/
    /// `TRACE`) at this address for the duration of the run.  Implies a
    /// live telemetry sink.
    pub admin_addr: Option<SocketAddr>,
    /// Run a background flight-recorder sampler on this wall-clock
    /// cadence (µs), retaining recent metrics windows.  Implies a live
    /// telemetry sink.
    pub flight_cadence_us: Option<u64>,
    /// Start in crash-recovery mode: the replica boots as a passive
    /// sync observer, replays the committed sequence from its peers via
    /// the `Sync` wire family, and never runs the engine or workload.
    pub recover: bool,
}

impl Default for NetRunOptions {
    fn default() -> Self {
        NetRunOptions {
            tx_limit: None,
            horizon_us: 1_000_000,
            telemetry: false,
            admin_addr: None,
            flight_cadence_us: None,
            recover: false,
        }
    }
}

/// What one replica process measured during a socket-runtime run.
#[derive(Clone, Debug)]
pub struct NetRunSummary {
    /// Committed inline transaction ids, in commit order.
    pub commit_log: Vec<TxId>,
    /// Transactions committed (from the observation log).
    pub committed_txs: u64,
    /// Client transactions this replica offered.
    pub client_txs: u64,
    /// View changes observed.
    pub view_changes: u64,
    /// Frames received from peers.
    pub frames_in: u64,
    /// Frames sent to peers.
    pub frames_out: u64,
    /// Bytes received from peers.
    pub bytes_in: u64,
    /// Bytes sent to peers.
    pub bytes_out: u64,
    /// Wall-clock duration, microseconds.
    pub wall_us: u64,
    /// Connection/codec failures seen during the run.
    pub peer_errors: Vec<String>,
    /// Recoverable frame-body decode failures (connection survived).
    pub frame_errors: Vec<String>,
    /// The run's telemetry sink (disabled unless requested).
    pub telemetry: Telemetry,
    /// The telemetry epoch as µs since the Unix epoch (None when the
    /// sink is disabled) — the cross-process trace-alignment anchor.
    pub epoch_unix_us: Option<u64>,
    /// The flight recorder's exported series (None when no sampler ran).
    pub flight_series: Option<smp_metrics::JsonValue>,
}

/// Visitor over the concrete (engine, mempool) types of a protocol.
trait ProtocolVisitor {
    type Out;
    fn visit<E, M, FE, FM>(self, make_engine: FE, make_mempool: FM) -> Self::Out
    where
        E: ConsensusEngine,
        M: Mempool + Send + 'static,
        M::Msg: MempoolWire + WireCodec + Send + 'static,
        FE: Fn(&SystemConfig, ReplicaId) -> E,
        FM: Fn(&SystemConfig, ReplicaId) -> M,
        Replica<E, M>: Node<Msg = ReplicaMsg<M::Msg>>;
}

/// Applies the sharding wrap (if configured) and hands the final stack
/// to the visitor — the same composition [`crate::experiment::run`] uses.
fn visit_backend<V, E, M, FE, FM>(
    config: &ExperimentConfig,
    v: V,
    make_engine: FE,
    make_mempool: FM,
) -> V::Out
where
    V: ProtocolVisitor,
    E: ConsensusEngine,
    M: Mempool + Send + 'static,
    M::Msg: MempoolWire + WireCodec + Send + 'static,
    FE: Fn(&SystemConfig, ReplicaId) -> E,
    FM: Fn(&SystemConfig, ReplicaId) -> M,
    Replica<E, M>: Node<Msg = ReplicaMsg<M::Msg>>,
    Replica<E, ShardedMempool<M>>: Node<Msg = ReplicaMsg<smp_shard::ShardedMsg<M::Msg>>>,
{
    if config.shards > 1 {
        let k = config.shards;
        match config.executor {
            ExecutorKind::Sequential => v.visit(make_engine, move |s: &SystemConfig, i| {
                ShardedMempool::sequential(s, k, i.0 as u64, |_, shard_sys| {
                    make_mempool(shard_sys, i)
                })
            }),
            ExecutorKind::Parallel => v.visit(make_engine, move |s: &SystemConfig, i| {
                ShardedMempool::parallel(s, k, i.0 as u64, |_, shard_sys| {
                    make_mempool(shard_sys, i)
                })
            }),
        }
    } else {
        v.visit(make_engine, make_mempool)
    }
}

/// Resolves the protocol matrix to concrete types and runs the visitor.
fn dispatch<V: ProtocolVisitor>(config: &ExperimentConfig, sys: &SystemConfig, v: V) -> V::Out {
    match config.protocol {
        Protocol::NativeHotStuff => {
            visit_backend(config, v, HotStuffEngine::new, NativeMempool::new)
        }
        Protocol::NativePbft => visit_backend(config, v, PbftEngine::new, NativeMempool::new),
        Protocol::SmpHotStuff => visit_backend(config, v, HotStuffEngine::new, SimpleSmp::new),
        Protocol::SmpHotStuffGossip => {
            visit_backend(config, v, HotStuffEngine::new, GossipSmp::new)
        }
        Protocol::StratusHotStuff => {
            let st = config.stratus_config(sys);
            visit_backend(
                config,
                v,
                HotStuffEngine::new,
                move |s: &SystemConfig, i| StratusMempool::new(s, st, i),
            )
        }
        Protocol::StratusPbft => {
            let st = config.stratus_config(sys);
            visit_backend(config, v, PbftEngine::new, move |s: &SystemConfig, i| {
                StratusMempool::new(s, st, i)
            })
        }
        Protocol::StratusStreamlet => {
            let st = config.stratus_config(sys);
            visit_backend(
                config,
                v,
                StreamletEngine::new,
                move |s: &SystemConfig, i| StratusMempool::new(s, st, i),
            )
        }
        Protocol::Narwhal => visit_backend(config, v, HotStuffEngine::new, NarwhalMempool::new),
        Protocol::MirBft => visit_backend(config, v, MirBftEngine::new, NativeMempool::new),
        Protocol::DagHotStuff => visit_backend(config, v, HotStuffEngine::new, DagMempool::new),
        Protocol::DagHotStuffFast => {
            visit_backend(config, v, HotStuffEngine::new, |s: &SystemConfig, i| {
                DagMempool::with_mode(s, i, DagMode::FastPath)
            })
        }
    }
}

struct NetVisitor<'a> {
    config: &'a ExperimentConfig,
    sys: &'a SystemConfig,
    me: ReplicaId,
    addrs: Vec<SocketAddr>,
    opts: &'a NetRunOptions,
}

impl ProtocolVisitor for NetVisitor<'_> {
    type Out = io::Result<NetRunSummary>;

    fn visit<E, M, FE, FM>(self, make_engine: FE, make_mempool: FM) -> Self::Out
    where
        E: ConsensusEngine,
        M: Mempool + Send + 'static,
        M::Msg: MempoolWire + WireCodec + Send + 'static,
        FE: Fn(&SystemConfig, ReplicaId) -> E,
        FM: Fn(&SystemConfig, ReplicaId) -> M,
        Replica<E, M>: Node<Msg = ReplicaMsg<M::Msg>>,
    {
        let config = self.config;
        let sys = self.sys;
        // No simulated clock exists under the socket runtime, so the
        // sink runs in wall-clock-only mode: spans self-stamp from the
        // process epoch.  An admin endpoint or flight sampler needs a
        // live sink to observe.
        let want_telemetry = self.opts.telemetry
            || self.opts.admin_addr.is_some()
            || self.opts.flight_cadence_us.is_some();
        let telemetry = if want_telemetry {
            Telemetry::wall_clock()
        } else {
            Telemetry::disabled()
        };
        let i = self.me.index();
        let rates = config.workload.rates(config.n);
        let node_telemetry = telemetry
            .with_prefix(&format!("replica.{i}"))
            .with_track(i as u32);
        let mut mempool = make_mempool(sys, self.me);
        mempool.set_telemetry(node_telemetry.clone());
        let mut replica = Replica::new(
            sys,
            self.me,
            make_engine(sys, self.me),
            mempool,
            config.behavior_for(i),
            rates[i],
            config.protocol.is_stratus(),
            i == 0,
        );
        replica.enable_commit_log();
        if let Some(limit) = self.opts.tx_limit {
            replica.limit_client_txs(limit);
        }
        if self.opts.recover {
            replica.start_recovery();
        }
        let spec = ClusterSpec::new(self.me, self.addrs, config.seed);
        let runtime = NetRuntime::new(replica, spec, node_telemetry.clone());
        let stats = runtime.stats();

        // Observers: both publish the runtime's lock-free counters into
        // the registry before reading it, and neither touches protocol
        // state — instrumentation on/off leaves commit logs identical.
        let sampler = self.opts.flight_cadence_us.map(|cadence_us| {
            let stats = std::sync::Arc::clone(&stats);
            let publish_to = node_telemetry.clone();
            FlightSampler::spawn(
                telemetry.clone(),
                std::time::Duration::from_micros(cadence_us),
                DEFAULT_WINDOW_CAPACITY,
                Some(Box::new(move || stats.publish(&publish_to))),
            )
        });
        let admin = match self.opts.admin_addr {
            Some(addr) => {
                let net = std::sync::Arc::clone(&stats);
                let stats = std::sync::Arc::clone(&stats);
                let publish_to = node_telemetry.clone();
                Some(spawn_admin(
                    addr,
                    AdminState {
                        replica: self.me.0,
                        telemetry: telemetry.clone(),
                        recorder: sampler.as_ref().map(FlightSampler::recorder),
                        refresh: Some(std::sync::Arc::new(move || stats.publish(&publish_to))),
                        net: Some(net),
                    },
                )?)
            }
            None => None,
        };

        let report = runtime.run(self.opts.horizon_us)?;

        let flight_series = sampler.map(|s| {
            let recorder = s.stop();
            let json = recorder.lock().expect("flight recorder poisoned").to_json();
            json
        });
        drop(admin);

        let committed = report.observations.committed_txs(Some(self.me));
        let node = report.node;
        Ok(NetRunSummary {
            commit_log: node.commit_log().unwrap_or(&[]).to_vec(),
            committed_txs: committed,
            client_txs: node.metrics().client_txs,
            view_changes: node.metrics().view_changes,
            frames_in: report.frames_in,
            frames_out: report.frames_out,
            bytes_in: report.bytes_in,
            bytes_out: report.bytes_out,
            wall_us: report.wall_us,
            peer_errors: report.peer_errors,
            frame_errors: report.frame_errors,
            epoch_unix_us: telemetry.epoch_unix_us(),
            flight_series,
            telemetry,
        })
    }
}

/// Runs replica `me` of `config`'s deployment over real sockets.
/// `addrs[i]` is the listen address of replica `i`; the call blocks for
/// `opts.horizon_us` wall-clock microseconds of measurement (plus
/// cluster formation).
pub fn run_replica_over_net(
    config: &ExperimentConfig,
    me: ReplicaId,
    addrs: Vec<SocketAddr>,
    opts: &NetRunOptions,
) -> io::Result<NetRunSummary> {
    assert_eq!(addrs.len(), config.n, "need one listen address per replica");
    let sys = config.system();
    dispatch(
        config,
        &sys,
        NetVisitor {
            config,
            sys: &sys,
            me,
            addrs,
            opts,
        },
    )
}

struct SimVisitor<'a> {
    config: &'a ExperimentConfig,
    sys: &'a SystemConfig,
    tx_limit: Option<u64>,
    horizon_us: u64,
    faults: simnet::FaultSchedule,
}

impl ProtocolVisitor for SimVisitor<'_> {
    type Out = Vec<Vec<TxId>>;

    fn visit<E, M, FE, FM>(self, make_engine: FE, make_mempool: FM) -> Self::Out
    where
        E: ConsensusEngine,
        M: Mempool + Send + 'static,
        M::Msg: MempoolWire + WireCodec + Send + 'static,
        FE: Fn(&SystemConfig, ReplicaId) -> E,
        FM: Fn(&SystemConfig, ReplicaId) -> M,
        Replica<E, M>: Node<Msg = ReplicaMsg<M::Msg>>,
    {
        let config = self.config;
        let sys = self.sys;
        let rates = config.workload.rates(config.n);
        let nodes: Vec<Replica<E, M>> = (0..config.n)
            .map(|i| {
                let id = ReplicaId(i as u32);
                let mut replica = Replica::new(
                    sys,
                    id,
                    make_engine(sys, id),
                    make_mempool(sys, id),
                    config.behavior_for(i),
                    rates[i],
                    config.protocol.is_stratus(),
                    i == 0,
                );
                replica.enable_commit_log();
                if let Some(limit) = self.tx_limit {
                    replica.limit_client_txs(limit);
                }
                replica
            })
            .collect();
        let mut net = simnet::NetConfig::from_preset(config.network);
        net.fault_windows = config.fault_windows.clone();
        let mut sim = Simulation::new(nodes, net, config.seed).with_faults(self.faults);
        sim.run_until(self.horizon_us);
        (0..config.n)
            .map(|i| sim.node(i).commit_log().unwrap_or(&[]).to_vec())
            .collect()
    }
}

/// Reference run: executes `config` inside the simulator with commit
/// logging on and returns every replica's committed-transaction-id
/// sequence.  An `smp-net` cluster of the same configuration and seed
/// must commit byte-identical sequences.
pub fn sim_commit_logs(
    config: &ExperimentConfig,
    tx_limit: Option<u64>,
    horizon_us: u64,
) -> Vec<Vec<TxId>> {
    sim_commit_logs_with_faults(config, tx_limit, horizon_us, simnet::FaultSchedule::new())
}

/// Like [`sim_commit_logs`], with a scripted [`simnet::FaultSchedule`]
/// applied: crash/restart, partitions, and burst drop/delay replay
/// deterministically against the same configuration and seed.  An empty
/// schedule is byte-identical to [`sim_commit_logs`].
pub fn sim_commit_logs_with_faults(
    config: &ExperimentConfig,
    tx_limit: Option<u64>,
    horizon_us: u64,
    faults: simnet::FaultSchedule,
) -> Vec<Vec<TxId>> {
    let sys = config.system();
    dispatch(
        config,
        &sys,
        SimVisitor {
            config,
            sys: &sys,
            tx_limit,
            horizon_us,
            faults,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::MICROS_PER_SEC;
    use smp_workload::LoadDistribution;

    fn single_source(n: usize) -> ExperimentConfig {
        ExperimentConfig::new(Protocol::NativeHotStuff, n, 2_000.0)
            .with_distribution(LoadDistribution::SingleReplica(0))
            .with_batch_size(16 * 1024)
    }

    #[test]
    fn sim_reference_commits_every_offered_tx_on_every_replica() {
        let config = single_source(4);
        let logs = sim_commit_logs(&config, Some(100), 3 * MICROS_PER_SEC);
        assert_eq!(logs.len(), 4);
        assert_eq!(logs[0].len(), 100, "all offered txs commit");
        for i in 1..4 {
            assert_eq!(logs[i], logs[0], "replica {i} commit log diverges");
        }
    }

    #[test]
    fn tx_limit_caps_the_offered_load() {
        let config = single_source(4);
        let capped = sim_commit_logs(&config, Some(25), 3 * MICROS_PER_SEC);
        assert_eq!(capped[0].len(), 25);
    }
}
