//! The experiment runner: builds a simulated deployment of one protocol,
//! offers client load, and collects the measurements the paper reports
//! (throughput, latency, view changes, per-kind outbound bandwidth,
//! throughput time series).

use crate::protocols::Protocol;
use crate::replica::{Behavior, Replica};
use crate::wire::MempoolWire;
use simnet::{FaultWindow, NetConfig, Node, Simulation, Telemetry};
use smp_consensus::{ConsensusEngine, HotStuffEngine, MirBftEngine, PbftEngine, StreamletEngine};
use smp_mempool::{DagMempool, GossipSmp, Mempool, NarwhalMempool, NativeMempool, SimpleSmp};
use smp_metrics::{bytes_to_mbps, BandwidthBreakdown, RoleBandwidth, RunSummary};
use smp_shard::ShardedMempool;
use smp_types::{
    DagMode, ExecutorKind, MempoolConfig, NetworkPreset, ReplicaId, SimTime, SystemConfig,
    MICROS_PER_MS, MICROS_PER_SEC,
};
use smp_workload::{LoadDistribution, WorkloadSpec};
use stratus::{DlbConfig, StratusConfig, StratusMempool};

/// Full description of one experiment run (one data point).
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Number of replicas.
    pub n: usize,
    /// Network environment.
    pub network: NetworkPreset,
    /// Asynchrony windows injected into the network (Figure 8).
    pub fault_windows: Vec<FaultWindow>,
    /// Offered client load.
    pub workload: WorkloadSpec,
    /// Microblock batch size in bytes.
    pub batch_size_bytes: usize,
    /// Measurement duration (after warm-up).
    pub duration: SimTime,
    /// Warm-up period excluded from measurements.
    pub warmup: SimTime,
    /// RNG / key seed.
    pub seed: u64,
    /// PAB quorum override (`None` = `f + 1`).
    pub pab_quorum: Option<usize>,
    /// Power-of-d-choices parameter for DLB.
    pub dlb_d: usize,
    /// Whether DLB is enabled (S-HS-Even disables it).
    pub dlb_enabled: bool,
    /// Number of Byzantine *senders* (Section VII-C), assigned to the
    /// highest replica ids.
    pub num_byzantine: usize,
    /// How many extra replicas (besides the leader) Byzantine senders
    /// still serve.
    pub byzantine_extra: usize,
    /// Number of silent (crashed) replicas, assigned just below the
    /// Byzantine ones.
    pub num_silent: usize,
    /// View-change / pacemaker timeout.
    pub view_timeout: SimTime,
    /// Number of shared-mempool dissemination shards per replica
    /// (`smp-shard`); `1` runs the backend mempool unwrapped.
    pub shards: usize,
    /// How the shards are driven: inline (`Sequential`, the default) or
    /// one worker thread per shard (`Parallel`).  Byte-identical results
    /// either way on the same seed; irrelevant when `shards == 1`.
    pub executor: ExecutorKind,
    /// Whether to attach a live [`Telemetry`] sink to the run (metrics
    /// registry + span tracer, exposed on [`ExperimentResult::telemetry`]).
    /// Off by default; results are byte-identical either way.
    pub telemetry: bool,
    /// Commit-derivation mode for the DAG mempool protocols (ignored by
    /// every other backend).  `DagHotStuffFast` forces the fast path
    /// regardless of this knob.
    pub dag_mode: DagMode,
}

impl ExperimentConfig {
    /// A baseline configuration for `protocol` with `n` replicas offering
    /// `rate_tps` of evenly spread load.
    pub fn new(protocol: Protocol, n: usize, rate_tps: f64) -> Self {
        ExperimentConfig {
            protocol,
            n,
            network: NetworkPreset::Lan,
            fault_windows: Vec::new(),
            workload: WorkloadSpec::even(rate_tps, 128),
            batch_size_bytes: 128 * 1024,
            duration: 5 * MICROS_PER_SEC,
            warmup: MICROS_PER_SEC,
            seed: 42,
            pab_quorum: None,
            dlb_d: 1,
            dlb_enabled: true,
            num_byzantine: 0,
            byzantine_extra: 0,
            num_silent: 0,
            view_timeout: 1_000 * MICROS_PER_MS,
            shards: 1,
            // The CI matrix exports SMP_EXECUTOR to run the whole suite
            // under both executors; explicit `with_executor` overrides.
            executor: ExecutorKind::from_env(),
            telemetry: false,
            dag_mode: DagMode::default(),
        }
    }

    /// Sets the DAG mempool commit-derivation mode.
    pub fn with_dag_mode(mut self, mode: DagMode) -> Self {
        self.dag_mode = mode;
        self
    }

    /// Enables (or disables) the telemetry sink for this run.
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Sets the number of shared-mempool dissemination shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the shard-executor kind (sequential or parallel).
    pub fn with_executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Switches to the WAN environment.
    pub fn wan(mut self) -> Self {
        self.network = NetworkPreset::Wan;
        self
    }

    /// Sets the workload distribution.
    pub fn with_distribution(mut self, distribution: LoadDistribution) -> Self {
        self.workload.distribution = distribution;
        self
    }

    /// Sets the offered load (tx/s, aggregate).
    pub fn with_rate(mut self, rate_tps: f64) -> Self {
        self.workload.total_rate_tps = rate_tps;
        self
    }

    /// Sets the microblock batch size.
    pub fn with_batch_size(mut self, bytes: usize) -> Self {
        self.batch_size_bytes = bytes;
        self
    }

    /// Sets measurement duration and warm-up.
    pub fn with_duration(mut self, warmup: SimTime, duration: SimTime) -> Self {
        self.warmup = warmup;
        self.duration = duration;
        self
    }

    /// Injects Byzantine senders.
    pub fn with_byzantine(mut self, count: usize, extra: usize) -> Self {
        self.num_byzantine = count;
        self.byzantine_extra = extra;
        self
    }

    /// Adds a network fluctuation window.
    pub fn with_fault_window(mut self, w: FaultWindow) -> Self {
        self.fault_windows.push(w);
        self
    }

    /// Sets the PAB quorum explicitly.
    pub fn with_pab_quorum(mut self, q: usize) -> Self {
        self.pab_quorum = Some(q);
        self
    }

    /// Sets the power-of-d-choices parameter (and enables DLB).
    pub fn with_dlb_d(mut self, d: usize) -> Self {
        self.dlb_d = d;
        self.dlb_enabled = true;
        self
    }

    /// Disables distributed load balancing (the S-HS-Even configuration).
    pub fn without_dlb(mut self) -> Self {
        self.dlb_enabled = false;
        self
    }

    /// The derived system configuration.
    pub fn system(&self) -> SystemConfig {
        let mut sys = SystemConfig::new(self.n)
            .with_network(self.network)
            .with_seed(self.seed);
        sys.mempool = MempoolConfig {
            batch_size_bytes: self.batch_size_bytes,
            tx_payload_bytes: self.workload.payload_bytes,
            ..MempoolConfig::default()
        };
        sys.view_change_timeout = self.view_timeout;
        sys = sys
            .with_shards(self.shards)
            .with_executor(self.executor)
            .with_dag_mode(self.dag_mode);
        if let Some(q) = self.pab_quorum {
            sys = sys.with_pab_quorum(q);
        }
        sys
    }

    fn net_config(&self) -> NetConfig {
        let mut net = NetConfig::from_preset(self.network);
        net.fault_windows = self.fault_windows.clone();
        net
    }

    pub(crate) fn behavior_for(&self, i: usize) -> Behavior {
        let byz_start = self.n.saturating_sub(self.num_byzantine);
        let silent_start = byz_start.saturating_sub(self.num_silent);
        if i >= byz_start {
            Behavior::ByzantineSender {
                extra: self.byzantine_extra,
            }
        } else if i >= silent_start {
            Behavior::Silent
        } else {
            Behavior::Honest
        }
    }

    pub(crate) fn stratus_config(&self, sys: &SystemConfig) -> StratusConfig {
        let dlb = if self.dlb_enabled {
            DlbConfig::default().with_d(self.dlb_d)
        } else {
            DlbConfig::disabled()
        };
        let mut cfg = StratusConfig::default().with_dlb(dlb);
        cfg.pab_quorum_override = Some(self.pab_quorum.unwrap_or(sys.f + 1));
        cfg
    }
}

/// Everything measured in one run.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Headline numbers (throughput, latency percentiles, view changes).
    pub summary: RunSummary,
    /// Outbound bandwidth split by role and message kind (Table III).
    pub bandwidth: BandwidthBreakdown,
    /// Committed-transaction throughput per second of simulated time, from
    /// the observer replica (Figure 8's timeline).
    pub throughput_series: Vec<f64>,
    /// Total view changes observed across honest replicas.
    pub view_changes: u64,
    /// Transactions committed at the observer during the measurement
    /// window.
    pub committed_txs: u64,
    /// Offered load during the run (tx/s).
    pub offered_tps: f64,
    /// The full observation log of the run (every commit, view change,
    /// stability and fetch event, in emission order).  This is what the
    /// cross-executor conformance suite compares byte-for-byte.
    pub observations: simnet::ObservationLog,
    /// The run's telemetry sink: metrics registry and span trace.
    /// Disabled (and empty) unless the configuration set
    /// [`ExperimentConfig::telemetry`].
    pub telemetry: Telemetry,
}

impl ExperimentResult {
    /// One-line rendering used by the harness binaries.
    pub fn row(&self) -> String {
        self.summary.to_row()
    }
}

/// Runs a single experiment.
pub fn run(config: &ExperimentConfig) -> ExperimentResult {
    let sys = config.system();
    match config.protocol {
        Protocol::NativeHotStuff => {
            run_protocol(config, &sys, HotStuffEngine::new, NativeMempool::new)
        }
        Protocol::NativePbft => run_protocol(config, &sys, PbftEngine::new, NativeMempool::new),
        Protocol::SmpHotStuff => run_protocol(config, &sys, HotStuffEngine::new, SimpleSmp::new),
        Protocol::SmpHotStuffGossip => {
            run_protocol(config, &sys, HotStuffEngine::new, GossipSmp::new)
        }
        Protocol::StratusHotStuff => {
            let st = config.stratus_config(&sys);
            run_protocol(config, &sys, HotStuffEngine::new, move |s, i| {
                StratusMempool::new(s, st, i)
            })
        }
        Protocol::StratusPbft => {
            let st = config.stratus_config(&sys);
            run_protocol(config, &sys, PbftEngine::new, move |s, i| {
                StratusMempool::new(s, st, i)
            })
        }
        Protocol::StratusStreamlet => {
            let st = config.stratus_config(&sys);
            run_protocol(config, &sys, StreamletEngine::new, move |s, i| {
                StratusMempool::new(s, st, i)
            })
        }
        Protocol::Narwhal => run_protocol(config, &sys, HotStuffEngine::new, NarwhalMempool::new),
        Protocol::MirBft => run_protocol(config, &sys, MirBftEngine::new, NativeMempool::new),
        Protocol::DagHotStuff => run_protocol(config, &sys, HotStuffEngine::new, DagMempool::new),
        Protocol::DagHotStuffFast => run_protocol(config, &sys, HotStuffEngine::new, |s, i| {
            DagMempool::with_mode(s, i, DagMode::FastPath)
        }),
    }
}

/// Runs one protocol with its backend mempool, wrapping the backend in a
/// [`ShardedMempool`] when the configuration asks for more than one
/// dissemination shard.  Every protocol of Table II composes with
/// sharding this way (e.g. `StratusHotStuff` × k shards), under either
/// executor: the `make` closure receives the per-shard configuration
/// (batch budget divided by `k`), and the replica id salts the per-shard
/// RNG streams so the sequential and parallel executors stay
/// byte-identical while different replicas stay decorrelated.
fn run_protocol<E, M, FE, FM>(
    config: &ExperimentConfig,
    sys: &SystemConfig,
    make_engine: FE,
    make_mempool: FM,
) -> ExperimentResult
where
    E: ConsensusEngine,
    M: Mempool + Send + 'static,
    M::Msg: MempoolWire + Send,
    FE: Fn(&SystemConfig, ReplicaId) -> E,
    FM: Fn(&SystemConfig, ReplicaId) -> M,
{
    if config.shards > 1 {
        let k = config.shards;
        match config.executor {
            ExecutorKind::Sequential => run_generic(config, sys, make_engine, move |s, i| {
                ShardedMempool::sequential(s, k, i.0 as u64, |_, shard_sys| {
                    make_mempool(shard_sys, i)
                })
            }),
            ExecutorKind::Parallel => run_generic(config, sys, make_engine, move |s, i| {
                ShardedMempool::parallel(s, k, i.0 as u64, |_, shard_sys| {
                    make_mempool(shard_sys, i)
                })
            }),
        }
    } else {
        run_generic(config, sys, make_engine, make_mempool)
    }
}

fn run_generic<E, M, FE, FM>(
    config: &ExperimentConfig,
    sys: &SystemConfig,
    make_engine: FE,
    make_mempool: FM,
) -> ExperimentResult
where
    E: ConsensusEngine,
    M: Mempool,
    M::Msg: MempoolWire,
    FE: Fn(&SystemConfig, ReplicaId) -> E,
    FM: Fn(&SystemConfig, ReplicaId) -> M,
    Replica<E, M>: Node,
{
    let rates = config.workload.rates(config.n);
    let prioritize = config.protocol.is_stratus();
    let observer = 0usize;
    let telemetry = if config.telemetry {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let nodes: Vec<Replica<E, M>> = (0..config.n)
        .map(|i| {
            let id = ReplicaId(i as u32);
            let mut mempool = make_mempool(sys, id);
            mempool.set_telemetry(
                telemetry
                    .with_prefix(&format!("replica.{i}"))
                    .with_track(i as u32),
            );
            Replica::new(
                sys,
                id,
                make_engine(sys, id),
                mempool,
                config.behavior_for(i),
                rates[i],
                prioritize,
                i == observer,
            )
        })
        .collect();
    let mut sim =
        Simulation::new(nodes, config.net_config(), config.seed).with_telemetry(telemetry.clone());
    let horizon = config.warmup + config.duration;
    sim.run_until(horizon);

    collect_results(config, sim, observer, horizon, telemetry)
}

fn collect_results<E, M>(
    config: &ExperimentConfig,
    mut sim: Simulation<Replica<E, M>>,
    observer: usize,
    horizon: SimTime,
    telemetry: Telemetry,
) -> ExperimentResult
where
    E: ConsensusEngine,
    M: Mempool,
    M::Msg: MempoolWire,
    Replica<E, M>: Node,
{
    let window = (config.warmup, horizon);
    let view_changes: u64 = sim
        .nodes()
        .iter()
        .filter(|r| *r.behavior() == Behavior::Honest)
        .map(|r| r.metrics().view_changes)
        .sum();

    // Bandwidth breakdown (Table III): attribute proposal traffic to the
    // leader role (exactly one leader transmits proposals at a time) and
    // average the remaining kinds over all replicas.
    let traffic = sim.traffic();
    let mut leader = RoleBandwidth::default();
    let mut non_leader = RoleBandwidth::default();
    let totals = traffic.total_by_kind();
    let duration = horizon.max(1);
    for (kind, bytes) in &totals {
        let total_mbps = bytes_to_mbps(*bytes, duration);
        if *kind == "proposal" {
            leader.mbps_by_kind.insert((*kind).to_string(), total_mbps);
        } else {
            let per_replica = total_mbps / config.n as f64;
            non_leader
                .mbps_by_kind
                .insert((*kind).to_string(), per_replica);
            // The leader also behaves as an ordinary replica for these kinds.
            leader.mbps_by_kind.insert((*kind).to_string(), per_replica);
        }
    }
    let bandwidth = BandwidthBreakdown { leader, non_leader };

    let throughput_series =
        sim.observations()
            .throughput_series(ReplicaId(observer as u32), MICROS_PER_SEC, horizon);
    let observations = sim.observations().clone();

    let obs_metrics = sim.node_mut(observer);
    let committed = obs_metrics
        .metrics()
        .throughput
        .total_in(window.0, window.1);
    let mut latency = obs_metrics.metrics().latency.clone();
    let summary = RunSummary::from_measurements(
        config.protocol.label(),
        config.n,
        &obs_metrics.metrics().throughput,
        &mut latency,
        view_changes,
        window.0,
        window.1,
    );

    ExperimentResult {
        summary,
        bandwidth,
        throughput_series,
        view_changes,
        committed_txs: committed,
        offered_tps: config.workload.total_rate_tps,
        observations,
        telemetry,
    }
}

/// Runs the experiment at each offered load in `rates_tps` and returns all
/// results together with the index of the saturation point (the highest
/// throughput whose latency has not yet exploded past `latency_cap_ms`).
pub fn saturation_sweep(
    base: &ExperimentConfig,
    rates_tps: &[f64],
    latency_cap_ms: f64,
) -> (usize, Vec<ExperimentResult>) {
    let results: Vec<ExperimentResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = rates_tps
            .iter()
            .map(|rate| {
                let cfg = base.clone().with_rate(*rate);
                scope.spawn(move || run(&cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment thread panicked"))
            .collect()
    });
    let mut best = 0;
    for (i, r) in results.iter().enumerate() {
        let ok_latency = r.summary.p95_latency_ms <= latency_cap_ms || latency_cap_ms <= 0.0;
        if ok_latency && r.summary.throughput_ktps > results[best].summary.throughput_ktps {
            best = i;
        }
    }
    (best, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(protocol: Protocol, n: usize, rate: f64) -> ExperimentConfig {
        ExperimentConfig::new(protocol, n, rate)
            .with_duration(500 * MICROS_PER_MS, 2 * MICROS_PER_SEC)
            .with_batch_size(16 * 1024)
    }

    #[test]
    fn stratus_hotstuff_commits_transactions_in_a_small_lan() {
        let result = run(&quick(Protocol::StratusHotStuff, 4, 2_000.0));
        assert!(
            result.summary.throughput_ktps > 1.0,
            "expected ≥1 KTx/s, got {}",
            result.summary.throughput_ktps
        );
        assert!(result.summary.mean_latency_ms > 0.0);
        assert_eq!(
            result.view_changes, 0,
            "no view changes in the failure-free case"
        );
    }

    #[test]
    fn native_hotstuff_also_commits_at_low_load() {
        let result = run(&quick(Protocol::NativeHotStuff, 4, 1_000.0));
        assert!(
            result.summary.throughput_ktps > 0.5,
            "got {}",
            result.summary.throughput_ktps
        );
    }

    #[test]
    fn all_protocols_make_progress_on_a_tiny_network() {
        for protocol in Protocol::all() {
            let result = run(&quick(protocol, 4, 500.0));
            assert!(
                result.committed_txs > 0,
                "{} committed nothing",
                protocol.label()
            );
        }
    }

    #[test]
    fn byzantine_senders_hurt_smp_hs_more_than_s_hs() {
        let smp = run(&quick(Protocol::SmpHotStuff, 7, 2_000.0).with_byzantine(2, 0));
        let stratus = run(&quick(Protocol::StratusHotStuff, 7, 2_000.0).with_byzantine(2, 2));
        assert!(
            stratus.summary.throughput_ktps >= smp.summary.throughput_ktps,
            "S-HS ({:.2}) should outperform SMP-HS ({:.2}) under Byzantine senders",
            stratus.summary.throughput_ktps,
            smp.summary.throughput_ktps
        );
    }

    #[test]
    fn telemetry_leaves_results_byte_identical_and_fills_the_registry() {
        let cfg = quick(Protocol::StratusHotStuff, 4, 2_000.0);
        let plain = run(&cfg);
        let traced = run(&cfg.clone().with_telemetry(true));
        assert_eq!(
            plain.observations, traced.observations,
            "telemetry changed the observation log"
        );
        assert_eq!(plain.committed_txs, traced.committed_txs);
        assert!(!plain.telemetry.is_enabled());
        assert!(traced.telemetry.is_enabled());
        let snap = traced.telemetry.snapshot();
        assert!(
            snap.counter("replica.0.net.msgs_out").unwrap_or(0) > 0,
            "per-replica net counters missing"
        );
        assert!(
            snap.counter("replica.0.commit.txs").unwrap_or(0) > 0,
            "commit counters missing"
        );
        assert!(
            snap.counter("replica.0.batcher.sealed").unwrap_or(0) > 0,
            "mempool batcher counters missing"
        );
        assert!(traced.telemetry.trace_len() > 0, "no spans recorded");
        let profile = traced.telemetry.profile();
        assert!(profile.contains_key("simnet.deliver"));
        assert!(profile.contains_key("replica.mempool.on_message"));
    }

    #[test]
    fn saturation_sweep_returns_all_points() {
        let base = quick(Protocol::StratusHotStuff, 4, 1_000.0);
        let (best, results) = saturation_sweep(&base, &[500.0, 2_000.0], 10_000.0);
        assert_eq!(results.len(), 2);
        assert!(best < 2);
    }
}
