//! The protocol matrix of Table II.

use serde::{Deserialize, Serialize};

/// Every protocol configuration evaluated in the paper (Table II), plus a
/// Stratus-Streamlet integration mentioned in Section VI.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Native HotStuff without a shared mempool (N-HS).
    NativeHotStuff,
    /// Native PBFT without a shared mempool (N-PBFT).
    NativePbft,
    /// HotStuff with a simple best-effort shared mempool (SMP-HS).
    SmpHotStuff,
    /// SMP-HS with gossip dissemination instead of broadcast (SMP-HS-G).
    SmpHotStuffGossip,
    /// HotStuff integrated with Stratus (S-HS) — this paper.
    StratusHotStuff,
    /// PBFT integrated with Stratus (S-PBFT) — this paper.
    StratusPbft,
    /// Streamlet integrated with Stratus (S-SL).
    StratusStreamlet,
    /// HotStuff-based shared mempool with reliable broadcast (Narwhal).
    Narwhal,
    /// PBFT-based multi-leader protocol (MirBFT).
    MirBft,
    /// HotStuff over the Mysticeti-style DAG mempool, certified mode
    /// (D-HS): batches become proposable once their DAG support pattern
    /// yields a 2f+1 ack certificate.
    DagHotStuff,
    /// D-HS in the uncertified fast-path mode (D-HS-F): batches are
    /// proposable on first delivery, references carry no certificates.
    DagHotStuffFast,
}

impl Protocol {
    /// The acronym used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::NativeHotStuff => "N-HS",
            Protocol::NativePbft => "N-PBFT",
            Protocol::SmpHotStuff => "SMP-HS",
            Protocol::SmpHotStuffGossip => "SMP-HS-G",
            Protocol::StratusHotStuff => "S-HS",
            Protocol::StratusPbft => "S-PBFT",
            Protocol::StratusStreamlet => "S-SL",
            Protocol::Narwhal => "Narwhal",
            Protocol::MirBft => "MirBFT",
            Protocol::DagHotStuff => "D-HS",
            Protocol::DagHotStuffFast => "D-HS-F",
        }
    }

    /// Short description (Table II's right-hand column).
    pub fn description(&self) -> &'static str {
        match self {
            Protocol::NativeHotStuff => "Native HotStuff without a shared mempool",
            Protocol::NativePbft => "Native PBFT without a shared mempool",
            Protocol::SmpHotStuff => "HotStuff integrated with a simple shared mempool",
            Protocol::SmpHotStuffGossip => "SMP-HS with gossip instead of broadcast",
            Protocol::StratusHotStuff => "HotStuff integrated with Stratus (this paper)",
            Protocol::StratusPbft => "PBFT integrated with Stratus (this paper)",
            Protocol::StratusStreamlet => "Streamlet integrated with Stratus (this paper)",
            Protocol::Narwhal => "HotStuff based shared mempool with reliable broadcast",
            Protocol::MirBft => "PBFT based multi-leader protocol",
            Protocol::DagHotStuff => "HotStuff over a Mysticeti-style DAG mempool (certified)",
            Protocol::DagHotStuffFast => "HotStuff over a Mysticeti-style DAG mempool (fast path)",
        }
    }

    /// Whether the protocol uses the Stratus mempool (and therefore the
    /// prioritization / rate-limiting optimizations of Section VI).
    pub fn is_stratus(&self) -> bool {
        matches!(
            self,
            Protocol::StratusHotStuff | Protocol::StratusPbft | Protocol::StratusStreamlet
        )
    }

    /// Whether the protocol uses any shared mempool at all.
    pub fn uses_shared_mempool(&self) -> bool {
        !matches!(
            self,
            Protocol::NativeHotStuff | Protocol::NativePbft | Protocol::MirBft
        )
    }

    /// All protocols evaluated in the scalability experiment (Figure 7).
    pub fn figure7_set() -> Vec<Protocol> {
        vec![
            Protocol::NativeHotStuff,
            Protocol::NativePbft,
            Protocol::SmpHotStuff,
            Protocol::StratusHotStuff,
            Protocol::StratusPbft,
            Protocol::Narwhal,
            Protocol::MirBft,
        ]
    }

    /// Every protocol in Table II.
    pub fn all() -> Vec<Protocol> {
        vec![
            Protocol::NativeHotStuff,
            Protocol::NativePbft,
            Protocol::SmpHotStuff,
            Protocol::SmpHotStuffGossip,
            Protocol::StratusHotStuff,
            Protocol::StratusPbft,
            Protocol::StratusStreamlet,
            Protocol::Narwhal,
            Protocol::MirBft,
            Protocol::DagHotStuff,
            Protocol::DagHotStuffFast,
        ]
    }

    /// Whether the protocol runs over the DAG mempool family.
    pub fn is_dag(&self) -> bool {
        matches!(self, Protocol::DagHotStuff | Protocol::DagHotStuffFast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Protocol::StratusHotStuff.label(), "S-HS");
        assert_eq!(Protocol::SmpHotStuffGossip.label(), "SMP-HS-G");
        assert_eq!(Protocol::NativeHotStuff.label(), "N-HS");
    }

    #[test]
    fn stratus_flags() {
        assert!(Protocol::StratusPbft.is_stratus());
        assert!(!Protocol::SmpHotStuff.is_stratus());
        assert!(Protocol::Narwhal.uses_shared_mempool());
        assert!(!Protocol::NativePbft.uses_shared_mempool());
    }

    #[test]
    fn figure7_set_has_seven_protocols() {
        assert_eq!(Protocol::figure7_set().len(), 7);
        assert_eq!(Protocol::all().len(), 11);
    }

    #[test]
    fn dag_protocols_are_shared_mempool_backends() {
        assert_eq!(Protocol::DagHotStuff.label(), "D-HS");
        assert_eq!(Protocol::DagHotStuffFast.label(), "D-HS-F");
        assert!(Protocol::DagHotStuff.uses_shared_mempool());
        assert!(Protocol::DagHotStuffFast.uses_shared_mempool());
        assert!(!Protocol::DagHotStuff.is_stratus());
        assert!(Protocol::DagHotStuff.is_dag() && Protocol::DagHotStuffFast.is_dag());
        assert!(!Protocol::Narwhal.is_dag());
    }
}
