//! Replica assembly and experiment runner for the Stratus reproduction.
//!
//! This crate glues the pieces together the way the paper's Bamboo-based
//! prototype does: a [`Replica`] owns a consensus engine and a mempool,
//! routes their messages over the [`simnet`] simulator, generates its
//! share of the client workload, and records the measurements
//! (throughput, latency, view changes, bandwidth).  The
//! [`experiment`] module exposes the protocol matrix of Table II and a
//! runner that produces one figure/table data point per call.

pub mod experiment;
pub mod netrun;
pub mod protocols;
pub mod replica;
pub mod wire;

pub use experiment::{run, saturation_sweep, ExperimentConfig, ExperimentResult};
pub use netrun::{
    run_replica_over_net, sim_commit_logs, sim_commit_logs_with_faults, NetRunOptions,
    NetRunSummary,
};
pub use protocols::Protocol;
pub use replica::{Behavior, Replica, ReplicaMetrics};
pub use wire::codec::{
    decode_frame, encode_frame, DecodeError, FrameHeader, WireCodec, CODEC_VERSION,
    FRAME_HEADER_BYTES, MAX_FRAME_BYTES,
};
pub use wire::{MempoolWire, ReplicaMsg, ReplicaPayload, SyncMsg};
