//! The unified wire message of a replica and its cost model.
//!
//! A replica exchanges two families of messages: consensus messages
//! (proposals, votes) and mempool messages (microblocks, acks, proofs,
//! fetches, load-balancing control).  [`ReplicaMsg`] wraps both so the
//! network simulator sees a single message type per protocol, and carries
//! the priority bit used by the Stratus "prioritize consensus messages"
//! optimization.

pub mod codec;

use simnet::SimMessage;
use smp_consensus::ConsensusMsg;
use smp_mempool::{DagMsg, NarwhalMsg, NativeMsg, SmpMsg};
use smp_shard::ShardedMsg;
use smp_types::{TxId, WireSize};
use stratus::StratusMsg;

/// Mempool message types routable by a replica.
pub trait MempoolWire: WireSize + Clone + std::fmt::Debug {
    /// Stable label for bandwidth accounting.
    fn kind(&self) -> &'static str;
    /// Whether the message is bulk data (low priority lane).
    fn is_bulk(&self) -> bool;
    /// CPU cost of handling the message at the receiver, in microseconds.
    fn cpu_cost_us(&self) -> f64;
}

impl MempoolWire for NativeMsg {
    fn kind(&self) -> &'static str {
        "mempool"
    }
    fn is_bulk(&self) -> bool {
        false
    }
    fn cpu_cost_us(&self) -> f64 {
        1.0
    }
}

impl MempoolWire for SmpMsg {
    fn kind(&self) -> &'static str {
        SmpMsg::kind(self)
    }
    fn is_bulk(&self) -> bool {
        matches!(
            self,
            SmpMsg::Microblock(_) | SmpMsg::Gossip { .. } | SmpMsg::FetchResp { .. }
        )
    }
    fn cpu_cost_us(&self) -> f64 {
        match self {
            SmpMsg::Microblock(mb) | SmpMsg::Gossip { mb, .. } => 20.0 + 0.6 * mb.len() as f64,
            SmpMsg::Fetch { .. } => 8.0,
            SmpMsg::FetchResp { mbs } => {
                20.0 + 0.6 * mbs.iter().map(|m| m.len()).sum::<usize>() as f64
            }
        }
    }
}

impl MempoolWire for NarwhalMsg {
    fn kind(&self) -> &'static str {
        NarwhalMsg::kind(self)
    }
    fn is_bulk(&self) -> bool {
        matches!(self, NarwhalMsg::Batch(_) | NarwhalMsg::FetchResp { .. })
    }
    fn cpu_cost_us(&self) -> f64 {
        match self {
            NarwhalMsg::Batch(mb) => 20.0 + 0.6 * mb.len() as f64,
            NarwhalMsg::Echo { .. } | NarwhalMsg::Ready { .. } => 70.0, // signature verify
            NarwhalMsg::Certificate { .. } => 90.0,
            NarwhalMsg::Fetch { .. } => 8.0,
            NarwhalMsg::FetchResp { mbs } => {
                20.0 + 0.6 * mbs.iter().map(|m| m.len()).sum::<usize>() as f64
            }
        }
    }
}

impl MempoolWire for DagMsg {
    fn kind(&self) -> &'static str {
        DagMsg::kind(self)
    }
    fn is_bulk(&self) -> bool {
        matches!(
            self,
            DagMsg::Block(b) if b.batch.is_some()
        ) || matches!(self, DagMsg::FetchResp { .. })
    }
    fn cpu_cost_us(&self) -> f64 {
        match self {
            // Block digest + creator signature check, per-ack signature
            // verification, and per-transaction batch ingestion.
            DagMsg::Block(b) => {
                let batch = b.batch.as_ref().map_or(0, |mb| mb.len());
                30.0 + 0.6 * batch as f64 + 60.0 * b.acks.len() as f64
            }
            DagMsg::Fetch { .. } => 8.0,
            DagMsg::FetchResp { mbs } => {
                20.0 + 0.6 * mbs.iter().map(|m| m.len()).sum::<usize>() as f64
            }
        }
    }
}

impl MempoolWire for StratusMsg {
    fn kind(&self) -> &'static str {
        StratusMsg::kind(self)
    }
    fn is_bulk(&self) -> bool {
        self.is_bulk_data()
    }
    fn cpu_cost_us(&self) -> f64 {
        match self {
            StratusMsg::PabMsg(mb) | StratusMsg::LbForward(mb) => 20.0 + 0.6 * mb.len() as f64,
            StratusMsg::PabAck { .. } => 60.0, // one signature verification
            StratusMsg::PabProof { proof, .. } => 25.0 + 8.0 * proof.len() as f64,
            StratusMsg::PabRequest { .. } => 8.0,
            StratusMsg::PabResponse { mbs } => {
                20.0 + 0.6 * mbs.iter().map(|m| m.len()).sum::<usize>() as f64
            }
            StratusMsg::LbQuery { .. } | StratusMsg::LbInfo { .. } => 5.0,
        }
    }
}

/// A sharded envelope costs what its wrapped message costs: the shard
/// index rides in header padding (see [`ShardedMsg`]), so bandwidth,
/// priority, and CPU accounting all delegate to the inner message.  This
/// is what makes a one-shard deployment behave identically to an
/// unsharded one.
impl<M: MempoolWire> MempoolWire for ShardedMsg<M> {
    fn kind(&self) -> &'static str {
        self.inner.kind()
    }
    fn is_bulk(&self) -> bool {
        self.inner.is_bulk()
    }
    fn cpu_cost_us(&self) -> f64 {
        self.inner.cpu_cost_us()
    }
}

/// The wire message of a replica running mempool message type `MM`.
#[derive(Clone, Debug)]
pub struct ReplicaMsg<MM> {
    /// The wrapped payload.
    pub payload: ReplicaPayload<MM>,
    /// Whether the sender marked the message for the high-priority lane.
    pub priority: bool,
}

/// The message families a replica routes.
#[derive(Clone, Debug)]
pub enum ReplicaPayload<MM> {
    /// Consensus-engine message.
    Consensus(ConsensusMsg),
    /// Mempool message.
    Mempool(MM),
    /// Crash-recovery state transfer.
    Sync(SyncMsg),
}

/// Crash-recovery state transfer: a restarted replica replays the
/// committed sequence from its live peers.
///
/// The protocol is deliberately minimal — crash faults only.  The
/// requester asks for the committed log from the first index it does
/// not hold; any peer with a commit log answers with a bounded chunk of
/// the tail.  Responses from different peers are safe to interleave
/// because committed prefixes never conflict under BFT safety.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SyncMsg {
    /// "Send me the committed sequence starting at `from_index`."
    Request {
        /// First log index the requester is missing.
        from_index: u64,
    },
    /// A chunk of the committed sequence starting at `from_index`.
    Response {
        /// Index of the first entry in `entries`.
        from_index: u64,
        /// Committed transaction ids, in commit order.
        entries: Vec<TxId>,
    },
}

impl<MM: MempoolWire> ReplicaMsg<MM> {
    /// Wraps a consensus message.
    pub fn consensus(msg: ConsensusMsg, priority: bool) -> Self {
        ReplicaMsg {
            payload: ReplicaPayload::Consensus(msg),
            priority,
        }
    }

    /// Wraps a mempool message.
    pub fn mempool(msg: MM, priority: bool) -> Self {
        ReplicaMsg {
            payload: ReplicaPayload::Mempool(msg),
            priority,
        }
    }

    /// Wraps a recovery message.  Requests ride the priority lane (they
    /// are tiny and latency-bound); responses are bulk data.
    pub fn sync(msg: SyncMsg) -> Self {
        let priority = matches!(msg, SyncMsg::Request { .. });
        ReplicaMsg {
            payload: ReplicaPayload::Sync(msg),
            priority,
        }
    }
}

impl<MM: MempoolWire> SimMessage for ReplicaMsg<MM> {
    fn wire_size(&self) -> usize {
        match &self.payload {
            ReplicaPayload::Consensus(c) => c.wire_size(),
            ReplicaPayload::Mempool(m) => m.wire_size(),
            ReplicaPayload::Sync(s) => match s {
                SyncMsg::Request { .. } => 12,
                SyncMsg::Response { entries, .. } => 16 + 32 * entries.len(),
            },
        }
    }

    fn kind(&self) -> &'static str {
        match &self.payload {
            ReplicaPayload::Consensus(c) => match c.kind() {
                "proposal" => "proposal",
                _ => "vote",
            },
            ReplicaPayload::Mempool(m) => m.kind(),
            ReplicaPayload::Sync(_) => "sync",
        }
    }

    fn cpu_cost_us(&self) -> f64 {
        match &self.payload {
            ReplicaPayload::Consensus(c) => match c {
                ConsensusMsg::Propose(p) => {
                    // Header checks plus per-reference / per-transaction work.
                    40.0 + 1.0 * p.payload.ref_count() as f64
                        + 0.4 * p.payload.inline_tx_count() as f64
                }
                _ => 25.0,
            },
            ReplicaPayload::Mempool(m) => m.cpu_cost_us(),
            ReplicaPayload::Sync(s) => match s {
                SyncMsg::Request { .. } => 5.0,
                // Appending ids to a log: cheap per entry.
                SyncMsg::Response { entries, .. } => 5.0 + 0.2 * entries.len() as f64,
            },
        }
    }

    fn high_priority(&self) -> bool {
        self.priority
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_types::{
        BlockId, ClientId, Microblock, Payload, Proposal, ReplicaId, Transaction, View,
    };

    fn mb(n: usize) -> Microblock {
        let txs = (0..n)
            .map(|i| Transaction::synthetic(ClientId(0), i as u64, 128, 0))
            .collect();
        Microblock::seal(ReplicaId(0), txs, 0)
    }

    #[test]
    fn consensus_votes_are_small_and_can_be_prioritized() {
        let vote = ConsensusMsg::Vote {
            view: View(1),
            block: BlockId::GENESIS,
            voter: ReplicaId(0),
        };
        let msg: ReplicaMsg<StratusMsg> = ReplicaMsg::consensus(vote, true);
        assert!(msg.wire_size() < 200);
        assert!(msg.high_priority());
        assert_eq!(msg.kind(), "vote");
    }

    #[test]
    fn microblock_messages_are_bulk_and_low_priority() {
        let m = StratusMsg::PabMsg(mb(100));
        assert!(m.is_bulk());
        let msg: ReplicaMsg<StratusMsg> = ReplicaMsg::mempool(m, false);
        assert!(!msg.high_priority());
        assert_eq!(msg.kind(), "microblock");
        assert!(msg.wire_size() > 100 * 128);
        assert!(msg.cpu_cost_us() > 20.0);
    }

    #[test]
    fn proposal_cpu_cost_scales_with_contents() {
        let small = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        let big = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::inline(
                (0..1000)
                    .map(|i| Transaction::synthetic(ClientId(0), i, 128, 0))
                    .collect(),
            ),
            true,
        );
        let s: ReplicaMsg<SmpMsg> = ReplicaMsg::consensus(ConsensusMsg::Propose(small), false);
        let b: ReplicaMsg<SmpMsg> = ReplicaMsg::consensus(ConsensusMsg::Propose(big), false);
        assert!(b.cpu_cost_us() > s.cpu_cost_us());
    }
}
