//! The real byte encoding of [`ReplicaMsg`] — what actually goes on a
//! socket.
//!
//! The surrounding [`wire`](crate::wire) module is a *cost model*: it
//! tells the simulator how many bytes a message would occupy and how much
//! CPU it would burn.  This module is the genuine article for the
//! `smp-net` runtime: a deterministic, versioned, length-prefixed binary
//! framing with strict rejection of malformed input.
//!
//! # Frame layout
//!
//! ```text
//! [0..4)   magic  "SMPW"
//! [4]      version (currently 1)
//! [5]      flags   (bit 0 = high-priority lane; other bits must be 0)
//! [6..10)  body length, u32 big-endian (bounded by MAX_FRAME_BYTES)
//! [10..]   body: family tag (0 = consensus, 1 = mempool, 2 = sync) + payload
//! ```
//!
//! All multi-byte integers are big-endian.  Collections are a `u32` count
//! followed by the elements; options are a one-byte presence tag.  The
//! decoder never trusts a length it has not bounds-checked against the
//! remaining input, never allocates capacity from attacker-controlled
//! counts, and never panics on garbage: every malformed input path returns
//! a [`DecodeError`].
//!
//! Content-derived identifiers (transaction, microblock, and proposal
//! ids) are **not** carried on the wire; the decoder re-derives them from
//! the encoded contents, so a peer cannot claim an id its bytes do not
//! hash to.

use crate::wire::{MempoolWire, ReplicaMsg, ReplicaPayload, SyncMsg};
use bytes::Bytes;
use smp_consensus::ConsensusMsg;
use smp_crypto::{Digest, QuorumProof, Signature};
use smp_mempool::{DagAck, DagBlock, DagMsg, DagParentRef, NarwhalMsg, NativeMsg, SmpMsg};
use smp_shard::ShardedMsg;
use smp_types::{
    BlockId, ClientId, Microblock, MicroblockId, MicroblockRef, Payload, Proposal, ReplicaId,
    Transaction, TxId, View,
};
use stratus::StratusMsg;

/// Magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"SMPW";

/// Current codec version, stamped into every frame header.
pub const CODEC_VERSION: u8 = 1;

/// Fixed frame-header size: magic + version + flags + body length.
pub const FRAME_HEADER_BYTES: usize = 10;

/// Upper bound on the body length a decoder will accept.  Generous for
/// the largest legitimate messages (multi-microblock fetch responses) but
/// small enough that a hostile length prefix cannot drive allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Priority bit in the header flags byte.
const FLAG_PRIORITY: u8 = 0x01;

/// Why a frame (or body) was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the expected content.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were available.
        have: usize,
    },
    /// The frame did not open with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte is not [`CODEC_VERSION`].
    BadVersion(u8),
    /// The flags byte set bits this version does not define.
    BadFlags(u8),
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    OversizedFrame(usize),
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Which type was being decoded.
        context: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
    /// The body decoded cleanly but left unconsumed bytes.
    TrailingBytes(usize),
    /// A sharded payload group tried to nest another sharded group.
    NestedShardGroup,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} bytes, have {have}")
            }
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported codec version {v} (expected {CODEC_VERSION})"
                )
            }
            DecodeError::BadFlags(x) => write!(f, "undefined flag bits {x:#04x}"),
            DecodeError::OversizedFrame(n) => {
                write!(f, "length prefix {n} exceeds {MAX_FRAME_BYTES}")
            }
            DecodeError::BadTag { context, tag } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            DecodeError::BadBool(b) => write!(f, "invalid boolean byte {b}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after body"),
            DecodeError::NestedShardGroup => write!(f, "sharded payload groups must not nest"),
        }
    }
}

impl DecodeError {
    /// Stable taxonomy label for telemetry, matching
    /// `smp_net::DECODE_TAXONOMY` so decode failures can be counted by
    /// kind across processes.
    pub fn taxonomy(&self) -> &'static str {
        match self {
            DecodeError::Truncated { .. } => "truncated",
            DecodeError::BadMagic(_) => "bad_magic",
            DecodeError::BadVersion(_) => "bad_version",
            DecodeError::BadFlags(_) => "bad_flags",
            DecodeError::OversizedFrame(_) => "oversized_frame",
            DecodeError::BadTag { .. } => "bad_tag",
            DecodeError::BadBool(_) => "bad_bool",
            DecodeError::TrailingBytes(_) => "trailing_bytes",
            DecodeError::NestedShardGroup => "nested_shard_group",
        }
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked cursor over an input slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(DecodeError::BadBool(b)),
        }
    }

    fn digest(&mut self) -> Result<Digest, DecodeError> {
        Ok(Digest([self.u64()?, self.u64()?, self.u64()?, self.u64()?]))
    }

    /// A `u32`-counted element count, pre-checked against the remaining
    /// input so a hostile count cannot drive allocation: every element
    /// costs at least `min_elem_bytes` input bytes.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(DecodeError::Truncated {
                needed: floor,
                have: self.remaining(),
            });
        }
        Ok(n)
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_digest(buf: &mut Vec<u8>, d: &Digest) {
    for w in d.0 {
        put_u64(buf, w);
    }
}

fn put_bool(buf: &mut Vec<u8>, b: bool) {
    buf.push(b as u8);
}

// ---------------------------------------------------------------------
// Shared pieces: signatures, proofs, transactions, microblocks, payloads.
// ---------------------------------------------------------------------

fn put_signature(buf: &mut Vec<u8>, s: &Signature) {
    put_u32(buf, s.signer);
    put_u64(buf, s.tag);
}

fn get_signature(r: &mut Reader<'_>) -> Result<Signature, DecodeError> {
    Ok(Signature {
        signer: r.u32()?,
        tag: r.u64()?,
    })
}

fn put_proof(buf: &mut Vec<u8>, p: &QuorumProof) {
    put_digest(buf, &p.digest);
    put_u32(buf, p.signatures.len() as u32);
    for s in &p.signatures {
        put_signature(buf, s);
    }
}

fn get_proof(r: &mut Reader<'_>) -> Result<QuorumProof, DecodeError> {
    let digest = r.digest()?;
    let n = r.count(12)?; // signer (4) + tag (8)
                          // Rebuild through `from_signatures` so the sorted-by-signer invariant
                          // holds even if a peer encoded out of order.
    let mut sigs = Vec::new();
    for _ in 0..n {
        sigs.push(get_signature(r)?);
    }
    Ok(QuorumProof::from_signatures(digest, sigs))
}

fn put_opt_proof(buf: &mut Vec<u8>, p: &Option<QuorumProof>) {
    match p {
        None => buf.push(0),
        Some(p) => {
            buf.push(1);
            put_proof(buf, p);
        }
    }
}

fn get_opt_proof(r: &mut Reader<'_>) -> Result<Option<QuorumProof>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_proof(r)?)),
        tag => Err(DecodeError::BadTag {
            context: "Option<QuorumProof>",
            tag,
        }),
    }
}

fn put_tx(buf: &mut Vec<u8>, tx: &Transaction) {
    put_u32(buf, tx.client.0);
    put_u64(buf, tx.seq);
    put_u32(buf, tx.payload.len() as u32);
    buf.extend_from_slice(&tx.payload);
    put_u64(buf, tx.payload_len as u64);
    put_u64(buf, tx.created_at);
    match tx.received_at {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            put_u64(buf, t);
        }
    }
    match tx.entry_replica {
        None => buf.push(0),
        Some(rep) => {
            buf.push(1);
            put_u32(buf, rep.0);
        }
    }
}

/// Minimum encoded size of a transaction (empty payload, absent options).
const TX_MIN_BYTES: usize = 4 + 8 + 4 + 8 + 8 + 1 + 1;

fn get_tx(r: &mut Reader<'_>) -> Result<Transaction, DecodeError> {
    let client = ClientId(r.u32()?);
    let seq = r.u64()?;
    let n = r.count(1)?;
    let payload = r.take(n)?;
    let payload = if payload.is_empty() {
        Bytes::new()
    } else {
        Bytes::copy_from_slice(payload)
    };
    let payload_len = r.u64()? as usize;
    let created_at = r.u64()?;
    let received_at = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        tag => {
            return Err(DecodeError::BadTag {
                context: "Transaction.received_at",
                tag,
            })
        }
    };
    let entry_replica = match r.u8()? {
        0 => None,
        1 => Some(ReplicaId(r.u32()?)),
        tag => {
            return Err(DecodeError::BadTag {
                context: "Transaction.entry_replica",
                tag,
            })
        }
    };
    Ok(Transaction {
        // Re-derived, never read off the wire.
        id: TxId::derive(client, seq),
        client,
        seq,
        payload,
        payload_len,
        created_at,
        received_at,
        entry_replica,
    })
}

fn put_txs(buf: &mut Vec<u8>, txs: &[Transaction]) {
    put_u32(buf, txs.len() as u32);
    for tx in txs {
        put_tx(buf, tx);
    }
}

fn get_txs(r: &mut Reader<'_>) -> Result<Vec<Transaction>, DecodeError> {
    let n = r.count(TX_MIN_BYTES)?;
    let mut txs = Vec::new();
    for _ in 0..n {
        txs.push(get_tx(r)?);
    }
    Ok(txs)
}

fn put_microblock(buf: &mut Vec<u8>, mb: &Microblock) {
    put_u32(buf, mb.creator.0);
    put_u64(buf, mb.created_at);
    put_u32(buf, mb.disseminator.0);
    put_txs(buf, &mb.txs);
}

fn get_microblock(r: &mut Reader<'_>) -> Result<Microblock, DecodeError> {
    let creator = ReplicaId(r.u32()?);
    let created_at = r.u64()?;
    let disseminator = ReplicaId(r.u32()?);
    let txs = get_txs(r)?;
    // `seal` re-derives the content id and resets the disseminator; stamp
    // the encoded disseminator back afterwards (a DLB proxy may differ
    // from the creator).
    let mut mb = Microblock::seal(creator, txs, created_at);
    mb.disseminator = disseminator;
    Ok(mb)
}

fn put_microblocks(buf: &mut Vec<u8>, mbs: &[Microblock]) {
    put_u32(buf, mbs.len() as u32);
    for mb in mbs {
        put_microblock(buf, mb);
    }
}

fn get_microblocks(r: &mut Reader<'_>) -> Result<Vec<Microblock>, DecodeError> {
    let n = r.count(4 + 8 + 4 + 4)?;
    let mut mbs = Vec::new();
    for _ in 0..n {
        mbs.push(get_microblock(r)?);
    }
    Ok(mbs)
}

fn put_mb_ids(buf: &mut Vec<u8>, ids: &[MicroblockId]) {
    put_u32(buf, ids.len() as u32);
    for id in ids {
        put_digest(buf, &id.0);
    }
}

fn get_mb_ids(r: &mut Reader<'_>) -> Result<Vec<MicroblockId>, DecodeError> {
    let n = r.count(32)?;
    let mut ids = Vec::new();
    for _ in 0..n {
        ids.push(MicroblockId(r.digest()?));
    }
    Ok(ids)
}

fn put_mb_ref(buf: &mut Vec<u8>, mref: &MicroblockRef) {
    put_digest(buf, &mref.id.0);
    put_u32(buf, mref.creator.0);
    put_u32(buf, mref.tx_count);
    put_opt_proof(buf, &mref.proof);
}

fn get_mb_ref(r: &mut Reader<'_>) -> Result<MicroblockRef, DecodeError> {
    Ok(MicroblockRef {
        id: MicroblockId(r.digest()?),
        creator: ReplicaId(r.u32()?),
        tx_count: r.u32()?,
        proof: get_opt_proof(r)?,
    })
}

fn put_payload(buf: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Inline(txs) => {
            buf.push(0);
            put_txs(buf, txs);
        }
        Payload::Refs(refs) => {
            buf.push(1);
            put_u32(buf, refs.len() as u32);
            for r in refs {
                put_mb_ref(buf, r);
            }
        }
        Payload::Sharded(groups) => {
            buf.push(2);
            put_u32(buf, groups.len() as u32);
            for (shard, sub) in groups {
                put_u16(buf, *shard);
                put_payload(buf, sub);
            }
        }
        Payload::Empty => buf.push(3),
    }
}

fn get_payload(r: &mut Reader<'_>, allow_sharded: bool) -> Result<Payload, DecodeError> {
    match r.u8()? {
        0 => Ok(Payload::Inline(std::sync::Arc::new(get_txs(r)?))),
        1 => {
            let n = r.count(32 + 4 + 4 + 1)?;
            let mut refs = Vec::new();
            for _ in 0..n {
                refs.push(get_mb_ref(r)?);
            }
            Ok(Payload::Refs(refs))
        }
        2 => {
            // Per-shard groups carry plain payloads; nesting is a protocol
            // violation (and would otherwise allow stack-exhausting input).
            if !allow_sharded {
                return Err(DecodeError::NestedShardGroup);
            }
            let n = r.count(2 + 1)?;
            let mut groups = Vec::new();
            for _ in 0..n {
                let shard = r.u16()?;
                groups.push((shard, get_payload(r, false)?));
            }
            Ok(Payload::Sharded(groups))
        }
        3 => Ok(Payload::Empty),
        tag => Err(DecodeError::BadTag {
            context: "Payload",
            tag,
        }),
    }
}

fn put_proposal(buf: &mut Vec<u8>, p: &Proposal) {
    put_u64(buf, p.view.0);
    put_u64(buf, p.height);
    put_digest(buf, &p.parent.0);
    put_u32(buf, p.proposer.0);
    put_bool(buf, p.carries_qc);
    put_payload(buf, &p.payload);
}

fn get_proposal(r: &mut Reader<'_>) -> Result<Proposal, DecodeError> {
    let view = View(r.u64()?);
    let height = r.u64()?;
    let parent = BlockId(r.digest()?);
    let proposer = ReplicaId(r.u32()?);
    let carries_qc = r.bool()?;
    let payload = get_payload(r, true)?;
    // `Proposal::new` re-derives the block id from the decoded header and
    // payload root, so an id cannot be spoofed independently of content.
    Ok(Proposal::new(
        view, height, parent, proposer, payload, carries_qc,
    ))
}

// ---------------------------------------------------------------------
// The per-family body codecs.
// ---------------------------------------------------------------------

/// Types with a deterministic binary body encoding.
///
/// Implemented by every mempool wire-message family and by the consensus
/// messages; [`ReplicaMsg`] composes them under the versioned frame
/// header.
pub trait WireCodec: Sized {
    /// Appends the binary encoding of `self` to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Decodes one value, consuming exactly its bytes from `r`.
    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl WireCodec for ConsensusMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            ConsensusMsg::Propose(p) => {
                buf.push(0);
                put_proposal(buf, p);
            }
            ConsensusMsg::Vote { view, block, voter } => {
                buf.push(1);
                put_u64(buf, view.0);
                put_digest(buf, &block.0);
                put_u32(buf, voter.0);
            }
            ConsensusMsg::Prepare {
                view,
                block,
                voter,
                instance,
            } => {
                buf.push(2);
                put_u64(buf, view.0);
                put_digest(buf, &block.0);
                put_u32(buf, voter.0);
                put_u32(buf, instance.0);
            }
            ConsensusMsg::Commit {
                view,
                block,
                voter,
                instance,
            } => {
                buf.push(3);
                put_u64(buf, view.0);
                put_digest(buf, &block.0);
                put_u32(buf, voter.0);
                put_u32(buf, instance.0);
            }
            ConsensusMsg::NewView {
                view,
                voter,
                high_qc_view,
            } => {
                buf.push(4);
                put_u64(buf, view.0);
                put_u32(buf, voter.0);
                put_u64(buf, high_qc_view.0);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(ConsensusMsg::Propose(get_proposal(r)?)),
            1 => Ok(ConsensusMsg::Vote {
                view: View(r.u64()?),
                block: BlockId(r.digest()?),
                voter: ReplicaId(r.u32()?),
            }),
            2 => Ok(ConsensusMsg::Prepare {
                view: View(r.u64()?),
                block: BlockId(r.digest()?),
                voter: ReplicaId(r.u32()?),
                instance: ReplicaId(r.u32()?),
            }),
            3 => Ok(ConsensusMsg::Commit {
                view: View(r.u64()?),
                block: BlockId(r.digest()?),
                voter: ReplicaId(r.u32()?),
                instance: ReplicaId(r.u32()?),
            }),
            4 => Ok(ConsensusMsg::NewView {
                view: View(r.u64()?),
                voter: ReplicaId(r.u32()?),
                high_qc_view: View(r.u64()?),
            }),
            tag => Err(DecodeError::BadTag {
                context: "ConsensusMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for NativeMsg {
    fn encode_into(&self, _buf: &mut Vec<u8>) {
        match *self {}
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // The native mempool has no peer messages; any tag is invalid.
        let tag = r.u8()?;
        Err(DecodeError::BadTag {
            context: "NativeMsg",
            tag,
        })
    }
}

impl WireCodec for SmpMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            SmpMsg::Microblock(mb) => {
                buf.push(0);
                put_microblock(buf, mb);
            }
            SmpMsg::Gossip { mb, hops } => {
                buf.push(1);
                buf.push(*hops);
                put_microblock(buf, mb);
            }
            SmpMsg::Fetch { ids } => {
                buf.push(2);
                put_mb_ids(buf, ids);
            }
            SmpMsg::FetchResp { mbs } => {
                buf.push(3);
                put_microblocks(buf, mbs);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(SmpMsg::Microblock(get_microblock(r)?)),
            1 => {
                let hops = r.u8()?;
                Ok(SmpMsg::Gossip {
                    mb: get_microblock(r)?,
                    hops,
                })
            }
            2 => Ok(SmpMsg::Fetch {
                ids: get_mb_ids(r)?,
            }),
            3 => Ok(SmpMsg::FetchResp {
                mbs: get_microblocks(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "SmpMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for NarwhalMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            NarwhalMsg::Batch(mb) => {
                buf.push(0);
                put_microblock(buf, mb);
            }
            NarwhalMsg::Echo { id, sig } => {
                buf.push(1);
                put_digest(buf, &id.0);
                put_signature(buf, sig);
            }
            NarwhalMsg::Ready { id, sig } => {
                buf.push(2);
                put_digest(buf, &id.0);
                put_signature(buf, sig);
            }
            NarwhalMsg::Certificate {
                id,
                creator,
                tx_count,
                proof,
            } => {
                buf.push(3);
                put_digest(buf, &id.0);
                put_u32(buf, creator.0);
                put_u32(buf, *tx_count);
                put_proof(buf, proof);
            }
            NarwhalMsg::Fetch { ids } => {
                buf.push(4);
                put_mb_ids(buf, ids);
            }
            NarwhalMsg::FetchResp { mbs } => {
                buf.push(5);
                put_microblocks(buf, mbs);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(NarwhalMsg::Batch(get_microblock(r)?)),
            1 => Ok(NarwhalMsg::Echo {
                id: MicroblockId(r.digest()?),
                sig: get_signature(r)?,
            }),
            2 => Ok(NarwhalMsg::Ready {
                id: MicroblockId(r.digest()?),
                sig: get_signature(r)?,
            }),
            3 => Ok(NarwhalMsg::Certificate {
                id: MicroblockId(r.digest()?),
                creator: ReplicaId(r.u32()?),
                tx_count: r.u32()?,
                proof: get_proof(r)?,
            }),
            4 => Ok(NarwhalMsg::Fetch {
                ids: get_mb_ids(r)?,
            }),
            5 => Ok(NarwhalMsg::FetchResp {
                mbs: get_microblocks(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "NarwhalMsg",
                tag,
            }),
        }
    }
}

fn put_dag_block(buf: &mut Vec<u8>, b: &DagBlock) {
    put_u32(buf, b.creator.0);
    put_u64(buf, b.round);
    put_u64(buf, b.seq);
    match &b.batch {
        Some(mb) => {
            buf.push(1);
            put_microblock(buf, mb);
        }
        None => buf.push(0),
    }
    put_u32(buf, b.parents.len() as u32);
    for p in &b.parents {
        put_u32(buf, p.creator.0);
        put_u64(buf, p.round);
    }
    put_u32(buf, b.acks.len() as u32);
    for a in &b.acks {
        put_digest(buf, &a.id.0);
        put_signature(buf, &a.sig);
    }
    put_signature(buf, &b.sig);
}

fn get_dag_block(r: &mut Reader<'_>) -> Result<DagBlock, DecodeError> {
    let creator = ReplicaId(r.u32()?);
    let round = r.u64()?;
    let seq = r.u64()?;
    // The batch id is re-derived by `get_microblock`'s re-seal, never
    // trusted from the wire.
    let batch = match r.u8()? {
        0 => None,
        1 => Some(get_microblock(r)?),
        tag => {
            return Err(DecodeError::BadTag {
                context: "DagBlock.batch",
                tag,
            })
        }
    };
    let n_parents = r.count(4 + 8)?;
    let mut parents = Vec::new();
    for _ in 0..n_parents {
        parents.push(DagParentRef {
            creator: ReplicaId(r.u32()?),
            round: r.u64()?,
        });
    }
    let n_acks = r.count(32 + 12)?;
    let mut acks = Vec::new();
    for _ in 0..n_acks {
        acks.push(DagAck {
            id: MicroblockId(r.digest()?),
            sig: get_signature(r)?,
        });
    }
    let sig = get_signature(r)?;
    Ok(DagBlock {
        creator,
        round,
        seq,
        batch,
        parents,
        acks,
        sig,
    })
}

impl WireCodec for DagMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            DagMsg::Block(b) => {
                buf.push(0);
                put_dag_block(buf, b);
            }
            DagMsg::Fetch { ids } => {
                buf.push(1);
                put_mb_ids(buf, ids);
            }
            DagMsg::FetchResp { mbs } => {
                buf.push(2);
                put_microblocks(buf, mbs);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(DagMsg::Block(get_dag_block(r)?)),
            1 => Ok(DagMsg::Fetch {
                ids: get_mb_ids(r)?,
            }),
            2 => Ok(DagMsg::FetchResp {
                mbs: get_microblocks(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "DagMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for StratusMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            StratusMsg::PabMsg(mb) => {
                buf.push(0);
                put_microblock(buf, mb);
            }
            StratusMsg::PabAck { id, sig } => {
                buf.push(1);
                put_digest(buf, &id.0);
                put_signature(buf, sig);
            }
            StratusMsg::PabProof { id, proof } => {
                buf.push(2);
                put_digest(buf, &id.0);
                put_proof(buf, proof);
            }
            StratusMsg::PabRequest { ids } => {
                buf.push(3);
                put_mb_ids(buf, ids);
            }
            StratusMsg::PabResponse { mbs } => {
                buf.push(4);
                put_microblocks(buf, mbs);
            }
            StratusMsg::LbQuery { token } => {
                buf.push(5);
                put_u64(buf, *token);
            }
            StratusMsg::LbInfo {
                token,
                stable_time_us,
            } => {
                buf.push(6);
                put_u64(buf, *token);
                match stable_time_us {
                    None => buf.push(0),
                    Some(t) => {
                        buf.push(1);
                        put_u64(buf, *t);
                    }
                }
            }
            StratusMsg::LbForward(mb) => {
                buf.push(7);
                put_microblock(buf, mb);
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(StratusMsg::PabMsg(get_microblock(r)?)),
            1 => Ok(StratusMsg::PabAck {
                id: MicroblockId(r.digest()?),
                sig: get_signature(r)?,
            }),
            2 => Ok(StratusMsg::PabProof {
                id: MicroblockId(r.digest()?),
                proof: get_proof(r)?,
            }),
            3 => Ok(StratusMsg::PabRequest {
                ids: get_mb_ids(r)?,
            }),
            4 => Ok(StratusMsg::PabResponse {
                mbs: get_microblocks(r)?,
            }),
            5 => Ok(StratusMsg::LbQuery { token: r.u64()? }),
            6 => {
                let token = r.u64()?;
                let stable_time_us = match r.u8()? {
                    0 => None,
                    1 => Some(r.u64()?),
                    tag => {
                        return Err(DecodeError::BadTag {
                            context: "StratusMsg::LbInfo.stable_time_us",
                            tag,
                        })
                    }
                };
                Ok(StratusMsg::LbInfo {
                    token,
                    stable_time_us,
                })
            }
            7 => Ok(StratusMsg::LbForward(get_microblock(r)?)),
            tag => Err(DecodeError::BadTag {
                context: "StratusMsg",
                tag,
            }),
        }
    }
}

impl<M: WireCodec> WireCodec for ShardedMsg<M> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u16(buf, self.shard);
        self.inner.encode_into(buf);
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let shard = r.u16()?;
        Ok(ShardedMsg {
            shard,
            inner: M::decode_from(r)?,
        })
    }
}

impl WireCodec for SyncMsg {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            SyncMsg::Request { from_index } => {
                buf.push(0);
                put_u64(buf, *from_index);
            }
            SyncMsg::Response {
                from_index,
                entries,
            } => {
                buf.push(1);
                put_u64(buf, *from_index);
                put_u32(buf, entries.len() as u32);
                for id in entries {
                    put_digest(buf, &id.0);
                }
            }
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.u8()? {
            0 => Ok(SyncMsg::Request {
                from_index: r.u64()?,
            }),
            1 => {
                let from_index = r.u64()?;
                let n = r.count(32)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    entries.push(TxId(r.digest()?));
                }
                Ok(SyncMsg::Response {
                    from_index,
                    entries,
                })
            }
            tag => Err(DecodeError::BadTag {
                context: "SyncMsg",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------
// Frame encode / decode.
// ---------------------------------------------------------------------

/// Encodes `msg` as one complete frame (header + body).
pub fn encode_frame<MM>(msg: &ReplicaMsg<MM>) -> Vec<u8>
where
    MM: MempoolWire + WireCodec,
{
    let mut body = Vec::with_capacity(64);
    match &msg.payload {
        ReplicaPayload::Consensus(c) => {
            body.push(0);
            c.encode_into(&mut body);
        }
        ReplicaPayload::Mempool(m) => {
            body.push(1);
            m.encode_into(&mut body);
        }
        ReplicaPayload::Sync(s) => {
            body.push(2);
            s.encode_into(&mut body);
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    frame.extend_from_slice(&MAGIC);
    frame.push(CODEC_VERSION);
    frame.push(if msg.priority { FLAG_PRIORITY } else { 0 });
    put_u32(&mut frame, body.len() as u32);
    frame.extend_from_slice(&body);
    frame
}

/// A validated frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Whether the sender marked the frame high-priority.
    pub priority: bool,
    /// Length of the body that follows the header.
    pub body_len: usize,
}

/// Validates the fixed-size header (first [`FRAME_HEADER_BYTES`] bytes).
pub fn decode_header(header: &[u8]) -> Result<FrameHeader, DecodeError> {
    if header.len() < FRAME_HEADER_BYTES {
        return Err(DecodeError::Truncated {
            needed: FRAME_HEADER_BYTES,
            have: header.len(),
        });
    }
    if header[..4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&header[..4]);
        return Err(DecodeError::BadMagic(m));
    }
    if header[4] != CODEC_VERSION {
        return Err(DecodeError::BadVersion(header[4]));
    }
    let flags = header[5];
    if flags & !FLAG_PRIORITY != 0 {
        return Err(DecodeError::BadFlags(flags));
    }
    let body_len = u32::from_be_bytes([header[6], header[7], header[8], header[9]]) as usize;
    if body_len > MAX_FRAME_BYTES {
        return Err(DecodeError::OversizedFrame(body_len));
    }
    Ok(FrameHeader {
        priority: flags & FLAG_PRIORITY != 0,
        body_len,
    })
}

/// Decodes a body produced by [`encode_frame`] (the bytes after the
/// header), requiring every byte to be consumed.
pub fn decode_body<MM>(body: &[u8], priority: bool) -> Result<ReplicaMsg<MM>, DecodeError>
where
    MM: MempoolWire + WireCodec,
{
    let mut r = Reader::new(body);
    let payload = match r.u8()? {
        0 => ReplicaPayload::Consensus(ConsensusMsg::decode_from(&mut r)?),
        1 => ReplicaPayload::Mempool(MM::decode_from(&mut r)?),
        2 => ReplicaPayload::Sync(SyncMsg::decode_from(&mut r)?),
        tag => {
            return Err(DecodeError::BadTag {
                context: "ReplicaPayload",
                tag,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(ReplicaMsg { payload, priority })
}

/// Decodes one complete frame, returning the message and the total bytes
/// consumed (header + body).  The input may extend past the frame.
pub fn decode_frame<MM>(input: &[u8]) -> Result<(ReplicaMsg<MM>, usize), DecodeError>
where
    MM: MempoolWire + WireCodec,
{
    let header = decode_header(input)?;
    let total = FRAME_HEADER_BYTES + header.body_len;
    if input.len() < total {
        return Err(DecodeError::Truncated {
            needed: total,
            have: input.len(),
        });
    }
    let msg = decode_body(&input[FRAME_HEADER_BYTES..total], header.priority)?;
    Ok((msg, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mb(n: usize) -> Microblock {
        let txs = (0..n)
            .map(|i| Transaction::synthetic(ClientId(2), i as u64, 64, 5))
            .collect();
        Microblock::seal(ReplicaId(1), txs, 7)
    }

    fn round_trip<MM>(msg: ReplicaMsg<MM>)
    where
        MM: MempoolWire + WireCodec + PartialEq,
    {
        let frame = encode_frame(&msg);
        let (back, used) = decode_frame::<MM>(&frame).expect("decode");
        assert_eq!(used, frame.len());
        assert_eq!(back.priority, msg.priority);
        match (&back.payload, &msg.payload) {
            (ReplicaPayload::Consensus(a), ReplicaPayload::Consensus(b)) => assert_eq!(a, b),
            (ReplicaPayload::Mempool(a), ReplicaPayload::Mempool(b)) => assert!(a == b),
            _ => panic!("family changed in round trip"),
        }
    }

    #[test]
    fn consensus_and_mempool_frames_round_trip() {
        round_trip::<StratusMsg>(ReplicaMsg::consensus(
            ConsensusMsg::Vote {
                view: View(3),
                block: BlockId::GENESIS,
                voter: ReplicaId(2),
            },
            true,
        ));
        round_trip::<StratusMsg>(ReplicaMsg::mempool(StratusMsg::PabMsg(mb(3)), false));
        round_trip::<SmpMsg>(ReplicaMsg::mempool(
            SmpMsg::Gossip { mb: mb(2), hops: 2 },
            false,
        ));
        round_trip::<ShardedMsg<StratusMsg>>(ReplicaMsg::mempool(
            ShardedMsg::new(
                5,
                StratusMsg::LbInfo {
                    token: 9,
                    stable_time_us: Some(1_234),
                },
            ),
            true,
        ));
    }

    #[test]
    fn sharded_proposal_payloads_round_trip() {
        let payload = Payload::sharded(vec![
            (
                0,
                Payload::Refs(vec![MicroblockRef::unproven(mb(1).id, ReplicaId(1), 1)]),
            ),
            (
                2,
                Payload::inline(vec![Transaction::synthetic(ClientId(0), 9, 128, 0)]),
            ),
        ]);
        let p = Proposal::new(View(4), 2, BlockId::GENESIS, ReplicaId(0), payload, true);
        round_trip::<StratusMsg>(ReplicaMsg::consensus(ConsensusMsg::Propose(p), false));
    }

    #[test]
    fn header_rejects_bad_magic_version_flags_and_length() {
        let frame = encode_frame::<StratusMsg>(&ReplicaMsg::mempool(
            StratusMsg::LbQuery { token: 1 },
            false,
        ));
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_frame::<StratusMsg>(&bad),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bad = frame.clone();
        bad[4] = 9;
        assert_eq!(
            decode_frame::<StratusMsg>(&bad).unwrap_err(),
            DecodeError::BadVersion(9)
        );
        let mut bad = frame.clone();
        bad[5] = 0x80;
        assert_eq!(
            decode_frame::<StratusMsg>(&bad).unwrap_err(),
            DecodeError::BadFlags(0x80)
        );
        let mut bad = frame;
        bad[6] = 0xff; // body length far beyond MAX_FRAME_BYTES
        assert!(matches!(
            decode_frame::<StratusMsg>(&bad),
            Err(DecodeError::OversizedFrame(_))
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let frame =
            encode_frame::<StratusMsg>(&ReplicaMsg::mempool(StratusMsg::PabMsg(mb(2)), false));
        for cut in [0, 1, FRAME_HEADER_BYTES, frame.len() - 1] {
            assert!(matches!(
                decode_frame::<StratusMsg>(&frame[..cut]),
                Err(DecodeError::Truncated { .. })
            ));
        }
        // A body longer than its content decodes to TrailingBytes.
        let msg: ReplicaMsg<StratusMsg> =
            ReplicaMsg::mempool(StratusMsg::LbQuery { token: 1 }, false);
        let mut frame = encode_frame(&msg);
        frame.push(0);
        let len = (frame.len() - FRAME_HEADER_BYTES) as u32;
        frame[6..10].copy_from_slice(&len.to_be_bytes());
        assert_eq!(
            decode_frame::<StratusMsg>(&frame).unwrap_err(),
            DecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn hostile_collection_counts_cannot_drive_allocation() {
        // A fetch request claiming 2^32-1 ids in a tiny body must fail on
        // the bounds check, not attempt the allocation.
        let mut body = vec![1u8, 3u8]; // mempool family, PabRequest tag
        body.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(CODEC_VERSION);
        frame.push(0);
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&body);
        assert!(matches!(
            decode_frame::<StratusMsg>(&frame),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn ids_are_rederived_not_trusted() {
        let msg: ReplicaMsg<SmpMsg> = ReplicaMsg::mempool(SmpMsg::Microblock(mb(2)), false);
        let frame = encode_frame(&msg);
        let (back, _) = decode_frame::<SmpMsg>(&frame).unwrap();
        let ReplicaPayload::Mempool(SmpMsg::Microblock(decoded)) = back.payload else {
            panic!("wrong variant");
        };
        assert_eq!(decoded.id, mb(2).id);
        assert_eq!(
            decoded.id,
            MicroblockId::derive(
                decoded.creator,
                &decoded.txs.iter().map(|t| t.id).collect::<Vec<_>>()
            )
        );
    }
}
