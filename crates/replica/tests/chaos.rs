//! Deterministic chaos suite: scripted crash/restart, partitions, and
//! burst faults against the full replica stack inside the simulator.
//!
//! The contract under test is the crash-recovery story of the `Sync`
//! wire family: a replica that loses its state mid-run re-syncs the
//! committed sequence from live peers and ends the run with a log
//! byte-identical to theirs — and, when the faults land after the
//! workload settles, byte-identical to an entirely unfaulted reference
//! run.  Every schedule replays deterministically, so each scenario is
//! also run twice and compared.

use simnet::{FaultAction, FaultSchedule};
use smp_replica::{sim_commit_logs, sim_commit_logs_with_faults, ExperimentConfig, Protocol};
use smp_types::ReplicaId;
use smp_workload::LoadDistribution;

/// Single-source workload: replica 0 offers every transaction, so the
/// committed sequence is protocol-determined FIFO and survives fault
/// timing as long as faults never touch replica 0's in-flight blocks.
fn single_source(n: usize) -> ExperimentConfig {
    ExperimentConfig::new(Protocol::NativeHotStuff, n, 4_000.0)
        .with_distribution(LoadDistribution::SingleReplica(0))
        .with_batch_size(16 * 1024)
}

const TX_LIMIT: u64 = 60;
/// All 60 txs at 4k tx/s are offered within ~15 ms and committed well
/// inside the first second; faults scheduled at 2 s and later can no
/// longer orphan a transaction-carrying proposal.
const SETTLED_US: u64 = 2_000_000;
const HORIZON_US: u64 = 6_000_000;

#[test]
fn killed_replica_resyncs_to_byte_identical_log() {
    let config = single_source(4);
    let reference = sim_commit_logs(&config, Some(TX_LIMIT), HORIZON_US);
    assert_eq!(reference[0].len(), TX_LIMIT as usize);

    // Crash replica 3 after the workload settles, restart it 500 ms
    // later: `on_restart` drains its state and it rejoins as a passive
    // sync observer, replaying the committed sequence from its peers.
    let schedule = FaultSchedule::new()
        .at(SETTLED_US, FaultAction::Crash(ReplicaId(3)))
        .at(SETTLED_US + 500_000, FaultAction::Restart(ReplicaId(3)));
    let faulted =
        sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule.clone());
    for (i, log) in faulted.iter().enumerate() {
        assert_eq!(
            log, &reference[i],
            "replica {i} diverged from the unfaulted reference"
        );
    }

    // Same seed, same schedule: the chaos run itself must replay
    // byte-identically.
    let replay = sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule);
    assert_eq!(replay, faulted);
}

#[test]
fn empty_fault_schedule_is_provably_inert() {
    let config = single_source(4);
    let plain = sim_commit_logs(&config, Some(TX_LIMIT), 3_000_000);
    let with_empty =
        sim_commit_logs_with_faults(&config, Some(TX_LIMIT), 3_000_000, FaultSchedule::new());
    assert_eq!(plain, with_empty);
}

#[test]
fn partitioned_replica_catches_up_after_crash_recovery() {
    // Partition replica 3 away while consensus keeps running, heal, then
    // crash-and-restart it.  Whatever blocks it missed behind the cut,
    // recovery rebuilds its log from the live peers' committed
    // sequences, so all four logs end identical.
    let config = single_source(4);
    let schedule = FaultSchedule::new()
        .at(SETTLED_US, FaultAction::Partition(vec![ReplicaId(3)]))
        .at(SETTLED_US + 800_000, FaultAction::Heal)
        .at(SETTLED_US + 1_200_000, FaultAction::Crash(ReplicaId(3)))
        .at(SETTLED_US + 1_700_000, FaultAction::Restart(ReplicaId(3)));
    let logs = sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule);
    assert_eq!(logs[0].len(), TX_LIMIT as usize);
    for (i, log) in logs.iter().enumerate() {
        assert_eq!(log, &logs[0], "replica {i} diverged after recovery");
    }
}

#[test]
fn dag_mempool_stays_consistent_under_crash_and_heal() {
    // The DAG backend keeps per-creator rounds, a parent frontier, and
    // piggybacked ack state — all of it lost in a crash.  Block dedup is
    // digest-based (not (creator, round)-based) precisely so a restarted
    // replica's re-emitted low rounds are re-accepted by its peers; this
    // scenario proves the whole plane survives the PR 6 crash/heal
    // script with byte-identical logs, in both commit-derivation modes.
    for protocol in [Protocol::DagHotStuff, Protocol::DagHotStuffFast] {
        // Four transactions per batch: the 60-tx workload spans 15 DAG
        // blocks (the commit log records one entry per referenced batch),
        // so the run exercises many emission rounds, not one.
        let mut config = single_source(4).with_batch_size(4 * 168);
        config.protocol = protocol;
        let reference = sim_commit_logs(&config, Some(TX_LIMIT), HORIZON_US);
        assert_eq!(
            reference[0].len(),
            TX_LIMIT as usize / 4,
            "{}: unfaulted reference did not commit the full workload",
            protocol.label()
        );
        let schedule = FaultSchedule::new()
            .at(SETTLED_US, FaultAction::Partition(vec![ReplicaId(3)]))
            .at(SETTLED_US + 600_000, FaultAction::Heal)
            .at(SETTLED_US + 1_000_000, FaultAction::Crash(ReplicaId(3)))
            .at(SETTLED_US + 1_500_000, FaultAction::Restart(ReplicaId(3)));
        let faulted =
            sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule.clone());
        for (i, log) in faulted.iter().enumerate() {
            assert_eq!(
                log,
                &reference[i],
                "{}: replica {i} diverged from the unfaulted reference",
                protocol.label()
            );
        }
        let replay = sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule);
        assert_eq!(
            replay,
            faulted,
            "{}: chaos run did not replay deterministically",
            protocol.label()
        );
    }
}

#[test]
fn network_bursts_replay_deterministically() {
    // Drop and delay bursts land mid-workload, so transactions may be
    // lost to orphaned proposals — the guarantee here is not liveness
    // but determinism (same seed + schedule => same logs) and safety
    // (every log is a consistent subsequence of the reference order).
    let config = single_source(4);
    let schedule = FaultSchedule::new()
        .at(
            5_000,
            FaultAction::DelayBurst {
                duration: 200_000,
                min_us: 1_000,
                max_us: 20_000,
            },
        )
        .at(400_000, FaultAction::DropBurst { duration: 50_000 });
    let run = || sim_commit_logs_with_faults(&config, Some(TX_LIMIT), HORIZON_US, schedule.clone());
    let first = run();
    assert_eq!(first, run(), "burst chaos must replay identically");

    // Safety: committed logs never reorder relative to the reference.
    let reference = sim_commit_logs(&config, Some(TX_LIMIT), HORIZON_US);
    for (i, log) in first.iter().enumerate() {
        let mut cursor = reference[0].iter();
        for tx in log {
            assert!(
                cursor.any(|r| r == tx),
                "replica {i} committed {tx:?} out of reference order"
            );
        }
    }
}
