//! Cross-runtime conformance: the same `ExperimentConfig` and seed must
//! commit a byte-identical transaction sequence under the deterministic
//! simulator and under the real-socket `smp-net` runtime.
//!
//! The multi-process variant of this check is the `localcluster` binary
//! (one OS process per replica); this test runs the four socket
//! runtimes as threads of one process, which exercises the same codec,
//! connection formation, two-lane writers, and wall-clock timers.

use smp_replica::{
    run_replica_over_net, sim_commit_logs, ExperimentConfig, NetRunOptions, NetRunSummary, Protocol,
};
use smp_types::ReplicaId;
use smp_workload::LoadDistribution;
use std::net::{SocketAddr, TcpListener};
use std::thread;

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn run_cluster(config: &ExperimentConfig, opts: &NetRunOptions) -> Vec<NetRunSummary> {
    let addrs = free_addrs(config.n);
    let handles: Vec<_> = (0..config.n)
        .map(|i| {
            let config = config.clone();
            let opts = opts.clone();
            let addrs = addrs.clone();
            thread::spawn(move || {
                run_replica_over_net(&config, ReplicaId(i as u32), addrs, &opts)
                    .expect("net replica run")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

#[test]
fn socket_cluster_commits_the_simulator_sequence() {
    // Single-source workload: only replica 0 offers transactions, so the
    // committed sequence is fully determined by the protocol (FIFO from
    // one queue), not by cross-replica timing.
    let config = ExperimentConfig::new(Protocol::NativeHotStuff, 4, 4_000.0)
        .with_distribution(LoadDistribution::SingleReplica(0))
        .with_batch_size(16 * 1024);
    let tx_limit = 60u64;

    let sim_logs = sim_commit_logs(&config, Some(tx_limit), 3_000_000);
    assert_eq!(sim_logs[0].len(), tx_limit as usize);

    let reports = run_cluster(
        &config,
        &NetRunOptions {
            tx_limit: Some(tx_limit),
            horizon_us: 2_500_000,
            telemetry: false,
        },
    );
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.peer_errors.is_empty(),
            "replica {i} peer errors: {:?}",
            r.peer_errors
        );
        assert_eq!(
            r.commit_log,
            sim_logs[i],
            "replica {i}: socket commit log diverges from simulator \
             ({} vs {} txs)",
            r.commit_log.len(),
            sim_logs[i].len()
        );
    }
    assert!(reports[0].frames_out > 0, "replica 0 sent no frames");
    assert!(reports[1].bytes_in > 0, "replica 1 received no bytes");
}

#[test]
fn socket_cluster_runs_stratus_end_to_end() {
    // Stratus commits referenced payloads (no inline txs), so the commit
    // log is empty by construction — this is a liveness smoke test of
    // the full PAB/DLB stack over real sockets: microblocks, acks,
    // proofs, and LbInfo all cross the codec.
    let config =
        ExperimentConfig::new(Protocol::StratusHotStuff, 4, 2_000.0).with_batch_size(16 * 1024);
    let reports = run_cluster(
        &config,
        &NetRunOptions {
            tx_limit: Some(400),
            horizon_us: 2_500_000,
            telemetry: false,
        },
    );
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.peer_errors.is_empty(),
            "replica {i} peer errors: {:?}",
            r.peer_errors
        );
    }
    let committed: u64 = reports.iter().map(|r| r.committed_txs).sum();
    assert!(
        committed > 0,
        "Stratus cluster committed nothing over sockets"
    );
}
