//! Cross-runtime conformance: the same `ExperimentConfig` and seed must
//! commit a byte-identical transaction sequence under the deterministic
//! simulator and under the real-socket `smp-net` runtime.
//!
//! The multi-process variant of this check is the `localcluster` binary
//! (one OS process per replica); this test runs the four socket
//! runtimes as threads of one process, which exercises the same codec,
//! connection formation, two-lane writers, and wall-clock timers.

use smp_replica::{
    run_replica_over_net, sim_commit_logs, ExperimentConfig, NetRunOptions, NetRunSummary, Protocol,
};
use smp_types::ReplicaId;
use smp_workload::LoadDistribution;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn run_cluster(config: &ExperimentConfig, opts: &NetRunOptions) -> Vec<NetRunSummary> {
    let addrs = free_addrs(config.n);
    let handles: Vec<_> = (0..config.n)
        .map(|i| {
            let config = config.clone();
            let opts = opts.clone();
            let addrs = addrs.clone();
            thread::spawn(move || {
                run_replica_over_net(&config, ReplicaId(i as u32), addrs, &opts)
                    .expect("net replica run")
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect()
}

#[test]
fn socket_cluster_commits_the_simulator_sequence() {
    // Single-source workload: only replica 0 offers transactions, so the
    // committed sequence is fully determined by the protocol (FIFO from
    // one queue), not by cross-replica timing.
    let config = ExperimentConfig::new(Protocol::NativeHotStuff, 4, 4_000.0)
        .with_distribution(LoadDistribution::SingleReplica(0))
        .with_batch_size(16 * 1024);
    let tx_limit = 60u64;

    let sim_logs = sim_commit_logs(&config, Some(tx_limit), 3_000_000);
    assert_eq!(sim_logs[0].len(), tx_limit as usize);

    let reports = run_cluster(
        &config,
        &NetRunOptions {
            tx_limit: Some(tx_limit),
            horizon_us: 2_500_000,
            ..NetRunOptions::default()
        },
    );
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.peer_errors.is_empty(),
            "replica {i} peer errors: {:?}",
            r.peer_errors
        );
        assert_eq!(
            r.commit_log,
            sim_logs[i],
            "replica {i}: socket commit log diverges from simulator \
             ({} vs {} txs)",
            r.commit_log.len(),
            sim_logs[i].len()
        );
    }
    assert!(reports[0].frames_out > 0, "replica 0 sent no frames");
    assert!(reports[1].bytes_in > 0, "replica 1 received no bytes");
}

fn admin_ask(addr: SocketAddr, cmd: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok()?;
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(format!("{cmd}\n").as_bytes()).ok()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply).ok()?;
    Some(reply.trim_end().to_string())
}

/// Telemetry must be a pure observer: a cluster running with the full
/// observability plane on (live sink, flight-recorder sampler, admin
/// endpoint, and an operator polling it mid-run) commits the same
/// byte-identical sequence as the reference simulation — and therefore
/// as the uninstrumented cluster checked above.
#[test]
fn instrumented_cluster_commits_identical_sequence() {
    let config = ExperimentConfig::new(Protocol::NativeHotStuff, 4, 4_000.0)
        .with_distribution(LoadDistribution::SingleReplica(0))
        .with_batch_size(16 * 1024);
    let tx_limit = 60u64;
    let sim_logs = sim_commit_logs(&config, Some(tx_limit), 3_000_000);
    assert_eq!(sim_logs[0].len(), tx_limit as usize);

    let addrs = free_addrs(config.n);
    let admin_addrs = free_addrs(config.n);
    let handles: Vec<_> = (0..config.n)
        .map(|i| {
            let config = config.clone();
            let addrs = addrs.clone();
            let opts = NetRunOptions {
                tx_limit: Some(tx_limit),
                horizon_us: 2_500_000,
                telemetry: true,
                admin_addr: Some(admin_addrs[i]),
                flight_cadence_us: Some(100_000),
                ..NetRunOptions::default()
            };
            thread::spawn(move || {
                run_replica_over_net(&config, ReplicaId(i as u32), addrs, &opts)
                    .expect("net replica run")
            })
        })
        .collect();

    // Mid-run, every replica's admin endpoint must answer HEALTH and
    // METRICS (retry while the cluster forms).
    for (i, addr) in admin_addrs.iter().enumerate() {
        let deadline = Instant::now() + Duration::from_secs(10);
        let health = loop {
            match admin_ask(*addr, "HEALTH") {
                Some(reply) => break reply,
                None if Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(50));
                }
                None => panic!("replica {i} admin endpoint never answered HEALTH"),
            }
        };
        assert!(
            health.starts_with(&format!("ok replica={i} ")),
            "replica {i} HEALTH: {health}"
        );
        let metrics = admin_ask(*addr, "METRICS").expect("METRICS reply");
        assert!(
            metrics.starts_with('{'),
            "replica {i} METRICS not JSON: {metrics}"
        );
        let series = admin_ask(*addr, "SERIES").expect("SERIES reply");
        assert!(
            series.contains("smp-flightrec-v1"),
            "replica {i} SERIES not schema-versioned: {series}"
        );
    }

    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect();
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.peer_errors.is_empty(),
            "replica {i} peer errors: {:?}",
            r.peer_errors
        );
        assert!(
            r.frame_errors.is_empty(),
            "replica {i} frame errors: {:?}",
            r.frame_errors
        );
        assert_eq!(
            r.commit_log, sim_logs[i],
            "replica {i}: instrumented socket commit log diverges"
        );
        // The observability plane actually observed: windows sampled,
        // per-peer socket counters mirrored into the registry.
        let series = r.flight_series.as_ref().expect("flight series recorded");
        let windows = series.get("windows").and_then(|w| w.as_array()).unwrap();
        assert!(!windows.is_empty(), "replica {i} recorded no windows");
        assert_eq!(r.epoch_unix_us.map(|us| us > 0), Some(true));
        let snap = r.telemetry.snapshot();
        let frames_in: u64 = (0..config.n)
            .filter_map(|p| snap.counter(&format!("replica.{i}.net.peer.{p}.frames_in")))
            .sum();
        // Readers count at decode time; the main loop stops draining at
        // the horizon, so the socket-level count can only run ahead.
        assert!(
            frames_in >= r.frames_in && r.frames_in > 0,
            "replica {i} counters diverge: socket {frames_in} < main loop {}",
            r.frames_in
        );
    }
}

#[test]
fn socket_cluster_runs_stratus_end_to_end() {
    // Stratus commits referenced payloads (no inline txs), so the commit
    // log is empty by construction — this is a liveness smoke test of
    // the full PAB/DLB stack over real sockets: microblocks, acks,
    // proofs, and LbInfo all cross the codec.
    let config =
        ExperimentConfig::new(Protocol::StratusHotStuff, 4, 2_000.0).with_batch_size(16 * 1024);
    let reports = run_cluster(
        &config,
        &NetRunOptions {
            tx_limit: Some(400),
            horizon_us: 2_500_000,
            ..NetRunOptions::default()
        },
    );
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.peer_errors.is_empty(),
            "replica {i} peer errors: {:?}",
            r.peer_errors
        );
    }
    let committed: u64 = reports.iter().map(|r| r.committed_txs).sum();
    assert!(
        committed > 0,
        "Stratus cluster committed nothing over sockets"
    );
}
