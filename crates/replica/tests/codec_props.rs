//! Property tests of the wire codec: `decode(encode(m)) == m` for every
//! message variant of every protocol family, and no panic on adversarial
//! input (truncation, oversized length prefixes, wrong version bytes,
//! random corruption).
//!
//! The nine protocols of the experiment matrix route four mempool wire
//! families — `NativeMsg` (N-HS, N-PBFT: consensus-only), `SmpMsg`
//! (SMP-HS, SMP-HS-G), `NarwhalMsg` (Narwhal, MirBFT data plane), and
//! `StratusMsg` (S-HS, S-PBFT, S-SL) — plus the `ShardedMsg` envelope any
//! of them ride in under a sharded deployment.  Each family gets its own
//! round-trip property below.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use smp_consensus::ConsensusMsg;
use smp_crypto::{Digest, QuorumProof, Signature};
use smp_mempool::{DagAck, DagBlock, DagMsg, DagParentRef, NarwhalMsg, NativeMsg, SmpMsg};
use smp_replica::wire::codec::{
    decode_frame, encode_frame, DecodeError, WireCodec, CODEC_VERSION, FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
};
use smp_replica::{MempoolWire, ReplicaMsg, ReplicaPayload, SyncMsg};
use smp_shard::ShardedMsg;
use smp_types::{
    BlockId, ClientId, Microblock, MicroblockId, MicroblockRef, Payload, Proposal, ReplicaId,
    Transaction, TxId, View,
};

// ---------------------------------------------------------------------
// Generators.
// ---------------------------------------------------------------------

fn arb_digest() -> impl Strategy<Value = Digest> {
    any::<[u64; 4]>().prop_map(Digest)
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (
        any::<u32>(),
        any::<u64>(),
        vec(any::<u8>(), 0..64),
        0usize..4096,
        any::<u64>(),
        proptest::option::of((any::<u64>(), any::<u32>())),
    )
        .prop_map(|(client, seq, payload, payload_len, created_at, stamp)| {
            let client = ClientId(client);
            Transaction {
                // The decoder re-derives the id; encode the canonical one.
                id: TxId::derive(client, seq),
                client,
                seq,
                payload: if payload.is_empty() {
                    Bytes::new()
                } else {
                    Bytes::from(payload)
                },
                payload_len,
                created_at,
                received_at: stamp.map(|(t, _)| t),
                entry_replica: stamp.map(|(_, r)| ReplicaId(r)),
            }
        })
}

fn arb_microblock() -> impl Strategy<Value = Microblock> {
    (
        any::<u32>(),
        vec(arb_tx(), 0..6),
        any::<u64>(),
        any::<u32>(),
    )
        .prop_map(|(creator, txs, created_at, diss)| {
            let mut mb = Microblock::seal(ReplicaId(creator), txs, created_at);
            mb.disseminator = ReplicaId(diss);
            mb
        })
}

fn arb_mb_id() -> impl Strategy<Value = MicroblockId> {
    arb_digest().prop_map(MicroblockId)
}

fn arb_signature() -> impl Strategy<Value = Signature> {
    (any::<u32>(), any::<u64>()).prop_map(|(signer, tag)| Signature { signer, tag })
}

/// Proofs in their canonical form (deduplicated by signer, sorted),
/// which is what `from_signatures` rebuilds on decode.
fn arb_proof() -> impl Strategy<Value = QuorumProof> {
    (arb_digest(), vec(arb_signature(), 0..8))
        .prop_map(|(digest, sigs)| QuorumProof::from_signatures(digest, sigs))
}

fn arb_mb_ref() -> impl Strategy<Value = MicroblockRef> {
    (
        arb_mb_id(),
        any::<u32>(),
        any::<u32>(),
        proptest::option::of(arb_proof()),
    )
        .prop_map(|(id, creator, tx_count, proof)| match proof {
            Some(p) => MicroblockRef::proven(id, ReplicaId(creator), tx_count, p),
            None => MicroblockRef::unproven(id, ReplicaId(creator), tx_count),
        })
}

/// A payload group a sharded payload may carry (no nesting).
fn arb_flat_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        Just(Payload::Empty),
        vec(arb_tx(), 0..4).prop_map(Payload::inline),
        vec(arb_mb_ref(), 0..4).prop_map(Payload::Refs),
    ]
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        arb_flat_payload(),
        vec((any::<u16>(), arb_flat_payload()), 0..3).prop_map(Payload::sharded),
    ]
}

fn arb_proposal() -> impl Strategy<Value = Proposal> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_digest(),
        any::<u32>(),
        arb_payload(),
        any::<bool>(),
    )
        .prop_map(|(view, height, parent, proposer, payload, qc)| {
            Proposal::new(
                View(view),
                height,
                BlockId(parent),
                ReplicaId(proposer),
                payload,
                qc,
            )
        })
}

fn arb_consensus() -> impl Strategy<Value = ConsensusMsg> {
    prop_oneof![
        arb_proposal().prop_map(ConsensusMsg::Propose),
        (any::<u64>(), arb_digest(), any::<u32>()).prop_map(|(v, b, r)| ConsensusMsg::Vote {
            view: View(v),
            block: BlockId(b),
            voter: ReplicaId(r),
        }),
        (any::<u64>(), arb_digest(), any::<u32>(), any::<u32>()).prop_map(|(v, b, r, i)| {
            ConsensusMsg::Prepare {
                view: View(v),
                block: BlockId(b),
                voter: ReplicaId(r),
                instance: ReplicaId(i),
            }
        }),
        (any::<u64>(), arb_digest(), any::<u32>(), any::<u32>()).prop_map(|(v, b, r, i)| {
            ConsensusMsg::Commit {
                view: View(v),
                block: BlockId(b),
                voter: ReplicaId(r),
                instance: ReplicaId(i),
            }
        }),
        (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(v, r, q)| ConsensusMsg::NewView {
            view: View(v),
            voter: ReplicaId(r),
            high_qc_view: View(q),
        }),
    ]
}

fn arb_smp() -> impl Strategy<Value = SmpMsg> {
    prop_oneof![
        arb_microblock().prop_map(SmpMsg::Microblock),
        (arb_microblock(), any::<u8>()).prop_map(|(mb, hops)| SmpMsg::Gossip { mb, hops }),
        vec(arb_mb_id(), 0..6).prop_map(|ids| SmpMsg::Fetch { ids }),
        vec(arb_microblock(), 0..3).prop_map(|mbs| SmpMsg::FetchResp { mbs }),
    ]
}

fn arb_narwhal() -> impl Strategy<Value = NarwhalMsg> {
    prop_oneof![
        arb_microblock().prop_map(NarwhalMsg::Batch),
        (arb_mb_id(), arb_signature()).prop_map(|(id, sig)| NarwhalMsg::Echo { id, sig }),
        (arb_mb_id(), arb_signature()).prop_map(|(id, sig)| NarwhalMsg::Ready { id, sig }),
        (arb_mb_id(), any::<u32>(), any::<u32>(), arb_proof()).prop_map(
            |(id, creator, tx_count, proof)| NarwhalMsg::Certificate {
                id,
                creator: ReplicaId(creator),
                tx_count,
                proof,
            }
        ),
        vec(arb_mb_id(), 0..6).prop_map(|ids| NarwhalMsg::Fetch { ids }),
        vec(arb_microblock(), 0..3).prop_map(|mbs| NarwhalMsg::FetchResp { mbs }),
    ]
}

/// DAG blocks as they appear on the wire: an optional batch, parent
/// references, piggybacked acks, and the creator signature.  The decoder
/// re-derives the batch id, so the generator seals canonically.
fn arb_dag_block() -> impl Strategy<Value = DagBlock> {
    (
        (any::<u32>(), any::<u64>(), any::<u64>()),
        proptest::option::of(arb_microblock()),
        vec((any::<u32>(), any::<u64>()), 0..5),
        vec((arb_mb_id(), arb_signature()), 0..5),
        arb_signature(),
    )
        .prop_map(
            |((creator, round, seq), batch, parents, acks, sig)| DagBlock {
                creator: ReplicaId(creator),
                round,
                seq,
                batch,
                parents: parents
                    .into_iter()
                    .map(|(c, r)| DagParentRef {
                        creator: ReplicaId(c),
                        round: r,
                    })
                    .collect(),
                acks: acks
                    .into_iter()
                    .map(|(id, sig)| DagAck { id, sig })
                    .collect(),
                sig,
            },
        )
}

fn arb_dag() -> impl Strategy<Value = DagMsg> {
    prop_oneof![
        arb_dag_block().prop_map(DagMsg::Block),
        vec(arb_mb_id(), 0..6).prop_map(|ids| DagMsg::Fetch { ids }),
        vec(arb_microblock(), 0..3).prop_map(|mbs| DagMsg::FetchResp { mbs }),
    ]
}

fn arb_stratus() -> impl Strategy<Value = StratusMsg> {
    prop_oneof![
        arb_microblock().prop_map(StratusMsg::PabMsg),
        (arb_mb_id(), arb_signature()).prop_map(|(id, sig)| StratusMsg::PabAck { id, sig }),
        (arb_mb_id(), arb_proof()).prop_map(|(id, proof)| StratusMsg::PabProof { id, proof }),
        vec(arb_mb_id(), 0..6).prop_map(|ids| StratusMsg::PabRequest { ids }),
        vec(arb_microblock(), 0..3).prop_map(|mbs| StratusMsg::PabResponse { mbs }),
        any::<u64>().prop_map(|token| StratusMsg::LbQuery { token }),
        (any::<u64>(), proptest::option::of(any::<u64>())).prop_map(|(token, st)| {
            StratusMsg::LbInfo {
                token,
                stable_time_us: st,
            }
        }),
        arb_microblock().prop_map(StratusMsg::LbForward),
    ]
}

use stratus::StratusMsg;

fn arb_replica_msg<MM>(
    mempool: impl Strategy<Value = MM> + 'static,
) -> impl Strategy<Value = ReplicaMsg<MM>>
where
    MM: MempoolWire + 'static,
{
    (
        prop_oneof![
            2 => arb_consensus().prop_map(Either::C),
            3 => mempool.prop_map(Either::M),
        ],
        any::<bool>(),
    )
        .prop_map(|(payload, priority)| match payload {
            Either::C(c) => ReplicaMsg::consensus(c, priority),
            Either::M(m) => ReplicaMsg::mempool(m, priority),
        })
}

#[derive(Debug)]
enum Either<MM> {
    C(ConsensusMsg),
    M(MM),
}

fn assert_round_trip<MM>(msg: &ReplicaMsg<MM>)
where
    MM: MempoolWire + WireCodec + PartialEq,
{
    let frame = encode_frame(msg);
    let (back, used) = decode_frame::<MM>(&frame).expect("valid frame must decode");
    assert_eq!(used, frame.len());
    assert_eq!(back.priority, msg.priority);
    match (&back.payload, &msg.payload) {
        (ReplicaPayload::Consensus(a), ReplicaPayload::Consensus(b)) => assert_eq!(a, b),
        (ReplicaPayload::Mempool(a), ReplicaPayload::Mempool(b)) => assert!(a == b),
        (ReplicaPayload::Sync(a), ReplicaPayload::Sync(b)) => assert_eq!(a, b),
        _ => panic!("message family changed in round trip"),
    }
}

/// Crash-recovery state-transfer messages: requests and bounded chunks
/// of committed transaction ids.
fn arb_sync() -> impl Strategy<Value = SyncMsg> {
    prop_oneof![
        any::<u64>().prop_map(|from_index| SyncMsg::Request { from_index }),
        (any::<u64>(), vec(arb_digest().prop_map(TxId), 0..32)).prop_map(
            |(from_index, entries)| SyncMsg::Response {
                from_index,
                entries,
            }
        ),
    ]
}

// ---------------------------------------------------------------------
// Round-trip properties, one per wire family.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    // `NativeMsg` is uninhabited (the native protocols have no mempool
    // traffic), so the native wire carries consensus frames only.
    fn native_frames_round_trip(c in arb_consensus(), priority in any::<bool>()) {
        assert_round_trip(&ReplicaMsg::<NativeMsg>::consensus(c, priority));
    }

    #[test]
    fn smp_frames_round_trip(msg in arb_replica_msg(arb_smp())) {
        assert_round_trip(&msg);
    }

    #[test]
    fn narwhal_frames_round_trip(msg in arb_replica_msg(arb_narwhal())) {
        assert_round_trip(&msg);
    }

    #[test]
    fn stratus_frames_round_trip(msg in arb_replica_msg(arb_stratus())) {
        assert_round_trip(&msg);
    }

    #[test]
    fn dag_frames_round_trip(msg in arb_replica_msg(arb_dag())) {
        assert_round_trip(&msg);
    }

    #[test]
    fn sharded_dag_frames_round_trip(
        msg in arb_replica_msg((any::<u16>(), arb_dag())
            .prop_map(|(s, m)| ShardedMsg::new(s, m)))
    ) {
        assert_round_trip(&msg);
    }

    #[test]
    fn sharded_stratus_frames_round_trip(
        msg in arb_replica_msg((any::<u16>(), arb_stratus())
            .prop_map(|(s, m)| ShardedMsg::new(s, m)))
    ) {
        assert_round_trip(&msg);
    }

    #[test]
    fn sharded_smp_frames_round_trip(
        msg in arb_replica_msg((any::<u16>(), arb_smp())
            .prop_map(|(s, m)| ShardedMsg::new(s, m)))
    ) {
        assert_round_trip(&msg);
    }

    // The `Sync` family is mempool-agnostic: the same recovery message
    // must round-trip under every wire parameterization, and requests
    // must keep their priority-lane flag through the codec.
    #[test]
    fn sync_frames_round_trip_under_every_family(msg in arb_sync()) {
        assert_round_trip(&ReplicaMsg::<NativeMsg>::sync(msg.clone()));
        assert_round_trip(&ReplicaMsg::<SmpMsg>::sync(msg.clone()));
        assert_round_trip(&ReplicaMsg::<StratusMsg>::sync(msg.clone()));
        let frame = encode_frame(&ReplicaMsg::<StratusMsg>::sync(msg.clone()));
        let (back, _) = decode_frame::<StratusMsg>(&frame).expect("sync frame decodes");
        prop_assert_eq!(back.priority, matches!(msg, SyncMsg::Request { .. }));
    }
}

// ---------------------------------------------------------------------
// Adversarial decode: malformed input errors, never panics.
// ---------------------------------------------------------------------

proptest! {
    // Arbitrary bytes never panic the decoder.
    #[test]
    fn garbage_never_panics(input in vec(any::<u8>(), 0..512)) {
        let _ = decode_frame::<StratusMsg>(&input);
        let _ = decode_frame::<ShardedMsg<StratusMsg>>(&input);
        let _ = decode_frame::<DagMsg>(&input);
        let _ = decode_frame::<ShardedMsg<DagMsg>>(&input);
    }

    // Any strict prefix of a valid DAG frame is `Truncated`, sharded or
    // not — hostile parent/ack length prefixes cannot over-read.
    #[test]
    fn truncated_dag_frames_are_rejected(
        msg in arb_replica_msg(arb_dag()),
        frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(&msg);
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assume!(cut < frame.len());
        prop_assert!(matches!(
            decode_frame::<DagMsg>(&frame[..cut]),
            Err(DecodeError::Truncated { .. })
        ));
        let sharded = encode_frame(&ReplicaMsg::mempool(
            ShardedMsg::new(3, match msg.payload {
                ReplicaPayload::Mempool(ref m) => m.clone(),
                _ => DagMsg::Fetch { ids: vec![] },
            }),
            msg.priority,
        ));
        let cut = ((sharded.len() as f64) * frac) as usize;
        prop_assume!(cut < sharded.len());
        prop_assert!(matches!(
            decode_frame::<ShardedMsg<DagMsg>>(&sharded[..cut]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    // Flipping any single byte of a DAG frame either still decodes or
    // errors; it never panics.
    #[test]
    fn corrupted_dag_frames_never_panic(
        msg in arb_replica_msg(arb_dag()),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&msg);
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= flip;
        let _ = decode_frame::<DagMsg>(&frame);
    }

    // A batch-presence byte other than 0/1 is a `BadTag`, not a panic or
    // a silent skip.
    #[test]
    fn bad_dag_batch_presence_tags_are_rejected(
        block in arb_dag_block(),
        bad in 2u8..=255,
    ) {
        let mut block = block;
        block.batch = None;
        let frame = encode_frame(&ReplicaMsg::mempool(DagMsg::Block(block), false));
        // Body layout: family tag, variant tag, creator u32, round u64,
        // seq u64, then the batch-presence byte.
        let pos = FRAME_HEADER_BYTES + 1 + 1 + 4 + 8 + 8;
        let mut frame = frame;
        frame[pos] = bad;
        prop_assert!(matches!(
            decode_frame::<DagMsg>(&frame),
            Err(DecodeError::BadTag { context: "DagBlock.batch", .. })
        ));
    }

    // Corrupting any byte of a sync frame either still decodes or
    // errors — recovery traffic from a byzantine peer never panics the
    // decoder, and truncated chunks are rejected as such.
    #[test]
    fn corrupted_sync_frames_never_panic(
        msg in arb_sync(),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&ReplicaMsg::<StratusMsg>::sync(msg));
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= flip;
        let _ = decode_frame::<StratusMsg>(&frame);
    }

    #[test]
    fn truncated_sync_frames_are_rejected(
        msg in arb_sync(),
        frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(&ReplicaMsg::<StratusMsg>::sync(msg));
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assume!(cut < frame.len());
        prop_assert!(matches!(
            decode_frame::<StratusMsg>(&frame[..cut]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    // Any strict prefix of a valid frame is `Truncated` — never a panic,
    // never a bogus success.
    #[test]
    fn truncated_frames_are_rejected(
        msg in arb_replica_msg(arb_stratus()),
        frac in 0.0f64..1.0,
    ) {
        let frame = encode_frame(&msg);
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assume!(cut < frame.len());
        prop_assert!(matches!(
            decode_frame::<StratusMsg>(&frame[..cut]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    // A length prefix beyond `MAX_FRAME_BYTES` is rejected before any
    // allocation or body read.
    #[test]
    fn oversized_length_prefixes_are_rejected(
        msg in arb_replica_msg(arb_stratus()),
        extra in 1u64..=(u32::MAX as u64 - MAX_FRAME_BYTES as u64),
    ) {
        let mut frame = encode_frame(&msg);
        let len = (MAX_FRAME_BYTES as u64 + extra) as u32;
        frame[6..10].copy_from_slice(&len.to_be_bytes());
        prop_assert!(matches!(
            decode_frame::<StratusMsg>(&frame),
            Err(DecodeError::OversizedFrame(_))
        ));
    }

    // Every version byte other than the current one is rejected.
    #[test]
    fn wrong_version_bytes_are_rejected(
        msg in arb_replica_msg(arb_stratus()),
        version in any::<u8>(),
    ) {
        prop_assume!(version != CODEC_VERSION);
        let mut frame = encode_frame(&msg);
        frame[4] = version;
        let err = decode_frame::<StratusMsg>(&frame).err();
        prop_assert_eq!(err, Some(DecodeError::BadVersion(version)));
    }

    // Flipping any single byte of a valid frame either still decodes
    // (the flip hit a don't-care bit of the payload) or errors — the
    // decoder never panics on corruption.
    #[test]
    fn single_byte_corruption_never_panics(
        msg in arb_replica_msg(arb_stratus()),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut frame = encode_frame(&msg);
        let pos = ((frame.len() as f64) * pos_frac) as usize % frame.len();
        frame[pos] ^= flip;
        let _ = decode_frame::<StratusMsg>(&frame);
    }

    // Appending trailing garbage to the body (with the length prefix
    // widened to match) is rejected as `TrailingBytes` or a tag error —
    // the decoder requires the body to be exactly consumed.
    #[test]
    fn padded_bodies_are_rejected(
        msg in arb_replica_msg(arb_stratus()),
        pad in vec(any::<u8>(), 1..16),
    ) {
        let mut frame = encode_frame(&msg);
        frame.extend_from_slice(&pad);
        let len = (frame.len() - FRAME_HEADER_BYTES) as u32;
        frame[6..10].copy_from_slice(&len.to_be_bytes());
        prop_assert!(decode_frame::<StratusMsg>(&frame).is_err());
    }
}
