//! `smp-net` — the real-socket runtime.
//!
//! `simnet` drives every [`Node`](simnet::Node) of a deployment inside
//! one process on a virtual clock.  This crate is the *second* runtime:
//! each process owns exactly one node, peers talk over real
//! `std::net` TCP on the loopback or a LAN, and timers run on
//! `std::time` wall-clock.  Protocol code is untouched — the same
//! `Replica`/`Mempool`/consensus state machines run under either
//! runtime, invoked through [`simnet::NodeDriver`] so their RNG streams
//! match the simulator's exactly.
//!
//! Design points, mirroring the paper's prototype transport:
//!
//! * **thread-per-peer I/O** — one reader thread per inbound connection,
//!   one writer thread per outbound connection (no async runtime; the
//!   image has no tokio),
//! * **two-lane outbound queues** — each writer drains a high-priority
//!   lane (consensus messages, the Stratus prioritization bit) before
//!   the bulk lane (microblocks, fetch responses),
//! * **length-prefixed frames** — byte encoding is supplied by the
//!   embedding crate through [`WireMsg`] (for replicas, the
//!   `smp-replica::wire::codec` module).  A frame whose *header* is
//!   malformed kills the connection (the stream cannot be resynced); a
//!   frame whose *body* fails to decode is counted by taxonomy and
//!   skipped — the length prefix keeps the stream aligned, so one
//!   garbage body never takes down an otherwise healthy connection.
//!
//! The runtime is instrumented throughout ([`stats::NetStats`]:
//! per-peer/per-lane counters, queue depths, handshake outcomes, decode
//! errors by taxonomy — all lock-free atomics) and each process can
//! expose a line-oriented admin socket ([`admin`]) answering `HEALTH`,
//! `METRICS`, `SERIES`, and `TRACE` for live introspection.
//!
//! Connections are *supervised*: a per-peer supervisor thread owns the
//! outbound connection and redials with deterministic exponential
//! backoff ([`backoff::BackoffPolicy`]) whenever it drops, bumping a
//! connection epoch each time it re-establishes.  While a peer is down,
//! outbound frames keep queueing up to [`DISCONNECTED_QUEUE_CAP`]; the
//! overflow is counted (`frames_dropped_disconnected`), never lost
//! silently, and a priority frame caught mid-write is requeued at the
//! front of its lane for the next epoch (`frames_requeued`).

pub mod admin;
pub mod backoff;
pub mod runtime;
pub mod stats;

use std::fmt;

pub use admin::{spawn_admin, AdminHandle, AdminState};
pub use backoff::BackoffPolicy;
pub use runtime::{ClusterSpec, NetReport, NetRuntime, DISCONNECTED_QUEUE_CAP};
pub use stats::{NetStats, PeerStats, DECODE_TAXONOMY, STALL_QUEUE_DEPTH};

/// Error raised while framing or deframing a message.
///
/// Deliberately *not* the codec's rich error enum: the concrete codec
/// lives in the crate that owns the message type; the runtime only needs
/// to know that a frame is bad, which taxonomy bucket the failure falls
/// into (so telemetry can count it — see [`DECODE_TAXONOMY`]), and the
/// human-readable detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Taxonomy label, ideally one of [`DECODE_TAXONOMY`] (anything else
    /// counts under `"other"`).
    pub kind: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// An error in the given taxonomy bucket.
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
        }
    }

    /// An error with no specific taxonomy.
    pub fn other(message: impl Into<String>) -> Self {
        WireError::new("other", message)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error [{}]: {}", self.kind, self.message)
    }
}

impl std::error::Error for WireError {}

/// A message type that can travel over a real socket.
///
/// Frames are `HEADER_BYTES` of fixed-size header followed by a body
/// whose length the header states.  The runtime reads exactly the
/// header, asks [`WireMsg::body_len`] how much more to read, then hands
/// header + body to [`WireMsg::decode`].  A [`WireMsg::body_len`] error
/// is terminal for the connection (the stream cannot be resynced); a
/// [`WireMsg::decode`] error is counted and the frame skipped — the
/// length prefix keeps the stream aligned.
pub trait WireMsg: simnet::SimMessage + Send + Sized + 'static {
    /// Fixed frame-header size in bytes.
    const HEADER_BYTES: usize;

    /// Encodes the full frame (header + body).
    fn encode(&self) -> Vec<u8>;

    /// Validates a header and returns the body length that follows it.
    fn body_len(header: &[u8]) -> Result<usize, WireError>;

    /// Decodes a message from a validated header and its complete body.
    fn decode(header: &[u8], body: &[u8]) -> Result<Self, WireError>;
}
