//! `smp-net` — the real-socket runtime.
//!
//! `simnet` drives every [`Node`](simnet::Node) of a deployment inside
//! one process on a virtual clock.  This crate is the *second* runtime:
//! each process owns exactly one node, peers talk over real
//! `std::net` TCP on the loopback or a LAN, and timers run on
//! `std::time` wall-clock.  Protocol code is untouched — the same
//! `Replica`/`Mempool`/consensus state machines run under either
//! runtime, invoked through [`simnet::NodeDriver`] so their RNG streams
//! match the simulator's exactly.
//!
//! Design points, mirroring the paper's prototype transport:
//!
//! * **thread-per-peer I/O** — one reader thread per inbound connection,
//!   one writer thread per outbound connection (no async runtime; the
//!   image has no tokio),
//! * **two-lane outbound queues** — each writer drains a high-priority
//!   lane (consensus messages, the Stratus prioritization bit) before
//!   the bulk lane (microblocks, fetch responses),
//! * **length-prefixed frames** — byte encoding is supplied by the
//!   embedding crate through [`WireMsg`] (for replicas, the
//!   `smp-replica::wire::codec` module), and malformed frames kill the
//!   connection rather than the process.

pub mod runtime;

use std::fmt;

pub use runtime::{ClusterSpec, NetReport, NetRuntime};

/// Error raised while framing or deframing a message.
///
/// Deliberately a plain string wrapper: the concrete codec (and its
/// richer error enum) lives in the crate that owns the message type;
/// the runtime only needs to know *that* a frame is bad, log it, and
/// drop the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

/// A message type that can travel over a real socket.
///
/// Frames are `HEADER_BYTES` of fixed-size header followed by a body
/// whose length the header states.  The runtime reads exactly the
/// header, asks [`WireMsg::body_len`] how much more to read, then hands
/// header + body to [`WireMsg::decode`].  Any error is terminal for the
/// connection (strict rejection — no resync scanning).
pub trait WireMsg: simnet::SimMessage + Send + Sized + 'static {
    /// Fixed frame-header size in bytes.
    const HEADER_BYTES: usize;

    /// Encodes the full frame (header + body).
    fn encode(&self) -> Vec<u8>;

    /// Validates a header and returns the body length that follows it.
    fn body_len(header: &[u8]) -> Result<usize, WireError>;

    /// Decodes a message from a validated header and its complete body.
    fn decode(header: &[u8], body: &[u8]) -> Result<Self, WireError>;
}
