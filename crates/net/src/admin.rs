//! Line-oriented TCP admin endpoint for live introspection.
//!
//! Each process can expose one admin socket.  A client connects, sends
//! one uppercase command per line, and receives one line back (JSON
//! documents are compact, single-line).  Commands:
//!
//! | command   | reply                                                  |
//! |-----------|--------------------------------------------------------|
//! | `HEALTH`  | `ok replica=<id> uptime_us=<n> spans=<n>` (plus `reconnects=`/`requeued=`/`dropped_disconnected=`/`backoff_ms=` when [`NetStats`](crate::NetStats) is attached) |
//! | `METRICS` | the metrics registry as compact JSON                   |
//! | `SERIES`  | the flight recorder's window series as compact JSON    |
//! | `TRACE`   | retained spans as a compact chrome://tracing document  |
//! | `QUIT`    | `bye`, then the connection closes                      |
//!
//! Anything else answers `err unknown command ...`.  The endpoint is an
//! observer only: it reads shared telemetry state, never the protocol's.
//! Before `METRICS`/`SERIES` it runs the state's refresh hook (which
//! typically mirrors [`NetStats`](crate::NetStats) atomics into the
//! registry) so replies reflect the counters as of the request.

use smp_telemetry::{FlightRecorder, Telemetry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Shared state the admin endpoint serves from.
#[derive(Clone)]
pub struct AdminState {
    /// This process's replica id (reported by `HEALTH`).
    pub replica: u32,
    /// The process's telemetry sink (`METRICS`, `TRACE`, uptime).
    pub telemetry: Telemetry,
    /// The flight recorder behind `SERIES`, when a sampler is attached.
    pub recorder: Option<Arc<Mutex<FlightRecorder>>>,
    /// Hook run before `METRICS`/`SERIES` replies, typically publishing
    /// lock-free counters into the registry.
    pub refresh: Option<Arc<dyn Fn() + Send + Sync>>,
    /// The socket runtime's counters; when attached, `HEALTH` appends
    /// reconnect/requeue/drop totals so a degraded peer is visible from
    /// one line mid-run.
    pub net: Option<Arc<crate::NetStats>>,
}

impl std::fmt::Debug for AdminState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminState")
            .field("replica", &self.replica)
            .field("recorder", &self.recorder.is_some())
            .field("refresh", &self.refresh.is_some())
            .finish()
    }
}

/// A running admin endpoint.  Dropping the handle stops it.
#[derive(Debug)]
pub struct AdminHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl AdminHandle {
    /// The endpoint's actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the listener and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

impl Drop for AdminHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves admin commands on a background thread until
/// the returned handle stops (or drops).
pub fn spawn_admin(addr: SocketAddr, state: AdminState) -> io::Result<AdminHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = thread::spawn(move || accept_admin(listener, state, stop2));
    Ok(AdminHandle {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn accept_admin(listener: TcpListener, state: AdminState, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Admin traffic is rare and tiny: serve clients one at a
                // time on the listener thread itself.
                serve_client(stream, &state, &stop).ok();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

fn serve_client(stream: TcpStream, state: &AdminState, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Bounded reads so a silent client cannot pin the endpoint past
    // shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        }
        let cmd = line.trim().to_ascii_uppercase();
        let reply = match cmd.as_str() {
            "" => continue,
            "HEALTH" => {
                let mut reply = format!(
                    "ok replica={} uptime_us={} spans={}",
                    state.replica,
                    state.telemetry.epoch_elapsed_us(),
                    state.telemetry.trace_len(),
                );
                if let Some(net) = &state.net {
                    reply.push_str(&format!(
                        " reconnects={} requeued={} dropped_disconnected={} backoff_ms={}",
                        net.reconnects_total(),
                        net.frames_requeued_total(),
                        net.frames_dropped_disconnected_total(),
                        net.backoff_ms_total(),
                    ));
                }
                reply
            }
            "METRICS" => {
                if let Some(refresh) = &state.refresh {
                    refresh();
                }
                state.telemetry.registry_json().to_compact()
            }
            "SERIES" => match &state.recorder {
                Some(recorder) => {
                    if let Some(refresh) = &state.refresh {
                        refresh();
                    }
                    recorder
                        .lock()
                        .expect("flight recorder poisoned")
                        .to_json()
                        .to_compact()
                }
                None => "err no flight recorder attached".to_string(),
            },
            "TRACE" => state.telemetry.trace_json().to_compact(),
            "QUIT" => {
                writer.write_all(b"bye\n")?;
                return Ok(());
            }
            other => format!("err unknown command {other}"),
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_telemetry::FlightRecorder;
    use std::io::BufRead;

    fn ask(addr: SocketAddr, cmd: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect admin");
        stream
            .write_all(format!("{cmd}\n").as_bytes())
            .expect("send command");
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .expect("read reply");
        reply.trim_end().to_string()
    }

    #[test]
    fn admin_answers_every_command() {
        let telemetry = Telemetry::wall_clock();
        telemetry.counter_add("net.peer.1.frames_in", 7);
        telemetry.instant("net.peer.1.up");
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(8, 1_000)));
        recorder
            .lock()
            .unwrap()
            .sample(telemetry.snapshot(), telemetry.epoch_elapsed_us());
        let refreshed = Arc::new(AtomicBool::new(false));
        let refreshed2 = Arc::clone(&refreshed);
        let net = Arc::new(crate::NetStats::new(2));
        net.record_reconnect(1);
        net.record_backoff(1, 12);
        let state = AdminState {
            replica: 3,
            telemetry,
            recorder: Some(recorder),
            refresh: Some(Arc::new(move || {
                refreshed2.store(true, Ordering::Relaxed);
            })),
            net: Some(net),
        };
        let mut admin =
            spawn_admin("127.0.0.1:0".parse().unwrap(), state).expect("spawn admin endpoint");
        let addr = admin.addr();

        let health = ask(addr, "health");
        assert!(
            health.starts_with("ok replica=3 uptime_us="),
            "unexpected HEALTH reply: {health}"
        );
        assert!(
            health.contains("reconnects=1") && health.contains("backoff_ms=12"),
            "HEALTH must surface net counters: {health}"
        );
        let metrics = ask(addr, "METRICS");
        assert!(metrics.contains("net.peer.1.frames_in"));
        assert!(
            refreshed.load(Ordering::Relaxed),
            "refresh hook did not run"
        );
        let series = ask(addr, "SERIES");
        assert!(series.contains("smp-flightrec-v1"));
        let trace = ask(addr, "TRACE");
        assert!(trace.contains("net.peer.1.up"));
        assert_eq!(ask(addr, "bogus"), "err unknown command BOGUS");

        // One connection can issue several commands, then QUIT.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"HEALTH\nQUIT\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut l1 = String::new();
        let mut l2 = String::new();
        reader.read_line(&mut l1).unwrap();
        reader.read_line(&mut l2).unwrap();
        assert!(l1.starts_with("ok replica=3"));
        assert_eq!(l2.trim_end(), "bye");

        admin.stop();
        assert!(TcpStream::connect(addr).is_err() || ask_fails(addr));
    }

    fn ask_fails(addr: SocketAddr) -> bool {
        // After stop the listener is gone; a racing connect may still
        // succeed in the kernel backlog but no reply ever arrives.
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return true;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        stream.write_all(b"HEALTH\n").ok();
        let mut reply = String::new();
        BufReader::new(stream).read_line(&mut reply).is_err() || reply.is_empty()
    }

    #[test]
    fn series_without_recorder_is_an_error_line() {
        let state = AdminState {
            replica: 0,
            telemetry: Telemetry::wall_clock(),
            recorder: None,
            refresh: None,
            net: None,
        };
        let admin =
            spawn_admin("127.0.0.1:0".parse().unwrap(), state).expect("spawn admin endpoint");
        assert_eq!(
            ask(admin.addr(), "SERIES"),
            "err no flight recorder attached"
        );
    }
}
