//! Deterministic exponential backoff for dials and reconnects.
//!
//! Both cluster formation and the steady-state reconnect supervisor
//! retry through this one policy, so a replica that restarts mid-run
//! redials its peers exactly the way the cluster first formed.  The
//! jitter is derived from `(seed, peer, attempt)` with a splitmix64
//! hash instead of a thread-local RNG: two runs with the same seed
//! back off identically, which keeps chaos runs reproducible and the
//! policy unit-testable without mocking time.

use std::time::Duration;

/// Exponential backoff with deterministic half-width jitter.
///
/// Attempt `k` waits between `min(base << k, cap) / 2` and
/// `min(base << k, cap)` milliseconds; where in that band is fixed by
/// hashing `(seed, peer, attempt)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// First-attempt delay ceiling, in milliseconds.
    pub base_ms: u64,
    /// Ceiling every attempt's delay is clamped to, in milliseconds.
    pub cap_ms: u64,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base_ms: 10,
            cap_ms: 1_000,
        }
    }
}

impl BackoffPolicy {
    /// The delay before retry number `attempt` (0-based) to `peer`.
    pub fn delay(&self, seed: u64, peer: u32, attempt: u32) -> Duration {
        let exp = self
            .base_ms
            .max(1)
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.cap_ms.max(1));
        // Jitter spans the upper half of the band: [exp/2, exp].
        let h = splitmix64(seed ^ ((u64::from(peer)) << 32) ^ u64::from(attempt));
        let jitter = h % (exp / 2 + 1);
        Duration::from_millis(exp - exp / 2 + jitter.min(exp / 2))
    }
}

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_per_inputs() {
        let p = BackoffPolicy::default();
        for attempt in 0u32..8 {
            assert_eq!(p.delay(42, 3, attempt), p.delay(42, 3, attempt));
        }
        // Different peers / seeds jitter differently somewhere in range.
        let distinct = (0u32..8).any(|a| p.delay(42, 3, a) != p.delay(43, 3, a));
        assert!(distinct, "seed must influence jitter");
    }

    #[test]
    fn delays_grow_exponentially_and_cap() {
        let p = BackoffPolicy {
            base_ms: 10,
            cap_ms: 200,
        };
        for attempt in 0u32..32 {
            let d = p.delay(7, 0, attempt);
            let exp = 10u64.saturating_mul(1 << attempt.min(20)).min(200);
            let lo = exp - exp / 2;
            assert!(
                d >= Duration::from_millis(lo) && d <= Duration::from_millis(exp),
                "attempt {attempt}: {d:?} outside [{lo}, {exp}] ms"
            );
        }
        // Past the cap, the band stops growing.
        assert!(p.delay(7, 0, 30) <= Duration::from_millis(200));
    }

    #[test]
    fn zero_base_is_clamped_not_a_panic() {
        let p = BackoffPolicy {
            base_ms: 0,
            cap_ms: 0,
        };
        let d = p.delay(0, 0, 0);
        assert!(d <= Duration::from_millis(1));
    }
}
