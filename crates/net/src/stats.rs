//! Lock-free runtime counters for the socket runtime.
//!
//! Reader threads, writer threads, and the main loop all record into
//! plain atomics — observation never takes a lock on a hot path, so
//! instrumentation cannot serialize I/O threads (and cannot perturb the
//! protocol: these counters feed telemetry only).  A publisher (the
//! flight-recorder sampler's pre-sample hook, the admin endpoint's
//! refresh, or the runtime's shutdown path) periodically mirrors the
//! totals into a [`Telemetry`] registry under `net.*` keys.

use smp_telemetry::Telemetry;
use std::sync::atomic::{AtomicU64, Ordering};

/// Taxonomy labels for wire decode failures, mirroring the codec's
/// `DecodeError` variants.  Unrecognized labels count under `"other"`.
pub const DECODE_TAXONOMY: &[&str] = &[
    "truncated",
    "bad_magic",
    "bad_version",
    "bad_flags",
    "oversized_frame",
    "bad_tag",
    "bad_bool",
    "trailing_bytes",
    "nested_shard_group",
    "other",
];

/// Outbound queue depth at which an enqueue counts as a stall (a
/// backpressure signal: the writer thread is not keeping up).
pub const STALL_QUEUE_DEPTH: u64 = 1_024;

/// Per-lane outbound counters.
#[derive(Debug, Default)]
pub struct LaneCounters {
    /// Frames enqueued on this lane.
    pub frames: AtomicU64,
    /// Payload bytes enqueued on this lane.
    pub bytes: AtomicU64,
}

/// Counters for one peer connection pair (inbound reader + outbound
/// writer).
#[derive(Debug, Default)]
pub struct PeerStats {
    /// Frames decoded from this peer.
    pub frames_in: AtomicU64,
    /// Bytes received from this peer (header + body).
    pub bytes_in: AtomicU64,
    /// Consensus-priority lane, outbound.
    pub out_high: LaneCounters,
    /// Bulk lane, outbound.
    pub out_bulk: LaneCounters,
    /// Frames currently queued to this peer (both lanes).
    pub queue_depth: AtomicU64,
    /// High-watermark of `queue_depth` over the run.
    pub queue_hwm: AtomicU64,
    /// Enqueues that found the queue at or above [`STALL_QUEUE_DEPTH`].
    pub enqueue_stalls: AtomicU64,
    /// Inbound connections accepted from this peer.
    pub connects: AtomicU64,
    /// Inbound connections lost (EOF or terminal decode error).
    pub disconnects: AtomicU64,
    /// Outbound connections re-established after the first epoch.
    pub reconnects: AtomicU64,
    /// Total milliseconds the supervisor spent backing off between
    /// dial attempts to this peer.
    pub backoff_ms: AtomicU64,
    /// Priority frames put back at the front of the lane after a
    /// mid-write connection failure.
    pub frames_requeued: AtomicU64,
    /// Frames dropped because the peer was disconnected and the
    /// bounded queue was full (or the run ended with the peer down).
    pub frames_dropped_disconnected: AtomicU64,
}

/// All socket-runtime counters for one process.
#[derive(Debug)]
pub struct NetStats {
    peers: Vec<PeerStats>,
    handshakes_ok: AtomicU64,
    handshakes_failed: AtomicU64,
    decode_errors: Vec<AtomicU64>,
}

impl NetStats {
    /// Counters for an `n`-replica deployment (the self slot stays zero).
    pub fn new(n: usize) -> Self {
        NetStats {
            peers: (0..n).map(|_| PeerStats::default()).collect(),
            handshakes_ok: AtomicU64::new(0),
            handshakes_failed: AtomicU64::new(0),
            decode_errors: DECODE_TAXONOMY.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The per-peer counters for replica `i` (None when out of range).
    pub fn peer(&self, i: usize) -> Option<&PeerStats> {
        self.peers.get(i)
    }

    /// Records a decoded inbound frame from peer `i`.
    pub fn record_in(&self, i: usize, bytes: usize) {
        if let Some(p) = self.peers.get(i) {
            p.frames_in.fetch_add(1, Ordering::Relaxed);
            p.bytes_in.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }

    /// Records a frame enqueued to peer `i` on the given lane, updating
    /// queue depth, high-watermark, and stall count.
    pub fn record_out(&self, i: usize, priority: bool, bytes: usize) {
        let Some(p) = self.peers.get(i) else { return };
        let lane = if priority { &p.out_high } else { &p.out_bulk };
        lane.frames.fetch_add(1, Ordering::Relaxed);
        lane.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let depth = p.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        p.queue_hwm.fetch_max(depth, Ordering::Relaxed);
        if depth >= STALL_QUEUE_DEPTH {
            p.enqueue_stalls.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the writer thread draining one frame for peer `i`.
    pub fn record_drain(&self, i: usize) {
        if let Some(p) = self.peers.get(i) {
            p.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Records an accepted inbound connection from peer `i`.
    pub fn record_connect(&self, i: usize) {
        self.handshakes_ok.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.peers.get(i) {
            p.connects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an inbound connection whose hello was rejected.
    pub fn record_handshake_failure(&self) {
        self.handshakes_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records losing the inbound connection from peer `i`.
    pub fn record_disconnect(&self, i: usize) {
        if let Some(p) = self.peers.get(i) {
            p.disconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the supervisor re-establishing peer `i`'s connection.
    pub fn record_reconnect(&self, i: usize) {
        if let Some(p) = self.peers.get(i) {
            p.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `ms` milliseconds of backoff before redialing peer `i`.
    pub fn record_backoff(&self, i: usize, ms: u64) {
        if let Some(p) = self.peers.get(i) {
            p.backoff_ms.fetch_add(ms, Ordering::Relaxed);
        }
    }

    /// Records a priority frame requeued after a failed write to peer
    /// `i` (the frame goes back on the queue, so depth is restored).
    pub fn record_requeue(&self, i: usize) {
        if let Some(p) = self.peers.get(i) {
            p.frames_requeued.fetch_add(1, Ordering::Relaxed);
            p.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records `count` frames dropped because peer `i` was disconnected
    /// and the bounded queue could not hold them.
    pub fn record_dropped_disconnected(&self, i: usize, count: u64) {
        if let Some(p) = self.peers.get(i) {
            p.frames_dropped_disconnected
                .fetch_add(count, Ordering::Relaxed);
        }
    }

    /// Total outbound reconnects across all peers.
    pub fn reconnects_total(&self) -> u64 {
        self.sum_peers(|p| &p.reconnects)
    }

    /// Total backoff milliseconds across all peers.
    pub fn backoff_ms_total(&self) -> u64 {
        self.sum_peers(|p| &p.backoff_ms)
    }

    /// Total requeued priority frames across all peers.
    pub fn frames_requeued_total(&self) -> u64 {
        self.sum_peers(|p| &p.frames_requeued)
    }

    /// Total frames dropped while disconnected across all peers.
    pub fn frames_dropped_disconnected_total(&self) -> u64 {
        self.sum_peers(|p| &p.frames_dropped_disconnected)
    }

    fn sum_peers(&self, f: impl Fn(&PeerStats) -> &AtomicU64) -> u64 {
        self.peers
            .iter()
            .map(|p| f(p).load(Ordering::Relaxed))
            .sum()
    }

    /// Counts a wire decode failure under its taxonomy label.
    pub fn record_decode_error(&self, kind: &str) {
        let slot = DECODE_TAXONOMY
            .iter()
            .position(|k| *k == kind)
            .unwrap_or(DECODE_TAXONOMY.len() - 1);
        self.decode_errors[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a decode-error count by taxonomy label.
    pub fn decode_error_count(&self, kind: &str) -> u64 {
        DECODE_TAXONOMY
            .iter()
            .position(|k| *k == kind)
            .map(|slot| self.decode_errors[slot].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total decode failures across the taxonomy.
    pub fn decode_errors_total(&self) -> u64 {
        self.decode_errors
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Mirrors every counter into `t` under `net.*` keys (prefix the
    /// handle to namespace them, e.g. `replica.3.net.peer.0.frames_in`).
    /// Totals are stored absolutely, so repeated publishes stay
    /// monotonic and flight-recorder windows diff to per-window deltas.
    pub fn publish(&self, t: &Telemetry) {
        if !t.is_enabled() {
            return;
        }
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        for (i, p) in self.peers.iter().enumerate() {
            // Skip silent slots (self, never-seen peers) to keep the
            // registry at the deployment's actual fan-out.
            if load(&p.frames_in) == 0
                && load(&p.out_high.frames) == 0
                && load(&p.out_bulk.frames) == 0
                && load(&p.connects) == 0
            {
                continue;
            }
            let key = |name: &str| format!("net.peer.{i}.{name}");
            t.counter_store(&key("frames_in"), load(&p.frames_in));
            t.counter_store(&key("bytes_in"), load(&p.bytes_in));
            t.counter_store(&key("out.high.frames"), load(&p.out_high.frames));
            t.counter_store(&key("out.high.bytes"), load(&p.out_high.bytes));
            t.counter_store(&key("out.bulk.frames"), load(&p.out_bulk.frames));
            t.counter_store(&key("out.bulk.bytes"), load(&p.out_bulk.bytes));
            t.gauge_set(&key("queue.depth"), load(&p.queue_depth) as f64);
            t.gauge_set(&key("queue.hwm"), load(&p.queue_hwm) as f64);
            t.counter_store(&key("enqueue_stalls"), load(&p.enqueue_stalls));
            t.counter_store(&key("connects"), load(&p.connects));
            t.counter_store(&key("disconnects"), load(&p.disconnects));
            t.counter_store(&key("reconnects"), load(&p.reconnects));
            t.counter_store(&key("backoff_ms"), load(&p.backoff_ms));
            t.counter_store(&key("frames_requeued"), load(&p.frames_requeued));
            t.counter_store(
                &key("frames_dropped_disconnected"),
                load(&p.frames_dropped_disconnected),
            );
        }
        t.counter_store("net.handshake.ok", load(&self.handshakes_ok));
        t.counter_store("net.handshake.failed", load(&self.handshakes_failed));
        for (kind, count) in DECODE_TAXONOMY.iter().zip(&self.decode_errors) {
            t.counter_store(&format!("net.decode_error.{kind}"), load(count));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_queue_depth_track_enqueue_and_drain() {
        let s = NetStats::new(3);
        s.record_out(1, true, 100);
        s.record_out(1, false, 50);
        s.record_out(1, false, 50);
        let p = s.peer(1).unwrap();
        assert_eq!(p.out_high.frames.load(Ordering::Relaxed), 1);
        assert_eq!(p.out_bulk.bytes.load(Ordering::Relaxed), 100);
        assert_eq!(p.queue_depth.load(Ordering::Relaxed), 3);
        assert_eq!(p.queue_hwm.load(Ordering::Relaxed), 3);
        s.record_drain(1);
        s.record_drain(1);
        assert_eq!(p.queue_depth.load(Ordering::Relaxed), 1);
        assert_eq!(p.queue_hwm.load(Ordering::Relaxed), 3, "hwm is sticky");
        // Out-of-range peers are ignored, never a panic.
        s.record_out(99, true, 1);
        s.record_in(99, 1);
        s.record_drain(99);
    }

    #[test]
    fn reconnect_counters_accumulate_and_total() {
        let s = NetStats::new(4);
        s.record_reconnect(1);
        s.record_reconnect(1);
        s.record_reconnect(2);
        s.record_backoff(1, 30);
        s.record_backoff(2, 15);
        s.record_out(1, true, 10);
        s.record_drain(1);
        s.record_requeue(1);
        s.record_dropped_disconnected(2, 3);
        assert_eq!(s.reconnects_total(), 3);
        assert_eq!(s.backoff_ms_total(), 45);
        assert_eq!(s.frames_requeued_total(), 1);
        assert_eq!(s.frames_dropped_disconnected_total(), 3);
        // A requeue restores the queue depth the drain removed.
        let p = s.peer(1).unwrap();
        assert_eq!(p.queue_depth.load(Ordering::Relaxed), 1);
        // Out-of-range peers never panic.
        s.record_reconnect(99);
        s.record_backoff(99, 1);
        s.record_requeue(99);
        s.record_dropped_disconnected(99, 1);

        let t = Telemetry::new();
        s.publish(&t);
        let snap = t.snapshot();
        assert_eq!(snap.counter("net.peer.1.reconnects"), Some(2));
        assert_eq!(snap.counter("net.peer.1.frames_requeued"), Some(1));
    }

    #[test]
    fn decode_errors_count_by_taxonomy_with_other_fallback() {
        let s = NetStats::new(2);
        s.record_decode_error("bad_magic");
        s.record_decode_error("bad_magic");
        s.record_decode_error("trailing_bytes");
        s.record_decode_error("no-such-kind");
        assert_eq!(s.decode_error_count("bad_magic"), 2);
        assert_eq!(s.decode_error_count("trailing_bytes"), 1);
        assert_eq!(s.decode_error_count("other"), 1);
        assert_eq!(s.decode_errors_total(), 4);
    }

    #[test]
    fn publish_mirrors_totals_into_telemetry() {
        let t = Telemetry::new();
        let s = NetStats::new(3);
        s.record_in(2, 64);
        s.record_out(2, true, 32);
        s.record_connect(2);
        s.record_decode_error("bad_bool");
        s.publish(&t.with_prefix("replica.0"));
        let snap = t.snapshot();
        assert_eq!(snap.counter("replica.0.net.peer.2.frames_in"), Some(1));
        assert_eq!(snap.counter("replica.0.net.peer.2.bytes_in"), Some(64));
        assert_eq!(
            snap.counter("replica.0.net.peer.2.out.high.frames"),
            Some(1)
        );
        assert_eq!(snap.counter("replica.0.net.decode_error.bad_bool"), Some(1));
        assert_eq!(snap.counter("replica.0.net.handshake.ok"), Some(1));
        // Peer 1 never spoke: no keys for it.
        assert_eq!(snap.counter("replica.0.net.peer.1.frames_in"), None);
        // Publishing again after more traffic stays monotonic.
        s.record_in(2, 64);
        s.publish(&t.with_prefix("replica.0"));
        assert_eq!(
            t.snapshot().counter("replica.0.net.peer.2.frames_in"),
            Some(2)
        );
    }
}
