//! The socket runtime: peer connections, two-lane writers, wall-clock
//! timers, and the main event loop driving one [`Node`].

use crate::stats::NetStats;
use crate::{WireError, WireMsg};
use simnet::{Node, NodeAction, NodeDriver, ObservationLog, Telemetry};
use smp_types::{ReplicaId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Live inbound connections with their reader threads, shared between
/// the accept loop and the shutdown path.
type ReaderRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Hello preamble exchanged once per connection: magic + dialer id.
const HELLO_MAGIC: [u8; 4] = *b"SMPH";
const HELLO_BYTES: usize = 8;

/// How the runtime finds its peers.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// This process's replica id.
    pub me: ReplicaId,
    /// Listen address of every replica, indexed by replica id.
    pub addrs: Vec<SocketAddr>,
    /// Deployment-wide seed (must match the reference simulation's).
    pub seed: u64,
    /// How long to keep retrying dials during cluster formation.
    pub connect_timeout: Duration,
}

impl ClusterSpec {
    /// A spec for replica `me` of the cluster at `addrs`.
    pub fn new(me: ReplicaId, addrs: Vec<SocketAddr>, seed: u64) -> Self {
        ClusterSpec {
            me,
            addrs,
            seed,
            connect_timeout: Duration::from_secs(10),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.addrs.len()
    }
}

/// What one runtime run produced.
#[derive(Debug)]
pub struct NetReport<N> {
    /// The node, after the run (extract metrics/commit logs from it).
    pub node: N,
    /// Every observation the node emitted, in emission order, stamped
    /// with wall-clock microseconds since the run's epoch.
    pub observations: ObservationLog,
    /// Frames received from peers.
    pub frames_in: u64,
    /// Frames enqueued to peers.
    pub frames_out: u64,
    /// Payload bytes received from peers.
    pub bytes_in: u64,
    /// Payload bytes enqueued to peers.
    pub bytes_out: u64,
    /// Wall-clock duration of the run, in microseconds.
    pub wall_us: u64,
    /// Per-peer connection/codec failures observed during the run.
    pub peer_errors: Vec<String>,
    /// Recoverable frame-body decode failures (the connection survived;
    /// the frame was counted by taxonomy and skipped).
    pub frame_errors: Vec<String>,
}

/// Two outbound lanes per peer: consensus-priority drains before bulk.
struct Lanes {
    high: VecDeque<Vec<u8>>,
    bulk: VecDeque<Vec<u8>>,
    closed: bool,
}

struct PeerTx {
    lanes: Mutex<Lanes>,
    cv: Condvar,
}

impl PeerTx {
    fn new() -> Self {
        PeerTx {
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn enqueue(&self, frame: Vec<u8>, priority: bool) {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        if lanes.closed {
            return;
        }
        if priority {
            lanes.high.push_back(frame);
        } else {
            lanes.bulk.push_back(frame);
        }
        self.cv.notify_one();
    }

    fn close(&self) {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        lanes.closed = true;
        self.cv.notify_one();
    }

    /// Blocks until a frame is available (priority lane first) or the
    /// queue is closed *and* fully drained.
    fn next(&self) -> Option<Vec<u8>> {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        loop {
            if let Some(f) = lanes.high.pop_front() {
                return Some(f);
            }
            if let Some(f) = lanes.bulk.pop_front() {
                return Some(f);
            }
            if lanes.closed {
                return None;
            }
            lanes = self.cv.wait(lanes).expect("writer lane poisoned");
        }
    }
}

/// Events flowing from the I/O threads into the main loop.
enum Ev<M> {
    PeerUp(ReplicaId),
    Msg {
        from: ReplicaId,
        msg: M,
        bytes: usize,
    },
    PeerGone {
        from: ReplicaId,
        error: Option<WireError>,
    },
    /// A frame body failed to decode but the stream stayed aligned.
    FrameError {
        from: ReplicaId,
        error: WireError,
    },
}

/// Drives one [`Node`] over real TCP connections and wall-clock timers.
pub struct NetRuntime<N: Node>
where
    N::Msg: WireMsg,
{
    driver: NodeDriver<N>,
    spec: ClusterSpec,
    telemetry: Telemetry,
    stats: Arc<NetStats>,
}

impl<N: Node> NetRuntime<N>
where
    N::Msg: WireMsg,
{
    /// Wraps `node` for the deployment described by `spec`.  The node's
    /// RNG stream is seeded exactly as the reference simulation would
    /// seed it ([`simnet::node_rng_seed`]).
    pub fn new(node: N, spec: ClusterSpec, telemetry: Telemetry) -> Self {
        let n = spec.n();
        assert!(
            spec.me.index() < n,
            "me={} out of range for {n} addresses",
            spec.me.0
        );
        let driver = NodeDriver::new(node, spec.me, n, spec.seed, telemetry.clone());
        NetRuntime {
            driver,
            spec,
            telemetry,
            stats: Arc::new(NetStats::new(n)),
        }
    }

    /// The runtime's lock-free counters.  Grab a handle before
    /// [`run`](NetRuntime::run) to publish or poll them concurrently
    /// (flight-recorder sampler, admin endpoint).
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Forms the cluster, runs the node for `horizon_us` wall-clock
    /// microseconds, shuts everything down cleanly, and reports.
    ///
    /// Cluster formation is a barrier: the node's `on_start` only runs
    /// once every outbound dial has succeeded *and* every peer's inbound
    /// connection has said hello, so no frames are lost to startup races.
    pub fn run(mut self, horizon_us: u64) -> io::Result<NetReport<N>> {
        let n = self.spec.n();
        let me = self.spec.me;
        let peers = n - 1;

        let listener = TcpListener::bind(self.spec.addrs[me.index()])?;
        listener.set_nonblocking(true)?;

        let (tx, rx) = mpsc::channel::<Ev<N::Msg>>();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: ReaderRegistry = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let readers = Arc::clone(&readers);
            let stats = Arc::clone(&self.stats);
            let deadline = Instant::now() + self.spec.connect_timeout;
            thread::spawn(move || {
                accept_loop::<N::Msg>(listener, n, tx, stop, readers, deadline, stats)
            })
        };

        // Dial every peer (retrying while it binds) and start its writer.
        let mut peer_txs: Vec<Option<Arc<PeerTx>>> = (0..n).map(|_| None).collect();
        let mut writer_handles = Vec::new();
        let mut writer_streams = Vec::new();
        for (i, slot) in peer_txs.iter_mut().enumerate() {
            if i == me.index() {
                continue;
            }
            let stream = dial(self.spec.addrs[i], self.spec.connect_timeout)?;
            stream.set_nodelay(true).ok();
            let mut hello = Vec::with_capacity(HELLO_BYTES);
            hello.extend_from_slice(&HELLO_MAGIC);
            hello.extend_from_slice(&me.0.to_be_bytes());
            let mut s = stream.try_clone()?;
            s.write_all(&hello)?;
            let peer_tx = Arc::new(PeerTx::new());
            *slot = Some(Arc::clone(&peer_tx));
            writer_streams.push(stream.try_clone()?);
            let stats = Arc::clone(&self.stats);
            writer_handles.push(thread::spawn(move || {
                writer_loop(stream, peer_tx, stats, i)
            }));
        }

        // Barrier: wait for all inbound hellos; buffer any early frames.
        let mut pending: VecDeque<(ReplicaId, N::Msg, usize)> = VecDeque::new();
        let mut peer_errors = Vec::new();
        let mut frame_errors = Vec::new();
        let mut up: HashSet<ReplicaId> = HashSet::new();
        let formation_deadline = Instant::now() + self.spec.connect_timeout;
        while up.len() < peers {
            let left = formation_deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                stop.store(true, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("cluster formation timed out: {}/{peers} peers up", up.len()),
                ));
            }
            match rx.recv_timeout(left) {
                Ok(Ev::PeerUp(from)) => {
                    self.telemetry.instant(format!("net.peer.{}.up", from.0));
                    up.insert(from);
                }
                Ok(Ev::Msg { from, msg, bytes }) => pending.push_back((from, msg, bytes)),
                Ok(Ev::PeerGone { from, error }) => {
                    // A clean EOF is a peer shutting down; only codec
                    // failures are errors.
                    self.telemetry.instant(format!("net.peer.{}.down", from.0));
                    if let Some(e) = error {
                        peer_errors.push(format!("peer {}: {e}", from.0));
                    }
                }
                Ok(Ev::FrameError { from, error }) => {
                    self.telemetry
                        .instant(format!("net.peer.{}.frame_error", from.0));
                    frame_errors.push(format!("peer {}: {error}", from.0));
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => unreachable!("main keeps a sender"),
            }
        }

        // The cluster is formed: start the clock and the node.
        let epoch = Instant::now();
        let mut st = RunState {
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            loopback: VecDeque::new(),
            observations: ObservationLog::new(),
            peer_txs,
            stats: Arc::clone(&self.stats),
            frames_in: 0,
            frames_out: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        let now0 = now_us(epoch);
        let actions = self.driver.start(now0);
        st.apply(actions);
        for (from, msg, bytes) in pending.drain(..) {
            st.frames_in += 1;
            st.bytes_in += bytes as u64;
            let now = now_us(epoch);
            let actions = self.driver.deliver(now, from, msg);
            st.apply(actions);
        }

        loop {
            // Self-sends first: they model the simulator's 1 µs loopback.
            while let Some((from, msg)) = st.loopback.pop_front() {
                let now = now_us(epoch);
                if now >= horizon_us {
                    break;
                }
                let actions = self.driver.deliver(now, from, msg);
                st.apply(actions);
            }
            let mut now = now_us(epoch);
            // Fire every due timer.
            while let Some(&Reverse((at, timer_id, tag))) = st.timers.peek() {
                if at > now || now >= horizon_us {
                    break;
                }
                st.timers.pop();
                if st.cancelled.remove(&timer_id) {
                    continue;
                }
                let actions = self.driver.timer(now, tag);
                st.apply(actions);
                now = now_us(epoch);
            }
            if now >= horizon_us {
                break;
            }
            if !st.loopback.is_empty() {
                continue;
            }
            let wake = st
                .timers
                .peek()
                .map(|&Reverse((at, _, _))| at)
                .unwrap_or(horizon_us)
                .min(horizon_us);
            let timeout = Duration::from_micros(wake.saturating_sub(now_us(epoch)));
            match rx.recv_timeout(timeout) {
                Ok(Ev::Msg { from, msg, bytes }) => {
                    st.frames_in += 1;
                    st.bytes_in += bytes as u64;
                    let now = now_us(epoch);
                    let actions = self.driver.deliver(now, from, msg);
                    st.apply(actions);
                }
                Ok(Ev::PeerGone { from, error }) => {
                    // A clean EOF is a peer shutting down; only codec
                    // failures are errors.
                    self.telemetry.instant(format!("net.peer.{}.down", from.0));
                    if let Some(e) = error {
                        peer_errors.push(format!("peer {}: {e}", from.0));
                    }
                }
                Ok(Ev::FrameError { from, error }) => {
                    self.telemetry
                        .instant(format!("net.peer.{}.frame_error", from.0));
                    frame_errors.push(format!("peer {}: {error}", from.0));
                }
                Ok(Ev::PeerUp(_)) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("main keeps a sender"),
            }
        }

        // Clean shutdown: stop accepting, flush and close writers, then
        // unblock and join readers.
        stop.store(true, Ordering::Relaxed);
        for peer_tx in st.peer_txs.iter().flatten() {
            peer_tx.close();
        }
        for h in writer_handles {
            h.join().map_err(|_| panicked("writer"))?;
        }
        for s in &writer_streams {
            s.shutdown(Shutdown::Both).ok();
        }
        accept_handle.join().map_err(|_| panicked("acceptor"))?;
        let readers = std::mem::take(&mut *readers.lock().expect("reader registry poisoned"));
        for (stream, handle) in readers {
            stream.shutdown(Shutdown::Both).ok();
            handle.join().map_err(|_| panicked("reader"))?;
        }
        drop(tx);

        // Final mirror of the lock-free counters into the registry, so
        // the post-run snapshot carries complete `net.*` totals even
        // when no sampler was attached.
        self.stats.publish(&self.telemetry);

        Ok(NetReport {
            node: self.driver.into_node(),
            observations: st.observations,
            frames_in: st.frames_in,
            frames_out: st.frames_out,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            wall_us: now_us(epoch),
            peer_errors,
            frame_errors,
        })
    }
}

/// Per-run mutable state the action applier needs.
struct RunState<M> {
    /// (fire-at, timer-id, tag), min-heap by fire time.
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled: HashSet<u64>,
    loopback: VecDeque<(ReplicaId, M)>,
    observations: ObservationLog,
    peer_txs: Vec<Option<Arc<PeerTx>>>,
    stats: Arc<NetStats>,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl<M: WireMsg> RunState<M> {
    fn apply(&mut self, actions: Vec<NodeAction<M>>) {
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    if to.index() >= self.peer_txs.len() {
                        continue;
                    }
                    match &self.peer_txs[to.index()] {
                        // `None` is this node itself: deliver locally.
                        None => self.loopback.push_back((to, msg)),
                        Some(peer_tx) => {
                            let priority = msg.high_priority();
                            let frame = msg.encode();
                            self.frames_out += 1;
                            self.bytes_out += frame.len() as u64;
                            self.stats.record_out(to.index(), priority, frame.len());
                            peer_tx.enqueue(frame, priority);
                        }
                    }
                }
                NodeAction::SetTimer { at, timer_id, tag } => {
                    self.timers.push(Reverse((at, timer_id, tag)));
                }
                NodeAction::CancelTimer { timer_id } => {
                    self.cancelled.insert(timer_id);
                }
                NodeAction::Observe(obs) => self.observations.push(obs),
            }
        }
    }
}

fn now_us(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

fn panicked(what: &str) -> io::Error {
    io::Error::other(format!("{what} thread panicked"))
}

fn dial(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("dialing {addr} timed out: {e}"),
                    ));
                }
                thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

fn accept_loop<M: WireMsg>(
    listener: TcpListener,
    n: usize,
    tx: Sender<Ev<M>>,
    stop: Arc<AtomicBool>,
    readers: ReaderRegistry,
    deadline: Instant,
    stats: Arc<NetStats>,
) {
    let expected = n - 1;
    let mut accepted = 0usize;
    while accepted < expected && !stop.load(Ordering::Relaxed) && Instant::now() < deadline {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_nodelay(true).ok();
                let Some(from) = read_hello(&stream) else {
                    stats.record_handshake_failure();
                    continue;
                };
                if from.index() >= n {
                    stats.record_handshake_failure();
                    continue;
                }
                accepted += 1;
                stats.record_connect(from.index());
                let clone = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let tx2 = tx.clone();
                let stats2 = Arc::clone(&stats);
                tx.send(Ev::PeerUp(from)).ok();
                let handle = thread::spawn(move || reader_loop(stream, from, tx2, stats2));
                readers
                    .lock()
                    .expect("reader registry poisoned")
                    .push((clone, handle));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn read_hello(mut stream: &TcpStream) -> Option<ReplicaId> {
    let mut hello = [0u8; HELLO_BYTES];
    stream.read_exact(&mut hello).ok()?;
    if hello[..4] != HELLO_MAGIC {
        return None;
    }
    Some(ReplicaId(u32::from_be_bytes([
        hello[4], hello[5], hello[6], hello[7],
    ])))
}

fn reader_loop<M: WireMsg>(
    mut stream: TcpStream,
    from: ReplicaId,
    tx: Sender<Ev<M>>,
    stats: Arc<NetStats>,
) {
    let mut header = vec![0u8; M::HEADER_BYTES];
    loop {
        if stream.read_exact(&mut header).is_err() {
            stats.record_disconnect(from.index());
            tx.send(Ev::PeerGone { from, error: None }).ok();
            return;
        }
        let body_len = match M::body_len(&header) {
            Ok(len) => len,
            Err(e) => {
                // A bad header leaves the stream unframed: terminal.
                stats.record_decode_error(e.kind);
                stats.record_disconnect(from.index());
                tx.send(Ev::PeerGone {
                    from,
                    error: Some(e),
                })
                .ok();
                return;
            }
        };
        let mut body = vec![0u8; body_len];
        if stream.read_exact(&mut body).is_err() {
            stats.record_disconnect(from.index());
            tx.send(Ev::PeerGone { from, error: None }).ok();
            return;
        }
        match M::decode(&header, &body) {
            Ok(msg) => {
                let bytes = M::HEADER_BYTES + body_len;
                stats.record_in(from.index(), bytes);
                if tx.send(Ev::Msg { from, msg, bytes }).is_err() {
                    return;
                }
            }
            Err(e) => {
                // The length prefix kept the stream aligned: count the
                // failure, skip the frame, keep the connection.
                stats.record_decode_error(e.kind);
                if tx.send(Ev::FrameError { from, error: e }).is_err() {
                    return;
                }
            }
        }
    }
}

fn writer_loop(mut stream: TcpStream, peer_tx: Arc<PeerTx>, stats: Arc<NetStats>, peer: usize) {
    while let Some(frame) = peer_tx.next() {
        stats.record_drain(peer);
        if stream.write_all(&frame).is_err() {
            return;
        }
    }
    stream.flush().ok();
    stream.shutdown(Shutdown::Write).ok();
}
