//! The socket runtime: peer connections, two-lane writers, wall-clock
//! timers, and the main event loop driving one [`Node`].
//!
//! Every outbound connection is owned by a *reconnect supervisor*: a
//! per-peer thread that dials with deterministic exponential backoff
//! ([`BackoffPolicy`]), pumps the two-lane queue while the connection
//! is healthy, and on a write failure bumps the connection epoch,
//! requeues the priority frame it was holding, and redials.  The accept
//! loop runs for the whole life of the process, so a peer that crashes
//! and restarts is re-admitted: its fresh hello replaces the dead
//! inbound connection and its own supervisor re-establishes the
//! outbound one.

use crate::backoff::BackoffPolicy;
use crate::stats::NetStats;
use crate::{WireError, WireMsg};
use simnet::{Node, NodeAction, NodeDriver, ObservationLog, Telemetry};
use smp_types::{ReplicaId, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Live inbound connections with their reader threads, shared between
/// the accept loop and the shutdown path.
type ReaderRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Hello preamble exchanged once per connection: magic + dialer id.
const HELLO_MAGIC: [u8; 4] = *b"SMPH";
const HELLO_BYTES: usize = 8;

/// Maximum frames a peer's outbound queue may hold while the peer is
/// disconnected.  Beyond this, new frames are dropped and counted
/// (`frames_dropped_disconnected`) — bounded loss instead of unbounded
/// memory while a peer is down for a long repair.
pub const DISCONNECTED_QUEUE_CAP: usize = 8_192;

/// How the runtime finds its peers.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// This process's replica id.
    pub me: ReplicaId,
    /// Listen address of every replica, indexed by replica id.
    pub addrs: Vec<SocketAddr>,
    /// Deployment-wide seed (must match the reference simulation's).
    pub seed: u64,
    /// How long cluster formation may take before the run fails.
    pub connect_timeout: Duration,
    /// Backoff policy shared by formation dials, steady-state
    /// reconnects, and listener re-binds after a crash-restart.
    pub backoff: BackoffPolicy,
}

impl ClusterSpec {
    /// A spec for replica `me` of the cluster at `addrs`.
    pub fn new(me: ReplicaId, addrs: Vec<SocketAddr>, seed: u64) -> Self {
        ClusterSpec {
            me,
            addrs,
            seed,
            connect_timeout: Duration::from_secs(10),
            backoff: BackoffPolicy::default(),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.addrs.len()
    }
}

/// What one runtime run produced.
#[derive(Debug)]
pub struct NetReport<N> {
    /// The node, after the run (extract metrics/commit logs from it).
    pub node: N,
    /// Every observation the node emitted, in emission order, stamped
    /// with wall-clock microseconds since the run's epoch.
    pub observations: ObservationLog,
    /// Frames received from peers.
    pub frames_in: u64,
    /// Frames enqueued to peers.
    pub frames_out: u64,
    /// Payload bytes received from peers.
    pub bytes_in: u64,
    /// Payload bytes enqueued to peers.
    pub bytes_out: u64,
    /// Wall-clock duration of the run, in microseconds.
    pub wall_us: u64,
    /// Per-peer connection/codec failures observed during the run.
    pub peer_errors: Vec<String>,
    /// Recoverable frame-body decode failures (the connection survived;
    /// the frame was counted by taxonomy and skipped).
    pub frame_errors: Vec<String>,
}

/// Two outbound lanes per peer: consensus-priority drains before bulk.
struct Lanes {
    high: VecDeque<Vec<u8>>,
    bulk: VecDeque<Vec<u8>>,
    closed: bool,
    /// Whether the supervisor currently holds a live connection.  While
    /// false, enqueues are bounded by [`DISCONNECTED_QUEUE_CAP`].
    connected: bool,
}

struct PeerTx {
    /// Index of the peer this queue feeds (for stats attribution).
    peer: usize,
    /// Queue-depth accounting happens under the lane mutex so the
    /// supervisor draining a frame can never observe a depth the
    /// enqueuer has not recorded yet.
    stats: Arc<NetStats>,
    lanes: Mutex<Lanes>,
    cv: Condvar,
}

impl PeerTx {
    fn new(peer: usize, stats: Arc<NetStats>) -> Self {
        PeerTx {
            peer,
            stats,
            lanes: Mutex::new(Lanes {
                high: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
                connected: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Queues a frame.  Returns `false` when the frame was dropped
    /// because the peer is disconnected and the queue is at cap (the
    /// caller counts it under `frames_dropped_disconnected`).
    fn enqueue(&self, frame: Vec<u8>, priority: bool) -> bool {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        if lanes.closed {
            return true;
        }
        if !lanes.connected && lanes.high.len() + lanes.bulk.len() >= DISCONNECTED_QUEUE_CAP {
            return false;
        }
        self.stats.record_out(self.peer, priority, frame.len());
        if priority {
            lanes.high.push_back(frame);
        } else {
            lanes.bulk.push_back(frame);
        }
        self.cv.notify_one();
        true
    }

    /// Puts an undelivered priority frame back at the front of its lane
    /// so it is first out on the next connection epoch.
    fn requeue_front(&self, frame: Vec<u8>) {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        self.stats.record_requeue(self.peer);
        lanes.high.push_front(frame);
        self.cv.notify_one();
    }

    fn set_connected(&self, connected: bool) {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        lanes.connected = connected;
    }

    fn close(&self) {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        lanes.closed = true;
        self.cv.notify_one();
    }

    /// Blocks until a frame is available (priority lane first) or the
    /// queue is closed *and* fully drained.  The flag says which lane
    /// the frame came from (true = priority).
    fn next(&self) -> Option<(Vec<u8>, bool)> {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        loop {
            if let Some(f) = lanes.high.pop_front() {
                self.stats.record_drain(self.peer);
                return Some((f, true));
            }
            if let Some(f) = lanes.bulk.pop_front() {
                self.stats.record_drain(self.peer);
                return Some((f, false));
            }
            if lanes.closed {
                return None;
            }
            lanes = self.cv.wait(lanes).expect("writer lane poisoned");
        }
    }

    /// Empties both lanes, returning how many frames were discarded.
    /// Used when the supervisor exits while the peer is unreachable.
    fn discard_all(&self) -> usize {
        let mut lanes = self.lanes.lock().expect("writer lane poisoned");
        let n = lanes.high.len() + lanes.bulk.len();
        for _ in 0..n {
            self.stats.record_drain(self.peer);
        }
        lanes.high.clear();
        lanes.bulk.clear();
        n
    }
}

/// Events flowing from the I/O threads into the main loop.
enum Ev<M> {
    PeerUp(ReplicaId),
    /// An outbound dial to a peer completed its hello.
    DialUp(ReplicaId),
    Msg {
        from: ReplicaId,
        msg: M,
        bytes: usize,
    },
    PeerGone {
        from: ReplicaId,
        error: Option<WireError>,
    },
    /// A frame body failed to decode but the stream stayed aligned.
    FrameError {
        from: ReplicaId,
        error: WireError,
    },
}

/// Drives one [`Node`] over real TCP connections and wall-clock timers.
pub struct NetRuntime<N: Node>
where
    N::Msg: WireMsg,
{
    driver: NodeDriver<N>,
    spec: ClusterSpec,
    telemetry: Telemetry,
    stats: Arc<NetStats>,
}

impl<N: Node> NetRuntime<N>
where
    N::Msg: WireMsg,
{
    /// Wraps `node` for the deployment described by `spec`.  The node's
    /// RNG stream is seeded exactly as the reference simulation would
    /// seed it ([`simnet::node_rng_seed`]).
    pub fn new(node: N, spec: ClusterSpec, telemetry: Telemetry) -> Self {
        let n = spec.n();
        assert!(
            spec.me.index() < n,
            "me={} out of range for {n} addresses",
            spec.me.0
        );
        let driver = NodeDriver::new(node, spec.me, n, spec.seed, telemetry.clone());
        NetRuntime {
            driver,
            spec,
            telemetry,
            stats: Arc::new(NetStats::new(n)),
        }
    }

    /// The runtime's lock-free counters.  Grab a handle before
    /// [`run`](NetRuntime::run) to publish or poll them concurrently
    /// (flight-recorder sampler, admin endpoint).
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Forms the cluster, runs the node for `horizon_us` wall-clock
    /// microseconds, shuts everything down cleanly, and reports.
    ///
    /// Cluster formation is a barrier: the node's `on_start` only runs
    /// once every outbound dial has said hello *and* every peer's
    /// inbound connection has said hello, so no frames are lost to
    /// startup races.
    pub fn run(mut self, horizon_us: u64) -> io::Result<NetReport<N>> {
        let n = self.spec.n();
        let me = self.spec.me;
        let peers = n - 1;

        // A restarted process may find its old sockets still draining in
        // the kernel; re-bind with the shared backoff policy instead of
        // failing the relaunch.
        let listener = bind_listener(
            self.spec.addrs[me.index()],
            &self.spec.backoff,
            self.spec.seed,
            me,
            self.spec.connect_timeout,
        )?;
        listener.set_nonblocking(true)?;

        let (tx, rx) = mpsc::channel::<Ev<N::Msg>>();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: ReaderRegistry = Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let readers = Arc::clone(&readers);
            let stats = Arc::clone(&self.stats);
            thread::spawn(move || accept_loop::<N::Msg>(listener, n, tx, stop, readers, stats))
        };

        // One reconnect supervisor per peer owns that peer's outbound
        // connection for the life of the run (formation dial and
        // steady-state redial are the same code path).
        let mut peer_txs: Vec<Option<Arc<PeerTx>>> = (0..n).map(|_| None).collect();
        let mut supervisor_handles = Vec::new();
        for (i, slot) in peer_txs.iter_mut().enumerate() {
            if i == me.index() {
                continue;
            }
            let peer_tx = Arc::new(PeerTx::new(i, Arc::clone(&self.stats)));
            *slot = Some(Arc::clone(&peer_tx));
            let addr = self.spec.addrs[i];
            let seed = self.spec.seed;
            let policy = self.spec.backoff;
            let stats = Arc::clone(&self.stats);
            let stop = Arc::clone(&stop);
            let events = tx.clone();
            supervisor_handles.push(thread::spawn(move || {
                supervisor_loop::<N::Msg>(i, addr, me, seed, policy, peer_tx, stats, stop, events)
            }));
        }

        // Barrier: wait until every dial and every inbound hello is in;
        // buffer any early frames.
        let mut pending: VecDeque<(ReplicaId, N::Msg, usize)> = VecDeque::new();
        let mut peer_errors = Vec::new();
        let mut frame_errors = Vec::new();
        let mut up: HashSet<ReplicaId> = HashSet::new();
        let mut dialed: HashSet<ReplicaId> = HashSet::new();
        let formation_deadline = Instant::now() + self.spec.connect_timeout;
        while up.len() < peers || dialed.len() < peers {
            let left = formation_deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                stop.store(true, Ordering::Relaxed);
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!(
                        "cluster formation timed out: {}/{peers} peers up, {}/{peers} dialed",
                        up.len(),
                        dialed.len()
                    ),
                ));
            }
            match rx.recv_timeout(left) {
                Ok(Ev::PeerUp(from)) => {
                    self.telemetry.instant(format!("net.peer.{}.up", from.0));
                    up.insert(from);
                }
                Ok(Ev::DialUp(to)) => {
                    dialed.insert(to);
                }
                Ok(Ev::Msg { from, msg, bytes }) => pending.push_back((from, msg, bytes)),
                Ok(Ev::PeerGone { from, error }) => {
                    // A clean EOF is a peer shutting down; only codec
                    // failures are errors.
                    self.telemetry.instant(format!("net.peer.{}.down", from.0));
                    if let Some(e) = error {
                        peer_errors.push(format!("peer {}: {e}", from.0));
                    }
                }
                Ok(Ev::FrameError { from, error }) => {
                    self.telemetry
                        .instant(format!("net.peer.{}.frame_error", from.0));
                    frame_errors.push(format!("peer {}: {error}", from.0));
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => unreachable!("main keeps a sender"),
            }
        }

        // The cluster is formed: start the clock and the node.
        let epoch = Instant::now();
        let mut st = RunState {
            timers: BinaryHeap::new(),
            cancelled: HashSet::new(),
            loopback: VecDeque::new(),
            observations: ObservationLog::new(),
            peer_txs,
            stats: Arc::clone(&self.stats),
            frames_in: 0,
            frames_out: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        let now0 = now_us(epoch);
        let actions = self.driver.start(now0);
        st.apply(actions);
        for (from, msg, bytes) in pending.drain(..) {
            st.frames_in += 1;
            st.bytes_in += bytes as u64;
            let now = now_us(epoch);
            let actions = self.driver.deliver(now, from, msg);
            st.apply(actions);
        }

        loop {
            // Self-sends first: they model the simulator's 1 µs loopback.
            while let Some((from, msg)) = st.loopback.pop_front() {
                let now = now_us(epoch);
                if now >= horizon_us {
                    break;
                }
                let actions = self.driver.deliver(now, from, msg);
                st.apply(actions);
            }
            let mut now = now_us(epoch);
            // Fire every due timer.
            while let Some(&Reverse((at, timer_id, tag))) = st.timers.peek() {
                if at > now || now >= horizon_us {
                    break;
                }
                st.timers.pop();
                if st.cancelled.remove(&timer_id) {
                    continue;
                }
                let actions = self.driver.timer(now, tag);
                st.apply(actions);
                now = now_us(epoch);
            }
            if now >= horizon_us {
                break;
            }
            if !st.loopback.is_empty() {
                continue;
            }
            let wake = st
                .timers
                .peek()
                .map(|&Reverse((at, _, _))| at)
                .unwrap_or(horizon_us)
                .min(horizon_us);
            let timeout = Duration::from_micros(wake.saturating_sub(now_us(epoch)));
            match rx.recv_timeout(timeout) {
                Ok(Ev::Msg { from, msg, bytes }) => {
                    st.frames_in += 1;
                    st.bytes_in += bytes as u64;
                    let now = now_us(epoch);
                    let actions = self.driver.deliver(now, from, msg);
                    st.apply(actions);
                }
                Ok(Ev::PeerGone { from, error }) => {
                    // A clean EOF is a peer shutting down; only codec
                    // failures are errors.
                    self.telemetry.instant(format!("net.peer.{}.down", from.0));
                    if let Some(e) = error {
                        peer_errors.push(format!("peer {}: {e}", from.0));
                    }
                }
                Ok(Ev::FrameError { from, error }) => {
                    self.telemetry
                        .instant(format!("net.peer.{}.frame_error", from.0));
                    frame_errors.push(format!("peer {}: {error}", from.0));
                }
                Ok(Ev::PeerUp(from)) => {
                    // A peer reconnected mid-run (crash-restart).
                    self.telemetry.instant(format!("net.peer.{}.up", from.0));
                }
                Ok(Ev::DialUp(to)) => {
                    self.telemetry.instant(format!("net.peer.{}.redial", to.0));
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => unreachable!("main keeps a sender"),
            }
        }

        // Clean shutdown: stop accepting, flush and close supervisors,
        // then unblock and join readers.
        stop.store(true, Ordering::Relaxed);
        for peer_tx in st.peer_txs.iter().flatten() {
            peer_tx.close();
        }
        for h in supervisor_handles {
            h.join().map_err(|_| panicked("supervisor"))?;
        }
        accept_handle.join().map_err(|_| panicked("acceptor"))?;
        let readers = std::mem::take(&mut *readers.lock().expect("reader registry poisoned"));
        for (stream, handle) in readers {
            stream.shutdown(Shutdown::Both).ok();
            handle.join().map_err(|_| panicked("reader"))?;
        }
        drop(tx);

        // Final mirror of the lock-free counters into the registry, so
        // the post-run snapshot carries complete `net.*` totals even
        // when no sampler was attached.
        self.stats.publish(&self.telemetry);

        Ok(NetReport {
            node: self.driver.into_node(),
            observations: st.observations,
            frames_in: st.frames_in,
            frames_out: st.frames_out,
            bytes_in: st.bytes_in,
            bytes_out: st.bytes_out,
            wall_us: now_us(epoch),
            peer_errors,
            frame_errors,
        })
    }
}

/// Per-run mutable state the action applier needs.
struct RunState<M> {
    /// (fire-at, timer-id, tag), min-heap by fire time.
    timers: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    cancelled: HashSet<u64>,
    loopback: VecDeque<(ReplicaId, M)>,
    observations: ObservationLog,
    peer_txs: Vec<Option<Arc<PeerTx>>>,
    stats: Arc<NetStats>,
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl<M: WireMsg> RunState<M> {
    fn apply(&mut self, actions: Vec<NodeAction<M>>) {
        for action in actions {
            match action {
                NodeAction::Send { to, msg } => {
                    if to.index() >= self.peer_txs.len() {
                        continue;
                    }
                    match &self.peer_txs[to.index()] {
                        // `None` is this node itself: deliver locally.
                        None => self.loopback.push_back((to, msg)),
                        Some(peer_tx) => {
                            let priority = msg.high_priority();
                            let frame = msg.encode();
                            let len = frame.len();
                            // The queue records lane/depth counters itself
                            // (under its lock, racing drains stay exact).
                            if peer_tx.enqueue(frame, priority) {
                                self.frames_out += 1;
                                self.bytes_out += len as u64;
                            } else {
                                self.stats.record_dropped_disconnected(to.index(), 1);
                            }
                        }
                    }
                }
                NodeAction::SetTimer { at, timer_id, tag } => {
                    self.timers.push(Reverse((at, timer_id, tag)));
                }
                NodeAction::CancelTimer { timer_id } => {
                    self.cancelled.insert(timer_id);
                }
                NodeAction::Observe(obs) => self.observations.push(obs),
            }
        }
    }
}

fn now_us(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

fn panicked(what: &str) -> io::Error {
    io::Error::other(format!("{what} thread panicked"))
}

/// Binds the listen socket, retrying with backoff while the address is
/// busy (a freshly restarted replica racing its predecessor's sockets).
fn bind_listener(
    addr: SocketAddr,
    policy: &BackoffPolicy,
    seed: u64,
    me: ReplicaId,
    timeout: Duration,
) -> io::Result<TcpListener> {
    let deadline = Instant::now() + timeout;
    let mut attempt = 0u32;
    loop {
        match TcpListener::bind(addr) {
            Ok(l) => return Ok(l),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        format!("binding {addr} timed out: {e}"),
                    ));
                }
                thread::sleep(policy.delay(seed, me.0, attempt));
                attempt += 1;
            }
        }
    }
}

/// Sleeps `total` in small slices, returning early once `stop` is set.
fn sleep_interruptible(total: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        thread::sleep(left.min(Duration::from_millis(10)));
    }
}

/// Owns one peer's outbound connection for the life of the run: dial
/// with backoff, say hello, pump frames; on failure, requeue and redial.
#[allow(clippy::too_many_arguments)]
fn supervisor_loop<M>(
    peer: usize,
    addr: SocketAddr,
    me: ReplicaId,
    seed: u64,
    policy: BackoffPolicy,
    peer_tx: Arc<PeerTx>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
    events: Sender<Ev<M>>,
) {
    let mut epoch = 0u64;
    'connect: loop {
        // Dial until the peer answers, backing off deterministically.
        let mut attempt = 0u32;
        let mut stream = loop {
            if stop.load(Ordering::Relaxed) {
                let lost = peer_tx.discard_all();
                if lost > 0 {
                    stats.record_dropped_disconnected(peer, lost as u64);
                }
                return;
            }
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(_) => {
                    let delay = policy.delay(seed, peer as u32, attempt);
                    stats.record_backoff(peer, delay.as_millis() as u64);
                    sleep_interruptible(delay, &stop);
                    attempt += 1;
                }
            }
        };
        stream.set_nodelay(true).ok();
        let mut hello = Vec::with_capacity(HELLO_BYTES);
        hello.extend_from_slice(&HELLO_MAGIC);
        hello.extend_from_slice(&me.0.to_be_bytes());
        if stream.write_all(&hello).is_err() {
            let delay = policy.delay(seed, peer as u32, attempt);
            stats.record_backoff(peer, delay.as_millis() as u64);
            sleep_interruptible(delay, &stop);
            continue 'connect;
        }
        epoch += 1;
        if epoch > 1 {
            stats.record_reconnect(peer);
        }
        peer_tx.set_connected(true);
        events.send(Ev::DialUp(ReplicaId(peer as u32))).ok();

        // Pump until the queue closes (shutdown) or the write fails.
        while let Some((frame, priority)) = peer_tx.next() {
            if stream.write_all(&frame).is_err() {
                peer_tx.set_connected(false);
                if priority {
                    // First out on the next epoch; the requeue depth is
                    // bounded by DISCONNECTED_QUEUE_CAP like any other
                    // disconnected enqueue.
                    peer_tx.requeue_front(frame);
                } else {
                    stats.record_dropped_disconnected(peer, 1);
                }
                continue 'connect;
            }
        }
        stream.flush().ok();
        stream.shutdown(Shutdown::Both).ok();
        return;
    }
}

fn accept_loop<M: WireMsg>(
    listener: TcpListener,
    n: usize,
    tx: Sender<Ev<M>>,
    stop: Arc<AtomicBool>,
    readers: ReaderRegistry,
    stats: Arc<NetStats>,
) {
    // Runs for the whole life of the process: a peer that crashes and
    // restarts is re-admitted through a fresh hello, not locked out.
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).ok();
                stream.set_nodelay(true).ok();
                let Some(from) = read_hello(&stream) else {
                    stats.record_handshake_failure();
                    continue;
                };
                if from.index() >= n {
                    stats.record_handshake_failure();
                    continue;
                }
                stats.record_connect(from.index());
                let clone = match stream.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let tx2 = tx.clone();
                let stats2 = Arc::clone(&stats);
                tx.send(Ev::PeerUp(from)).ok();
                let handle = thread::spawn(move || reader_loop(stream, from, tx2, stats2));
                readers
                    .lock()
                    .expect("reader registry poisoned")
                    .push((clone, handle));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn read_hello(mut stream: &TcpStream) -> Option<ReplicaId> {
    let mut hello = [0u8; HELLO_BYTES];
    stream.read_exact(&mut hello).ok()?;
    if hello[..4] != HELLO_MAGIC {
        return None;
    }
    Some(ReplicaId(u32::from_be_bytes([
        hello[4], hello[5], hello[6], hello[7],
    ])))
}

fn reader_loop<M: WireMsg>(
    mut stream: TcpStream,
    from: ReplicaId,
    tx: Sender<Ev<M>>,
    stats: Arc<NetStats>,
) {
    let mut header = vec![0u8; M::HEADER_BYTES];
    loop {
        if stream.read_exact(&mut header).is_err() {
            stats.record_disconnect(from.index());
            tx.send(Ev::PeerGone { from, error: None }).ok();
            return;
        }
        let body_len = match M::body_len(&header) {
            Ok(len) => len,
            Err(e) => {
                // A bad header leaves the stream unframed: terminal.
                // Shut the socket down (not just this fd — the accept
                // registry holds a clone) so the peer sees the hangup
                // now rather than at end-of-run cleanup.
                stats.record_decode_error(e.kind);
                stats.record_disconnect(from.index());
                stream.shutdown(Shutdown::Both).ok();
                tx.send(Ev::PeerGone {
                    from,
                    error: Some(e),
                })
                .ok();
                return;
            }
        };
        let mut body = vec![0u8; body_len];
        if stream.read_exact(&mut body).is_err() {
            stats.record_disconnect(from.index());
            tx.send(Ev::PeerGone { from, error: None }).ok();
            return;
        }
        match M::decode(&header, &body) {
            Ok(msg) => {
                let bytes = M::HEADER_BYTES + body_len;
                stats.record_in(from.index(), bytes);
                if tx.send(Ev::Msg { from, msg, bytes }).is_err() {
                    return;
                }
            }
            Err(e) => {
                // The length prefix kept the stream aligned: count the
                // failure, skip the frame, keep the connection.
                stats.record_decode_error(e.kind);
                if tx.send(Ev::FrameError { from, error: e }).is_err() {
                    return;
                }
            }
        }
    }
}
