//! In-process loopback exercises of the socket runtime: three runtimes
//! on ephemeral ports, real frames, real timers, clean shutdown.

use simnet::{Node, NodeCtx, ObsKind, SimMessage, Telemetry, TimerTag};
use smp_net::{ClusterSpec, NetRuntime, WireError, WireMsg};
use smp_types::ReplicaId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// Toy wire message: `[magic, priority, u32 value]`, 6-byte header, no body.
#[derive(Clone, Debug, PartialEq)]
struct Tok {
    value: u32,
    priority: bool,
}

impl SimMessage for Tok {
    fn wire_size(&self) -> usize {
        6
    }
    fn kind(&self) -> &'static str {
        "tok"
    }
    fn high_priority(&self) -> bool {
        self.priority
    }
}

impl WireMsg for Tok {
    const HEADER_BYTES: usize = 6;

    fn encode(&self) -> Vec<u8> {
        let mut f = vec![0xA5, self.priority as u8];
        f.extend_from_slice(&self.value.to_be_bytes());
        f
    }

    fn body_len(header: &[u8]) -> Result<usize, WireError> {
        if header[0] != 0xA5 {
            return Err(WireError::new(
                "bad_magic",
                format!("bad magic 0x{:02x}", header[0]),
            ));
        }
        Ok(0)
    }

    fn decode(header: &[u8], _body: &[u8]) -> Result<Self, WireError> {
        let priority = match header[1] {
            0 => false,
            1 => true,
            b => return Err(WireError::new("bad_bool", format!("bad priority byte {b}"))),
        };
        Ok(Tok {
            value: u32::from_be_bytes([header[2], header[3], header[4], header[5]]),
            priority,
        })
    }
}

/// Passes an incrementing token around the ring `rounds` times, then
/// reports the final value through an observation.
struct Ring {
    rounds: u32,
    seen: Vec<u32>,
}

impl Node for Ring {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
        if ctx.id() == ReplicaId(0) {
            ctx.send(
                ReplicaId(1),
                Tok {
                    value: 1,
                    priority: true,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, msg: Tok) {
        self.seen.push(msg.value);
        let next = ReplicaId((ctx.id().0 + 1) % ctx.n() as u32);
        if msg.value < self.rounds * ctx.n() as u32 {
            ctx.send(
                next,
                Tok {
                    value: msg.value + 1,
                    priority: msg.value.is_multiple_of(2),
                },
            );
        } else {
            ctx.observe(ObsKind::Custom {
                label: "ring.done".into(),
                value: msg.value as f64,
            });
        }
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _tag: TimerTag) {}
}

/// Reserves `n` distinct loopback ports by briefly binding them.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

#[test]
fn token_ring_over_real_sockets() {
    let n = 3;
    let rounds = 5u32;
    let addrs = free_addrs(n);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let spec = ClusterSpec::new(ReplicaId(i as u32), addrs.clone(), 42);
            thread::spawn(move || {
                let node = Ring {
                    rounds,
                    seen: Vec::new(),
                };
                NetRuntime::new(node, spec, Telemetry::disabled())
                    .run(2_000_000)
                    .expect("runtime run")
            })
        })
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect();

    // Every hop was delivered exactly once, in ring order.
    let total: usize = reports.iter().map(|r| r.node.seen.len()).sum();
    assert_eq!(total, (rounds * n as u32) as usize);
    for (i, r) in reports.iter().enumerate() {
        for (k, v) in r.node.seen.iter().enumerate() {
            let expect = if i == 0 {
                (k as u32 + 1) * n as u32
            } else {
                i as u32 + k as u32 * n as u32
            };
            assert_eq!(*v, expect, "replica {i} hop {k}");
        }
    }
    // The final holder observed completion with a wall-clock timestamp.
    let done: Vec<_> = reports
        .iter()
        .flat_map(|r| r.observations.entries())
        .filter(|o| matches!(&o.kind, ObsKind::Custom { label, .. } if label == "ring.done"))
        .collect();
    assert_eq!(done.len(), 1);
    assert_eq!(reports[0].frames_out, rounds as u64);
}

/// A node whose timer cadence generates work: checks real timers fire
/// repeatedly and cancellation holds.
struct Ticker {
    fired: Vec<TimerTag>,
}

impl Node for Ticker {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
        ctx.set_timer(5_000, 1);
        let doomed = ctx.set_timer(8_000, 99);
        ctx.cancel_timer(doomed);
    }

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, _msg: Tok) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Tok>, tag: TimerTag) {
        self.fired.push(tag);
        if self.fired.len() < 4 {
            ctx.set_timer(5_000, tag + 1);
        }
    }
}

#[test]
fn wall_clock_timers_fire_and_cancel() {
    let addrs = free_addrs(1);
    let spec = ClusterSpec::new(ReplicaId(0), addrs, 7);
    let report = NetRuntime::new(Ticker { fired: Vec::new() }, spec, Telemetry::disabled())
        .run(200_000)
        .expect("single-node run");
    assert_eq!(report.node.fired, vec![1, 2, 3, 4]);
    assert!(report.wall_us >= 200_000);
}

/// Records every value it receives; sends nothing.
struct Collector {
    seen: Vec<u32>,
}

impl Node for Collector {
    type Msg = Tok;

    fn on_start(&mut self, _ctx: &mut NodeCtx<'_, Tok>) {}

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, msg: Tok) {
        self.seen.push(msg.value);
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _tag: TimerTag) {}
}

/// A garbage frame *body* must not take the connection down: the frame
/// is counted by taxonomy and skipped, and later frames still arrive.
/// The test impersonates replica 1 over a raw socket so it can write
/// bytes no honest codec would produce.
#[test]
fn garbage_frame_body_is_counted_and_survived() {
    let addrs = free_addrs(2);
    // Stand in for replica 1: bind its listen address so replica 0's
    // dial succeeds, and speak the hello protocol by hand.
    let fake_peer = TcpListener::bind(addrs[1]).expect("bind fake peer");

    let telemetry = Telemetry::wall_clock();
    let spec = ClusterSpec::new(ReplicaId(0), addrs.clone(), 11);
    let rt = NetRuntime::new(Collector { seen: Vec::new() }, spec, telemetry.clone());
    let stats = rt.stats();
    let runtime = thread::spawn(move || rt.run(600_000).expect("runtime run"));

    // Accept replica 0's outbound dial and read its hello.
    let (mut from_zero, _) = fake_peer.accept().expect("accept dial from replica 0");
    let mut hello = [0u8; 8];
    from_zero.read_exact(&mut hello).expect("read hello");
    assert_eq!(&hello[..4], b"SMPH");
    assert_eq!(
        u32::from_be_bytes([hello[4], hello[5], hello[6], hello[7]]),
        0
    );

    // Dial replica 0, introduce ourselves as replica 1, then send a
    // valid frame, a frame with a valid header but garbage body
    // (priority byte 7), and another valid frame.
    let mut to_zero = TcpStream::connect(addrs[0]).expect("dial replica 0");
    let mut hello = Vec::from(*b"SMPH");
    hello.extend_from_slice(&1u32.to_be_bytes());
    to_zero.write_all(&hello).expect("send hello");
    to_zero
        .write_all(
            &Tok {
                value: 10,
                priority: false,
            }
            .encode(),
        )
        .expect("send first frame");
    to_zero
        .write_all(&[0xA5, 7, 0, 0, 0, 99])
        .expect("send garbage frame");
    to_zero
        .write_all(
            &Tok {
                value: 11,
                priority: true,
            }
            .encode(),
        )
        .expect("send second frame");
    to_zero.flush().expect("flush frames");

    let report = runtime.join().expect("runtime thread");

    // The connection survived: both valid frames were delivered, in
    // order, around the skipped garbage.
    assert_eq!(report.node.seen, vec![10, 11]);
    assert_eq!(report.frames_in, 2);
    // The failure was counted by taxonomy and surfaced in the report…
    assert_eq!(stats.decode_error_count("bad_bool"), 1);
    assert_eq!(stats.decode_errors_total(), 1);
    assert_eq!(report.frame_errors.len(), 1);
    assert!(
        report.frame_errors[0].contains("bad_bool"),
        "frame error missing taxonomy: {}",
        report.frame_errors[0]
    );
    // …but was not a peer error (those are terminal).
    assert!(report.peer_errors.is_empty(), "{:?}", report.peer_errors);
    // The shutdown publish mirrored the counter into telemetry.
    assert_eq!(
        telemetry.snapshot().counter("net.decode_error.bad_bool"),
        Some(1)
    );
    drop(from_zero);
}

/// Sends an incrementing priority token to replica 1 every 5 ms, forever
/// — a steady write load that surfaces a dead connection quickly.
struct Chatter {
    sent: u32,
}

impl Node for Chatter {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
        ctx.set_timer(5_000, 1);
    }

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, _msg: Tok) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Tok>, _tag: TimerTag) {
        self.sent += 1;
        ctx.send(
            ReplicaId(1),
            Tok {
                value: self.sent,
                priority: true,
            },
        );
        ctx.set_timer(5_000, 1);
    }
}

/// A peer that hangs up mid-stream is a clean disconnect, not a protocol
/// failure: the supervisor backs off, redials with a fresh hello, and
/// the failed priority write is requeued so traffic resumes without
/// loss on the new epoch.
#[test]
fn supervisor_redials_after_peer_drops_the_connection() {
    let addrs = free_addrs(2);
    let fake_peer = TcpListener::bind(addrs[1]).expect("bind fake peer");

    let spec = ClusterSpec::new(ReplicaId(0), addrs.clone(), 17);
    let rt = NetRuntime::new(Chatter { sent: 0 }, spec, Telemetry::disabled());
    let stats = rt.stats();
    let runtime = thread::spawn(move || rt.run(1_500_000).expect("runtime run"));

    // First epoch: accept replica 0's dial, complete formation by
    // dialing back with our own hello, read one frame, then hang up.
    let (mut conn1, _) = fake_peer.accept().expect("accept dial #1");
    let mut hello = [0u8; 8];
    conn1.read_exact(&mut hello).expect("read hello #1");
    assert_eq!(&hello[..4], b"SMPH");
    let mut to_zero = TcpStream::connect(addrs[0]).expect("dial replica 0");
    let mut my_hello = Vec::from(*b"SMPH");
    my_hello.extend_from_slice(&1u32.to_be_bytes());
    to_zero.write_all(&my_hello).expect("send hello");

    let mut frame = [0u8; 6];
    conn1.read_exact(&mut frame).expect("read pre-drop frame");
    drop(conn1);

    // Second epoch: the supervisor redials — a fresh hello arrives and
    // the token stream resumes on the new connection.
    let (mut conn2, _) = fake_peer.accept().expect("accept redial");
    conn2.read_exact(&mut hello).expect("read hello #2");
    assert_eq!(&hello[..4], b"SMPH");
    assert_eq!(
        u32::from_be_bytes([hello[4], hello[5], hello[6], hello[7]]),
        0
    );
    conn2
        .read_exact(&mut frame)
        .expect("read post-reconnect frame");
    let resumed = Tok::decode(&frame, &[]).expect("post-reconnect frame decodes");
    assert!(resumed.value >= 1);

    let report = runtime.join().expect("runtime thread");
    assert!(report.peer_errors.is_empty(), "{:?}", report.peer_errors);
    assert!(report.frame_errors.is_empty(), "{:?}", report.frame_errors);
    assert!(stats.reconnects_total() >= 1, "no reconnect recorded");
    assert!(
        stats.frames_requeued_total() >= 1,
        "failed priority write was not requeued"
    );
    let peer = stats.peer(1).unwrap();
    assert!(peer.disconnects.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    drop(to_zero);
}

/// A peer whose stream turns to garbage is dropped, but the accept loop
/// keeps re-admitting fresh hellos: every reconnect epoch gets a clean
/// framing state, and the decode taxonomy accumulates across epochs.
#[test]
fn garbage_across_reconnect_epochs_accumulates_taxonomy() {
    let addrs = free_addrs(2);
    let fake_peer = TcpListener::bind(addrs[1]).expect("bind fake peer");

    let spec = ClusterSpec::new(ReplicaId(0), addrs.clone(), 19);
    let rt = NetRuntime::new(Collector { seen: Vec::new() }, spec, Telemetry::disabled());
    let stats = rt.stats();
    let runtime = thread::spawn(move || rt.run(900_000).expect("runtime run"));

    let (mut from_zero, _) = fake_peer.accept().expect("accept dial from replica 0");
    let mut hello = [0u8; 8];
    from_zero.read_exact(&mut hello).expect("read hello");

    let dial = || {
        // Replica 0's listener may still be coming up; retry like a
        // real peer's supervisor would.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut s = loop {
            match TcpStream::connect(addrs[0]) {
                Ok(s) => break s,
                Err(_) if std::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("dial replica 0: {e}"),
            }
        };
        let mut h = Vec::from(*b"SMPH");
        h.extend_from_slice(&1u32.to_be_bytes());
        s.write_all(&h).expect("send hello");
        s
    };

    // Two epochs of terminal garbage: each kills its connection, and
    // the runtime proves it by closing the stream on us.
    for epoch in 0..2u8 {
        let mut s = dial();
        s.write_all(&[0xFF, 0, 0, 0, 0, epoch])
            .expect("send garbage header");
        s.flush().unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut probe = [0u8; 1];
        assert_eq!(
            s.read(&mut probe).expect("peer closed the stream"),
            0,
            "runtime kept a connection after a terminal header"
        );
    }

    // Third epoch: an honest frame still gets through.
    let mut s = dial();
    s.write_all(
        &Tok {
            value: 42,
            priority: false,
        }
        .encode(),
    )
    .expect("send honest frame");
    s.flush().unwrap();

    let report = runtime.join().expect("runtime thread");
    assert_eq!(report.node.seen, vec![42]);
    assert_eq!(stats.decode_error_count("bad_magic"), 2);
    assert_eq!(report.peer_errors.len(), 2, "{:?}", report.peer_errors);
    assert!(report.peer_errors.iter().all(|e| e.contains("bad_magic")));
    let disconnects = stats
        .peer(1)
        .unwrap()
        .disconnects
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        disconnects >= 2,
        "expected >=2 disconnects, got {disconnects}"
    );
    drop(from_zero);
    drop(s);
}

/// A garbage frame *header* is terminal: the stream cannot be resynced,
/// so the connection drops and the failure lands in `peer_errors`.
#[test]
fn garbage_frame_header_kills_the_connection() {
    let addrs = free_addrs(2);
    let fake_peer = TcpListener::bind(addrs[1]).expect("bind fake peer");

    let spec = ClusterSpec::new(ReplicaId(0), addrs.clone(), 13);
    let rt = NetRuntime::new(Collector { seen: Vec::new() }, spec, Telemetry::disabled());
    let stats = rt.stats();
    let runtime = thread::spawn(move || rt.run(400_000).expect("runtime run"));

    let (mut from_zero, _) = fake_peer.accept().expect("accept dial from replica 0");
    let mut hello = [0u8; 8];
    from_zero.read_exact(&mut hello).expect("read hello");

    let mut to_zero = TcpStream::connect(addrs[0]).expect("dial replica 0");
    let mut hello = Vec::from(*b"SMPH");
    hello.extend_from_slice(&1u32.to_be_bytes());
    to_zero.write_all(&hello).expect("send hello");
    to_zero
        .write_all(
            &Tok {
                value: 5,
                priority: false,
            }
            .encode(),
        )
        .expect("send valid frame");
    // Bad magic in the header position: terminal.
    to_zero
        .write_all(&[0xFF, 0, 0, 0, 0, 1])
        .expect("send garbage header");
    to_zero.flush().expect("flush");
    // Give the reader a moment, then prove the runtime hung up on us.
    to_zero
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut probe = [0u8; 1];
    assert_eq!(
        to_zero.read(&mut probe).expect("peer closed the stream"),
        0,
        "runtime kept a connection with an unframed stream"
    );

    let report = runtime.join().expect("runtime thread");
    assert_eq!(report.node.seen, vec![5]);
    assert_eq!(stats.decode_error_count("bad_magic"), 1);
    assert_eq!(report.peer_errors.len(), 1);
    assert!(report.peer_errors[0].contains("bad_magic"));
    assert!(report.frame_errors.is_empty());
    let disconnects = stats
        .peer(1)
        .unwrap()
        .disconnects
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(disconnects, 1);
    drop(from_zero);
}
