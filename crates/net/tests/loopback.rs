//! In-process loopback exercises of the socket runtime: three runtimes
//! on ephemeral ports, real frames, real timers, clean shutdown.

use simnet::{Node, NodeCtx, ObsKind, SimMessage, Telemetry, TimerTag};
use smp_net::{ClusterSpec, NetRuntime, WireError, WireMsg};
use smp_types::ReplicaId;
use std::net::{SocketAddr, TcpListener};
use std::thread;

/// Toy wire message: `[magic, priority, u32 value]`, 6-byte header, no body.
#[derive(Clone, Debug, PartialEq)]
struct Tok {
    value: u32,
    priority: bool,
}

impl SimMessage for Tok {
    fn wire_size(&self) -> usize {
        6
    }
    fn kind(&self) -> &'static str {
        "tok"
    }
    fn high_priority(&self) -> bool {
        self.priority
    }
}

impl WireMsg for Tok {
    const HEADER_BYTES: usize = 6;

    fn encode(&self) -> Vec<u8> {
        let mut f = vec![0xA5, self.priority as u8];
        f.extend_from_slice(&self.value.to_be_bytes());
        f
    }

    fn body_len(header: &[u8]) -> Result<usize, WireError> {
        if header[0] != 0xA5 {
            return Err(WireError(format!("bad magic 0x{:02x}", header[0])));
        }
        Ok(0)
    }

    fn decode(header: &[u8], _body: &[u8]) -> Result<Self, WireError> {
        let priority = match header[1] {
            0 => false,
            1 => true,
            b => return Err(WireError(format!("bad priority byte {b}"))),
        };
        Ok(Tok {
            value: u32::from_be_bytes([header[2], header[3], header[4], header[5]]),
            priority,
        })
    }
}

/// Passes an incrementing token around the ring `rounds` times, then
/// reports the final value through an observation.
struct Ring {
    rounds: u32,
    seen: Vec<u32>,
}

impl Node for Ring {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
        if ctx.id() == ReplicaId(0) {
            ctx.send(
                ReplicaId(1),
                Tok {
                    value: 1,
                    priority: true,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, msg: Tok) {
        self.seen.push(msg.value);
        let next = ReplicaId((ctx.id().0 + 1) % ctx.n() as u32);
        if msg.value < self.rounds * ctx.n() as u32 {
            ctx.send(
                next,
                Tok {
                    value: msg.value + 1,
                    priority: msg.value.is_multiple_of(2),
                },
            );
        } else {
            ctx.observe(ObsKind::Custom {
                label: "ring.done".into(),
                value: msg.value as f64,
            });
        }
    }

    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _tag: TimerTag) {}
}

/// Reserves `n` distinct loopback ports by briefly binding them.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

#[test]
fn token_ring_over_real_sockets() {
    let n = 3;
    let rounds = 5u32;
    let addrs = free_addrs(n);
    let handles: Vec<_> = (0..n)
        .map(|i| {
            let spec = ClusterSpec::new(ReplicaId(i as u32), addrs.clone(), 42);
            thread::spawn(move || {
                let node = Ring {
                    rounds,
                    seen: Vec::new(),
                };
                NetRuntime::new(node, spec, Telemetry::disabled())
                    .run(2_000_000)
                    .expect("runtime run")
            })
        })
        .collect();
    let reports: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("replica thread"))
        .collect();

    // Every hop was delivered exactly once, in ring order.
    let total: usize = reports.iter().map(|r| r.node.seen.len()).sum();
    assert_eq!(total, (rounds * n as u32) as usize);
    for (i, r) in reports.iter().enumerate() {
        for (k, v) in r.node.seen.iter().enumerate() {
            let expect = if i == 0 {
                (k as u32 + 1) * n as u32
            } else {
                i as u32 + k as u32 * n as u32
            };
            assert_eq!(*v, expect, "replica {i} hop {k}");
        }
    }
    // The final holder observed completion with a wall-clock timestamp.
    let done: Vec<_> = reports
        .iter()
        .flat_map(|r| r.observations.entries())
        .filter(|o| matches!(&o.kind, ObsKind::Custom { label, .. } if label == "ring.done"))
        .collect();
    assert_eq!(done.len(), 1);
    assert_eq!(reports[0].frames_out, rounds as u64);
}

/// A node whose timer cadence generates work: checks real timers fire
/// repeatedly and cancellation holds.
struct Ticker {
    fired: Vec<TimerTag>,
}

impl Node for Ticker {
    type Msg = Tok;

    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
        ctx.set_timer(5_000, 1);
        let doomed = ctx.set_timer(8_000, 99);
        ctx.cancel_timer(doomed);
    }

    fn on_message(&mut self, _ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, _msg: Tok) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Tok>, tag: TimerTag) {
        self.fired.push(tag);
        if self.fired.len() < 4 {
            ctx.set_timer(5_000, tag + 1);
        }
    }
}

#[test]
fn wall_clock_timers_fire_and_cancel() {
    let addrs = free_addrs(1);
    let spec = ClusterSpec::new(ReplicaId(0), addrs, 7);
    let report = NetRuntime::new(Ticker { fired: Vec::new() }, spec, Telemetry::disabled())
        .run(200_000)
        .expect("single-node run");
    assert_eq!(report.node.fired, vec![1, 2, 3, 4]);
    assert!(report.wall_us >= 200_000);
}
