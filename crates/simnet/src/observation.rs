//! Observations: lightweight events emitted by nodes for time-series
//! analysis (throughput over time, view changes, microblock stability).

use serde::Serialize;
use smp_types::{ReplicaId, SimTime, MICROS_PER_SEC};
use std::borrow::Cow;

/// What happened.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum ObsKind {
    /// A block committed on this replica ordering `txs` transactions.
    Committed {
        /// Number of transactions in the committed block.
        txs: u32,
        /// Sum of commit latencies (microseconds) over those transactions
        /// whose reception time is known on this replica.
        latency_sum_us: u64,
        /// Number of transactions contributing to `latency_sum_us`.
        latency_count: u32,
    },
    /// A view change (pacemaker timeout / leader replacement) started.
    ViewChange {
        /// The view being abandoned.
        view: u64,
    },
    /// A microblock this replica disseminated became provably available.
    MicroblockStable {
        /// Time from broadcast to stability (microseconds).
        stable_time_us: u64,
    },
    /// A fetch for missing microblocks was issued while filling a proposal.
    MissingFetch {
        /// Number of microblocks that had to be fetched.
        count: u32,
    },
    /// Free-form metric.
    Custom {
        /// Label identifying the metric.  `Cow` so dynamically-named
        /// labels (e.g. per-shard `"shard.3.carry"`) don't need to leak
        /// a `&'static str`.
        label: Cow<'static, str>,
        /// Value.
        value: f64,
    },
}

/// A timestamped observation from one node.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Observation {
    /// Simulated time of the observation.
    pub time: SimTime,
    /// Node that emitted it.
    pub node: ReplicaId,
    /// What happened.
    pub kind: ObsKind,
}

/// An append-only log of observations with aggregation helpers.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct ObservationLog {
    entries: Vec<Observation>,
}

impl ObservationLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ObservationLog {
            entries: Vec::new(),
        }
    }

    /// Appends an observation.
    pub fn push(&mut self, obs: Observation) {
        self.entries.push(obs);
    }

    /// All recorded observations, in emission order.
    pub fn entries(&self) -> &[Observation] {
        &self.entries
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total transactions committed on `node` (or on all nodes if `None`).
    pub fn committed_txs(&self, node: Option<ReplicaId>) -> u64 {
        self.entries
            .iter()
            .filter(|o| node.is_none_or(|n| o.node == n))
            .map(|o| match o.kind {
                ObsKind::Committed { txs, .. } => txs as u64,
                _ => 0,
            })
            .sum()
    }

    /// Number of view changes observed on `node` (or all nodes).
    pub fn view_changes(&self, node: Option<ReplicaId>) -> u64 {
        self.entries
            .iter()
            .filter(|o| node.is_none_or(|n| o.node == n))
            .filter(|o| matches!(o.kind, ObsKind::ViewChange { .. }))
            .count() as u64
    }

    /// Throughput time series for `node`: committed transactions per
    /// second, bucketed into `bucket_us`-wide bins covering `[0, horizon)`.
    pub fn throughput_series(
        &self,
        node: ReplicaId,
        bucket_us: SimTime,
        horizon: SimTime,
    ) -> Vec<f64> {
        assert!(bucket_us > 0, "bucket width must be positive");
        let buckets = horizon.div_ceil(bucket_us) as usize;
        let mut counts = vec![0u64; buckets];
        for o in &self.entries {
            if o.node != node || o.time >= horizon {
                continue;
            }
            if let ObsKind::Committed { txs, .. } = o.kind {
                counts[(o.time / bucket_us) as usize] += txs as u64;
            }
        }
        let scale = MICROS_PER_SEC as f64 / bucket_us as f64;
        counts.into_iter().map(|c| c as f64 * scale).collect()
    }

    /// Mean commit latency (milliseconds) over every `Committed`
    /// observation on `node` (or all nodes).
    pub fn mean_commit_latency_ms(&self, node: Option<ReplicaId>) -> Option<f64> {
        let (mut sum, mut count) = (0u64, 0u64);
        for o in &self.entries {
            if node.is_some_and(|n| o.node != n) {
                continue;
            }
            if let ObsKind::Committed {
                latency_sum_us,
                latency_count,
                ..
            } = o.kind
            {
                sum += latency_sum_us;
                count += latency_count as u64;
            }
        }
        (count > 0).then(|| sum as f64 / count as f64 / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(node: u32, time: SimTime, txs: u32) -> Observation {
        Observation {
            time,
            node: ReplicaId(node),
            kind: ObsKind::Committed {
                txs,
                latency_sum_us: txs as u64 * 1000,
                latency_count: txs,
            },
        }
    }

    #[test]
    fn committed_txs_filters_by_node() {
        let mut log = ObservationLog::new();
        log.push(committed(0, 10, 100));
        log.push(committed(1, 20, 50));
        assert_eq!(log.committed_txs(None), 150);
        assert_eq!(log.committed_txs(Some(ReplicaId(0))), 100);
        assert_eq!(log.committed_txs(Some(ReplicaId(2))), 0);
    }

    #[test]
    fn throughput_series_buckets_commits() {
        let mut log = ObservationLog::new();
        log.push(committed(0, 100_000, 10));
        log.push(committed(0, 900_000, 20));
        log.push(committed(0, 1_100_000, 40));
        let series = log.throughput_series(ReplicaId(0), MICROS_PER_SEC, 2 * MICROS_PER_SEC);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], 30.0);
        assert_eq!(series[1], 40.0);
    }

    #[test]
    fn view_changes_are_counted() {
        let mut log = ObservationLog::new();
        log.push(Observation {
            time: 5,
            node: ReplicaId(0),
            kind: ObsKind::ViewChange { view: 1 },
        });
        log.push(Observation {
            time: 9,
            node: ReplicaId(1),
            kind: ObsKind::ViewChange { view: 2 },
        });
        assert_eq!(log.view_changes(None), 2);
        assert_eq!(log.view_changes(Some(ReplicaId(1))), 1);
    }

    #[test]
    fn mean_latency_uses_weighted_sum() {
        let mut log = ObservationLog::new();
        log.push(committed(0, 10, 4)); // 4 txs at 1 ms each
        assert_eq!(log.mean_commit_latency_ms(None), Some(1.0));
        assert_eq!(log.mean_commit_latency_ms(Some(ReplicaId(3))), None);
    }

    #[test]
    fn empty_log_reports_empty() {
        let log = ObservationLog::new();
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
        assert_eq!(log.mean_commit_latency_ms(None), None);
    }
}
