//! A standalone single-node driver for alternative runtimes.
//!
//! [`Simulation`](crate::Simulation) owns every node of a deployment and
//! advances a virtual clock.  A *real* runtime (e.g. `smp-net`'s
//! socket-based one) owns exactly one node per process and advances on
//! wall-clock time — but it must invoke the node's [`Node`] handlers
//! through the very same [`NodeCtx`] contract, with the very same
//! deterministic per-node RNG stream, or the two runtimes diverge.
//!
//! [`NodeDriver`] is that contract, extracted: it wraps one node plus the
//! per-node state the simulation would keep for it (RNG, timer-id
//! counter, telemetry handle), and turns each handler invocation into a
//! drained list of [`NodeAction`]s for the embedding runtime to apply
//! however it likes (sockets, heaps of real timers, log files).

use crate::context::{Action, NodeCtx, TimerTag};
use crate::observation::Observation;
use crate::runner::Node;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_telemetry::Telemetry;
use smp_types::{ReplicaId, SimTime};

/// The per-node RNG seed used by [`Simulation::new`](crate::Simulation::new).
///
/// Exposed so other runtimes hand their node the exact same RNG stream
/// the simulator would: same `seed`, same node index ⇒ byte-identical
/// randomness everywhere.
pub fn node_rng_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9E37_79B9).wrapping_add(index as u64)
}

/// An effect requested by a node handler, to be applied by the embedding
/// runtime.  Mirrors the simulator's internal action set.
#[derive(Debug)]
pub enum NodeAction<M> {
    /// Send `msg` to replica `to`.
    Send {
        /// Destination replica.
        to: ReplicaId,
        /// The message.
        msg: M,
    },
    /// Arm a timer firing at absolute node-time `at`.
    SetTimer {
        /// Absolute time (same unit as the `now` passed to the handlers).
        at: SimTime,
        /// Runtime-unique timer id (for cancellation matching).
        timer_id: u64,
        /// Application tag delivered back in `on_timer`.
        tag: TimerTag,
    },
    /// Disarm the timer with the given id (no-op if already fired).
    CancelTimer {
        /// The id returned in a previous [`NodeAction::SetTimer`].
        timer_id: u64,
    },
    /// An observation emitted by the node (commits, view changes, …).
    Observe(Observation),
}

impl<M> From<Action<M>> for NodeAction<M> {
    fn from(a: Action<M>) -> Self {
        match a {
            Action::Send { to, msg } => NodeAction::Send { to, msg },
            Action::SetTimer { at, timer_id, tag } => NodeAction::SetTimer { at, timer_id, tag },
            Action::CancelTimer { timer_id } => NodeAction::CancelTimer { timer_id },
            Action::Observe(obs) => NodeAction::Observe(obs),
        }
    }
}

/// Drives one [`Node`] outside the simulator.
///
/// The embedding runtime supplies `now` (its own clock, in microseconds)
/// on every invocation and applies the returned actions.
pub struct NodeDriver<N: Node> {
    node: N,
    id: ReplicaId,
    n: usize,
    rng: SmallRng,
    actions: Vec<Action<N::Msg>>,
    next_timer_id: u64,
    telemetry: Telemetry,
}

impl<N: Node> NodeDriver<N> {
    /// Wraps `node` as replica `id` of an `n`-replica deployment seeded
    /// with the deployment-wide `seed` (the same value every replica and
    /// the reference simulation use).
    pub fn new(node: N, id: ReplicaId, n: usize, seed: u64, telemetry: Telemetry) -> Self {
        NodeDriver {
            node,
            id,
            n,
            rng: SmallRng::seed_from_u64(node_rng_seed(seed, id.index())),
            actions: Vec::new(),
            next_timer_id: 0,
            telemetry,
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &N {
        &self.node
    }

    /// Mutable access to the wrapped node (post-run metric extraction).
    pub fn node_mut(&mut self) -> &mut N {
        &mut self.node
    }

    /// Unwraps the driver, returning the node.
    pub fn into_node(self) -> N {
        self.node
    }

    /// This driver's replica id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Invokes `on_start` at time `now`.
    pub fn start(&mut self, now: SimTime) -> Vec<NodeAction<N::Msg>> {
        self.invoke(now, |node, ctx| node.on_start(ctx))
    }

    /// Delivers a peer message at time `now`.
    pub fn deliver(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: N::Msg,
    ) -> Vec<NodeAction<N::Msg>> {
        self.invoke(now, |node, ctx| node.on_message(ctx, from, msg))
    }

    /// Delivers external (client) input at time `now`.
    pub fn client_input(&mut self, now: SimTime, msg: N::Msg) -> Vec<NodeAction<N::Msg>> {
        self.invoke(now, |node, ctx| node.on_client_input(ctx, msg))
    }

    /// Fires the timer with application tag `tag` at time `now`.
    pub fn timer(&mut self, now: SimTime, tag: TimerTag) -> Vec<NodeAction<N::Msg>> {
        self.invoke(now, |node, ctx| node.on_timer(ctx, tag))
    }

    fn invoke<F>(&mut self, now: SimTime, f: F) -> Vec<NodeAction<N::Msg>>
    where
        F: FnOnce(&mut N, &mut NodeCtx<'_, N::Msg>),
    {
        debug_assert!(self.actions.is_empty());
        {
            let mut ctx = NodeCtx {
                id: self.id,
                n: self.n,
                now,
                rng: &mut self.rng,
                actions: &mut self.actions,
                next_timer_id: &mut self.next_timer_id,
                telemetry: &self.telemetry,
            };
            f(&mut self.node, &mut ctx);
        }
        self.actions.drain(..).map(NodeAction::from).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::SimMessage;
    use crate::netmodel::NetConfig;
    use crate::runner::Simulation;
    use rand::Rng;

    #[derive(Clone, Debug)]
    struct Tok(u64);
    impl SimMessage for Tok {
        fn wire_size(&self) -> usize {
            8
        }
        fn kind(&self) -> &'static str {
            "tok"
        }
    }

    /// Draws from the node RNG on every event so stream divergence shows.
    struct RngEcho {
        draws: Vec<u64>,
    }
    impl Node for RngEcho {
        type Msg = Tok;
        fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
            self.draws.push(ctx.rng().gen::<u64>());
            ctx.set_timer(1_000, 7);
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, Tok>, _from: ReplicaId, msg: Tok) {
            self.draws.push(ctx.rng().gen::<u64>().wrapping_add(msg.0));
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Tok>, _tag: TimerTag) {
            self.draws.push(ctx.rng().gen::<u64>());
        }
    }

    #[test]
    fn driver_rng_stream_matches_simulation() {
        // Simulation reference: node 1 of 2, seed 42.
        let nodes = vec![RngEcho { draws: Vec::new() }, RngEcho { draws: Vec::new() }];
        let mut sim = Simulation::new(nodes, NetConfig::lan(), 42);
        sim.run_until(2_000);
        let sim_draws = sim.node(1).draws.clone();

        // Driver: same node index, same seed, same invocation sequence
        // (on_start then the armed timer).
        let mut driver = NodeDriver::new(
            RngEcho { draws: Vec::new() },
            ReplicaId(1),
            2,
            42,
            Telemetry::disabled(),
        );
        let actions = driver.start(0);
        let mut fired = Vec::new();
        for a in actions {
            if let NodeAction::SetTimer { at, tag, .. } = a {
                fired.push((at, tag));
            }
        }
        assert_eq!(fired, vec![(1_000, 7)]);
        driver.timer(1_000, 7);
        assert_eq!(driver.node().draws, sim_draws);
    }

    #[test]
    fn driver_assigns_unique_timer_ids_and_reports_cancellation() {
        struct Timers;
        impl Node for Timers {
            type Msg = Tok;
            fn on_start(&mut self, ctx: &mut NodeCtx<'_, Tok>) {
                let keep = ctx.set_timer(10, 1);
                let drop_ = ctx.set_timer(20, 2);
                let _ = keep;
                ctx.cancel_timer(drop_);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_, Tok>, _: ReplicaId, _: Tok) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_, Tok>, _: TimerTag) {}
        }
        let mut driver = NodeDriver::new(Timers, ReplicaId(0), 1, 1, Telemetry::disabled());
        let actions = driver.start(5);
        let mut set = Vec::new();
        let mut cancelled = Vec::new();
        for a in &actions {
            match a {
                NodeAction::SetTimer { at, timer_id, tag } => set.push((*at, *timer_id, *tag)),
                NodeAction::CancelTimer { timer_id } => cancelled.push(*timer_id),
                _ => panic!("unexpected action {a:?}"),
            }
        }
        assert_eq!(set, vec![(15, 0, 1), (25, 1, 2)]);
        assert_eq!(cancelled, vec![1]);
    }
}
