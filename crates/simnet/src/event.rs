//! The event queue.

use smp_types::{ReplicaId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What an event does when it fires.
#[derive(Debug)]
pub enum EventKind<M> {
    /// A message arrives at `to`'s NIC (CPU queuing is applied afterwards).
    Deliver {
        /// Destination node.
        to: ReplicaId,
        /// Sending node, or `None` for external/client input.
        from: Option<ReplicaId>,
        /// The message.
        msg: M,
    },
    /// A timer set by `node` fires.
    Timer {
        /// Node that set the timer.
        node: ReplicaId,
        /// Unique timer id (used for cancellation).
        timer_id: u64,
        /// Application-defined tag.
        tag: u64,
        /// Incarnation of the node when it set the timer.  A timer whose
        /// epoch no longer matches (the node crashed and restarted in
        /// between) is dead on arrival.
        epoch: u32,
    },
    /// The outbound link of `node` finished serializing a message and can
    /// start on the next queued one.
    LinkFree {
        /// Node whose link became free.
        node: ReplicaId,
    },
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event<M> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number breaking ties deterministically.
    pub seq: u64,
    /// The action to perform.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(30, EventKind::LinkFree { node: ReplicaId(0) });
        q.push(10, EventKind::LinkFree { node: ReplicaId(1) });
        q.push(20, EventKind::LinkFree { node: ReplicaId(2) });
        let order: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(5, EventKind::LinkFree { node: ReplicaId(7) });
        q.push(5, EventKind::LinkFree { node: ReplicaId(8) });
        let first = q.pop().unwrap();
        let second = q.pop().unwrap();
        match (first.kind, second.kind) {
            (EventKind::LinkFree { node: a }, EventKind::LinkFree { node: b }) => {
                assert_eq!(a, ReplicaId(7));
                assert_eq!(b, ReplicaId(8));
            }
            _ => panic!("unexpected kinds"),
        }
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(42, EventKind::LinkFree { node: ReplicaId(0) });
        q.push(7, EventKind::LinkFree { node: ReplicaId(0) });
        assert_eq!(q.peek_time(), Some(7));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
