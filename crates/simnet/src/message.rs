//! The message contract between protocol crates and the simulator.

/// A message that can travel over the simulated network.
///
/// Implementations provide the wire size (drives bandwidth/serialization
/// modelling), a stable kind string (drives per-message-type bandwidth
/// accounting for Table III), a CPU processing cost, and a priority flag
/// (consensus messages are prioritized over bulk data in Stratus-based
/// protocols; Section VI "Optimizations").
pub trait SimMessage: Clone + std::fmt::Debug {
    /// Number of bytes the message occupies on the wire.
    fn wire_size(&self) -> usize;

    /// A stable label identifying the message type for accounting
    /// (e.g. `"proposal"`, `"microblock"`, `"vote"`, `"ack"`).
    fn kind(&self) -> &'static str;

    /// CPU time (simulated microseconds) the *receiver* spends handling
    /// the message before the protocol handler runs.
    fn cpu_cost_us(&self) -> f64 {
        5.0
    }

    /// Whether the message should use the high-priority lane of the
    /// sender's outbound link.
    fn high_priority(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Dummy;
    impl SimMessage for Dummy {
        fn wire_size(&self) -> usize {
            10
        }
        fn kind(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn defaults_apply() {
        let d = Dummy;
        assert_eq!(d.wire_size(), 10);
        assert_eq!(d.kind(), "dummy");
        assert!(d.cpu_cost_us() > 0.0);
        assert!(!d.high_priority());
    }
}
