//! Per-node outbound link model.
//!
//! Every replica owns one outbound NIC with finite bandwidth.  Messages are
//! serialized one at a time; while the NIC is busy, further messages queue.
//! Two lanes are provided: a high-priority lane served strictly before the
//! normal lane, which models the Stratus optimization of prioritizing the
//! transmission of consensus messages over bulk microblock data
//! (Section VI, "Optimizations").

use smp_types::{ReplicaId, SimTime};
use std::collections::VecDeque;

/// Transmission priority of a queued message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Priority {
    /// Consensus-critical messages (proposals, votes, proofs).
    High,
    /// Bulk data (microblocks, fetch responses).
    Normal,
}

/// A message waiting on, or currently occupying, the outbound NIC.
#[derive(Clone, Debug)]
pub struct QueuedMessage<M> {
    /// Destination replica.
    pub to: ReplicaId,
    /// The message itself.
    pub msg: M,
    /// Serialized size in bytes.
    pub bytes: usize,
    /// Time at which the message entered the queue.
    pub enqueued_at: SimTime,
}

/// The outbound link of one replica.
#[derive(Debug)]
pub struct OutboundLink<M> {
    high: VecDeque<QueuedMessage<M>>,
    normal: VecDeque<QueuedMessage<M>>,
    /// Whether the NIC is currently serializing a message.
    busy: bool,
    /// Total bytes that have entered the queue (for diagnostics).
    pub enqueued_bytes: u64,
    /// Total bytes fully serialized onto the wire.
    pub transmitted_bytes: u64,
}

impl<M> Default for OutboundLink<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> OutboundLink<M> {
    /// Creates an idle link.
    pub fn new() -> Self {
        OutboundLink {
            high: VecDeque::new(),
            normal: VecDeque::new(),
            busy: false,
            enqueued_bytes: 0,
            transmitted_bytes: 0,
        }
    }

    /// Queues a message for transmission.
    pub fn enqueue(&mut self, item: QueuedMessage<M>, priority: Priority) {
        self.enqueued_bytes += item.bytes as u64;
        match priority {
            Priority::High => self.high.push_back(item),
            Priority::Normal => self.normal.push_back(item),
        }
    }

    /// Whether the NIC is currently serializing a message.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Marks the NIC busy and returns the next message to transmit, high
    /// priority first.  Returns `None` (and stays idle) when nothing is
    /// queued.
    pub fn start_next(&mut self) -> Option<QueuedMessage<M>> {
        debug_assert!(!self.busy, "start_next called while busy");
        let next = self.high.pop_front().or_else(|| self.normal.pop_front());
        if let Some(ref m) = next {
            self.busy = true;
            self.transmitted_bytes += m.bytes as u64;
        }
        next
    }

    /// Marks the current transmission as finished.
    pub fn finish_current(&mut self) {
        debug_assert!(self.busy, "finish_current called while idle");
        self.busy = false;
    }

    /// Number of queued (not yet transmitting) messages.
    pub fn queue_len(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// Discards every queued (not yet transmitting) message, returning
    /// how many were lost.  A message already serializing is untouched:
    /// it is on the wire and its `LinkFree` completion still fires.
    /// Used by the fault plane when a node crashes.
    pub fn clear_queue(&mut self) -> usize {
        let lost = self.high.len() + self.normal.len();
        self.high.clear();
        self.normal.clear();
        lost
    }

    /// Bytes waiting in the queue (excluding the in-flight message).
    pub fn queued_bytes(&self) -> usize {
        self.high
            .iter()
            .chain(self.normal.iter())
            .map(|m| m.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qm(to: u32, bytes: usize) -> QueuedMessage<&'static str> {
        QueuedMessage {
            to: ReplicaId(to),
            msg: "m",
            bytes,
            enqueued_at: 0,
        }
    }

    #[test]
    fn fifo_within_a_lane() {
        let mut link = OutboundLink::new();
        link.enqueue(qm(1, 10), Priority::Normal);
        link.enqueue(qm(2, 20), Priority::Normal);
        assert_eq!(link.queue_len(), 2);
        let a = link.start_next().unwrap();
        assert_eq!(a.to, ReplicaId(1));
        link.finish_current();
        let b = link.start_next().unwrap();
        assert_eq!(b.to, ReplicaId(2));
    }

    #[test]
    fn high_priority_lane_is_served_first() {
        let mut link = OutboundLink::new();
        link.enqueue(qm(1, 10_000), Priority::Normal);
        link.enqueue(qm(2, 100), Priority::High);
        let first = link.start_next().unwrap();
        assert_eq!(
            first.to,
            ReplicaId(2),
            "high-priority message should jump the queue"
        );
    }

    #[test]
    fn busy_state_toggles() {
        let mut link = OutboundLink::new();
        assert!(!link.is_busy());
        link.enqueue(qm(1, 10), Priority::Normal);
        let _ = link.start_next().unwrap();
        assert!(link.is_busy());
        link.finish_current();
        assert!(!link.is_busy());
        assert!(link.start_next().is_none());
        assert!(!link.is_busy());
    }

    #[test]
    fn byte_accounting() {
        let mut link = OutboundLink::new();
        link.enqueue(qm(1, 10), Priority::Normal);
        link.enqueue(qm(2, 30), Priority::High);
        assert_eq!(link.enqueued_bytes, 40);
        assert_eq!(link.queued_bytes(), 40);
        let _ = link.start_next().unwrap();
        assert_eq!(link.transmitted_bytes, 30);
        assert_eq!(link.queued_bytes(), 10);
    }
}
