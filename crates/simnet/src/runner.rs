//! The simulation driver.

use crate::context::{Action, NodeCtx, TimerTag};
use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultAction, FaultSchedule};
use crate::link::{OutboundLink, Priority, QueuedMessage};
use crate::message::SimMessage;
use crate::netmodel::NetConfig;
use crate::observation::{Observation, ObservationLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use smp_telemetry::Telemetry;
use smp_types::{ReplicaId, SimTime};
use std::collections::{HashMap, HashSet};

/// A protocol participant driven by the simulation.
pub trait Node {
    /// Message type exchanged between nodes.
    type Msg: SimMessage;

    /// Called once before any other handler, at simulated time 0.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>);

    /// Called when a message from another replica is delivered.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, from: ReplicaId, msg: Self::Msg);

    /// Called when external (client) input is delivered.  The default
    /// treats it as a message from the node itself.
    fn on_client_input(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, msg: Self::Msg) {
        let id = ctx.id();
        self.on_message(ctx, id, msg);
    }

    /// Called when a timer set through the context fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>, tag: TimerTag);

    /// Called when the fault plane resurrects the node after a scripted
    /// crash (see [`FaultAction::Restart`](crate::FaultAction::Restart)).
    /// The default boots it like a fresh process.
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_, Self::Msg>) {
        self.on_start(ctx);
    }
}

/// Per-(node, message-kind) byte and message counters.
#[derive(Clone, Debug, Default)]
pub struct TrafficStats {
    bytes: HashMap<(u32, &'static str), u64>,
    messages: HashMap<(u32, &'static str), u64>,
}

impl TrafficStats {
    fn record(&mut self, node: ReplicaId, kind: &'static str, bytes: usize) {
        *self.bytes.entry((node.0, kind)).or_default() += bytes as u64;
        *self.messages.entry((node.0, kind)).or_default() += 1;
    }

    /// Outbound bytes sent by `node`, grouped by message kind.
    pub fn bytes_by_kind(&self, node: ReplicaId) -> HashMap<&'static str, u64> {
        self.bytes
            .iter()
            .filter(|((n, _), _)| *n == node.0)
            .map(|((_, k), v)| (*k, *v))
            .collect()
    }

    /// Total outbound bytes sent by `node`.
    pub fn total_bytes(&self, node: ReplicaId) -> u64 {
        self.bytes
            .iter()
            .filter(|((n, _), _)| *n == node.0)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total outbound bytes across all nodes, grouped by kind.
    pub fn total_by_kind(&self) -> HashMap<&'static str, u64> {
        let mut out: HashMap<&'static str, u64> = HashMap::new();
        for ((_, k), v) in &self.bytes {
            *out.entry(*k).or_default() += *v;
        }
        out
    }

    /// Number of messages sent by `node` of the given kind.
    pub fn message_count(&self, node: ReplicaId, kind: &'static str) -> u64 {
        self.messages.get(&(node.0, kind)).copied().unwrap_or(0)
    }

    /// Total messages of `kind` sent by all nodes.
    pub fn total_messages_of_kind(&self, kind: &'static str) -> u64 {
        self.messages
            .iter()
            .filter(|((_, k), _)| *k == kind)
            .map(|(_, v)| *v)
            .sum()
    }
}

/// The discrete-event simulation of a replica network.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    rngs: Vec<SmallRng>,
    links: Vec<OutboundLink<N::Msg>>,
    cpu_free: Vec<SimTime>,
    queue: EventQueue<N::Msg>,
    cancelled_timers: HashSet<u64>,
    net: NetConfig,
    now: SimTime,
    next_timer_id: u64,
    started: bool,
    observations: ObservationLog,
    traffic: TrafficStats,
    events_processed: u64,
    action_buf: Vec<Action<N::Msg>>,
    telemetry: Telemetry,
    node_telemetry: Vec<Telemetry>,
    // --- fault plane (inert while `faults` is empty) ---
    seed: u64,
    faults: Vec<(SimTime, FaultAction)>,
    fault_idx: usize,
    /// Jitter source for delay bursts.  Deliberately separate from the
    /// per-node RNGs so scripting faults never perturbs node streams.
    fault_rng: SmallRng,
    crashed: HashSet<usize>,
    incarnation: Vec<u32>,
    /// Current partition island (empty = fully connected).
    island: HashSet<usize>,
    drop_until: SimTime,
    delay_until: SimTime,
    delay_min_us: SimTime,
    delay_max_us: SimTime,
}

impl<N: Node> Simulation<N> {
    /// Creates a simulation over `nodes` with the given network environment
    /// and RNG seed.
    pub fn new(nodes: Vec<N>, net: NetConfig, seed: u64) -> Self {
        let n = nodes.len();
        let rngs = (0..n)
            .map(|i| SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64)))
            .collect();
        Simulation {
            nodes,
            rngs,
            links: (0..n).map(|_| OutboundLink::new()).collect(),
            cpu_free: vec![0; n],
            queue: EventQueue::new(),
            cancelled_timers: HashSet::new(),
            net,
            now: 0,
            next_timer_id: 0,
            started: false,
            observations: ObservationLog::new(),
            traffic: TrafficStats::default(),
            events_processed: 0,
            action_buf: Vec::new(),
            telemetry: Telemetry::disabled(),
            node_telemetry: vec![Telemetry::disabled(); n],
            seed,
            faults: Vec::new(),
            fault_idx: 0,
            fault_rng: SmallRng::seed_from_u64(seed ^ 0xFAB1_7C0D_E5EE_D000),
            crashed: HashSet::new(),
            incarnation: vec![0; n],
            island: HashSet::new(),
            drop_until: 0,
            delay_until: 0,
            delay_min_us: 0,
            delay_max_us: 0,
        }
    }

    /// Attaches a scripted fault schedule.  An empty schedule leaves the
    /// simulation byte-identical to one built without this call: faults
    /// draw jitter from a dedicated RNG and add no events of their own.
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = schedule.into_sorted();
        self.fault_idx = 0;
        self
    }

    /// Attaches a telemetry sink.  The simulation records spans around
    /// event dispatch and per-node network counters under
    /// `replica.<i>.net.*`; node handlers reach their prefixed handle via
    /// [`NodeCtx::telemetry`].  Telemetry never touches simulation RNG or
    /// event ordering, so results are byte-identical with it on or off.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.node_telemetry = (0..self.nodes.len())
            .map(|i| {
                telemetry
                    .with_prefix(&format!("replica.{i}"))
                    .with_track(i as u32)
            })
            .collect();
        self.telemetry = telemetry;
        self
    }

    /// The simulation-wide telemetry handle (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to node `i`.
    pub fn node(&self, i: usize) -> &N {
        &self.nodes[i]
    }

    /// Mutable access to node `i` (useful for post-run metric extraction).
    pub fn node_mut(&mut self, i: usize) -> &mut N {
        &mut self.nodes[i]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// The observation log accumulated so far.
    pub fn observations(&self) -> &ObservationLog {
        &self.observations
    }

    /// Outbound traffic statistics accumulated so far.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Total number of events processed (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The network configuration.
    pub fn net(&self) -> &NetConfig {
        &self.net
    }

    /// Schedules external (client) input to arrive at `to` at time `at`.
    pub fn schedule_client_input(&mut self, at: SimTime, to: ReplicaId, msg: N::Msg) {
        self.queue.push(
            at,
            EventKind::Deliver {
                to,
                from: None,
                msg,
            },
        );
    }

    /// Runs the simulation until simulated time `until` (inclusive of
    /// events scheduled exactly at `until`).
    ///
    /// Scheduled faults interleave deterministically with events: every
    /// fault due at or before the next event's time fires first (and
    /// among faults, in schedule order).
    pub fn run_until(&mut self, until: SimTime) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.invoke(i, Invocation::Start);
            }
        }
        loop {
            let next_event = self.queue.peek_time();
            let next_fault = self.faults.get(self.fault_idx).map(|(t, _)| *t);
            let (t, is_fault) = match (next_event, next_fault) {
                (None, None) => break,
                (Some(e), None) => (e, false),
                (None, Some(f)) => (f, true),
                (Some(e), Some(f)) => {
                    if f <= e {
                        (f, true)
                    } else {
                        (e, false)
                    }
                }
            };
            if t > until {
                break;
            }
            self.now = t;
            if is_fault {
                let action = self.faults[self.fault_idx].1.clone();
                self.fault_idx += 1;
                self.apply_fault(action);
                continue;
            }
            let event = self.queue.pop().expect("peeked event must exist");
            self.events_processed += 1;
            match event.kind {
                EventKind::Deliver { to, from, msg } => {
                    let Some(msg) = self.fault_filter(to, from, msg) else {
                        continue;
                    };
                    let _span = self.telemetry.span_at("simnet.deliver", self.now);
                    self.handle_delivery(to, from, msg)
                }
                EventKind::Timer {
                    node,
                    timer_id,
                    tag,
                    epoch,
                } => {
                    if self.cancelled_timers.remove(&timer_id) {
                        continue;
                    }
                    let idx = node.index();
                    // A crashed node's timers never fire; a timer set by
                    // a previous incarnation is dead on arrival.
                    if self.crashed.contains(&idx) || epoch != self.incarnation[idx] {
                        continue;
                    }
                    let _span = self.telemetry.span_at("simnet.timer", self.now);
                    self.invoke(idx, Invocation::Timer(tag));
                }
                EventKind::LinkFree { node } => {
                    let _span = self.telemetry.span_at("simnet.link_free", self.now);
                    self.links[node.index()].finish_current();
                    self.pump_link(node);
                }
            }
        }
        self.now = until;
    }

    /// Runs the simulation for `duration` more simulated time.
    pub fn run_for(&mut self, duration: SimTime) {
        let until = self.now.saturating_add(duration);
        self.run_until(until);
    }

    /// Applies one scripted fault at the current simulated time.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::Crash(id) => {
                let idx = id.index();
                if self.crashed.insert(idx) {
                    // Queued outbound messages die with the process; one
                    // already serializing is on the wire and survives.
                    self.links[idx].clear_queue();
                    self.telemetry.instant_at("simnet.fault.crash", self.now);
                }
            }
            FaultAction::Restart(id) => {
                let idx = id.index();
                if self.crashed.remove(&idx) {
                    // A fresh incarnation: old timers are dead, the RNG
                    // restarts exactly as a re-exec'd process's would,
                    // and the node's restart hook runs.
                    self.incarnation[idx] += 1;
                    self.rngs[idx] = SmallRng::seed_from_u64(
                        self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(idx as u64),
                    );
                    self.cpu_free[idx] = self.now;
                    self.telemetry.instant_at("simnet.fault.restart", self.now);
                    self.invoke(idx, Invocation::Restart);
                }
            }
            FaultAction::Partition(island) => {
                self.island = island.iter().map(|r| r.index()).collect();
                self.telemetry
                    .instant_at("simnet.fault.partition", self.now);
            }
            FaultAction::Heal => {
                self.island.clear();
                self.telemetry.instant_at("simnet.fault.heal", self.now);
            }
            FaultAction::DropBurst { duration } => {
                self.drop_until = self.now.saturating_add(duration);
                self.telemetry
                    .instant_at("simnet.fault.drop_burst", self.now);
            }
            FaultAction::DelayBurst {
                duration,
                min_us,
                max_us,
            } => {
                self.delay_until = self.now.saturating_add(duration);
                self.delay_min_us = min_us;
                self.delay_max_us = max_us.max(min_us);
                self.telemetry
                    .instant_at("simnet.fault.delay_burst", self.now);
            }
        }
    }

    /// Routes a delivery through the active faults.  Returns the message
    /// when it should proceed; `None` when it was dropped or deferred.
    fn fault_filter(
        &mut self,
        to: ReplicaId,
        from: Option<ReplicaId>,
        msg: N::Msg,
    ) -> Option<N::Msg> {
        let idx = to.index();
        if self.crashed.contains(&idx) {
            // Dropped at the dead NIC — client input included.
            return None;
        }
        let Some(from_id) = from else {
            // Client input is otherwise exempt from network faults.
            return Some(msg);
        };
        if !self.island.is_empty()
            && self.island.contains(&from_id.index()) != self.island.contains(&idx)
        {
            return None; // crosses the partition cut
        }
        if self.now < self.drop_until {
            return None;
        }
        if self.now < self.delay_until {
            let extra = self
                .fault_rng
                .gen_range(self.delay_min_us..=self.delay_max_us)
                .max(1);
            self.queue
                .push(self.now + extra, EventKind::Deliver { to, from, msg });
            return None;
        }
        Some(msg)
    }

    /// Whether node `i` is currently crashed by the fault plane.
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed.contains(&i)
    }

    fn handle_delivery(&mut self, to: ReplicaId, from: Option<ReplicaId>, msg: N::Msg) {
        let idx = to.index();
        // CPU model: if the receiver is still busy processing earlier
        // messages, defer this delivery until its CPU frees up.
        let cpu_free = self.cpu_free[idx];
        if cpu_free > self.now {
            self.queue
                .push(cpu_free, EventKind::Deliver { to, from, msg });
            return;
        }
        let cost = (msg.cpu_cost_us() / self.net.cpu_speed.max(1e-9)).ceil() as SimTime;
        self.cpu_free[idx] = self.now + cost;
        match from {
            Some(f) => self.invoke(idx, Invocation::Message(f, msg)),
            None => self.invoke(idx, Invocation::Client(msg)),
        }
    }

    fn invoke(&mut self, idx: usize, invocation: Invocation<N::Msg>) {
        debug_assert!(self.action_buf.is_empty());
        let mut actions = std::mem::take(&mut self.action_buf);
        {
            let mut ctx = NodeCtx {
                id: ReplicaId(idx as u32),
                n: self.nodes.len(),
                now: self.now,
                rng: &mut self.rngs[idx],
                actions: &mut actions,
                next_timer_id: &mut self.next_timer_id,
                telemetry: &self.node_telemetry[idx],
            };
            let node = &mut self.nodes[idx];
            match invocation {
                Invocation::Start => node.on_start(&mut ctx),
                Invocation::Restart => node.on_restart(&mut ctx),
                Invocation::Message(from, msg) => node.on_message(&mut ctx, from, msg),
                Invocation::Client(msg) => node.on_client_input(&mut ctx, msg),
                Invocation::Timer(tag) => node.on_timer(&mut ctx, tag),
            }
        }
        let sender = ReplicaId(idx as u32);
        for action in actions.drain(..) {
            self.apply(sender, action);
        }
        self.action_buf = actions;
    }

    fn apply(&mut self, sender: ReplicaId, action: Action<N::Msg>) {
        match action {
            Action::Send { to, msg } => self.send_message(sender, to, msg),
            Action::SetTimer { at, timer_id, tag } => {
                self.queue.push(
                    at,
                    EventKind::Timer {
                        node: sender,
                        timer_id,
                        tag,
                        epoch: self.incarnation[sender.index()],
                    },
                );
            }
            Action::CancelTimer { timer_id } => {
                self.cancelled_timers.insert(timer_id);
            }
            Action::Observe(obs) => self.push_observation(obs),
        }
    }

    fn push_observation(&mut self, obs: Observation) {
        self.observations.push(obs);
    }

    fn send_message(&mut self, from: ReplicaId, to: ReplicaId, msg: N::Msg) {
        let bytes = msg.wire_size();
        self.traffic.record(from, msg.kind(), bytes);
        let t = &self.node_telemetry[from.index()];
        t.counter_add("net.bytes_out", bytes as u64);
        t.counter_inc("net.msgs_out");
        if from == to {
            // Loopback: no NIC serialization, negligible delay.
            self.queue.push(
                self.now + 1,
                EventKind::Deliver {
                    to,
                    from: Some(from),
                    msg,
                },
            );
            return;
        }
        let priority = if msg.high_priority() {
            Priority::High
        } else {
            Priority::Normal
        };
        let link = &mut self.links[from.index()];
        link.enqueue(
            QueuedMessage {
                to,
                msg,
                bytes,
                enqueued_at: self.now,
            },
            priority,
        );
        if !link.is_busy() {
            self.pump_link(from);
        }
    }

    /// Starts transmitting the next queued message on `node`'s link, if any.
    fn pump_link(&mut self, node: ReplicaId) {
        let idx = node.index();
        let Some(item) = self.links[idx].start_next() else {
            return;
        };
        let ser = self.net.serialization_us(node, item.bytes);
        let done = self.now + ser;
        self.queue.push(done, EventKind::LinkFree { node });
        let prop = self
            .net
            .propagation_us(node, item.to, self.now, &mut self.rngs[idx]);
        self.queue.push(
            done + prop,
            EventKind::Deliver {
                to: item.to,
                from: Some(node),
                msg: item.msg,
            },
        );
    }
}

enum Invocation<M> {
    Start,
    Restart,
    Message(ReplicaId, M),
    Client(M),
    Timer(TimerTag),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::ObsKind;
    use smp_types::MICROS_PER_MS;

    #[derive(Clone, Debug)]
    #[allow(dead_code)]
    enum TestMsg {
        Small(u64),
        Big,
    }

    impl SimMessage for TestMsg {
        fn wire_size(&self) -> usize {
            match self {
                TestMsg::Small(_) => 100,
                TestMsg::Big => 1_250_000, // 10 Mb => 100 ms at 100 Mb/s
            }
        }
        fn kind(&self) -> &'static str {
            match self {
                TestMsg::Small(_) => "small",
                TestMsg::Big => "big",
            }
        }
        fn high_priority(&self) -> bool {
            matches!(self, TestMsg::Small(_))
        }
        fn cpu_cost_us(&self) -> f64 {
            1.0
        }
    }

    /// Records every message it receives along with the arrival time.
    struct Recorder {
        received: Vec<(SimTime, ReplicaId, &'static str)>,
        echo: bool,
        timer_fired: Vec<TimerTag>,
    }

    impl Recorder {
        fn new(echo: bool) -> Self {
            Recorder {
                received: Vec::new(),
                echo,
                timer_fired: Vec::new(),
            }
        }
    }

    impl Node for Recorder {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut NodeCtx<'_, TestMsg>) {
            if ctx.id() == ReplicaId(0) && self.echo {
                ctx.send(ReplicaId(1), TestMsg::Small(1));
            }
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_, TestMsg>, from: ReplicaId, msg: TestMsg) {
            self.received.push((ctx.now(), from, msg.kind()));
            ctx.observe(ObsKind::Custom {
                label: "recv".into(),
                value: 1.0,
            });
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, TestMsg>, tag: TimerTag) {
            self.timer_fired.push(tag);
        }
    }

    fn two_nodes(echo: bool) -> Simulation<Recorder> {
        Simulation::new(
            vec![Recorder::new(echo), Recorder::new(false)],
            NetConfig::wan(),
            7,
        )
    }

    #[test]
    fn message_arrives_after_serialization_and_propagation() {
        let mut sim = two_nodes(true);
        sim.run_until(MICROS_PER_MS * 200);
        let rec = &sim.node(1).received;
        assert_eq!(rec.len(), 1);
        let (t, from, kind) = rec[0];
        assert_eq!(from, ReplicaId(0));
        assert_eq!(kind, "small");
        // 100 B at 100 Mb/s is 8 us; one-way delay is 50 ms (+ up to 2 ms jitter).
        assert!((50_000..=53_000).contains(&t), "arrival at {t}");
    }

    #[test]
    fn client_input_is_delivered() {
        let mut sim = two_nodes(false);
        sim.schedule_client_input(10_000, ReplicaId(1), TestMsg::Small(9));
        sim.run_until(20_000);
        assert_eq!(sim.node(1).received.len(), 1);
    }

    #[test]
    fn big_messages_delay_subsequent_sends_on_same_link() {
        // Node 0 sends Big then Small to node 1; the Big is already
        // serializing when the Small is queued, so the Small arrives
        // ~100 ms later than it would on an idle link.
        struct Mixed {
            sender: bool,
            received: Vec<(SimTime, &'static str)>,
        }
        impl Node for Mixed {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut NodeCtx<'_, TestMsg>) {
                if self.sender {
                    ctx.send(ReplicaId(1), TestMsg::Big);
                    ctx.send(ReplicaId(1), TestMsg::Small(1));
                }
            }
            fn on_message(&mut self, ctx: &mut NodeCtx<'_, TestMsg>, _: ReplicaId, msg: TestMsg) {
                self.received.push((ctx.now(), msg.kind()));
            }
            fn on_timer(&mut self, _: &mut NodeCtx<'_, TestMsg>, _: TimerTag) {}
        }
        let nodes = vec![
            Mixed {
                sender: true,
                received: Vec::new(),
            },
            Mixed {
                sender: false,
                received: Vec::new(),
            },
        ];
        let mut sim = Simulation::new(nodes, NetConfig::wan(), 7);
        sim.run_until(MICROS_PER_MS * 400);
        let rec = &sim.node(1).received;
        assert_eq!(rec.len(), 2);
        // The big message serializes for 100 ms; the small one starts after.
        let small_arrival = rec.iter().find(|(_, k)| *k == "small").unwrap().0;
        assert!(
            small_arrival >= 100_000 + 50_000,
            "small arrived at {small_arrival}"
        );
    }

    #[test]
    fn traffic_stats_account_outbound_bytes_by_kind() {
        let mut sim = two_nodes(true);
        sim.run_until(MICROS_PER_MS * 200);
        let by_kind = sim.traffic().bytes_by_kind(ReplicaId(0));
        assert_eq!(by_kind.get("small"), Some(&100));
        assert_eq!(sim.traffic().total_bytes(ReplicaId(1)), 0);
        assert_eq!(sim.traffic().message_count(ReplicaId(0), "small"), 1);
    }

    #[test]
    fn observations_are_collected() {
        let mut sim = two_nodes(true);
        sim.run_until(MICROS_PER_MS * 200);
        assert_eq!(sim.observations().len(), 1);
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct TimerNode {
            fired: Vec<TimerTag>,
        }
        impl Node for TimerNode {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut NodeCtx<'_, TestMsg>) {
                let keep = ctx.set_timer(1_000, 1);
                let cancel = ctx.set_timer(2_000, 2);
                let _ = keep;
                ctx.cancel_timer(cancel);
                ctx.set_timer(3_000, 3);
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_, TestMsg>, _: ReplicaId, _: TestMsg) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_, TestMsg>, tag: TimerTag) {
                self.fired.push(tag);
            }
        }
        let mut sim = Simulation::new(vec![TimerNode { fired: Vec::new() }], NetConfig::lan(), 1);
        sim.run_until(10_000);
        assert_eq!(sim.node(0).fired, vec![1, 3]);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let mut sim = two_nodes(true);
            let _ = seed;
            sim.run_until(MICROS_PER_MS * 200);
            sim.node(1).received.clone()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn telemetry_records_dispatch_spans_and_net_counters() {
        let telemetry = Telemetry::new();
        let mut sim = two_nodes(true).with_telemetry(telemetry.clone());
        sim.run_until(MICROS_PER_MS * 200);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter("replica.0.net.bytes_out"), Some(100));
        assert_eq!(snap.counter("replica.0.net.msgs_out"), Some(1));
        assert_eq!(snap.counter("replica.1.net.msgs_out"), None);
        let profile = telemetry.profile();
        assert!(profile.contains_key("simnet.deliver"));
        assert!(profile.contains_key("simnet.link_free"));
        // Node handlers see their prefixed handle; results stay identical
        // to an uninstrumented run.
        let mut plain = two_nodes(true);
        plain.run_until(MICROS_PER_MS * 200);
        assert_eq!(plain.node(1).received, sim.node(1).received);
        assert_eq!(plain.observations(), sim.observations());
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim = two_nodes(false);
        sim.run_until(123_456);
        assert_eq!(sim.now(), 123_456);
    }

    #[test]
    fn empty_fault_schedule_is_byte_identical() {
        let run = |faulted: bool| {
            let mut sim = two_nodes(true);
            if faulted {
                sim = sim.with_faults(FaultSchedule::new());
            }
            sim.run_until(MICROS_PER_MS * 200);
            sim.node(1).received.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn deliveries_to_a_crashed_node_are_dropped() {
        let mut sim = two_nodes(true)
            .with_faults(FaultSchedule::new().at(1, FaultAction::Crash(ReplicaId(1))));
        sim.run_until(MICROS_PER_MS * 200);
        assert!(sim.is_crashed(1));
        assert!(sim.node(1).received.is_empty());
    }

    #[test]
    fn partition_severs_cross_island_links_until_heal() {
        // The echo at t=0 crosses the cut and dies; after Heal a second
        // client-injected round trip would flow again — here we assert
        // the cut itself plus that client input is exempt.
        let mut sim = two_nodes(true).with_faults(
            FaultSchedule::new()
                .at(1, FaultAction::Partition(vec![ReplicaId(1)]))
                .at(MICROS_PER_MS * 100, FaultAction::Heal),
        );
        sim.schedule_client_input(10_000, ReplicaId(1), TestMsg::Small(9));
        sim.run_until(MICROS_PER_MS * 200);
        let kinds: Vec<_> = sim.node(1).received.iter().map(|(_, _, k)| *k).collect();
        assert_eq!(kinds, vec!["small"], "only the client input survives");
    }

    #[test]
    fn drop_burst_swallows_peer_deliveries_in_window() {
        let mut sim = two_nodes(true).with_faults(FaultSchedule::new().at(
            1,
            FaultAction::DropBurst {
                duration: MICROS_PER_MS * 100,
            },
        ));
        sim.run_until(MICROS_PER_MS * 200);
        assert!(sim.node(1).received.is_empty());
    }

    #[test]
    fn delay_burst_defers_deliveries_deterministically() {
        let run = || {
            let mut sim = two_nodes(true).with_faults(FaultSchedule::new().at(
                1,
                FaultAction::DelayBurst {
                    duration: MICROS_PER_MS * 100,
                    min_us: 10_000,
                    max_us: 10_000,
                },
            ));
            sim.run_until(MICROS_PER_MS * 200);
            sim.node(1).received.clone()
        };
        let rec = run();
        assert_eq!(rec.len(), 1);
        // Normal arrival is 50-52 ms, well inside the 100 ms window; the
        // burst keeps deferring the delivery in 10 ms hops until it
        // lands past the window's end.
        assert!(
            (100_000..=115_000).contains(&rec[0].0),
            "arrival at {}",
            rec[0].0
        );
        assert_eq!(rec, run(), "burst jitter must replay identically");
    }

    #[test]
    fn restart_skips_stale_timers_and_reboots_the_node() {
        /// Sets two timers at every boot, tagged by incarnation.
        struct Phoenix {
            starts: u64,
            fired: Vec<TimerTag>,
        }
        impl Node for Phoenix {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut NodeCtx<'_, TestMsg>) {
                ctx.set_timer(5_000, self.starts * 10);
                ctx.set_timer(12_000, self.starts * 10 + 1);
                self.starts += 1;
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_, TestMsg>, _: ReplicaId, _: TestMsg) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_, TestMsg>, tag: TimerTag) {
                self.fired.push(tag);
            }
        }
        let nodes = vec![Phoenix {
            starts: 0,
            fired: Vec::new(),
        }];
        let mut sim = Simulation::new(nodes, NetConfig::lan(), 1).with_faults(
            FaultSchedule::new()
                .at(2_000, FaultAction::Crash(ReplicaId(0)))
                .at(10_000, FaultAction::Restart(ReplicaId(0))),
        );
        sim.run_until(30_000);
        // Boot-0 timers: one fires at 5 ms (crashed — dropped), one at
        // 12 ms (after restart, but stale epoch — dropped).  Boot-1
        // timers (default `on_restart` reboots via `on_start`) both fire.
        assert_eq!(sim.node(0).starts, 2);
        assert_eq!(sim.node(0).fired, vec![10, 11]);
        assert!(!sim.is_crashed(0));
    }

    #[test]
    fn crash_loses_queued_outbound_but_not_in_flight() {
        // Node 0 queues Big then Small at start: Big starts serializing
        // immediately (on the wire, ~100 ms), Small sits in the link
        // queue behind it.  A crash at 1 ms clears the queue, so only
        // the in-flight Big arrives.
        struct Sender {
            received: Vec<&'static str>,
        }
        impl Node for Sender {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut NodeCtx<'_, TestMsg>) {
                if ctx.id() == ReplicaId(0) {
                    ctx.send(ReplicaId(1), TestMsg::Big);
                    ctx.send(ReplicaId(1), TestMsg::Small(1));
                }
            }
            fn on_message(&mut self, _: &mut NodeCtx<'_, TestMsg>, _: ReplicaId, msg: TestMsg) {
                self.received.push(msg.kind());
            }
            fn on_timer(&mut self, _: &mut NodeCtx<'_, TestMsg>, _: TimerTag) {}
        }
        let nodes = (0..2)
            .map(|_| Sender {
                received: Vec::new(),
            })
            .collect();
        let mut sim = Simulation::new(nodes, NetConfig::wan(), 7)
            .with_faults(FaultSchedule::new().at(MICROS_PER_MS, FaultAction::Crash(ReplicaId(0))));
        sim.run_until(MICROS_PER_MS * 400);
        assert_eq!(sim.node(1).received, vec!["big"]);
    }
}
