//! `simnet` — a deterministic discrete-event network and host simulator.
//!
//! The paper evaluates Stratus on an Alibaba Cloud testbed (LAN with up to
//! 3 Gb/s per replica and < 10 ms RTT; WAN emulated with NetEm at
//! 100 Mb/s and 100 ms RTT).  This crate is the substitute substrate: it
//! models exactly the resources those experiments exercise —
//!
//! * **per-replica outbound bandwidth** — every message is serialized
//!   through a FIFO (with an optional high-priority lane for consensus
//!   messages, matching the Stratus prioritization optimization),
//! * **per-link propagation latency and jitter**, with injectable
//!   asynchrony windows (Figure 8's "network fluctuation"),
//! * **per-message CPU cost**, so small deployments are CPU-bound the way
//!   the paper's 4-vCPU instances are,
//!
//! while protocol logic runs as deterministic event-driven state machines
//! implementing the [`Node`] trait.  All randomness flows from a single
//! seed, so every run is reproducible.
//!
//! # Example
//!
//! ```
//! use simnet::{NetConfig, Node, NodeCtx, SimMessage, Simulation, TimerTag};
//! use smp_types::ReplicaId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl SimMessage for Ping {
//!     fn wire_size(&self) -> usize { 64 }
//!     fn kind(&self) -> &'static str { "ping" }
//! }
//!
//! /// Every node forwards the token to the next node, once.
//! struct Relay { received: Option<u32> }
//! impl Node for Relay {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_, Ping>) {
//!         if ctx.id().0 == 0 {
//!             ctx.send(ReplicaId(1), Ping(0));
//!         }
//!     }
//!     fn on_message(&mut self, ctx: &mut NodeCtx<'_, Ping>, _from: ReplicaId, msg: Ping) {
//!         self.received = Some(msg.0);
//!         let next = (ctx.id().0 + 1) % ctx.n() as u32;
//!         if next != 0 {
//!             ctx.send(ReplicaId(next), Ping(msg.0 + 1));
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut NodeCtx<'_, Ping>, _tag: TimerTag) {}
//! }
//!
//! let nodes = (0..4).map(|_| Relay { received: None }).collect();
//! let mut sim = Simulation::new(nodes, NetConfig::lan(), 42);
//! sim.run_until(1_000_000);
//! assert!(sim.node(3).received.is_some());
//! ```

pub mod context;
pub mod driver;
pub mod event;
pub mod faults;
pub mod link;
pub mod message;
pub mod netmodel;
pub mod observation;
pub mod runner;

pub use context::{NodeCtx, TimerHandle, TimerTag};
pub use driver::{node_rng_seed, NodeAction, NodeDriver};
pub use event::{Event, EventKind};
pub use faults::{FaultAction, FaultSchedule};
pub use link::{OutboundLink, Priority};
pub use message::SimMessage;
pub use netmodel::{FaultWindow, NetConfig};
pub use observation::{ObsKind, Observation, ObservationLog};
pub use runner::{Node, Simulation};
pub use smp_telemetry::Telemetry;
