//! Network environment model: bandwidth, latency, jitter, fault windows.

use rand::Rng;
use serde::{Deserialize, Serialize};
use smp_types::{NetworkPreset, ReplicaId, SimTime};

/// A window of simulated time during which inter-replica delays are
/// replaced by a (usually much larger) uniformly random delay.
///
/// This reproduces the Figure 8 experiment, where NetEm injects delays
/// fluctuating between 100 ms and 300 ms for 10 seconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Minimum one-way delay during the window.
    pub min_delay_us: SimTime,
    /// Maximum one-way delay during the window.
    pub max_delay_us: SimTime,
}

impl FaultWindow {
    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// Complete description of the simulated network environment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Per-replica outbound bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Base one-way propagation delay between distinct replicas.
    pub one_way_delay_us: SimTime,
    /// Uniform jitter added to each message's propagation delay.
    pub jitter_us: SimTime,
    /// CPU speed factor: message CPU costs are divided by this (1.0 models
    /// the paper's 4-vCPU instances; larger is faster hardware).
    pub cpu_speed: f64,
    /// Asynchrony windows (Figure 8).
    pub fault_windows: Vec<FaultWindow>,
    /// Per-replica bandwidth overrides (bits per second); used to model
    /// heterogeneous capacity.
    pub bandwidth_overrides: Vec<(ReplicaId, u64)>,
    /// Fraction of outbound bandwidth reserved for the high-priority lane
    /// when both lanes are backlogged (Stratus prioritization).  The
    /// high-priority lane may always use idle capacity.
    pub priority_share: f64,
}

impl NetConfig {
    /// The paper's LAN environment (3 Gb/s, < 10 ms RTT).
    pub fn lan() -> Self {
        NetConfig::from_preset(NetworkPreset::Lan)
    }

    /// The paper's WAN environment (100 Mb/s, 100 ms RTT).
    pub fn wan() -> Self {
        NetConfig::from_preset(NetworkPreset::Wan)
    }

    /// Builds a config from a [`NetworkPreset`].
    pub fn from_preset(preset: NetworkPreset) -> Self {
        NetConfig {
            bandwidth_bps: preset.bandwidth_bps(),
            one_way_delay_us: preset.one_way_delay_us(),
            jitter_us: preset.jitter_us(),
            cpu_speed: 1.0,
            fault_windows: Vec::new(),
            bandwidth_overrides: Vec::new(),
            priority_share: 0.1,
        }
    }

    /// Adds an asynchrony window.
    pub fn with_fault_window(mut self, w: FaultWindow) -> Self {
        self.fault_windows.push(w);
        self
    }

    /// Overrides the outbound bandwidth of one replica.
    pub fn with_bandwidth_override(mut self, replica: ReplicaId, bps: u64) -> Self {
        self.bandwidth_overrides.push((replica, bps));
        self
    }

    /// Outbound bandwidth of `replica` in bits per second.
    pub fn bandwidth_of(&self, replica: ReplicaId) -> u64 {
        self.bandwidth_overrides
            .iter()
            .find(|(r, _)| *r == replica)
            .map(|(_, b)| *b)
            .unwrap_or(self.bandwidth_bps)
    }

    /// Time to push `bytes` bytes through `replica`'s outbound NIC.
    pub fn serialization_us(&self, replica: ReplicaId, bytes: usize) -> SimTime {
        let bps = self.bandwidth_of(replica).max(1);
        // bytes * 8 bits / (bits per second) => seconds; scale to micros.
        let us = (bytes as f64 * 8.0 * 1_000_000.0) / bps as f64;
        us.ceil() as SimTime
    }

    /// One-way propagation delay for a message sent at time `now`,
    /// including jitter and any active fault window.
    pub fn propagation_us<R: Rng>(
        &self,
        from: ReplicaId,
        to: ReplicaId,
        now: SimTime,
        rng: &mut R,
    ) -> SimTime {
        if from == to {
            // Loopback delivery is effectively immediate.
            return 1;
        }
        if let Some(w) = self.fault_windows.iter().find(|w| w.contains(now)) {
            let span = w.max_delay_us.saturating_sub(w.min_delay_us);
            let extra = if span == 0 {
                0
            } else {
                rng.gen_range(0..=span)
            };
            return w.min_delay_us + extra;
        }
        let jitter = if self.jitter_us == 0 {
            0
        } else {
            rng.gen_range(0..=self.jitter_us)
        };
        self.one_way_delay_us + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn presets_match_paper_environments() {
        let lan = NetConfig::lan();
        let wan = NetConfig::wan();
        assert_eq!(lan.bandwidth_bps, 3_000_000_000);
        assert_eq!(wan.bandwidth_bps, 100_000_000);
        assert_eq!(wan.one_way_delay_us, 50_000);
    }

    #[test]
    fn serialization_time_scales_with_size_and_bandwidth() {
        let wan = NetConfig::wan();
        // 100 Mb/s => 12.5 MB/s => 1 MB takes 80 ms.
        let t = wan.serialization_us(ReplicaId(0), 1_000_000);
        assert_eq!(t, 80_000);
        let lan = NetConfig::lan();
        assert!(lan.serialization_us(ReplicaId(0), 1_000_000) < t);
    }

    #[test]
    fn bandwidth_override_applies_to_specific_replica() {
        let cfg = NetConfig::wan().with_bandwidth_override(ReplicaId(3), 10_000_000);
        assert_eq!(cfg.bandwidth_of(ReplicaId(3)), 10_000_000);
        assert_eq!(cfg.bandwidth_of(ReplicaId(4)), 100_000_000);
        assert!(
            cfg.serialization_us(ReplicaId(3), 1000) > cfg.serialization_us(ReplicaId(4), 1000)
        );
    }

    #[test]
    fn propagation_respects_fault_window() {
        let cfg = NetConfig::wan().with_fault_window(FaultWindow {
            start: 1_000_000,
            end: 2_000_000,
            min_delay_us: 100_000,
            max_delay_us: 300_000,
        });
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            let inside = cfg.propagation_us(ReplicaId(0), ReplicaId(1), 1_500_000, &mut rng);
            assert!((100_000..=300_000).contains(&inside));
            let outside = cfg.propagation_us(ReplicaId(0), ReplicaId(1), 500_000, &mut rng);
            assert!(outside >= 50_000 && outside <= 50_000 + cfg.jitter_us);
        }
    }

    #[test]
    fn loopback_is_instant() {
        let cfg = NetConfig::lan();
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(
            cfg.propagation_us(ReplicaId(2), ReplicaId(2), 0, &mut rng),
            1
        );
    }

    #[test]
    fn fault_window_bounds_are_half_open() {
        let w = FaultWindow {
            start: 10,
            end: 20,
            min_delay_us: 1,
            max_delay_us: 2,
        };
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(19));
        assert!(!w.contains(20));
    }
}
