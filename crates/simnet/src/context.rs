//! The context handed to node handlers.
//!
//! Handlers never touch the event queue or the network directly: they
//! record *actions* (send, broadcast, set/cancel timer, observe) through a
//! [`NodeCtx`], and the simulation applies them after the handler returns.
//! This keeps protocol code free of simulator internals and makes handlers
//! trivially unit-testable.

use crate::observation::{ObsKind, Observation};
use rand::rngs::SmallRng;
use smp_telemetry::Telemetry;
use smp_types::{ReplicaId, SimTime};

/// Application-defined timer tag delivered back in `on_timer`.
pub type TimerTag = u64;

/// Handle identifying a scheduled timer, usable for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerHandle(pub(crate) u64);

/// An action recorded by a handler.
#[derive(Debug)]
pub(crate) enum Action<M> {
    Send {
        to: ReplicaId,
        msg: M,
    },
    SetTimer {
        at: SimTime,
        timer_id: u64,
        tag: TimerTag,
    },
    CancelTimer {
        timer_id: u64,
    },
    Observe(Observation),
}

/// Execution context available to a node handler.
pub struct NodeCtx<'a, M> {
    pub(crate) id: ReplicaId,
    pub(crate) n: usize,
    pub(crate) now: SimTime,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) actions: &'a mut Vec<Action<M>>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) telemetry: &'a Telemetry,
}

impl<'a, M> NodeCtx<'a, M> {
    /// Identifier of the node running the handler.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of replicas in the system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic per-node random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// This node's telemetry handle (prefixed `replica.<id>`).  Disabled
    /// unless the simulation was built with
    /// [`with_telemetry`](crate::Simulation::with_telemetry).
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// Sends `msg` to `to` over the simulated network.
    pub fn send(&mut self, to: ReplicaId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Sends `msg` to every replica except this one.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.n as u32 {
            let to = ReplicaId(i);
            if to != self.id {
                self.send(to, msg.clone());
            }
        }
    }

    /// Sends `msg` to every replica in `targets`.
    pub fn multicast(&mut self, targets: &[ReplicaId], msg: M)
    where
        M: Clone,
    {
        for &to in targets {
            self.send(to, msg.clone());
        }
    }

    /// Schedules a timer to fire after `delay`, returning a handle that can
    /// cancel it.
    pub fn set_timer(&mut self, delay: SimTime, tag: TimerTag) -> TimerHandle {
        let timer_id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.actions.push(Action::SetTimer {
            at: self.now.saturating_add(delay),
            timer_id,
            tag,
        });
        TimerHandle(timer_id)
    }

    /// Cancels a previously set timer (a no-op if it already fired).
    pub fn cancel_timer(&mut self, handle: TimerHandle) {
        self.actions
            .push(Action::CancelTimer { timer_id: handle.0 });
    }

    /// Emits an observation into the simulation's observation log.
    pub fn observe(&mut self, kind: ObsKind) {
        self.actions.push(Action::Observe(Observation {
            time: self.now,
            node: self.id,
            kind,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    static DISABLED: Telemetry = Telemetry::disabled();

    fn ctx_with<'a>(
        actions: &'a mut Vec<Action<u32>>,
        rng: &'a mut SmallRng,
        next_timer: &'a mut u64,
    ) -> NodeCtx<'a, u32> {
        NodeCtx {
            id: ReplicaId(1),
            n: 4,
            now: 500,
            rng,
            actions,
            next_timer_id: next_timer,
            telemetry: &DISABLED,
        }
    }

    #[test]
    fn broadcast_excludes_self() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next = 0;
        let mut ctx = ctx_with(&mut actions, &mut rng, &mut next);
        ctx.broadcast(7u32);
        let targets: Vec<ReplicaId> = actions
            .iter()
            .map(|a| match a {
                Action::Send { to, .. } => *to,
                _ => panic!("unexpected action"),
            })
            .collect();
        assert_eq!(targets, vec![ReplicaId(0), ReplicaId(2), ReplicaId(3)]);
    }

    #[test]
    fn timers_get_unique_ids_and_absolute_times() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next = 0;
        let mut ctx = ctx_with(&mut actions, &mut rng, &mut next);
        let h1 = ctx.set_timer(100, 1);
        let h2 = ctx.set_timer(200, 2);
        assert_ne!(h1, h2);
        match (&actions[0], &actions[1]) {
            (Action::SetTimer { at: a1, .. }, Action::SetTimer { at: a2, .. }) => {
                assert_eq!(*a1, 600);
                assert_eq!(*a2, 700);
            }
            _ => panic!("unexpected actions"),
        }
    }

    #[test]
    fn multicast_targets_exactly_requested_nodes() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next = 0;
        let mut ctx = ctx_with(&mut actions, &mut rng, &mut next);
        ctx.multicast(&[ReplicaId(0), ReplicaId(3)], 9u32);
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn observe_records_node_and_time() {
        let mut actions = Vec::new();
        let mut rng = SmallRng::seed_from_u64(0);
        let mut next = 0;
        let mut ctx = ctx_with(&mut actions, &mut rng, &mut next);
        ctx.observe(ObsKind::Custom {
            label: "x".into(),
            value: 1.0,
        });
        match &actions[0] {
            Action::Observe(o) => {
                assert_eq!(o.node, ReplicaId(1));
                assert_eq!(o.time, 500);
            }
            _ => panic!("unexpected action"),
        }
    }
}
