//! Scripted fault injection for the simulator.
//!
//! A [`FaultSchedule`] is a time-ordered script of [`FaultAction`]s that
//! the simulation applies deterministically, interleaved with ordinary
//! events: before dispatching any event at time `t`, every scheduled
//! fault with time `<= t` fires first (ties resolve fault-before-event,
//! and among faults in schedule order).  Faults therefore replay
//! identically for a given `(seed, schedule)` pair, which is what makes
//! crash-recovery testable — a chaos run can be compared byte-for-byte
//! against an unfaulted reference.
//!
//! The fault plane is **provably inert when unused**: an empty schedule
//! adds no events, draws nothing from any RNG (burst jitter comes from a
//! dedicated fault RNG, never the per-node streams), and leaves every
//! delivery and timer untouched.
//!
//! Supported faults:
//!
//! * [`Crash`](FaultAction::Crash) / [`Restart`](FaultAction::Restart) —
//!   a crashed node stops executing: pending deliveries to it are
//!   dropped at its NIC, its timers never fire, and its queued (not yet
//!   transmitting) outbound messages are lost.  Restart resurrects it
//!   with a fresh incarnation: the per-node RNG is reseeded exactly as a
//!   freshly exec'd process would be, timers from the previous
//!   incarnation are dead on arrival, and the node's
//!   [`on_restart`](crate::Node::on_restart) hook runs.
//! * [`Partition`](FaultAction::Partition) / [`Heal`](FaultAction::Heal)
//!   — severs every link between an island of nodes and the rest of the
//!   cluster (deliveries crossing the cut are dropped); `Heal` restores
//!   full connectivity.
//! * [`DropBurst`](FaultAction::DropBurst) — every peer delivery landing
//!   inside the window is dropped (client input is spared).
//! * [`DelayBurst`](FaultAction::DelayBurst) — every peer delivery
//!   landing inside the window is deferred by a uniform extra delay
//!   drawn from the fault RNG (network turbulence, Figure 8 style).

use smp_types::{ReplicaId, SimTime};

/// One scripted fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Halt `0` at the scheduled time.  No-op if already crashed.
    Crash(ReplicaId),
    /// Resurrect a crashed node with a fresh incarnation.  No-op if the
    /// node is not crashed.
    Restart(ReplicaId),
    /// Sever every link between the island and the rest of the cluster.
    /// Replaces any previous partition.
    Partition(Vec<ReplicaId>),
    /// Restore full connectivity.
    Heal,
    /// Drop every peer delivery arriving within `duration` of the
    /// scheduled time.
    DropBurst {
        /// Window length in simulated microseconds.
        duration: SimTime,
    },
    /// Defer every peer delivery arriving within `duration` of the
    /// scheduled time by an extra uniform delay in `[min_us, max_us]`.
    DelayBurst {
        /// Window length in simulated microseconds.
        duration: SimTime,
        /// Minimum extra delay (clamped to at least 1 µs).
        min_us: SimTime,
        /// Maximum extra delay.
        max_us: SimTime,
    },
}

/// A deterministic, time-ordered script of faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<(SimTime, FaultAction)>,
}

impl FaultSchedule {
    /// An empty schedule (the inert fault plane).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `action` at simulated time `at` (builder style).  Entries
    /// may be added in any order; the schedule replays sorted by time,
    /// with same-time entries in insertion order.
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push((at, action));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled faults sorted by time (stable, so same-time entries
    /// keep insertion order).
    pub(crate) fn into_sorted(self) -> Vec<(SimTime, FaultAction)> {
        let mut events = self.events;
        events.sort_by_key(|(t, _)| *t);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_stably_by_time() {
        let s = FaultSchedule::new()
            .at(300, FaultAction::Heal)
            .at(100, FaultAction::Crash(ReplicaId(1)))
            .at(100, FaultAction::Crash(ReplicaId(2)))
            .at(200, FaultAction::Restart(ReplicaId(1)));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let sorted = s.into_sorted();
        assert_eq!(sorted[0], (100, FaultAction::Crash(ReplicaId(1))));
        assert_eq!(sorted[1], (100, FaultAction::Crash(ReplicaId(2))));
        assert_eq!(sorted[2], (200, FaultAction::Restart(ReplicaId(1))));
        assert_eq!(sorted[3], (300, FaultAction::Heal));
    }

    #[test]
    fn empty_schedule_is_inert_shaped() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.into_sorted(), vec![]);
    }
}
