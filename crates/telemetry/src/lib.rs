//! Observability layer for the Stratus reproduction.
//!
//! A [`Telemetry`] handle is threaded through the simulation, replicas,
//! mempools, shard executors, and the distributed load balancer.  It
//! fans into two sinks:
//!
//! * a hierarchical [`MetricsRegistry`] of counters, gauges, and latency
//!   histograms addressed by dotted keys such as
//!   `replica.3.shard.1.gossip.bytes_out`, with snapshot/diff and JSON
//!   export; and
//! * a bounded ring-buffer [`Tracer`] of spans carrying both the
//!   simulated timestamp and wall-clock duration, exportable as a
//!   chrome://tracing document or a per-phase self-time profile.
//!
//! The handle is cheap to clone (an `Arc` plus a key prefix) and has a
//! [`disabled`](Telemetry::disabled) mode in which every operation
//! returns before formatting a key or taking a lock, so instrumented hot
//! paths cost one branch when telemetry is off.  Telemetry never touches
//! simulation RNG or event ordering: enabling it must leave simulation
//! results byte-identical (the cross-executor conformance suite asserts
//! this).

pub mod flightrec;
mod registry;
mod tracer;

pub use flightrec::{
    merge_cluster_series, FlightRecorder, FlightSampler, FlightWindow, CLUSTER_FLIGHTREC_SCHEMA,
    DEFAULT_WINDOW_CAPACITY, FLIGHTREC_SCHEMA,
};
pub use registry::{rollup_snapshots, Metric, MetricsRegistry, MetricsSnapshot, SnapValue};
pub use tracer::{merge_chrome_traces, PhaseProfile, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};

use smp_metrics::JsonValue;
use smp_types::SimTime;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct Inner {
    registry: Mutex<MetricsRegistry>,
    tracer: Mutex<Tracer>,
    epoch: Instant,
    /// Wall-clock time of `epoch` as µs since the Unix epoch — the
    /// cross-process alignment anchor for merging traces and series.
    epoch_unix_us: u64,
    /// Wall-clock-only mode: there is no simulated clock (the sink
    /// belongs to a real-socket run), so spans stamp their "sim"
    /// timestamp from the wall-clock epoch instead of trusting the
    /// caller-supplied `sim_now` (which is 0 for plain [`Telemetry::span`]).
    wall_only: bool,
}

/// A cloneable handle to one telemetry sink (or to nothing, when
/// disabled).  Clones share the sink; [`with_prefix`](Telemetry::with_prefix)
/// derives handles that prepend a key segment, which is how per-replica
/// and per-shard hierarchies (`replica.3.shard.1.…`) are built.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
    prefix: String,
    track: u32,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.inner.is_some())
            .field("prefix", &self.prefix)
            .field("track", &self.track)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A no-op handle: every operation returns immediately.
    pub const fn disabled() -> Self {
        Telemetry {
            inner: None,
            prefix: String::new(),
            track: 0,
        }
    }

    /// A live handle with the default trace capacity.
    pub fn new() -> Self {
        Telemetry::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live handle retaining up to `capacity` completed spans.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        Telemetry::build(capacity, false)
    }

    /// A live handle for runs with no simulated clock (the real-socket
    /// runtime): spans stamp wall-clock-since-epoch microseconds as
    /// their timeline timestamp, so `span()` needs no `sim_now`.
    pub fn wall_clock() -> Self {
        Telemetry::build(DEFAULT_TRACE_CAPACITY, true)
    }

    fn build(capacity: usize, wall_only: bool) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: Mutex::new(MetricsRegistry::new()),
                tracer: Mutex::new(Tracer::new(capacity)),
                epoch: Instant::now(),
                epoch_unix_us: SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_micros() as u64)
                    .unwrap_or(0),
                wall_only,
            })),
            prefix: String::new(),
            track: 0,
        }
    }

    /// Whether this handle is in wall-clock-only mode.
    pub fn is_wall_clock(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.wall_only)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle recording under `prefix.` + the current prefix chain.
    /// On a disabled handle this is free (no string is built).
    pub fn with_prefix(&self, prefix: &str) -> Self {
        if self.inner.is_none() {
            return self.clone();
        }
        let prefix = if self.prefix.is_empty() {
            prefix.to_string()
        } else {
            format!("{}.{}", self.prefix, prefix)
        };
        Telemetry {
            inner: self.inner.clone(),
            prefix,
            track: self.track,
        }
    }

    /// A handle whose spans render on chrome-trace track `track`
    /// (replicas use their id).
    pub fn with_track(&self, track: u32) -> Self {
        Telemetry {
            inner: self.inner.clone(),
            prefix: self.prefix.clone(),
            track,
        }
    }

    fn key(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    /// Adds `v` to the counter `prefix.name`.
    pub fn counter_add(&self, name: &str, v: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .registry
            .lock()
            .unwrap()
            .counter_add(&self.key(name), v);
    }

    /// Increments the counter `prefix.name`.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Overwrites the counter `prefix.name` with an absolute value (for
    /// publishers mirroring their own monotonic totals — see
    /// [`MetricsRegistry::counter_store`]).
    pub fn counter_store(&self, name: &str, v: u64) {
        let Some(inner) = &self.inner else { return };
        inner
            .registry
            .lock()
            .unwrap()
            .counter_store(&self.key(name), v);
    }

    /// Sets the gauge `prefix.name`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        inner.registry.lock().unwrap().gauge_set(&self.key(name), v);
    }

    /// Records a latency observation (µs) under `prefix.name`.
    pub fn observe_us(&self, name: &str, us: u64) {
        self.observe_us_n(name, us, 1);
    }

    /// Records `count` identical latency observations (O(1)).
    pub fn observe_us_n(&self, name: &str, us: u64, count: usize) {
        let Some(inner) = &self.inner else { return };
        inner
            .registry
            .lock()
            .unwrap()
            .observe_us_n(&self.key(name), us, count);
    }

    /// Opens a wall-clock span; the span closes when the returned guard
    /// drops.  Use [`span_at`](Telemetry::span_at) to also record the
    /// simulated timestamp.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        self.span_at(name, 0)
    }

    /// Opens a span stamped with the current simulated time.
    pub fn span_at(&self, name: impl Into<Cow<'static, str>>, sim_now: SimTime) -> Span {
        let Some(inner) = &self.inner else {
            return Span { inner: None };
        };
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let ts = if inner.wall_only {
            wall_ns / 1_000
        } else {
            sim_now
        };
        inner
            .tracer
            .lock()
            .unwrap()
            .begin(name.into(), self.track, ts, wall_ns);
        Span {
            inner: Some(Arc::clone(inner)),
        }
    }

    /// Records a zero-duration instant event (connection up/down, …),
    /// self-stamped from the epoch in wall-clock mode.
    pub fn instant(&self, name: impl Into<Cow<'static, str>>) {
        self.instant_at(name, 0)
    }

    /// Records an instant event stamped with the given simulated time.
    pub fn instant_at(&self, name: impl Into<Cow<'static, str>>, sim_now: SimTime) {
        let Some(inner) = &self.inner else { return };
        let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
        let ts = if inner.wall_only {
            wall_ns / 1_000
        } else {
            sim_now
        };
        inner
            .tracer
            .lock()
            .unwrap()
            .instant(name.into(), self.track, ts, wall_ns);
    }

    /// Microseconds elapsed since this sink's epoch (0 when disabled).
    pub fn epoch_elapsed_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// The sink's epoch as µs since the Unix epoch (None when disabled).
    /// Cross-process merges align wall clocks by differencing these.
    pub fn epoch_unix_us(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.epoch_unix_us)
    }

    /// Freezes current metric values.  Empty when disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.registry.lock().unwrap().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// The metrics registry as a JSON object.
    pub fn registry_json(&self) -> JsonValue {
        self.snapshot().to_json()
    }

    /// Retained spans as a chrome://tracing document.
    pub fn trace_json(&self) -> JsonValue {
        match &self.inner {
            Some(inner) => inner.tracer.lock().unwrap().to_chrome_json(),
            None => JsonValue::Object(vec![(
                "traceEvents".to_string(),
                JsonValue::Array(Vec::new()),
            )]),
        }
    }

    /// Per-phase self-time profile of retained spans.
    pub fn profile(&self) -> BTreeMap<String, PhaseProfile> {
        match &self.inner {
            Some(inner) => inner.tracer.lock().unwrap().profile(),
            None => BTreeMap::new(),
        }
    }

    /// Number of completed spans currently retained.
    pub fn trace_len(&self) -> usize {
        match &self.inner {
            Some(inner) => inner.tracer.lock().unwrap().len(),
            None => 0,
        }
    }
}

/// Drop guard closing the span opened by [`Telemetry::span`].
#[must_use = "a span closes when this guard drops; binding it to `_` closes it immediately"]
pub struct Span {
    inner: Option<Arc<Inner>>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let wall_ns = inner.epoch.elapsed().as_nanos() as u64;
            inner.tracer.lock().unwrap().end(wall_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_add("a", 1);
        t.gauge_set("b", 2.0);
        t.observe_us("c", 3);
        {
            let _span = t.span("d");
        }
        assert!(t.snapshot().is_empty());
        assert_eq!(t.trace_len(), 0);
        assert!(t.profile().is_empty());
        // Deriving prefixed handles from a disabled handle stays inert.
        let d = t.with_prefix("replica.0").with_track(7);
        assert!(!d.is_enabled());
        d.counter_inc("x");
        assert!(d.snapshot().is_empty());
    }

    #[test]
    fn prefixed_clones_share_one_registry() {
        let root = Telemetry::new();
        let r0 = root.with_prefix("replica.0");
        let r0s1 = r0.with_prefix("shard.1");
        root.counter_add("events", 2);
        r0.counter_add("net.bytes_out", 100);
        r0s1.counter_add("gossip.bytes_out", 7);
        let snap = root.snapshot();
        assert_eq!(snap.counter("events"), Some(2));
        assert_eq!(snap.counter("replica.0.net.bytes_out"), Some(100));
        assert_eq!(snap.counter("replica.0.shard.1.gossip.bytes_out"), Some(7));
    }

    #[test]
    fn spans_record_with_track_and_sim_time() {
        let t = Telemetry::new();
        let r3 = t.with_prefix("replica.3").with_track(3);
        {
            let _outer = r3.span_at("replica.on_message", 1_234);
            let _inner = r3.span("replica.verify");
        }
        assert_eq!(t.trace_len(), 2);
        let doc = t.trace_json();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Inner span completes (and is recorded) first.
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("replica.verify")
        );
        assert_eq!(events[1].get("tid").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            events[1]
                .get("args")
                .unwrap()
                .get("sim_ts_us")
                .unwrap()
                .as_f64(),
            Some(1_234.0)
        );
        let profile = t.profile();
        assert_eq!(profile["replica.on_message"].count, 1);
        assert!(
            profile["replica.on_message"].total_wall_ns >= profile["replica.verify"].total_wall_ns
        );
    }

    #[test]
    fn wall_clock_mode_stamps_spans_from_the_epoch() {
        let t = Telemetry::wall_clock();
        assert!(t.is_wall_clock());
        assert!(!Telemetry::new().is_wall_clock());
        assert!(!Telemetry::disabled().is_wall_clock());
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _span = t.span("net.tick");
        }
        let doc = t.trace_json();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let ts = events[0]
            .get("args")
            .unwrap()
            .get("sim_ts_us")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(ts >= 2_000.0, "span not stamped from wall epoch: {ts}");
        // Prefixed/tracked clones keep the mode.
        assert!(t.with_prefix("replica.0").with_track(1).is_wall_clock());
    }

    #[test]
    fn handle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Telemetry>();
    }

    #[test]
    fn snapshot_diff_through_handle() {
        let t = Telemetry::new();
        t.counter_add("ticks", 1);
        let first = t.snapshot();
        t.counter_add("ticks", 4);
        let delta = t.snapshot().diff(&first);
        assert_eq!(delta.counter("ticks"), Some(4));
        let json = t.registry_json().to_pretty();
        assert!(json.contains("\"ticks\""));
    }
}
