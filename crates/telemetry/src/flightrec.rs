//! Flight recorder: a bounded ring of metrics time-series windows.
//!
//! A [`FlightRecorder`] turns the cumulative [`MetricsRegistry`]
//! (crate::MetricsRegistry) into a *time series*: each call to
//! [`sample`](FlightRecorder::sample) diffs the current snapshot against
//! the previous one and stores the delta as one window — per-key counter
//! increments, latest gauge levels, and latency-histogram percentiles for
//! that interval.  Old windows fall off the ring, so a long-running
//! replica retains a bounded recent history that an operator (or the
//! `localcluster` parent, over the admin socket) can pull at any moment
//! to see *what changed lately*, not just totals since boot.
//!
//! [`FlightSampler`] is the live half: a background thread sampling a
//! [`Telemetry`] sink on a fixed wall-clock cadence, with an optional
//! pre-sample hook so lock-free sources (the socket runtime's atomics)
//! can publish into the registry right before each snapshot.
//!
//! The exported series is schema-versioned ([`FLIGHTREC_SCHEMA`]);
//! [`merge_cluster_series`] unions per-replica series into the
//! cluster-wide artifact `localcluster` writes.

use crate::registry::MetricsSnapshot;
use crate::Telemetry;
use smp_metrics::JsonValue;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Schema tag stamped into every exported per-process series.
pub const FLIGHTREC_SCHEMA: &str = "smp-flightrec-v1";

/// Schema tag stamped into the merged cluster artifact.
pub const CLUSTER_FLIGHTREC_SCHEMA: &str = "smp-cluster-flightrec-v1";

/// Default number of windows retained.
pub const DEFAULT_WINDOW_CAPACITY: usize = 512;

/// One recorded interval: the metrics delta between two samples.
#[derive(Clone, Debug)]
pub struct FlightWindow {
    /// Monotonic window number (survives ring eviction).
    pub seq: u64,
    /// Wall-clock start of the interval, µs since the telemetry epoch.
    pub start_us: u64,
    /// Wall-clock end of the interval (the sample instant), µs.
    pub end_us: u64,
    /// Snapshot diff over the interval: counter deltas, latest gauge
    /// values, histogram percentiles with per-window observation counts.
    pub delta: MetricsSnapshot,
}

/// Bounded ring of [`FlightWindow`]s plus the last cumulative snapshot.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    cadence_us: u64,
    windows: VecDeque<FlightWindow>,
    last: Option<(u64, MetricsSnapshot)>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining up to `capacity` windows.  `cadence_us` is
    /// advisory — it records the sampler's intended period in the export
    /// so consumers can distinguish sparse data from a slow cadence.
    pub fn new(capacity: usize, cadence_us: u64) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            cadence_us,
            windows: VecDeque::new(),
            last: None,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one window: the diff of `snapshot` against the previous
    /// sample, covering `[previous sample time, now_us)`.  The first call
    /// records the full snapshot as a window starting at 0.
    pub fn sample(&mut self, snapshot: MetricsSnapshot, now_us: u64) {
        let start_us = self.last.as_ref().map(|(at, _)| *at).unwrap_or(0);
        let delta = match &self.last {
            Some((_, earlier)) => snapshot.diff(earlier),
            None => snapshot.clone(),
        };
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
            self.dropped += 1;
        }
        self.windows.push_back(FlightWindow {
            seq: self.next_seq,
            start_us,
            end_us: now_us,
            delta,
        });
        self.next_seq += 1;
        self.last = Some((now_us, snapshot));
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &FlightWindow> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Windows evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent cumulative snapshot (what the last `sample` saw).
    pub fn last_snapshot(&self) -> Option<&MetricsSnapshot> {
        self.last.as_ref().map(|(_, s)| s)
    }

    /// Exports the series as a schema-versioned JSON document.
    pub fn to_json(&self) -> JsonValue {
        let windows = self
            .windows
            .iter()
            .map(|w| {
                JsonValue::Object(vec![
                    ("seq".to_string(), JsonValue::Number(w.seq as f64)),
                    ("start_us".to_string(), JsonValue::Number(w.start_us as f64)),
                    ("end_us".to_string(), JsonValue::Number(w.end_us as f64)),
                    ("metrics".to_string(), w.delta.to_json()),
                ])
            })
            .collect();
        JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::String(FLIGHTREC_SCHEMA.to_string()),
            ),
            (
                "cadence_us".to_string(),
                JsonValue::Number(self.cadence_us as f64),
            ),
            (
                "dropped_windows".to_string(),
                JsonValue::Number(self.dropped as f64),
            ),
            ("windows".to_string(), JsonValue::Array(windows)),
        ])
    }
}

/// Merges per-replica flight-recorder series (documents in the shape
/// [`FlightRecorder::to_json`] emits) into the cluster-wide artifact:
/// per-replica series keyed by label, plus an optional cluster `rollup`
/// snapshot (see [`rollup_snapshots`](crate::rollup_snapshots)).
pub fn merge_cluster_series(
    sources: &[(String, JsonValue)],
    rollup: Option<JsonValue>,
) -> JsonValue {
    let replicas = sources
        .iter()
        .map(|(label, series)| (label.clone(), series.clone()))
        .collect();
    let mut pairs = vec![
        (
            "schema".to_string(),
            JsonValue::String(CLUSTER_FLIGHTREC_SCHEMA.to_string()),
        ),
        ("replicas".to_string(), JsonValue::Object(replicas)),
    ];
    if let Some(rollup) = rollup {
        pairs.push(("rollup".to_string(), rollup));
    }
    JsonValue::Object(pairs)
}

/// Background sampler: records one [`FlightWindow`] per cadence tick
/// until stopped, plus a final window at shutdown.
pub struct FlightSampler {
    recorder: Arc<Mutex<FlightRecorder>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl FlightSampler {
    /// Spawns a sampler over `telemetry`.  Every `cadence`, it first runs
    /// `pre_sample` (publish lock-free counters into the registry), then
    /// records a window stamped with the telemetry epoch clock.  On a
    /// disabled handle the sampler thread exits immediately.
    pub fn spawn(
        telemetry: Telemetry,
        cadence: Duration,
        capacity: usize,
        pre_sample: Option<Box<dyn Fn() + Send>>,
    ) -> FlightSampler {
        let recorder = Arc::new(Mutex::new(FlightRecorder::new(
            capacity,
            cadence.as_micros() as u64,
        )));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let recorder = Arc::clone(&recorder);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                if !telemetry.is_enabled() {
                    return;
                }
                loop {
                    // Sleep in small slices so stop() never waits a full
                    // cadence; sample on the cadence boundary.
                    let tick_start = std::time::Instant::now();
                    while tick_start.elapsed() < cadence {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(cadence.min(Duration::from_millis(20)));
                    }
                    if let Some(hook) = &pre_sample {
                        hook();
                    }
                    let now_us = telemetry.epoch_elapsed_us();
                    recorder
                        .lock()
                        .expect("flight recorder poisoned")
                        .sample(telemetry.snapshot(), now_us);
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            })
        };
        FlightSampler {
            recorder,
            stop,
            handle: Some(handle),
        }
    }

    /// The shared recorder (for the admin endpoint's `SERIES` command).
    pub fn recorder(&self) -> Arc<Mutex<FlightRecorder>> {
        Arc::clone(&self.recorder)
    }

    /// Stops the sampler (after one final sample) and returns the
    /// recorder.
    pub fn stop(mut self) -> Arc<Mutex<FlightRecorder>> {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
        Arc::clone(&self.recorder)
    }
}

impl Drop for FlightSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            handle.join().ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapValue;

    #[test]
    fn windows_hold_per_interval_counter_deltas() {
        let t = Telemetry::new();
        let mut rec = FlightRecorder::new(8, 1_000);
        t.counter_add("net.frames", 10);
        rec.sample(t.snapshot(), 1_000);
        t.counter_add("net.frames", 5);
        t.gauge_set("queue.depth", 3.0);
        rec.sample(t.snapshot(), 2_000);
        let windows: Vec<_> = rec.windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].delta.counter("net.frames"), Some(10));
        assert_eq!((windows[0].start_us, windows[0].end_us), (0, 1_000));
        assert_eq!(windows[1].delta.counter("net.frames"), Some(5));
        assert_eq!(
            windows[1].delta.get("queue.depth"),
            Some(&SnapValue::Gauge(3.0))
        );
        assert_eq!((windows[1].start_us, windows[1].end_us), (1_000, 2_000));
    }

    #[test]
    fn ring_evicts_oldest_windows() {
        let t = Telemetry::new();
        let mut rec = FlightRecorder::new(2, 0);
        for i in 0..5u64 {
            t.counter_add("c", 1);
            rec.sample(t.snapshot(), (i + 1) * 100);
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        let seqs: Vec<u64> = rec.windows().map(|w| w.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        // Each surviving window still holds only its own interval.
        for w in rec.windows() {
            assert_eq!(w.delta.counter("c"), Some(1));
        }
    }

    #[test]
    fn series_json_is_schema_versioned() {
        let t = Telemetry::new();
        t.counter_add("a", 2);
        t.observe_us("lat", 500);
        let mut rec = FlightRecorder::new(4, 250_000);
        rec.sample(t.snapshot(), 250_000);
        let doc = rec.to_json();
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some(FLIGHTREC_SCHEMA)
        );
        assert_eq!(
            doc.get("cadence_us").and_then(JsonValue::as_u64),
            Some(250_000)
        );
        let windows = doc.get("windows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(windows.len(), 1);
        let metrics = windows[0].get("metrics").unwrap();
        assert_eq!(
            metrics
                .get("a")
                .and_then(|m| m.get("value"))
                .and_then(JsonValue::as_u64),
            Some(2)
        );
        assert_eq!(
            metrics
                .get("lat")
                .and_then(|m| m.get("type"))
                .and_then(JsonValue::as_str),
            Some("hist")
        );
        // The series parses back (what the cluster merge does).
        assert_eq!(JsonValue::parse(&doc.to_pretty()).unwrap(), doc);
    }

    #[test]
    fn sampler_records_on_cadence_and_final_sample_on_stop() {
        let t = Telemetry::new();
        t.counter_add("ticks", 1);
        let sampler = FlightSampler::spawn(
            t.clone(),
            Duration::from_millis(10),
            16,
            Some(Box::new({
                let t = t.clone();
                move || t.counter_add("hooked", 1)
            })),
        );
        std::thread::sleep(Duration::from_millis(35));
        let recorder = sampler.stop();
        let rec = recorder.lock().unwrap();
        assert!(!rec.is_empty(), "no windows sampled");
        // The pre-sample hook ran before every window.
        let hooked: u64 = rec
            .windows()
            .filter_map(|w| w.delta.counter("hooked"))
            .sum();
        assert_eq!(hooked, rec.next_seq);
        assert!(rec.last_snapshot().is_some());
    }

    #[test]
    fn sampler_on_disabled_handle_is_inert() {
        let sampler =
            FlightSampler::spawn(Telemetry::disabled(), Duration::from_millis(1), 4, None);
        std::thread::sleep(Duration::from_millis(10));
        let recorder = sampler.stop();
        assert!(recorder.lock().unwrap().is_empty());
    }

    #[test]
    fn cluster_merge_wraps_replica_series() {
        let series = |v: u64| {
            let t = Telemetry::new();
            t.counter_add("net.frames", v);
            let mut rec = FlightRecorder::new(4, 0);
            rec.sample(t.snapshot(), 100);
            rec.to_json()
        };
        let merged = merge_cluster_series(
            &[
                ("replica.0".to_string(), series(1)),
                ("replica.1".to_string(), series(2)),
            ],
            Some(JsonValue::Object(vec![(
                "replica.0.net.frames".to_string(),
                JsonValue::Number(1.0),
            )])),
        );
        assert_eq!(
            merged.get("schema").and_then(JsonValue::as_str),
            Some(CLUSTER_FLIGHTREC_SCHEMA)
        );
        let replicas = merged.get("replicas").unwrap();
        assert!(replicas.get("replica.0").is_some());
        assert!(replicas.get("replica.1").is_some());
        assert!(merged.get("rollup").is_some());
    }
}
