//! Hierarchical metrics registry: counters, gauges, and latency
//! histograms addressed by dotted string keys
//! (`replica.3.shard.1.gossip.bytes_out`).

use smp_metrics::{JsonValue, LatencyHistogram};
use std::collections::BTreeMap;

/// One live metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Latency distribution in microseconds.
    Hist(LatencyHistogram),
}

/// A set of metrics keyed by hierarchical dotted names.  `BTreeMap` keeps
/// exports sorted and therefore diff-stable.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter at `key`, creating it at zero.
    ///
    /// If the key currently holds a different metric kind the call is
    /// ignored — mixing kinds under one key is a bug in the caller, and
    /// telemetry must never panic inside an instrumented hot path.
    pub fn counter_add(&mut self, key: &str, v: u64) {
        if let Metric::Counter(c) = self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Counter(0))
        {
            *c += v;
        }
    }

    /// Sets the gauge at `key`.
    pub fn gauge_set(&mut self, key: &str, v: f64) {
        if let Metric::Gauge(g) = self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            *g = v;
        }
    }

    /// Records a latency observation (µs) into the histogram at `key`.
    pub fn observe_us(&mut self, key: &str, us: u64) {
        self.observe_us_n(key, us, 1);
    }

    /// Records `count` identical latency observations at `key` (O(1)).
    pub fn observe_us_n(&mut self, key: &str, us: u64, count: usize) {
        if let Metric::Hist(h) = self
            .metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Hist(LatencyHistogram::new()))
        {
            h.record_n(us, count);
        }
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Reads a counter value (None if absent or a different kind).
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Reads a gauge value.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Freezes the current values into a [`MetricsSnapshot`].
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        let values = self
            .metrics
            .iter_mut()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapValue::Counter(*c),
                    Metric::Gauge(g) => SnapValue::Gauge(*g),
                    Metric::Hist(h) => SnapValue::Hist {
                        count: h.count() as u64,
                        mean_us: h.mean_us().unwrap_or(0.0),
                        p50_us: h.percentile_us(50.0).unwrap_or(0),
                        p95_us: h.percentile_us(95.0).unwrap_or(0),
                        p99_us: h.percentile_us(99.0).unwrap_or(0),
                        max_us: h.max_us().unwrap_or(0),
                    },
                };
                (key.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// A frozen metric value inside a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapValue {
    Counter(u64),
    Gauge(f64),
    Hist {
        count: u64,
        mean_us: f64,
        p50_us: u64,
        p95_us: u64,
        p99_us: u64,
        max_us: u64,
    },
}

/// A point-in-time copy of a [`MetricsRegistry`], diffable and
/// JSON-exportable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, SnapValue>,
}

impl MetricsSnapshot {
    /// Reads one frozen value.
    pub fn get(&self, key: &str) -> Option<&SnapValue> {
        self.values.get(key)
    }

    /// Reads a frozen counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(SnapValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SnapValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The change since `earlier`: counters and histogram counts are
    /// subtracted; gauges and percentiles keep their latest value.  Keys
    /// absent from `earlier` appear unchanged.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(key, value)| {
                let diffed = match (value, earlier.values.get(key)) {
                    (SnapValue::Counter(now), Some(SnapValue::Counter(then))) => {
                        SnapValue::Counter(now.saturating_sub(*then))
                    }
                    (
                        SnapValue::Hist {
                            count,
                            mean_us,
                            p50_us,
                            p95_us,
                            p99_us,
                            max_us,
                        },
                        Some(SnapValue::Hist { count: then, .. }),
                    ) => SnapValue::Hist {
                        count: count.saturating_sub(*then),
                        mean_us: *mean_us,
                        p50_us: *p50_us,
                        p95_us: *p95_us,
                        p99_us: *p99_us,
                        max_us: *max_us,
                    },
                    (value, _) => value.clone(),
                };
                (key.clone(), diffed)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// Exports the snapshot as a JSON object keyed by metric name.
    pub fn to_json(&self) -> JsonValue {
        let pairs = self
            .values
            .iter()
            .map(|(key, value)| {
                let v = match value {
                    SnapValue::Counter(c) => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("counter".to_string())),
                        ("value".to_string(), JsonValue::Number(*c as f64)),
                    ]),
                    SnapValue::Gauge(g) => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("gauge".to_string())),
                        ("value".to_string(), JsonValue::Number(*g)),
                    ]),
                    SnapValue::Hist {
                        count,
                        mean_us,
                        p50_us,
                        p95_us,
                        p99_us,
                        max_us,
                    } => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("hist".to_string())),
                        ("count".to_string(), JsonValue::Number(*count as f64)),
                        ("mean_us".to_string(), JsonValue::Number(*mean_us)),
                        ("p50_us".to_string(), JsonValue::Number(*p50_us as f64)),
                        ("p95_us".to_string(), JsonValue::Number(*p95_us as f64)),
                        ("p99_us".to_string(), JsonValue::Number(*p99_us as f64)),
                        ("max_us".to_string(), JsonValue::Number(*max_us as f64)),
                    ]),
                };
                (key.clone(), v)
            })
            .collect();
        JsonValue::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = MetricsRegistry::new();
        r.counter_add("replica.0.net.bytes_out", 100);
        r.counter_add("replica.0.net.bytes_out", 50);
        r.gauge_set("replica.0.carry", 3.0);
        r.gauge_set("replica.0.carry", 7.0);
        r.observe_us("replica.0.commit_latency", 1_000);
        r.observe_us_n("replica.0.commit_latency", 2_000, 3);
        assert_eq!(r.counter("replica.0.net.bytes_out"), Some(150));
        assert_eq!(r.gauge("replica.0.carry"), Some(7.0));
        let snap = r.snapshot();
        assert_eq!(snap.counter("replica.0.net.bytes_out"), Some(150));
        match snap.get("replica.0.commit_latency").unwrap() {
            SnapValue::Hist { count, max_us, .. } => {
                assert_eq!(*count, 4);
                assert_eq!(*max_us, 2_000);
            }
            other => panic!("expected hist, got {other:?}"),
        }
        let json = snap.to_json().to_compact();
        assert!(json.contains("\"replica.0.net.bytes_out\""));
        assert!(json.contains("\"counter\""));
        assert!(json.contains("\"hist\""));
    }

    #[test]
    fn kind_conflicts_are_ignored_not_panics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("k", 1);
        r.gauge_set("k", 5.0);
        r.observe_us("k", 10);
        assert_eq!(r.counter("k"), Some(1));
        assert_eq!(r.gauge("k"), None);
    }

    #[test]
    fn diff_subtracts_counters_keeps_gauges() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 10);
        r.gauge_set("g", 1.0);
        r.observe_us("h", 100);
        let first = r.snapshot();
        r.counter_add("c", 5);
        r.gauge_set("g", 9.0);
        r.observe_us("h", 200);
        r.counter_add("new", 2);
        let second = r.snapshot();
        let d = second.diff(&first);
        assert_eq!(d.counter("c"), Some(5));
        assert_eq!(d.get("g"), Some(&SnapValue::Gauge(9.0)));
        assert_eq!(d.counter("new"), Some(2));
        match d.get("h").unwrap() {
            SnapValue::Hist { count, .. } => assert_eq!(*count, 1),
            other => panic!("expected hist, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        let snap = r.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
