//! Hierarchical metrics registry: counters, gauges, and latency
//! histograms addressed by dotted string keys
//! (`replica.3.shard.1.gossip.bytes_out`).

use smp_metrics::{JsonValue, LatencyHistogram};
use std::collections::BTreeMap;

/// One live metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotonically increasing count.
    Counter(u64),
    /// Last-write-wins level.
    Gauge(f64),
    /// Latency distribution in microseconds.
    Hist(LatencyHistogram),
}

/// A set of metrics keyed by hierarchical dotted names.  `BTreeMap` keeps
/// exports sorted and therefore diff-stable.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter at `key`, creating it at zero.
    ///
    /// If the key currently holds a different metric kind the call is
    /// ignored — mixing kinds under one key is a bug in the caller, and
    /// telemetry must never panic inside an instrumented hot path.
    pub fn counter_add(&mut self, key: &str, v: u64) {
        if let Metric::Counter(c) = self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Counter(0))
        {
            *c += v;
        }
    }

    /// Overwrites the counter at `key` with an absolute value.
    ///
    /// For publishers that maintain their own monotonic totals (e.g. the
    /// socket runtime's lock-free atomics) and periodically mirror them
    /// into the registry: storing the absolute value keeps the counter
    /// monotonic without the publisher tracking per-key deltas.
    pub fn counter_store(&mut self, key: &str, v: u64) {
        if let Metric::Counter(c) = self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Counter(0))
        {
            *c = v;
        }
    }

    /// Sets the gauge at `key`.
    pub fn gauge_set(&mut self, key: &str, v: f64) {
        if let Metric::Gauge(g) = self
            .metrics
            .entry(key.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            *g = v;
        }
    }

    /// Records a latency observation (µs) into the histogram at `key`.
    pub fn observe_us(&mut self, key: &str, us: u64) {
        self.observe_us_n(key, us, 1);
    }

    /// Records `count` identical latency observations at `key` (O(1)).
    pub fn observe_us_n(&mut self, key: &str, us: u64, count: usize) {
        if let Metric::Hist(h) = self
            .metrics
            .entry(key.to_string())
            .or_insert_with(|| Metric::Hist(LatencyHistogram::new()))
        {
            h.record_n(us, count);
        }
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Reads a counter value (None if absent or a different kind).
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.metrics.get(key) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Reads a gauge value.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        match self.metrics.get(key) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Freezes the current values into a [`MetricsSnapshot`].
    pub fn snapshot(&mut self) -> MetricsSnapshot {
        let values = self
            .metrics
            .iter_mut()
            .map(|(key, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapValue::Counter(*c),
                    Metric::Gauge(g) => SnapValue::Gauge(*g),
                    Metric::Hist(h) => SnapValue::Hist {
                        count: h.count() as u64,
                        mean_us: h.mean_us().unwrap_or(0.0),
                        p50_us: h.percentile_us(50.0).unwrap_or(0),
                        p95_us: h.percentile_us(95.0).unwrap_or(0),
                        p99_us: h.percentile_us(99.0).unwrap_or(0),
                        max_us: h.max_us().unwrap_or(0),
                    },
                };
                (key.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

/// A frozen metric value inside a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapValue {
    Counter(u64),
    Gauge(f64),
    Hist {
        count: u64,
        mean_us: f64,
        p50_us: u64,
        p95_us: u64,
        p99_us: u64,
        max_us: u64,
    },
}

/// A point-in-time copy of a [`MetricsRegistry`], diffable and
/// JSON-exportable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, SnapValue>,
}

impl MetricsSnapshot {
    /// Reads one frozen value.
    pub fn get(&self, key: &str) -> Option<&SnapValue> {
        self.values.get(key)
    }

    /// Reads a frozen counter.
    pub fn counter(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(SnapValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Iterates `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &SnapValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The change since `earlier`: counters and histogram counts are
    /// subtracted; gauges and percentiles keep their latest value.  Keys
    /// absent from `earlier` appear unchanged.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(key, value)| {
                let diffed = match (value, earlier.values.get(key)) {
                    (SnapValue::Counter(now), Some(SnapValue::Counter(then))) => {
                        SnapValue::Counter(now.saturating_sub(*then))
                    }
                    (
                        SnapValue::Hist {
                            count,
                            mean_us,
                            p50_us,
                            p95_us,
                            p99_us,
                            max_us,
                        },
                        Some(SnapValue::Hist { count: then, .. }),
                    ) => SnapValue::Hist {
                        count: count.saturating_sub(*then),
                        mean_us: *mean_us,
                        p50_us: *p50_us,
                        p95_us: *p95_us,
                        p99_us: *p99_us,
                        max_us: *max_us,
                    },
                    (value, _) => value.clone(),
                };
                (key.clone(), diffed)
            })
            .collect();
        MetricsSnapshot { values }
    }

    /// A copy of the snapshot with every key re-keyed to `prefix.key`.
    pub fn with_prefix(&self, prefix: &str) -> MetricsSnapshot {
        let values = self
            .values
            .iter()
            .map(|(key, value)| (format!("{prefix}.{key}"), value.clone()))
            .collect();
        MetricsSnapshot { values }
    }

    /// Inserts one frozen value (used when rebuilding from JSON and when
    /// merging per-replica snapshots).  Existing keys keep their first
    /// value.
    pub fn insert(&mut self, key: String, value: SnapValue) {
        self.values.entry(key).or_insert(value);
    }

    /// Rebuilds a snapshot from the object [`to_json`](Self::to_json)
    /// emits.  Unknown or malformed entries are skipped — the parser is
    /// for merging artifacts collected over an admin socket, where a
    /// best-effort union beats a hard failure.
    pub fn from_json(doc: &JsonValue) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        let Some(pairs) = doc.as_object() else {
            return snap;
        };
        for (key, entry) in pairs {
            let Some(kind) = entry.get("type").and_then(JsonValue::as_str) else {
                continue;
            };
            let value = match kind {
                "counter" => entry
                    .get("value")
                    .and_then(JsonValue::as_u64)
                    .map(SnapValue::Counter),
                "gauge" => entry
                    .get("value")
                    .and_then(JsonValue::as_f64)
                    .map(SnapValue::Gauge),
                "hist" => {
                    let field = |name: &str| entry.get(name).and_then(JsonValue::as_u64);
                    match (
                        field("count"),
                        entry.get("mean_us").and_then(JsonValue::as_f64),
                    ) {
                        (Some(count), Some(mean_us)) => Some(SnapValue::Hist {
                            count,
                            mean_us,
                            p50_us: field("p50_us").unwrap_or(0),
                            p95_us: field("p95_us").unwrap_or(0),
                            p99_us: field("p99_us").unwrap_or(0),
                            max_us: field("max_us").unwrap_or(0),
                        }),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(value) = value {
                snap.insert(key.clone(), value);
            }
        }
        snap
    }

    /// Exports the snapshot as a JSON object keyed by metric name.
    pub fn to_json(&self) -> JsonValue {
        let pairs = self
            .values
            .iter()
            .map(|(key, value)| {
                let v = match value {
                    SnapValue::Counter(c) => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("counter".to_string())),
                        ("value".to_string(), JsonValue::Number(*c as f64)),
                    ]),
                    SnapValue::Gauge(g) => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("gauge".to_string())),
                        ("value".to_string(), JsonValue::Number(*g)),
                    ]),
                    SnapValue::Hist {
                        count,
                        mean_us,
                        p50_us,
                        p95_us,
                        p99_us,
                        max_us,
                    } => JsonValue::Object(vec![
                        ("type".to_string(), JsonValue::String("hist".to_string())),
                        ("count".to_string(), JsonValue::Number(*count as f64)),
                        ("mean_us".to_string(), JsonValue::Number(*mean_us)),
                        ("p50_us".to_string(), JsonValue::Number(*p50_us as f64)),
                        ("p95_us".to_string(), JsonValue::Number(*p95_us as f64)),
                        ("p99_us".to_string(), JsonValue::Number(*p99_us as f64)),
                        ("max_us".to_string(), JsonValue::Number(*max_us as f64)),
                    ]),
                };
                (key.clone(), v)
            })
            .collect();
        JsonValue::Object(pairs)
    }
}

/// Merges per-replica snapshots into one cluster-wide rollup.
///
/// Each source is `(owner, snapshot)` where `owner` is the key prefix
/// that replica's metrics are expected to live under (`"replica.3"`).
/// Keys already namespaced under their owner merge as-is; keys outside
/// the owner's namespace (process-level metrics recorded without a
/// replica prefix) are re-prefixed with the owner, so two replicas
/// recording the same un-prefixed key can never collide in the rollup.
pub fn rollup_snapshots(sources: &[(String, MetricsSnapshot)]) -> MetricsSnapshot {
    let mut out = MetricsSnapshot::default();
    for (owner, snap) in sources {
        let owner_dot = format!("{owner}.");
        for (key, value) in snap.iter() {
            let merged_key = if key.starts_with(&owner_dot) || key == owner {
                key.to_string()
            } else {
                format!("{owner}.{key}")
            };
            out.insert(merged_key, value.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_export() {
        let mut r = MetricsRegistry::new();
        r.counter_add("replica.0.net.bytes_out", 100);
        r.counter_add("replica.0.net.bytes_out", 50);
        r.gauge_set("replica.0.carry", 3.0);
        r.gauge_set("replica.0.carry", 7.0);
        r.observe_us("replica.0.commit_latency", 1_000);
        r.observe_us_n("replica.0.commit_latency", 2_000, 3);
        assert_eq!(r.counter("replica.0.net.bytes_out"), Some(150));
        assert_eq!(r.gauge("replica.0.carry"), Some(7.0));
        let snap = r.snapshot();
        assert_eq!(snap.counter("replica.0.net.bytes_out"), Some(150));
        match snap.get("replica.0.commit_latency").unwrap() {
            SnapValue::Hist { count, max_us, .. } => {
                assert_eq!(*count, 4);
                assert_eq!(*max_us, 2_000);
            }
            other => panic!("expected hist, got {other:?}"),
        }
        let json = snap.to_json().to_compact();
        assert!(json.contains("\"replica.0.net.bytes_out\""));
        assert!(json.contains("\"counter\""));
        assert!(json.contains("\"hist\""));
    }

    #[test]
    fn kind_conflicts_are_ignored_not_panics() {
        let mut r = MetricsRegistry::new();
        r.counter_add("k", 1);
        r.gauge_set("k", 5.0);
        r.observe_us("k", 10);
        assert_eq!(r.counter("k"), Some(1));
        assert_eq!(r.gauge("k"), None);
    }

    #[test]
    fn diff_subtracts_counters_keeps_gauges() {
        let mut r = MetricsRegistry::new();
        r.counter_add("c", 10);
        r.gauge_set("g", 1.0);
        r.observe_us("h", 100);
        let first = r.snapshot();
        r.counter_add("c", 5);
        r.gauge_set("g", 9.0);
        r.observe_us("h", 200);
        r.counter_add("new", 2);
        let second = r.snapshot();
        let d = second.diff(&first);
        assert_eq!(d.counter("c"), Some(5));
        assert_eq!(d.get("g"), Some(&SnapValue::Gauge(9.0)));
        assert_eq!(d.counter("new"), Some(2));
        match d.get("h").unwrap() {
            SnapValue::Hist { count, .. } => assert_eq!(*count, 1),
            other => panic!("expected hist, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_by_key() {
        let mut r = MetricsRegistry::new();
        r.counter_add("z", 1);
        r.counter_add("a", 1);
        let snap = r.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn counter_store_overwrites_for_mirroring_publishers() {
        let mut r = MetricsRegistry::new();
        r.counter_store("net.frames_in", 10);
        r.counter_store("net.frames_in", 25);
        assert_eq!(r.counter("net.frames_in"), Some(25));
        // counter_add still composes on top of a stored value.
        r.counter_add("net.frames_in", 5);
        assert_eq!(r.counter("net.frames_in"), Some(30));
    }

    #[test]
    fn diff_semantics_hold_across_repeated_windows() {
        // Three successive windows over one registry: counters and
        // histogram counts must always be per-window deltas, while
        // gauges and percentiles carry the latest level — exactly what
        // the flight recorder relies on.
        let mut r = MetricsRegistry::new();
        let mut prev = MetricsSnapshot::default();
        let mut windows = Vec::new();
        for round in 1..=3u64 {
            r.counter_add("c", 10 * round);
            r.gauge_set("depth", round as f64);
            r.observe_us_n("lat", 100 * round, round as usize);
            let now = r.snapshot();
            windows.push(now.diff(&prev));
            prev = now;
        }
        for (k, w) in windows.iter().enumerate() {
            let round = k as u64 + 1;
            assert_eq!(w.counter("c"), Some(10 * round), "window {k} counter");
            assert_eq!(
                w.get("depth"),
                Some(&SnapValue::Gauge(round as f64)),
                "window {k} gauge is the latest level, not a delta"
            );
            match w.get("lat").unwrap() {
                SnapValue::Hist { count, max_us, .. } => {
                    assert_eq!(*count, round, "window {k} hist count is per-window");
                    // Percentiles are cumulative-latest (the histogram
                    // itself is not windowed), so max reflects all rounds.
                    assert_eq!(*max_us, 100 * round);
                }
                other => panic!("expected hist, got {other:?}"),
            }
        }
        // Summing window counter deltas reconstructs the total.
        let total: u64 = windows.iter().filter_map(|w| w.counter("c")).sum();
        assert_eq!(total, r.counter("c").unwrap());
    }

    #[test]
    fn rollup_reprefixes_unowned_keys_without_collisions() {
        let snap_for = |frames: u64, depth: f64, owned_key: &str| {
            let mut r = MetricsRegistry::new();
            // Un-prefixed process-level keys: identical across replicas.
            r.counter_add("net.frames_in", frames);
            r.gauge_set("net.queue.depth", depth);
            // Already namespaced under the owner: merges as-is.
            r.counter_add(owned_key, 1);
            r.snapshot()
        };
        let merged = rollup_snapshots(&[
            (
                "replica.0".to_string(),
                snap_for(5, 1.0, "replica.0.commits"),
            ),
            (
                "replica.1".to_string(),
                snap_for(7, 2.0, "replica.1.commits"),
            ),
        ]);
        // Same un-prefixed key from two replicas: both survive, disjoint.
        assert_eq!(merged.counter("replica.0.net.frames_in"), Some(5));
        assert_eq!(merged.counter("replica.1.net.frames_in"), Some(7));
        assert_eq!(
            merged.get("replica.0.net.queue.depth"),
            Some(&SnapValue::Gauge(1.0))
        );
        assert_eq!(
            merged.get("replica.1.net.queue.depth"),
            Some(&SnapValue::Gauge(2.0))
        );
        // Owner-prefixed keys are not double-prefixed.
        assert_eq!(merged.counter("replica.0.commits"), Some(1));
        assert_eq!(merged.counter("replica.0.replica.0.commits"), None);
        // Nothing leaked into the un-prefixed namespace.
        assert_eq!(merged.counter("net.frames_in"), None);
        assert_eq!(merged.len(), 6);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut r = MetricsRegistry::new();
        r.counter_add("replica.0.net.frames_in", 42);
        r.gauge_set("replica.0.net.queue.depth", 3.5);
        r.observe_us_n("replica.0.commit_latency", 800, 4);
        let snap = r.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json());
        assert_eq!(back, snap);
        // Parsing through text (what the cluster merge actually does).
        let text = snap.to_json().to_pretty();
        let doc = JsonValue::parse(&text).expect("parse snapshot JSON");
        assert_eq!(MetricsSnapshot::from_json(&doc), snap);
        // Malformed entries are skipped, not fatal.
        let partial = JsonValue::parse(
            r#"{"good":{"type":"counter","value":1},"bad":{"type":"wat"},"worse":7}"#,
        )
        .unwrap();
        let best_effort = MetricsSnapshot::from_json(&partial);
        assert_eq!(best_effort.counter("good"), Some(1));
        assert_eq!(best_effort.len(), 1);
    }
}
