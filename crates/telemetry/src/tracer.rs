//! Span-based tracer with a bounded ring buffer.
//!
//! Spans carry *both* clocks: the simulated timestamp at which the
//! enclosing event fired (sim time never advances while a handler runs,
//! so a span's duration in sim time is always zero) and wall-clock
//! start/duration measured against the telemetry epoch.  Completed spans
//! land in a fixed-capacity ring buffer — old events are dropped, and the
//! drop count is reported — and can be exported as chrome://tracing
//! `traceEvents` JSON or aggregated into per-phase self-time profiles.

use smp_metrics::JsonValue;
use smp_types::SimTime;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::thread::ThreadId;

/// Default ring-buffer capacity (completed spans retained).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name, e.g. `"simnet.deliver"`.
    pub name: Cow<'static, str>,
    /// Track (rendered as the chrome-trace `tid`); replicas use their id.
    pub track: u32,
    /// Simulated time when the span opened (µs).
    pub sim_ts: SimTime,
    /// Wall-clock start relative to the telemetry epoch (ns).
    pub wall_start_ns: u64,
    /// Wall-clock duration (ns).
    pub wall_dur_ns: u64,
    /// Duration minus time spent in child spans (ns).
    pub self_wall_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u16,
    /// Instant event (connection up/down, …): rendered as a chrome-trace
    /// `ph:"i"` marker instead of a complete span.
    pub instant: bool,
}

struct OpenSpan {
    name: Cow<'static, str>,
    track: u32,
    sim_ts: SimTime,
    wall_start_ns: u64,
    child_ns: u64,
}

/// Aggregated statistics for all spans sharing a name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PhaseProfile {
    /// Number of completed spans.
    pub count: u64,
    /// Total wall time (ns), including children.
    pub total_wall_ns: u64,
    /// Total self time (ns), excluding children.
    pub self_wall_ns: u64,
    /// Longest single span (ns).
    pub max_wall_ns: u64,
}

/// Records spans into a bounded ring buffer.  Each OS thread gets its own
/// open-span stack (drop-guard discipline makes begin/end LIFO per
/// thread), so parallel shard workers can trace concurrently under one
/// tracer.
pub struct Tracer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    open: HashMap<ThreadId, Vec<OpenSpan>>,
}

impl Tracer {
    /// Creates a tracer retaining up to `capacity` completed spans.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            open: HashMap::new(),
        }
    }

    /// Opens a span on the current thread.
    pub fn begin(&mut self, name: Cow<'static, str>, track: u32, sim_ts: SimTime, wall_ns: u64) {
        let stack = self.open.entry(std::thread::current().id()).or_default();
        stack.push(OpenSpan {
            name,
            track,
            sim_ts,
            wall_start_ns: wall_ns,
            child_ns: 0,
        });
    }

    /// Closes the innermost span on the current thread.
    pub fn end(&mut self, wall_ns: u64) {
        let Some(stack) = self.open.get_mut(&std::thread::current().id()) else {
            return;
        };
        let Some(span) = stack.pop() else { return };
        let dur = wall_ns.saturating_sub(span.wall_start_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur;
        }
        let depth = stack.len() as u16;
        self.push(TraceEvent {
            name: span.name,
            track: span.track,
            sim_ts: span.sim_ts,
            wall_start_ns: span.wall_start_ns,
            wall_dur_ns: dur,
            self_wall_ns: dur.saturating_sub(span.child_ns),
            depth,
            instant: false,
        });
    }

    /// Records a zero-duration instant event on the current thread
    /// (connection up/down, handshake completion, …).
    pub fn instant(&mut self, name: Cow<'static, str>, track: u32, sim_ts: SimTime, wall_ns: u64) {
        let depth = self
            .open
            .get(&std::thread::current().id())
            .map(|s| s.len() as u16)
            .unwrap_or(0);
        self.push(TraceEvent {
            name,
            track,
            sim_ts,
            wall_start_ns: wall_ns,
            wall_dur_ns: 0,
            self_wall_ns: 0,
            depth,
            instant: true,
        });
    }

    fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Completed spans currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained completed spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no spans have been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Aggregates retained spans by name into self-time profiles.
    pub fn profile(&self) -> BTreeMap<String, PhaseProfile> {
        let mut out: BTreeMap<String, PhaseProfile> = BTreeMap::new();
        for e in &self.events {
            let p = out.entry(e.name.to_string()).or_default();
            p.count += 1;
            p.total_wall_ns += e.wall_dur_ns;
            p.self_wall_ns += e.self_wall_ns;
            p.max_wall_ns = p.max_wall_ns.max(e.wall_dur_ns);
        }
        out
    }

    /// Exports retained spans as a chrome://tracing document
    /// (`{"traceEvents": [...]}` with `ph:"X"` complete events).
    ///
    /// The span name's leading segment (before the first `.`) becomes the
    /// event category, and the track becomes the `tid`, so chrome groups
    /// rows by replica and colors by subsystem.
    pub fn to_chrome_json(&self) -> JsonValue {
        let events = self
            .events
            .iter()
            .map(|e| {
                let cat = e.name.split('.').next().unwrap_or("span");
                let mut pairs = vec![
                    ("name".to_string(), JsonValue::String(e.name.to_string())),
                    ("cat".to_string(), JsonValue::String(cat.to_string())),
                    (
                        "ph".to_string(),
                        JsonValue::String(if e.instant { "i" } else { "X" }.to_string()),
                    ),
                    ("pid".to_string(), JsonValue::Number(0.0)),
                    ("tid".to_string(), JsonValue::Number(e.track as f64)),
                    (
                        "ts".to_string(),
                        JsonValue::Number(e.wall_start_ns as f64 / 1_000.0),
                    ),
                ];
                if e.instant {
                    pairs.push(("s".to_string(), JsonValue::String("t".to_string())));
                } else {
                    pairs.push((
                        "dur".to_string(),
                        JsonValue::Number(e.wall_dur_ns as f64 / 1_000.0),
                    ));
                }
                pairs.push((
                    "args".to_string(),
                    JsonValue::Object(vec![
                        ("sim_ts_us".to_string(), JsonValue::Number(e.sim_ts as f64)),
                        ("depth".to_string(), JsonValue::Number(e.depth as f64)),
                    ]),
                ));
                JsonValue::Object(pairs)
            })
            .collect();
        JsonValue::Object(vec![
            ("traceEvents".to_string(), JsonValue::Array(events)),
            (
                "droppedEvents".to_string(),
                JsonValue::Number(self.dropped as f64),
            ),
        ])
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_TRACE_CAPACITY)
    }
}

/// Merges per-process chrome-trace documents into one cluster timeline.
///
/// Each source is `(label, offset_us, doc)` where `doc` is a document in
/// the shape [`Tracer::to_chrome_json`] emits and `offset_us` shifts that
/// process's timestamps onto the shared cluster clock (each process
/// stamps `ts` relative to its own telemetry epoch; the caller computes
/// offsets from the processes' epoch wall-clock times).  Source `i`
/// renders as chrome process `i` named `label`, so a merged cluster
/// trace shows one track (process row) per replica.
pub fn merge_chrome_traces(sources: &[(String, i64, JsonValue)]) -> JsonValue {
    let mut events = Vec::new();
    let mut dropped = 0.0;
    for (pid, (label, offset_us, doc)) in sources.iter().enumerate() {
        // Chrome metadata event naming the process row.
        events.push(JsonValue::Object(vec![
            (
                "name".to_string(),
                JsonValue::String("process_name".to_string()),
            ),
            ("ph".to_string(), JsonValue::String("M".to_string())),
            ("pid".to_string(), JsonValue::Number(pid as f64)),
            ("tid".to_string(), JsonValue::Number(0.0)),
            (
                "args".to_string(),
                JsonValue::Object(vec![("name".to_string(), JsonValue::String(label.clone()))]),
            ),
        ]));
        dropped += doc
            .get("droppedEvents")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let Some(items) = doc.get("traceEvents").and_then(JsonValue::as_array) else {
            continue;
        };
        for item in items {
            let JsonValue::Object(pairs) = item else {
                continue;
            };
            let shifted = pairs
                .iter()
                .map(|(k, v)| match k.as_str() {
                    "pid" => (k.clone(), JsonValue::Number(pid as f64)),
                    "ts" => (
                        k.clone(),
                        JsonValue::Number(v.as_f64().unwrap_or(0.0) + *offset_us as f64),
                    ),
                    _ => (k.clone(), v.clone()),
                })
                .collect();
            events.push(JsonValue::Object(shifted));
        }
    }
    JsonValue::Object(vec![
        ("traceEvents".to_string(), JsonValue::Array(events)),
        ("droppedEvents".to_string(), JsonValue::Number(dropped)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(t: &mut Tracer, name: &'static str, start: u64, end: u64) {
        t.begin(Cow::Borrowed(name), 0, 0, start);
        t.end(end);
    }

    #[test]
    fn nested_spans_compute_self_time() {
        let mut t = Tracer::new(16);
        t.begin(Cow::Borrowed("outer"), 1, 500, 0);
        t.begin(Cow::Borrowed("inner"), 1, 500, 100);
        t.end(300); // inner: 200 ns
        t.end(1_000); // outer: 1000 ns total, 800 ns self
        let events: Vec<_> = t.events().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].wall_dur_ns, 200);
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].wall_dur_ns, 1_000);
        assert_eq!(events[1].self_wall_ns, 800);
        assert_eq!(events[1].depth, 0);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut t = Tracer::new(2);
        span(&mut t, "a", 0, 1);
        span(&mut t, "b", 1, 2);
        span(&mut t, "c", 2, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let names: Vec<_> = t.events().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["b", "c"]);
    }

    #[test]
    fn profile_aggregates_by_name() {
        let mut t = Tracer::new(16);
        span(&mut t, "x", 0, 10);
        span(&mut t, "x", 10, 40);
        span(&mut t, "y", 40, 45);
        let p = t.profile();
        assert_eq!(p["x"].count, 2);
        assert_eq!(p["x"].total_wall_ns, 40);
        assert_eq!(p["x"].max_wall_ns, 30);
        assert_eq!(p["y"].count, 1);
    }

    #[test]
    fn chrome_export_shape() {
        let mut t = Tracer::new(16);
        t.begin(Cow::Borrowed("simnet.deliver"), 3, 42, 1_000);
        t.end(2_500);
        let doc = t.to_chrome_json();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("simnet.deliver"));
        assert_eq!(e.get("cat").unwrap().as_str(), Some("simnet"));
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(e.get("tid").unwrap().as_f64(), Some(3.0));
        assert_eq!(e.get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(e.get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            e.get("args").unwrap().get("sim_ts_us").unwrap().as_f64(),
            Some(42.0)
        );
        assert_eq!(doc.get("droppedEvents").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn end_without_begin_is_harmless() {
        let mut t = Tracer::new(4);
        t.end(100);
        assert!(t.is_empty());
    }
}
