//! Simulated cryptographic substrate for the Stratus reproduction.
//!
//! The paper's evaluation (Section VII-A) deliberately excludes
//! application-level verification cost and never relies on cryptographic
//! hardness: what matters to the reported numbers are the *sizes* of
//! digests, signatures and availability proofs on the wire, and the
//! (small) CPU cost of producing and verifying them.  This crate therefore
//! provides deterministic, cheap stand-ins that preserve exactly those two
//! aspects:
//!
//! * [`hash`] — a 256-bit non-cryptographic digest used for transaction,
//!   microblock and block identifiers.
//! * [`keys`] / [`signature`] — per-replica key pairs and 64-byte
//!   signatures (the paper uses ECDSA; Section VI).
//! * [`proof`] — aggregated availability proofs made of `q` concatenated
//!   signatures (the paper trivially concatenates `f+1` ECDSA signatures
//!   instead of using a threshold scheme; footnote 4).
//! * [`cost`] — a CPU cost model so that the discrete-event simulator can
//!   charge realistic per-message processing time.
//!
//! All operations are deterministic functions of their inputs, which keeps
//! the whole simulation reproducible.

pub mod cost;
pub mod hash;
pub mod keys;
pub mod proof;
pub mod signature;

pub use cost::CostModel;
pub use hash::{Digest, Hasher, DIGEST_BYTES};
pub use keys::{KeyPair, PublicKey, SecretKey};
pub use proof::{ProofError, QuorumProof, SIGNATURE_BYTES};
pub use signature::Signature;
