//! CPU cost model for cryptographic operations.
//!
//! The discrete-event simulator charges per-message processing time so
//! that small deployments are CPU-bound (matching the ~120 KTx/s the paper
//! reports for 4-replica HotStuff on 4-vCPU machines) while large
//! deployments become bandwidth-bound.  The constants are calibrated to
//! commodity ECDSA/secp256k1 figures and can be overridden per experiment.

use serde::{Deserialize, Serialize};

/// Cost (in simulated microseconds) of cryptographic and bookkeeping
/// operations performed by a replica.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of producing one signature.
    pub sign_us: f64,
    /// Cost of verifying one signature.
    pub verify_us: f64,
    /// Cost of hashing, per kilobyte of input.
    pub hash_per_kb_us: f64,
    /// Fixed cost of handling any message (syscalls, deserialization).
    pub per_message_us: f64,
    /// Per-transaction bookkeeping cost (mempool insert, id lookup).
    pub per_tx_us: f64,
}

impl CostModel {
    /// Default calibration used throughout the reproduction.
    pub const DEFAULT: CostModel = CostModel {
        sign_us: 45.0,
        verify_us: 90.0,
        hash_per_kb_us: 1.2,
        per_message_us: 8.0,
        per_tx_us: 1.5,
    };

    /// A model where cryptography is free; useful for isolating network
    /// effects in unit tests.
    pub const FREE: CostModel = CostModel {
        sign_us: 0.0,
        verify_us: 0.0,
        hash_per_kb_us: 0.0,
        per_message_us: 0.0,
        per_tx_us: 0.0,
    };

    /// Cost of verifying `n` signatures (e.g. a concatenated proof).
    pub fn verify_many_us(&self, n: usize) -> f64 {
        self.verify_us * n as f64
    }

    /// Cost of hashing `bytes` bytes.
    pub fn hash_us(&self, bytes: usize) -> f64 {
        self.hash_per_kb_us * bytes as f64 / 1024.0
    }

    /// Cost of receiving and bookkeeping a batch of `n_txs` transactions
    /// totalling `bytes` bytes.
    pub fn batch_ingest_us(&self, n_txs: usize, bytes: usize) -> f64 {
        self.per_message_us + self.per_tx_us * n_txs as f64 + self.hash_us(bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_nonzero() {
        let m = CostModel::default();
        assert!(m.sign_us > 0.0 && m.verify_us > 0.0);
    }

    #[test]
    fn free_model_is_zero() {
        let m = CostModel::FREE;
        assert_eq!(m.batch_ingest_us(100, 10_000), 0.0);
        assert_eq!(m.verify_many_us(10), 0.0);
    }

    #[test]
    fn verify_many_scales_linearly() {
        let m = CostModel::DEFAULT;
        assert!((m.verify_many_us(3) - 3.0 * m.verify_us).abs() < 1e-9);
    }

    #[test]
    fn hash_cost_scales_with_size() {
        let m = CostModel::DEFAULT;
        assert!(m.hash_us(2048) > m.hash_us(1024));
        assert_eq!(m.hash_us(0), 0.0);
    }

    #[test]
    fn batch_ingest_includes_all_components() {
        let m = CostModel::DEFAULT;
        let c = m.batch_ingest_us(10, 1024);
        assert!(c >= m.per_message_us + 10.0 * m.per_tx_us);
    }
}
