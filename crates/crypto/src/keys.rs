//! Per-replica key pairs.
//!
//! Keys are deterministic functions of `(system seed, replica index)` so
//! that experiments are reproducible and any component can reconstruct the
//! public key set from the configuration alone.  The secret key is a
//! 64-bit value used as a MAC key by [`crate::signature::Signature`].

use crate::hash::{Digest, Hasher};
use serde::{Deserialize, Serialize};

/// Public half of a replica key pair.
///
/// In the simulated scheme the public key is a digest of the secret key;
/// verification recomputes the expected signature tag from the public key
/// material (see [`crate::signature`] for the trust argument).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    /// Index of the replica owning this key.
    pub owner: u32,
    /// Commitment to the secret key.
    pub commitment: Digest,
}

/// Secret half of a replica key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    /// Index of the replica owning this key.
    pub owner: u32,
    /// The MAC key.
    pub key: u64,
}

/// A replica key pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// Public key.
    pub public: PublicKey,
    /// Secret key.
    pub secret: SecretKey,
}

impl KeyPair {
    /// Derives the key pair for replica `index` under `system_seed`.
    pub fn derive(system_seed: u64, index: u32) -> Self {
        let mut h = Hasher::with_domain(0x4b45_5953); // "KEYS"
        h.update_u64(system_seed);
        h.update_u64(index as u64);
        let secret_digest = h.finalize();
        let secret = SecretKey {
            owner: index,
            key: secret_digest.0[0] ^ secret_digest.0[2],
        };
        let public = PublicKey {
            owner: index,
            commitment: Digest::of_u64(secret.key),
        };
        KeyPair { public, secret }
    }

    /// Derives the full key set for a system of `n` replicas.
    pub fn derive_all(system_seed: u64, n: usize) -> Vec<KeyPair> {
        (0..n as u32)
            .map(|i| KeyPair::derive(system_seed, i))
            .collect()
    }
}

impl PublicKey {
    /// Recovers the MAC key from the public commitment.
    ///
    /// This is obviously not possible for a real signature scheme; the
    /// simulated scheme accepts it because no experiment in the paper
    /// depends on unforgeability — Byzantine behaviour is modelled
    /// explicitly in the protocol logic rather than through forged
    /// messages.
    pub(crate) fn mac_key(&self) -> u64 {
        // The commitment is Digest::of_u64(secret); we cannot invert the
        // digest, so instead verification re-derives the commitment from a
        // claimed tag.  See `Signature::verify`.
        self.commitment.0[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(KeyPair::derive(7, 3), KeyPair::derive(7, 3));
    }

    #[test]
    fn different_indices_get_different_keys() {
        let a = KeyPair::derive(7, 0);
        let b = KeyPair::derive(7, 1);
        assert_ne!(a.secret.key, b.secret.key);
        assert_ne!(a.public.commitment, b.public.commitment);
    }

    #[test]
    fn different_seeds_get_different_keys() {
        assert_ne!(
            KeyPair::derive(1, 0).secret.key,
            KeyPair::derive(2, 0).secret.key
        );
    }

    #[test]
    fn derive_all_covers_every_replica() {
        let keys = KeyPair::derive_all(99, 10);
        assert_eq!(keys.len(), 10);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(k.public.owner, i as u32);
            assert_eq!(k.secret.owner, i as u32);
        }
    }
}
