//! Aggregated quorum proofs (availability proofs, quorum certificates).
//!
//! The paper implements availability proofs by concatenating `q` ECDSA
//! signatures (Section VI, footnote 4) where `q` is adjustable between
//! `f+1` and `2f+1`.  [`QuorumProof`] models exactly that: a set of
//! [`Signature`]s from distinct signers over the same digest, with a wire
//! size of `q * 64` bytes plus the digest.

use crate::hash::Digest;
use crate::keys::PublicKey;
use crate::signature::Signature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Wire size of a single signature in bytes (ECDSA-sized, per the paper).
pub const SIGNATURE_BYTES: usize = 64;

/// Errors returned by [`QuorumProof::verify`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProofError {
    /// The proof carries fewer signatures than the required quorum.
    QuorumNotReached {
        /// Signatures present.
        have: usize,
        /// Signatures required.
        need: usize,
    },
    /// The same replica appears more than once among the signers.
    DuplicateSigner(u32),
    /// A signer index is outside the replica set.
    UnknownSigner(u32),
    /// A signature failed to verify against the claimed digest.
    BadSignature(u32),
}

impl std::fmt::Display for ProofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProofError::QuorumNotReached { have, need } => {
                write!(f, "quorum not reached: {have} signatures, need {need}")
            }
            ProofError::DuplicateSigner(s) => write!(f, "duplicate signer {s}"),
            ProofError::UnknownSigner(s) => write!(f, "unknown signer {s}"),
            ProofError::BadSignature(s) => write!(f, "bad signature from {s}"),
        }
    }
}

impl std::error::Error for ProofError {}

/// An aggregation of signatures from distinct replicas over one digest.
///
/// Used both as the PAB availability proof (quorum `q ∈ [f+1, 2f+1]`) and
/// as consensus quorum certificates (quorum `2f+1`).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct QuorumProof {
    /// Digest the signatures cover.
    pub digest: Digest,
    /// The aggregated signatures, kept sorted by signer for determinism.
    pub signatures: Vec<Signature>,
}

impl QuorumProof {
    /// Creates an empty proof for `digest`.
    pub fn new(digest: Digest) -> Self {
        QuorumProof {
            digest,
            signatures: Vec::new(),
        }
    }

    /// Builds a proof directly from a set of signatures (deduplicating by
    /// signer and sorting for determinism).
    pub fn from_signatures(digest: Digest, sigs: impl IntoIterator<Item = Signature>) -> Self {
        let mut proof = QuorumProof::new(digest);
        for s in sigs {
            proof.add(s);
        }
        proof
    }

    /// Adds a signature if the signer is not already present.
    ///
    /// Returns `true` if the signature was added.
    pub fn add(&mut self, sig: Signature) -> bool {
        if self.signatures.iter().any(|s| s.signer == sig.signer) {
            return false;
        }
        let pos = self.signatures.partition_point(|s| s.signer < sig.signer);
        self.signatures.insert(pos, sig);
        true
    }

    /// Number of distinct signers.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the proof has no signatures yet.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The set of signer indices.
    pub fn signers(&self) -> Vec<u32> {
        self.signatures.iter().map(|s| s.signer).collect()
    }

    /// Returns `true` once at least `quorum` distinct signatures are held.
    pub fn has_quorum(&self, quorum: usize) -> bool {
        self.signatures.len() >= quorum
    }

    /// Verifies the proof: at least `quorum` distinct, valid signatures
    /// from known replicas over `self.digest`.
    pub fn verify(&self, public_keys: &[PublicKey], quorum: usize) -> Result<(), ProofError> {
        if self.signatures.len() < quorum {
            return Err(ProofError::QuorumNotReached {
                have: self.signatures.len(),
                need: quorum,
            });
        }
        let mut seen = BTreeSet::new();
        for sig in &self.signatures {
            if !seen.insert(sig.signer) {
                return Err(ProofError::DuplicateSigner(sig.signer));
            }
            let pk = public_keys
                .get(sig.signer as usize)
                .ok_or(ProofError::UnknownSigner(sig.signer))?;
            if !sig.verify(pk, &self.digest) {
                return Err(ProofError::BadSignature(sig.signer));
            }
        }
        Ok(())
    }

    /// Wire size: the digest plus one ECDSA-sized signature per signer.
    pub fn wire_size(&self) -> usize {
        self.digest.wire_size() + self.signatures.len() * SIGNATURE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn setup(n: usize) -> (Vec<KeyPair>, Vec<PublicKey>) {
        let kps = KeyPair::derive_all(42, n);
        let pks = kps.iter().map(|k| k.public).collect();
        (kps, pks)
    }

    fn proof_from(kps: &[KeyPair], digest: Digest, signers: &[usize]) -> QuorumProof {
        QuorumProof::from_signatures(
            digest,
            signers
                .iter()
                .map(|&i| Signature::sign(&kps[i].secret, &digest)),
        )
    }

    #[test]
    fn valid_quorum_verifies() {
        let (kps, pks) = setup(4);
        let d = Digest::of_u64(9);
        let proof = proof_from(&kps, d, &[0, 1, 2]);
        assert!(proof.verify(&pks, 2).is_ok());
        assert!(proof.verify(&pks, 3).is_ok());
    }

    #[test]
    fn quorum_not_reached_is_rejected() {
        let (kps, pks) = setup(4);
        let d = Digest::of_u64(9);
        let proof = proof_from(&kps, d, &[0]);
        assert_eq!(
            proof.verify(&pks, 2),
            Err(ProofError::QuorumNotReached { have: 1, need: 2 })
        );
    }

    #[test]
    fn duplicate_signers_are_not_added() {
        let (kps, _) = setup(4);
        let d = Digest::of_u64(9);
        let mut proof = QuorumProof::new(d);
        let sig = Signature::sign(&kps[1].secret, &d);
        assert!(proof.add(sig));
        assert!(!proof.add(sig));
        assert_eq!(proof.len(), 1);
    }

    #[test]
    fn bad_signature_is_detected() {
        let (kps, pks) = setup(4);
        let d = Digest::of_u64(9);
        let other = Digest::of_u64(10);
        let mut proof = QuorumProof::new(d);
        proof.add(Signature::sign(&kps[0].secret, &d));
        // Signature over a different digest smuggled into the proof.
        proof.add(Signature::sign(&kps[1].secret, &other));
        assert_eq!(proof.verify(&pks, 2), Err(ProofError::BadSignature(1)));
    }

    #[test]
    fn unknown_signer_is_detected() {
        let (kps, pks) = setup(2);
        let extra = KeyPair::derive(42, 7);
        let d = Digest::of_u64(9);
        let mut proof = QuorumProof::new(d);
        proof.add(Signature::sign(&kps[0].secret, &d));
        proof.add(Signature::sign(&extra.secret, &d));
        assert_eq!(proof.verify(&pks, 2), Err(ProofError::UnknownSigner(7)));
    }

    #[test]
    fn wire_size_scales_with_signers() {
        let (kps, _) = setup(4);
        let d = Digest::of_u64(9);
        let p2 = proof_from(&kps, d, &[0, 1]);
        let p3 = proof_from(&kps, d, &[0, 1, 2]);
        assert_eq!(p2.wire_size(), 32 + 2 * 64);
        assert_eq!(p3.wire_size(), 32 + 3 * 64);
    }

    #[test]
    fn signers_are_sorted_and_deterministic() {
        let (kps, _) = setup(5);
        let d = Digest::of_u64(3);
        let proof = proof_from(&kps, d, &[4, 1, 3]);
        assert_eq!(proof.signers(), vec![1, 3, 4]);
    }
}
