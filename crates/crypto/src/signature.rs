//! Simulated 64-byte signatures.
//!
//! A signature is a deterministic MAC-style tag over a digest computed with
//! the signer's secret key.  Verification recomputes the tag from the
//! signer's key material.  The scheme is *not* unforgeable — the threat
//! model of the reproduction injects Byzantine behaviour directly into the
//! protocol state machines instead of relying on forged messages — but it
//! preserves the two properties the evaluation depends on: signatures from
//! different replicas (or over different messages) differ, and each
//! signature occupies [`crate::proof::SIGNATURE_BYTES`] bytes on the wire.

use crate::hash::{Digest, Hasher};
use crate::keys::{PublicKey, SecretKey};
use crate::proof::SIGNATURE_BYTES;
use serde::{Deserialize, Serialize};

/// A signature over a [`Digest`] by a single replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Signature {
    /// Index of the signing replica.
    pub signer: u32,
    /// The MAC tag.
    pub tag: u64,
}

impl Signature {
    /// Signs `digest` with `secret`.
    pub fn sign(secret: &SecretKey, digest: &Digest) -> Self {
        // The MAC is keyed by the commitment word derived from the secret
        // key, which is exactly what verifiers can recompute from the
        // public key (see `key_from_commitment`).
        let key_material = Digest::of_u64(secret.key).0[0];
        Signature {
            signer: secret.owner,
            tag: Self::tag_for(secret.owner, key_material, digest),
        }
    }

    /// Verifies this signature against `public` and `digest`.
    ///
    /// The verifier re-derives the signer's MAC key from the deterministic
    /// key-derivation used by [`crate::keys::KeyPair::derive`]; the public
    /// key only pins the signer identity and commitment.
    pub fn verify(&self, public: &PublicKey, digest: &Digest) -> bool {
        if public.owner != self.signer {
            return false;
        }
        // Recompute the tag using the key reconstructed from the owner's
        // commitment; since commitments are digests of the MAC key, equal
        // commitments imply equal keys for honest key generation.
        let expected = Self::tag_for(self.signer, Self::key_from_commitment(public), digest);
        expected == self.tag
    }

    /// Wire size of one signature (matches an ECDSA signature).
    pub const fn wire_size(&self) -> usize {
        SIGNATURE_BYTES
    }

    fn key_from_commitment(public: &PublicKey) -> u64 {
        // For the simulated scheme the verification key *is* derivable from
        // the commitment word (the commitment is a digest of the MAC key and
        // the MAC itself folds the commitment back in), so honest and
        // simulated-Byzantine replicas verify consistently.
        public.mac_key()
    }

    fn tag_for(signer: u32, key_material: u64, digest: &Digest) -> u64 {
        let mut h = Hasher::with_domain(0x5349_474e); // "SIGN"
        h.update_u64(signer as u64);
        h.update_u64(key_material);
        h.update_digest(digest);
        h.finalize().0[0]
    }
}

/// Signs a digest and immediately checks the result against the matching
/// public key; useful in tests and assertions.
pub fn sign_and_check(secret: &SecretKey, public: &PublicKey, digest: &Digest) -> Signature {
    let sig = Signature::sign(secret, digest);
    debug_assert!(sig.verify(public, digest));
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn keys(n: usize) -> Vec<KeyPair> {
        KeyPair::derive_all(0xdead_beef, n)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let kp = &keys(4)[2];
        let d = Digest::of_u64(123);
        let sig = Signature::sign(&kp.secret, &d);
        assert!(sig.verify(&kp.public, &d));
    }

    #[test]
    fn verification_fails_for_wrong_digest() {
        let kp = &keys(4)[1];
        let sig = Signature::sign(&kp.secret, &Digest::of_u64(1));
        assert!(!sig.verify(&kp.public, &Digest::of_u64(2)));
    }

    #[test]
    fn verification_fails_for_wrong_signer() {
        let ks = keys(4);
        let d = Digest::of_u64(5);
        let sig = Signature::sign(&ks[0].secret, &d);
        assert!(!sig.verify(&ks[1].public, &d));
    }

    #[test]
    fn signatures_differ_across_signers() {
        let ks = keys(4);
        let d = Digest::of_u64(5);
        assert_ne!(
            Signature::sign(&ks[0].secret, &d).tag,
            Signature::sign(&ks[1].secret, &d).tag
        );
    }

    #[test]
    fn wire_size_is_ecdsa_sized() {
        let kp = &keys(1)[0];
        let sig = Signature::sign(&kp.secret, &Digest::of_u64(1));
        assert_eq!(sig.wire_size(), 64);
    }

    #[test]
    fn sign_and_check_helper() {
        let kp = &keys(1)[0];
        let d = Digest::of_u64(77);
        let sig = sign_and_check(&kp.secret, &kp.public, &d);
        assert_eq!(sig.signer, 0);
    }
}
