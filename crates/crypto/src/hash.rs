//! A fast, deterministic 256-bit digest.
//!
//! The digest is *not* cryptographically secure — it only needs to be
//! collision-free in practice for simulation-scale inputs and cheap to
//! compute, while occupying the same number of bytes on the wire as the
//! SHA-256 digests a production deployment would use.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes a digest occupies on the wire.
pub const DIGEST_BYTES: usize = 32;

/// A 256-bit digest represented as four little-endian 64-bit words.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Digest(pub [u64; 4]);

impl Digest {
    /// The all-zero digest, used as a sentinel (e.g. the parent of the
    /// genesis block).
    pub const ZERO: Digest = Digest([0; 4]);

    /// Hashes an arbitrary byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = Hasher::new();
        h.update(bytes);
        h.finalize()
    }

    /// Hashes a `u64`, useful for deriving digests from counters.
    pub fn of_u64(value: u64) -> Self {
        let mut h = Hasher::new();
        h.update_u64(value);
        h.finalize()
    }

    /// Combines two digests into a new one (order-sensitive).
    pub fn combine(&self, other: &Digest) -> Digest {
        let mut h = Hasher::new();
        for w in self.0.iter().chain(other.0.iter()) {
            h.update_u64(*w);
        }
        h.finalize()
    }

    /// Returns the first word, handy as a short identifier in logs.
    pub fn short(&self) -> u64 {
        self.0[0]
    }

    /// Returns true when this is the zero sentinel digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Number of bytes this digest occupies on the wire.
    pub const fn wire_size(&self) -> usize {
        DIGEST_BYTES
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({:016x})", self.0[0])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0[0])
    }
}

/// Streaming hasher producing a [`Digest`].
///
/// Internally this is a 4-lane xorshift/multiply construction seeded with
/// distinct odd constants; it mixes every 8-byte chunk into all four lanes
/// so that digests of similar inputs differ in every word.
#[derive(Clone, Debug)]
pub struct Hasher {
    state: [u64; 4],
    len: u64,
}

const SEEDS: [u64; 4] = [
    0x9e37_79b9_7f4a_7c15,
    0xbf58_476d_1ce4_e5b9,
    0x94d0_49bb_1331_11eb,
    0xd6e8_feb8_6659_fd93,
];

#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl Hasher {
    /// Creates a hasher with the default seed.
    pub fn new() -> Self {
        Hasher {
            state: SEEDS,
            len: 0,
        }
    }

    /// Creates a hasher whose output is domain-separated by `domain`.
    pub fn with_domain(domain: u64) -> Self {
        let mut h = Hasher::new();
        h.update_u64(domain);
        h
    }

    /// Absorbs a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(c);
            self.update_u64(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.update_u64(u64::from_le_bytes(buf));
        }
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Absorbs a single 64-bit word.
    pub fn update_u64(&mut self, word: u64) {
        for (i, lane) in self.state.iter_mut().enumerate() {
            let mixed = mix(word ^ SEEDS[i].rotate_left(i as u32 * 13));
            *lane = mix(lane.wrapping_add(mixed).rotate_left(17 + i as u32));
        }
        self.len = self.len.wrapping_add(8);
    }

    /// Absorbs an existing digest.
    pub fn update_digest(&mut self, digest: &Digest) {
        for w in digest.0.iter() {
            self.update_u64(*w);
        }
    }

    /// Produces the final digest.
    pub fn finalize(mut self) -> Digest {
        self.update_u64(self.len ^ 0xa076_1d64_78bd_642f);
        let mut out = [0u64; 4];
        for (i, lane) in self.state.iter().enumerate() {
            out[i] = mix(lane.wrapping_add(SEEDS[(i + 1) % 4]));
        }
        Digest(out)
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(Digest::of_bytes(b"hello"), Digest::of_bytes(b"hello"));
        assert_eq!(Digest::of_u64(42), Digest::of_u64(42));
    }

    #[test]
    fn different_inputs_hash_differently() {
        assert_ne!(Digest::of_bytes(b"hello"), Digest::of_bytes(b"hellp"));
        assert_ne!(Digest::of_u64(1), Digest::of_u64(2));
        assert_ne!(Digest::of_bytes(b""), Digest::of_bytes(b"\0"));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = Digest::of_u64(1);
        let b = Digest::of_u64(2);
        assert_ne!(a.combine(&b), b.combine(&a));
    }

    #[test]
    fn domain_separation_changes_output() {
        let mut a = Hasher::with_domain(1);
        let mut b = Hasher::with_domain(2);
        a.update(b"payload");
        b.update(b"payload");
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn chunk_boundaries_do_not_collide() {
        // 8 bytes vs the same 8 bytes split as 7 + explicit length change.
        assert_ne!(Digest::of_bytes(b"abcdefgh"), Digest::of_bytes(b"abcdefg"));
        assert_ne!(Digest::of_bytes(b"abcdefg\0"), Digest::of_bytes(b"abcdefg"));
    }

    #[test]
    fn zero_digest_is_zero() {
        assert!(Digest::ZERO.is_zero());
        assert!(!Digest::of_u64(7).is_zero());
    }

    #[test]
    fn wire_size_matches_constant() {
        assert_eq!(Digest::of_u64(9).wire_size(), DIGEST_BYTES);
    }

    #[test]
    fn many_sequential_inputs_are_distinct() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(Digest::of_u64(i)), "collision at {i}");
        }
    }
}
