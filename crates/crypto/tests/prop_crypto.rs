//! Property-based tests for the crypto substrate.

use proptest::prelude::*;
use smp_crypto::{Digest, KeyPair, QuorumProof, Signature};

proptest! {
    #[test]
    fn digest_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(Digest::of_bytes(&bytes), Digest::of_bytes(&bytes));
    }

    #[test]
    fn distinct_u64_inputs_do_not_collide(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        prop_assert_ne!(Digest::of_u64(a), Digest::of_u64(b));
    }

    #[test]
    fn append_changes_digest(bytes in proptest::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        let mut longer = bytes.clone();
        longer.push(extra);
        prop_assert_ne!(Digest::of_bytes(&bytes), Digest::of_bytes(&longer));
    }

    #[test]
    fn signature_roundtrip(seed in any::<u64>(), idx in 0u32..64, msg in any::<u64>()) {
        let kp = KeyPair::derive(seed, idx);
        let d = Digest::of_u64(msg);
        let sig = Signature::sign(&kp.secret, &d);
        prop_assert!(sig.verify(&kp.public, &d));
    }

    #[test]
    fn signature_does_not_verify_under_other_key(seed in any::<u64>(), msg in any::<u64>()) {
        let a = KeyPair::derive(seed, 0);
        let b = KeyPair::derive(seed, 1);
        let d = Digest::of_u64(msg);
        let sig = Signature::sign(&a.secret, &d);
        prop_assert!(!sig.verify(&b.public, &d));
    }

    #[test]
    fn quorum_proof_verifies_iff_quorum_met(
        seed in any::<u64>(),
        n in 4usize..16,
        msg in any::<u64>(),
        subset_bits in any::<u16>(),
    ) {
        let kps = KeyPair::derive_all(seed, n);
        let pks: Vec<_> = kps.iter().map(|k| k.public).collect();
        let d = Digest::of_u64(msg);
        let signers: Vec<usize> = (0..n).filter(|i| subset_bits & (1 << i) != 0).collect();
        let proof = QuorumProof::from_signatures(
            d,
            signers.iter().map(|&i| Signature::sign(&kps[i].secret, &d)),
        );
        let f = (n - 1) / 3;
        let quorum = f + 1;
        if signers.len() >= quorum {
            prop_assert!(proof.verify(&pks, quorum).is_ok());
        } else {
            prop_assert!(proof.verify(&pks, quorum).is_err());
        }
    }

    #[test]
    fn quorum_proof_wire_size_is_linear(seed in any::<u64>(), n in 1usize..12, msg in any::<u64>()) {
        let kps = KeyPair::derive_all(seed, n);
        let d = Digest::of_u64(msg);
        let proof = QuorumProof::from_signatures(
            d,
            kps.iter().map(|k| Signature::sign(&k.secret, &d)),
        );
        prop_assert_eq!(proof.wire_size(), 32 + 64 * n);
    }
}
