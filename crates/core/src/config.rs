//! Stratus configuration knobs.

use serde::{Deserialize, Serialize};
use smp_types::{SimTime, MICROS_PER_MS, MICROS_PER_SEC};

/// Configuration of the distributed load balancer (Section V).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DlbConfig {
    /// Whether load balancing is enabled at all.
    pub enabled: bool,
    /// Power-of-d-choices sample size (the paper evaluates d ∈ {1, 2, 3};
    /// d = 1 is the default, d = 3 performs best under skew).
    pub d: usize,
    /// Timeout `τ` for collecting load-status samples.
    pub sample_timeout: SimTime,
    /// Timeout `τ'` for the proxy to return an availability proof before
    /// the microblock is re-forwarded.
    pub forward_timeout: SimTime,
    /// Sliding-window size of the stable-time estimator (100 by default).
    pub estimator_window: usize,
    /// Percentile of the window used as the ST estimate (95 by default).
    pub estimator_percentile: f64,
    /// A replica considers itself busy when its ST estimate exceeds the
    /// baseline by this factor (the paper's `β` margin over `α + ε`).
    pub busy_factor: f64,
    /// Interval after which the banList is cleared.
    pub banlist_reset_interval: SimTime,
}

impl Default for DlbConfig {
    fn default() -> Self {
        DlbConfig {
            enabled: true,
            d: 1,
            sample_timeout: 30 * MICROS_PER_MS,
            forward_timeout: 800 * MICROS_PER_MS,
            estimator_window: 100,
            estimator_percentile: 95.0,
            busy_factor: 2.0,
            banlist_reset_interval: 10 * MICROS_PER_SEC,
        }
    }
}

impl DlbConfig {
    /// A disabled load balancer (used by the `S-HS-Even` configuration and
    /// in ablations).
    pub fn disabled() -> Self {
        DlbConfig {
            enabled: false,
            ..DlbConfig::default()
        }
    }

    /// Sets the power-of-d-choices sample size.
    pub fn with_d(mut self, d: usize) -> Self {
        self.d = d.max(1);
        self
    }
}

/// Configuration of the Stratus mempool.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StratusConfig {
    /// PAB availability quorum `q ∈ [f+1, 2f+1]`; `None` uses the value
    /// from the system configuration.
    pub pab_quorum_override: Option<usize>,
    /// Probability of requesting a given proof signer during `PAB-Fetch`
    /// (the paper's `α` parameter, Algorithm 2).
    pub fetch_alpha: f64,
    /// Fetch retry timeout `δ`.
    pub fetch_timeout: SimTime,
    /// Load-balancing configuration.
    pub dlb: DlbConfig,
    /// Token-bucket rate limit on outgoing bulk data, expressed as a
    /// fraction of the replica's bandwidth that data messages may consume
    /// (Section VI, optimization 2).  `None` disables the limiter.
    pub data_bandwidth_share: Option<f64>,
}

impl Default for StratusConfig {
    fn default() -> Self {
        StratusConfig {
            pab_quorum_override: None,
            fetch_alpha: 0.5,
            fetch_timeout: 500 * MICROS_PER_MS,
            dlb: DlbConfig::default(),
            data_bandwidth_share: Some(0.9),
        }
    }
}

impl StratusConfig {
    /// Uses the minimum availability quorum `f + 1`.
    pub fn with_min_quorum(mut self) -> Self {
        self.pab_quorum_override = None;
        self
    }

    /// Overrides the PAB quorum (clamped later against `[f+1, 2f+1]`).
    pub fn with_quorum(mut self, q: usize) -> Self {
        self.pab_quorum_override = Some(q);
        self
    }

    /// Sets the DLB configuration.
    pub fn with_dlb(mut self, dlb: DlbConfig) -> Self {
        self.dlb = dlb;
        self
    }

    /// Disables the token-bucket data limiter.
    pub fn without_limiter(mut self) -> Self {
        self.data_bandwidth_share = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = StratusConfig::default();
        assert!(c.dlb.enabled);
        assert_eq!(c.dlb.d, 1);
        assert!(c.fetch_alpha > 0.0 && c.fetch_alpha <= 1.0);
        assert!(c.data_bandwidth_share.unwrap() <= 1.0);
    }

    #[test]
    fn builders_apply() {
        let c = StratusConfig::default()
            .with_quorum(7)
            .with_dlb(DlbConfig::disabled())
            .without_limiter();
        assert_eq!(c.pab_quorum_override, Some(7));
        assert!(!c.dlb.enabled);
        assert!(c.data_bandwidth_share.is_none());
    }

    #[test]
    fn dlb_with_d_clamps_to_one() {
        assert_eq!(DlbConfig::default().with_d(0).d, 1);
        assert_eq!(DlbConfig::default().with_d(3).d, 3);
    }
}
