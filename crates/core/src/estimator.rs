//! The stable-time workload estimator (Section V-B).
//!
//! The *stable time* (ST) of a microblock is the delay between the moment
//! its disseminator broadcast it and the moment it became provably
//! available (received `f + 1` acks).  Because inter-datacenter delays are
//! stable and predictable (Figure 5), a rising ST is a reliable signal
//! that the replica's outbound link or CPU is saturated.  The estimator
//! keeps a sliding window of the most recent ST samples and reports the
//! configured percentile; a replica considers itself busy when that
//! estimate exceeds the observed baseline by a configurable factor.

use smp_types::SimTime;
use std::collections::VecDeque;

/// Sliding-window stable-time estimator.
#[derive(Clone, Debug)]
pub struct StableTimeEstimator {
    window: VecDeque<SimTime>,
    capacity: usize,
    percentile: f64,
    busy_factor: f64,
    /// Smallest window-percentile estimate observed so far — the paper's
    /// "constant number α" for the unloaded regime.
    baseline: Option<SimTime>,
    samples_seen: u64,
}

impl StableTimeEstimator {
    /// Creates an estimator with the given window size, percentile
    /// (0–100) and busy factor.
    pub fn new(capacity: usize, percentile: f64, busy_factor: f64) -> Self {
        StableTimeEstimator {
            window: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            percentile: percentile.clamp(0.0, 100.0),
            busy_factor: busy_factor.max(1.0),
            baseline: None,
            samples_seen: 0,
        }
    }

    /// Records the stable time of a newly stabilized microblock.
    pub fn record(&mut self, stable_time: SimTime) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(stable_time);
        self.samples_seen += 1;
        if let Some(est) = self.estimate() {
            self.baseline = Some(self.baseline.map_or(est, |b| b.min(est)));
        }
    }

    /// Number of samples recorded over the estimator's lifetime.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// The current ST estimate: the configured percentile over the window,
    /// or `None` when no samples have been recorded yet.
    pub fn estimate(&self) -> Option<SimTime> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<SimTime> = self.window.iter().copied().collect();
        sorted.sort_unstable();
        let rank = ((self.percentile / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// The unloaded baseline observed so far.
    pub fn baseline(&self) -> Option<SimTime> {
        self.baseline
    }

    /// Whether the replica should consider itself busy: the current
    /// estimate exceeds the baseline by the busy factor.  A replica with
    /// too few samples is never busy (it has no evidence of overload).
    pub fn is_busy(&self) -> bool {
        let (Some(est), Some(base)) = (self.estimate(), self.baseline()) else {
            return false;
        };
        if self.window.len() < self.capacity / 10 + 1 {
            return false;
        }
        est as f64 > base as f64 * self.busy_factor
    }

    /// The value returned to `LB-Query` messages (`GetLoadStatus` in
    /// Algorithm 4): the ST estimate, or `None` if this replica is itself
    /// busy and should not be chosen as a proxy.
    pub fn load_status(&self) -> Option<SimTime> {
        if self.is_busy() {
            None
        } else {
            // A replica with no samples yet advertises a conservative zero
            // (it has capacity to spare by definition).
            Some(self.estimate().unwrap_or(0))
        }
    }
}

impl Default for StableTimeEstimator {
    fn default() -> Self {
        StableTimeEstimator::new(100, 95.0, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimator_is_not_busy() {
        let e = StableTimeEstimator::default();
        assert_eq!(e.estimate(), None);
        assert!(!e.is_busy());
        assert_eq!(e.load_status(), Some(0));
    }

    #[test]
    fn estimate_tracks_percentile() {
        let mut e = StableTimeEstimator::new(100, 95.0, 2.0);
        for v in 1..=100u64 {
            e.record(v * 1_000);
        }
        assert_eq!(e.estimate(), Some(95_000));
        assert_eq!(e.samples_seen(), 100);
    }

    #[test]
    fn window_slides() {
        let mut e = StableTimeEstimator::new(10, 50.0, 2.0);
        for _ in 0..10 {
            e.record(100);
        }
        for _ in 0..10 {
            e.record(900);
        }
        // Old samples have been evicted; the median reflects the new load.
        assert_eq!(e.estimate(), Some(900));
    }

    #[test]
    fn becomes_busy_when_st_doubles() {
        let mut e = StableTimeEstimator::new(20, 95.0, 2.0);
        for _ in 0..20 {
            e.record(100_000); // ~100 ms baseline, like a WAN round trip
        }
        assert!(!e.is_busy());
        assert_eq!(e.load_status(), Some(100_000));
        for _ in 0..20 {
            e.record(350_000); // overload: 3.5x the baseline
        }
        assert!(e.is_busy());
        assert_eq!(e.load_status(), None, "busy replicas refuse proxy work");
    }

    #[test]
    fn recovers_when_load_subsides() {
        let mut e = StableTimeEstimator::new(10, 95.0, 2.0);
        for _ in 0..10 {
            e.record(100_000);
        }
        for _ in 0..10 {
            e.record(400_000);
        }
        assert!(e.is_busy());
        for _ in 0..10 {
            e.record(110_000);
        }
        assert!(!e.is_busy());
    }

    #[test]
    fn baseline_is_monotone_minimum() {
        let mut e = StableTimeEstimator::new(5, 50.0, 2.0);
        e.record(500);
        e.record(200);
        e.record(800);
        assert!(e.baseline().unwrap() <= 500);
    }
}
