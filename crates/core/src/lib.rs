//! **Stratus** — a robust shared mempool for leader-based BFT consensus.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Sections IV–VI): a shared mempool that decouples transaction
//! dissemination from consensus so that the leader only orders microblock
//! *ids*, built from three pieces:
//!
//! * **PAB — provably available broadcast** ([`pab`]): a two-phase
//!   broadcast in which the sender collects `q ∈ [f+1, 2f+1]` signed
//!   acknowledgements into an *availability proof*.  A proposal whose
//!   references all carry valid proofs can enter the commit phase
//!   immediately; any replica missing the data recovers it in the
//!   background from the proof's signers (Algorithms 1–2).
//! * **DLB — distributed load balancing** ([`dlb`], [`estimator`]):
//!   overloaded replicas forward freshly sealed microblocks to
//!   under-utilised proxies chosen with power-of-d-choices sampling, with
//!   a banList protecting against unresponsive or Byzantine proxies
//!   (Algorithm 4).  Load is estimated locally from the *stable time* of
//!   recent microblocks (Section V-B).
//! * **The Stratus mempool** ([`mempool::StratusMempool`]): the
//!   integration of both with the shared-mempool interface used by the
//!   consensus engines (Algorithm 3: `avaQue`, `pMap`, `mbMap`), plus the
//!   two engineering optimizations from Section VI — consensus-message
//!   prioritization and a token-bucket limiter on bulk data.
//!
//! # Quick example
//!
//! ```
//! use smp_mempool::Mempool;
//! use smp_types::{ReplicaId, SystemConfig, Transaction, ClientId};
//! use stratus::{StratusConfig, StratusMempool};
//! use rand::SeedableRng;
//!
//! let system = SystemConfig::new(4);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let mut mempool = StratusMempool::new(&system, StratusConfig::default(), ReplicaId(0));
//!
//! // Feed client transactions; once a batch fills (or times out) the
//! // mempool emits the PAB push-phase broadcast.
//! let txs: Vec<Transaction> =
//!     (0..1500).map(|i| Transaction::synthetic(ClientId(0), i, 128, 0)).collect();
//! let effects = mempool.on_client_txs(0, txs, &mut rng);
//! assert!(!effects.msgs.is_empty());
//! ```

pub mod config;
pub mod dlb;
pub mod estimator;
pub mod limiter;
pub mod mempool;
pub mod messages;
pub mod pab;

pub use config::{DlbConfig, StratusConfig};
pub use dlb::{ForwardDecision, LoadBalancer, ShardLoadCoordinator};
pub use estimator::StableTimeEstimator;
pub use limiter::TokenBucket;
pub use mempool::StratusMempool;
pub use messages::StratusMsg;
pub use pab::PabEngine;
