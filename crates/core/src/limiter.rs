//! Token-bucket rate limiter for bulk data messages.
//!
//! Section VI: "we use a token-based limiter to limit the sending rate of
//! data messages: every data message needs a token to be sent out, and
//! tokens are refilled at a configurable rate.  This ensures that the
//! network resources will not be overtaken by data messages."  Together
//! with the high-priority network lane for consensus messages this keeps
//! the consensus path responsive even when microblock dissemination
//! saturates the link.

use smp_types::SimTime;

/// A byte-granularity token bucket.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Refill rate in bytes per microsecond.
    rate: f64,
    /// Maximum token balance (burst size) in bytes.
    capacity: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket refilling at `bytes_per_sec`, holding at most
    /// `burst_bytes`, starting full.
    pub fn new(bytes_per_sec: f64, burst_bytes: f64) -> Self {
        TokenBucket {
            rate: bytes_per_sec / 1_000_000.0,
            capacity: burst_bytes.max(1.0),
            tokens: burst_bytes.max(1.0),
            last_refill: 0,
        }
    }

    /// Builds a bucket allowing `share` of `bandwidth_bps` (bits/s) to be
    /// used by data messages, with a one-second burst.
    pub fn for_bandwidth_share(bandwidth_bps: u64, share: f64) -> Self {
        let bytes_per_sec = bandwidth_bps as f64 / 8.0 * share.clamp(0.01, 1.0);
        TokenBucket::new(bytes_per_sec, bytes_per_sec)
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let elapsed = (now - self.last_refill) as f64;
            self.tokens = (self.tokens + elapsed * self.rate).min(self.capacity);
            self.last_refill = now;
        }
    }

    /// Attempts to spend `bytes` tokens at time `now`.  Returns `true` and
    /// debits the bucket if enough tokens are available.
    pub fn try_consume(&mut self, now: SimTime, bytes: usize) -> bool {
        self.refill(now);
        if self.tokens >= bytes as f64 {
            self.tokens -= bytes as f64;
            true
        } else {
            false
        }
    }

    /// Time (from `now`) until `bytes` tokens will be available.
    pub fn time_until_available(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.refill(now);
        let deficit = bytes as f64 - self.tokens;
        if deficit <= 0.0 {
            return 0;
        }
        (deficit / self.rate).ceil() as SimTime
    }

    /// Current token balance in bytes.
    pub fn balance(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumes_until_empty_then_refills() {
        // 1 MB/s, 100 KB burst.
        let mut b = TokenBucket::new(1_000_000.0, 100_000.0);
        assert!(b.try_consume(0, 60_000));
        assert!(!b.try_consume(0, 60_000), "bucket exhausted");
        // After 50 ms another 50 KB has refilled.
        assert!(b.try_consume(50_000, 60_000));
    }

    #[test]
    fn time_until_available_reflects_deficit() {
        let mut b = TokenBucket::new(1_000_000.0, 10_000.0);
        assert_eq!(b.time_until_available(0, 5_000), 0);
        assert!(b.try_consume(0, 10_000));
        // Needs 10 KB at 1 B/us => 10,000 us.
        assert_eq!(b.time_until_available(0, 10_000), 10_000);
    }

    #[test]
    fn balance_never_exceeds_capacity() {
        let mut b = TokenBucket::new(1_000_000.0, 1_000.0);
        assert!(b.try_consume(0, 100));
        let _ = b.time_until_available(10_000_000, 1);
        assert!(b.balance() <= 1_000.0);
    }

    #[test]
    fn bandwidth_share_constructor() {
        // 100 Mb/s at 90% => 11.25 MB/s.
        let mut b = TokenBucket::for_bandwidth_share(100_000_000, 0.9);
        assert!(b.try_consume(0, 11_000_000));
        assert!(!b.try_consume(0, 1_000_000));
    }
}
