//! Provably available broadcast (PAB) — Algorithms 1 and 2 of the paper.
//!
//! The engine tracks one instance per microblock.  In the **push phase**
//! the disseminator broadcasts the microblock and collects signed
//! acknowledgements until it holds `q` of them, at which point it
//! aggregates them into an availability proof.  In the **recovery phase**
//! the proof is broadcast; a replica that holds a valid proof but not the
//! data fetches it from a random subset of the proof's signers, retrying
//! after `δ` until satisfied.
//!
//! The engine is transport-agnostic: its methods return the signatures,
//! proofs and fetch targets that the [`crate::mempool::StratusMempool`]
//! turns into wire messages.

use rand::rngs::SmallRng;
use rand::Rng;
use smp_crypto::{KeyPair, ProofError, PublicKey, QuorumProof, Signature};
use smp_types::{Microblock, MicroblockId, ReplicaId, SimTime};
use std::collections::HashMap;

/// State of one PAB instance on the disseminating replica.
#[derive(Clone, Debug)]
struct PushState {
    acks: QuorumProof,
    proof_done: bool,
    broadcast_at: SimTime,
    /// Original creator if this replica disseminates on behalf of someone
    /// else (DLB proxy), `None` when disseminating its own microblock.
    origin: Option<ReplicaId>,
}

/// The PAB engine of one replica.
#[derive(Clone, Debug)]
pub struct PabEngine {
    me: ReplicaId,
    keys: Vec<PublicKey>,
    my_key: KeyPair,
    quorum: usize,
    fetch_alpha: f64,
    push: HashMap<MicroblockId, PushState>,
    proofs: HashMap<MicroblockId, QuorumProof>,
}

/// Result of completing a push phase: the proof plus bookkeeping the
/// mempool needs (who to hand the proof to, and how long stability took).
#[derive(Clone, Debug)]
pub struct ProofReady {
    /// The microblock that became provably available.
    pub id: MicroblockId,
    /// The availability proof.
    pub proof: QuorumProof,
    /// Time from broadcast to stability (drives the DLB estimator).
    pub stable_time: SimTime,
    /// Original creator when the push phase was run by a DLB proxy.
    pub origin: Option<ReplicaId>,
}

impl PabEngine {
    /// Creates the engine for replica `me` with availability quorum
    /// `quorum` and fetch sampling probability `fetch_alpha`.
    pub fn new(seed: u64, n: usize, me: ReplicaId, quorum: usize, fetch_alpha: f64) -> Self {
        let keypairs = KeyPair::derive_all(seed, n);
        PabEngine {
            me,
            keys: keypairs.iter().map(|k| k.public).collect(),
            my_key: keypairs[me.index()],
            quorum,
            fetch_alpha: fetch_alpha.clamp(0.0, 1.0),
            push: HashMap::new(),
            proofs: HashMap::new(),
        }
    }

    /// The configured availability quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Starts the push phase for `mb` with this replica as disseminator.
    /// `origin` is the original creator when acting as a DLB proxy.
    pub fn start_push(&mut self, mb: &Microblock, now: SimTime, origin: Option<ReplicaId>) {
        let mut acks = QuorumProof::new(mb.id.digest());
        // The disseminator's own signature counts toward the quorum.
        acks.add(Signature::sign(&self.my_key.secret, &mb.id.digest()));
        self.push.insert(
            mb.id,
            PushState {
                acks,
                proof_done: false,
                broadcast_at: now,
                origin,
            },
        );
    }

    /// Whether this replica is running the push phase for `id`.
    pub fn is_pushing(&self, id: &MicroblockId) -> bool {
        self.push.contains_key(id)
    }

    /// Produces the acknowledgement this replica sends back when it
    /// receives a pushed microblock.
    pub fn ack_for(&self, id: &MicroblockId) -> Signature {
        Signature::sign(&self.my_key.secret, &id.digest())
    }

    /// Records an acknowledgement received by the disseminator.  Returns
    /// the completed proof exactly once, when the quorum is first reached.
    pub fn on_ack(&mut self, id: MicroblockId, sig: Signature, now: SimTime) -> Option<ProofReady> {
        let state = self.push.get_mut(&id)?;
        if state.proof_done {
            return None;
        }
        let signer_key = self.keys.get(sig.signer as usize)?;
        if !sig.verify(signer_key, &id.digest()) {
            return None;
        }
        state.acks.add(sig);
        if !state.acks.has_quorum(self.quorum) {
            return None;
        }
        state.proof_done = true;
        let proof = state.acks.clone();
        self.proofs.insert(id, proof.clone());
        Some(ProofReady {
            id,
            proof,
            stable_time: now.saturating_sub(state.broadcast_at),
            origin: state.origin,
        })
    }

    /// Verifies an availability proof against the configured quorum.
    pub fn verify_proof(&self, id: &MicroblockId, proof: &QuorumProof) -> Result<(), ProofError> {
        if proof.digest != id.digest() {
            return Err(ProofError::BadSignature(u32::MAX));
        }
        proof.verify(&self.keys, self.quorum)
    }

    /// Records a proof learned from the network (after verification).
    pub fn store_proof(&mut self, id: MicroblockId, proof: QuorumProof) {
        self.proofs.entry(id).or_insert(proof);
    }

    /// Returns the locally known proof for `id`.
    pub fn proof_of(&self, id: &MicroblockId) -> Option<&QuorumProof> {
        self.proofs.get(id)
    }

    /// Number of proofs known locally.
    pub fn proofs_known(&self) -> usize {
        self.proofs.len()
    }

    /// Selects the replicas to ask for a missing microblock during the
    /// recovery phase (Algorithm 2, `PAB-Fetch`): each signer of the proof
    /// is requested with probability `α`, excluding this replica and
    /// already-`requested` peers; at least one target is always returned
    /// so the fetch makes progress.
    pub fn fetch_targets(
        &self,
        proof: &QuorumProof,
        requested: &[ReplicaId],
        rng: &mut SmallRng,
    ) -> Vec<ReplicaId> {
        let candidates: Vec<ReplicaId> = proof
            .signers()
            .into_iter()
            .map(ReplicaId)
            .filter(|r| *r != self.me && !requested.contains(r))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }
        let mut targets: Vec<ReplicaId> = candidates
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < self.fetch_alpha)
            .collect();
        if targets.is_empty() {
            let pick = candidates[rng.gen_range(0..candidates.len())];
            targets.push(pick);
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smp_types::{ClientId, Transaction};

    const SEED: u64 = 0xA11CE;

    fn make_mb(creator: u32, n: usize) -> Microblock {
        let txs = (0..n)
            .map(|i| Transaction::synthetic(ClientId(creator), i as u64, 128, 0))
            .collect();
        Microblock::seal(ReplicaId(creator), txs, 0)
    }

    fn engines(n: usize, quorum: usize) -> Vec<PabEngine> {
        (0..n as u32)
            .map(|i| PabEngine::new(SEED, n, ReplicaId(i), quorum, 0.5))
            .collect()
    }

    #[test]
    fn push_phase_produces_proof_at_quorum() {
        let mut engines = engines(4, 2); // f = 1, q = f + 1 = 2
        let mb = make_mb(0, 3);
        engines[0].start_push(&mb, 1_000, None);
        assert!(engines[0].is_pushing(&mb.id));
        // One remote ack plus the sender's own signature reaches q = 2.
        let ack1 = engines[1].ack_for(&mb.id);
        let ready = engines[0]
            .on_ack(mb.id, ack1, 5_000)
            .expect("quorum reached");
        assert_eq!(ready.stable_time, 4_000);
        assert_eq!(ready.proof.len(), 2);
        assert!(ready.origin.is_none());
        // Further acks do not produce the proof again.
        let ack2 = engines[2].ack_for(&mb.id);
        assert!(engines[0].on_ack(mb.id, ack2, 6_000).is_none());
    }

    #[test]
    fn proof_verifies_everywhere_and_bad_proofs_fail() {
        let mut engines = engines(7, 3);
        let mb = make_mb(0, 2);
        engines[0].start_push(&mb, 0, None);
        let a1 = engines[1].ack_for(&mb.id);
        let a2 = engines[2].ack_for(&mb.id);
        engines[0].on_ack(mb.id, a1, 10);
        let ready = engines[0]
            .on_ack(mb.id, a2, 20)
            .expect("quorum of 3 reached");
        for e in &engines {
            assert!(e.verify_proof(&mb.id, &ready.proof).is_ok());
        }
        // A proof over a different microblock does not verify for this id.
        let other = make_mb(1, 2);
        assert!(engines[3].verify_proof(&other.id, &ready.proof).is_err());
        // A truncated proof fails the quorum check.
        let weak = QuorumProof::new(mb.id.digest());
        assert!(engines[3].verify_proof(&mb.id, &weak).is_err());
    }

    #[test]
    fn invalid_acks_are_ignored() {
        let mut engines = engines(4, 3);
        let mb = make_mb(0, 1);
        engines[0].start_push(&mb, 0, None);
        // An ack signed over the wrong digest is rejected.
        let bogus = Signature::sign(
            &KeyPair::derive(SEED, 1).secret,
            &smp_crypto::Digest::of_u64(12345),
        );
        assert!(engines[0].on_ack(mb.id, bogus, 1).is_none());
        // Unknown instance acks are ignored too.
        let ack = engines[1].ack_for(&mb.id);
        let unknown = make_mb(2, 1);
        assert!(engines[0].on_ack(unknown.id, ack, 1).is_none());
    }

    #[test]
    fn duplicate_acks_do_not_count_twice() {
        let mut engines = engines(4, 3);
        let mb = make_mb(0, 1);
        engines[0].start_push(&mb, 0, None);
        let ack1 = engines[1].ack_for(&mb.id);
        assert!(engines[0].on_ack(mb.id, ack1, 1).is_none());
        assert!(
            engines[0].on_ack(mb.id, ack1, 2).is_none(),
            "same signer replayed"
        );
        let ack2 = engines[2].ack_for(&mb.id);
        assert!(engines[0].on_ack(mb.id, ack2, 3).is_some());
    }

    #[test]
    fn proxy_origin_is_preserved() {
        let mut engines = engines(4, 2);
        let mb = make_mb(3, 1); // created by replica 3
        engines[0].start_push(&mb, 100, Some(ReplicaId(3)));
        let ack = engines[1].ack_for(&mb.id);
        let ready = engines[0].on_ack(mb.id, ack, 200).unwrap();
        assert_eq!(ready.origin, Some(ReplicaId(3)));
    }

    #[test]
    fn fetch_targets_come_from_signers_and_exclude_requested() {
        let mut engines = engines(10, 5);
        let mb = make_mb(0, 1);
        engines[0].start_push(&mb, 0, None);
        for i in 1..5u32 {
            let ack = engines[i as usize].ack_for(&mb.id);
            engines[0].on_ack(mb.id, ack, 10);
        }
        let proof = engines[0].proof_of(&mb.id).unwrap().clone();
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..20 {
            let targets = engines[7].fetch_targets(&proof, &[ReplicaId(1)], &mut rng);
            assert!(!targets.is_empty());
            for t in &targets {
                assert!(proof.signers().contains(&t.0));
                assert_ne!(*t, ReplicaId(7));
                assert_ne!(*t, ReplicaId(1));
            }
        }
    }

    #[test]
    fn fetch_targets_empty_when_all_requested() {
        let mut engines = engines(4, 2);
        let mb = make_mb(0, 1);
        engines[0].start_push(&mb, 0, None);
        let ack = engines[1].ack_for(&mb.id);
        let ready = engines[0].on_ack(mb.id, ack, 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(9);
        let all: Vec<ReplicaId> = ready.proof.signers().into_iter().map(ReplicaId).collect();
        let targets = engines[2].fetch_targets(&ready.proof, &all, &mut rng);
        assert!(targets.is_empty());
    }
}
