//! Wire messages of the Stratus shared mempool.

use serde::{Deserialize, Serialize};
use smp_crypto::{QuorumProof, Signature};
use smp_types::{wire, Microblock, MicroblockId, SimTime, WireSize};

/// Messages exchanged between Stratus mempool instances.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum StratusMsg {
    /// PAB push phase: the disseminator broadcasts the microblock.
    PabMsg(Microblock),
    /// PAB push phase: a receiver acknowledges the microblock to the
    /// disseminator with its signature share.
    PabAck {
        /// Acknowledged microblock.
        id: MicroblockId,
        /// Signature over the microblock id.
        sig: Signature,
    },
    /// PAB recovery phase: the availability proof is broadcast.
    PabProof {
        /// Proven microblock.
        id: MicroblockId,
        /// The availability proof (`q` aggregated signatures).
        proof: QuorumProof,
    },
    /// PAB recovery phase: request for missing microblocks.
    PabRequest {
        /// Requested microblock ids.
        ids: Vec<MicroblockId>,
    },
    /// PAB recovery phase: response with the requested microblocks.
    PabResponse {
        /// The returned microblocks.
        mbs: Vec<Microblock>,
    },
    /// DLB: a busy replica samples the load status of a peer.
    LbQuery {
        /// Correlation token.
        token: u64,
    },
    /// DLB: load-status reply; `stable_time_us` is `None` when the replica
    /// is itself busy.
    LbInfo {
        /// Correlation token from the query.
        token: u64,
        /// Estimated stable time, or `None` if busy.
        stable_time_us: Option<SimTime>,
    },
    /// DLB: a busy replica forwards a microblock to the chosen proxy for
    /// dissemination on its behalf.
    LbForward(Microblock),
}

impl StratusMsg {
    /// Stable label for bandwidth accounting (Table III splits traffic
    /// into proposals, microblocks, votes and acks).
    pub fn kind(&self) -> &'static str {
        match self {
            StratusMsg::PabMsg(_) => "microblock",
            StratusMsg::PabAck { .. } => "ack",
            StratusMsg::PabProof { .. } => "proof",
            StratusMsg::PabRequest { .. } => "fetch-req",
            StratusMsg::PabResponse { .. } => "fetch-resp",
            StratusMsg::LbQuery { .. } | StratusMsg::LbInfo { .. } => "lb-control",
            StratusMsg::LbForward(_) => "lb-forward",
        }
    }

    /// Whether the message is bulk data (subject to the token-bucket
    /// limiter and the low-priority network lane).
    pub fn is_bulk_data(&self) -> bool {
        matches!(
            self,
            StratusMsg::PabMsg(_) | StratusMsg::PabResponse { .. } | StratusMsg::LbForward(_)
        )
    }
}

impl WireSize for StratusMsg {
    fn wire_size(&self) -> usize {
        match self {
            StratusMsg::PabMsg(mb) | StratusMsg::LbForward(mb) => mb.wire_size(),
            StratusMsg::PabAck { .. } => wire::ACK_BYTES,
            StratusMsg::PabProof { proof, .. } => 32 + proof.wire_size(),
            StratusMsg::PabRequest { ids } => wire::FETCH_REQUEST_BYTES + ids.len() * 32,
            StratusMsg::PabResponse { mbs } => {
                16 + mbs.iter().map(WireSize::wire_size).sum::<usize>()
            }
            StratusMsg::LbQuery { .. } => wire::LB_QUERY_BYTES,
            StratusMsg::LbInfo { .. } => wire::LB_QUERY_BYTES + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_crypto::KeyPair;
    use smp_types::{ClientId, ReplicaId, Transaction};

    fn mb(n: usize) -> Microblock {
        let txs = (0..n)
            .map(|i| Transaction::synthetic(ClientId(1), i as u64, 128, 0))
            .collect();
        Microblock::seal(ReplicaId(0), txs, 0)
    }

    #[test]
    fn data_messages_are_flagged_as_bulk() {
        assert!(StratusMsg::PabMsg(mb(4)).is_bulk_data());
        assert!(StratusMsg::LbForward(mb(4)).is_bulk_data());
        assert!(!StratusMsg::LbQuery { token: 1 }.is_bulk_data());
        assert!(!StratusMsg::PabProof {
            id: mb(1).id,
            proof: QuorumProof::new(mb(1).id.digest())
        }
        .is_bulk_data());
    }

    #[test]
    fn control_messages_are_small() {
        let kp = KeyPair::derive(0, 0);
        let sig = Signature::sign(&kp.secret, &mb(1).id.digest());
        assert!(StratusMsg::PabAck { id: mb(1).id, sig }.wire_size() <= 128);
        assert!(StratusMsg::LbQuery { token: 9 }.wire_size() <= 64);
        assert!(
            StratusMsg::LbInfo {
                token: 9,
                stable_time_us: Some(10)
            }
            .wire_size()
                <= 64
        );
    }

    #[test]
    fn kinds_match_table_iii_vocabulary() {
        assert_eq!(StratusMsg::PabMsg(mb(1)).kind(), "microblock");
        assert_eq!(
            StratusMsg::PabAck {
                id: mb(1).id,
                sig: Signature::sign(&KeyPair::derive(0, 0).secret, &mb(1).id.digest())
            }
            .kind(),
            "ack"
        );
    }
}
