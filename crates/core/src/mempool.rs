//! The Stratus shared mempool (Algorithm 3), tying together PAB, DLB, the
//! stable-time estimator and the data-rate limiter behind the common
//! [`smp_mempool::Mempool`] interface.

use crate::config::StratusConfig;
use crate::dlb::{ForwardDecision, LoadBalancer};
use crate::estimator::StableTimeEstimator;
use crate::limiter::TokenBucket;
use crate::messages::StratusMsg;
use crate::pab::PabEngine;
use rand::rngs::SmallRng;
use smp_mempool::{
    Effects, FetchRetryState, FillStatus, FillTracker, LoadSnapshot, Mempool, MempoolEvent,
    MempoolStats, MicroblockStore, ProposalQueue, TimerTag, TxBatcher, BATCH_TIMEOUT_TAG,
};
use smp_telemetry::Telemetry;
use smp_types::{
    Microblock, MicroblockId, MicroblockRef, Payload, Proposal, ReplicaId, SimTime, SystemConfig,
    Transaction, WireSize,
};
use std::collections::VecDeque;

/// Timer-tag base for DLB sampling timeouts (`τ`).
pub const SAMPLE_TAG_BASE: u64 = 0x5100_0000_0000_0000;
/// Timer-tag base for DLB forward timeouts (`τ'`).
pub const FORWARD_TAG_BASE: u64 = 0x5200_0000_0000_0000;
/// Timer tag for the periodic banList reset.
pub const BANLIST_RESET_TAG: u64 = 0x4241_4e52;
/// Timer tag for the token-bucket release check.
pub const LIMITER_TAG: u64 = 0x4c49_4d49;

/// The Stratus shared mempool.
#[derive(Clone, Debug)]
pub struct StratusMempool {
    me: ReplicaId,
    n: usize,
    max_refs: usize,
    config: StratusConfig,
    batcher: TxBatcher,
    store: MicroblockStore,
    /// The paper's `avaQue`: microblock ids whose availability proof is
    /// known and which have not yet been referenced by a proposal.
    ava_queue: ProposalQueue,
    tracker: FillTracker,
    fetcher: FetchRetryState,
    pab: PabEngine,
    lb: LoadBalancer,
    estimator: StableTimeEstimator,
    limiter: Option<TokenBucket>,
    deferred: VecDeque<(Microblock, Option<ReplicaId>)>,
    started: bool,
    created: u64,
    /// `LbInfo` replies observed since the last [`Mempool::load_snapshot`]
    /// drain, for cross-shard DLB coordination.
    pending_load: Vec<(ReplicaId, Option<SimTime>)>,
    /// Whether the periodic banList reset fired since the last drain.
    pending_reset: bool,
    telemetry: Telemetry,
}

impl StratusMempool {
    /// Creates the Stratus mempool for replica `me`.
    pub fn new(system: &SystemConfig, config: StratusConfig, me: ReplicaId) -> Self {
        let quorum = config
            .pab_quorum_override
            .unwrap_or(system.pab_quorum)
            .clamp(system.f + 1, 2 * system.f + 1);
        let limiter = config
            .data_bandwidth_share
            .map(|share| TokenBucket::for_bandwidth_share(system.network.bandwidth_bps(), share));
        StratusMempool {
            me,
            n: system.n,
            max_refs: system.mempool.max_refs_per_proposal,
            config,
            batcher: TxBatcher::new(me, system.mempool),
            store: MicroblockStore::new(),
            ava_queue: ProposalQueue::new(),
            tracker: FillTracker::new(),
            fetcher: FetchRetryState::new(config.fetch_timeout),
            pab: PabEngine::new(system.seed, system.n, me, quorum, config.fetch_alpha),
            lb: LoadBalancer::new(me, system.n, config.dlb),
            estimator: StableTimeEstimator::new(
                config.dlb.estimator_window,
                config.dlb.estimator_percentile,
                config.dlb.busy_factor,
            ),
            limiter,
            deferred: VecDeque::new(),
            started: false,
            created: 0,
            pending_load: Vec::new(),
            pending_reset: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The PAB availability quorum in use.
    pub fn pab_quorum(&self) -> usize {
        self.pab.quorum()
    }

    /// The workload estimator (exposed for tests and reporting).
    pub fn estimator(&self) -> &StableTimeEstimator {
        &self.estimator
    }

    /// The load balancer (exposed for tests and reporting).
    pub fn load_balancer(&self) -> &LoadBalancer {
        &self.lb
    }

    /// Number of availability proofs known locally.
    pub fn proofs_known(&self) -> usize {
        self.pab.proofs_known()
    }

    /// Whether `id` is currently proposable (provably available and not
    /// yet referenced by a proposal seen by this replica).
    pub fn is_proposable(&self, id: &MicroblockId) -> bool {
        self.ava_queue.contains(id)
    }

    fn ensure_started(&mut self, effects: &mut Effects<StratusMsg>) {
        if !self.started {
            self.started = true;
            if self.lb.enabled() {
                effects.timer(self.lb.banlist_reset_interval(), BANLIST_RESET_TAG);
            }
        }
    }

    /// Handles a freshly sealed microblock (the `NEWMB` event of
    /// Algorithm 4): forward it to a proxy if we are busy, otherwise run
    /// the PAB push phase ourselves.
    fn handle_new_microblock(
        &mut self,
        now: SimTime,
        mb: Microblock,
        rng: &mut SmallRng,
        effects: &mut Effects<StratusMsg>,
    ) {
        self.created += 1;
        self.telemetry.counter_inc("batcher.sealed");
        self.telemetry
            .counter_add("batcher.sealed_txs", mb.len() as u64);
        self.store.insert(mb.clone());
        if self.lb.enabled() && self.estimator.is_busy() {
            // Cloning is cheap: the transaction batch is shared via `Arc`.
            if let Some((token, targets)) = self.lb.start_sampling(mb.clone(), rng) {
                for t in &targets {
                    effects.send(*t, StratusMsg::LbQuery { token });
                }
                effects.timer(self.lb.sample_timeout(), SAMPLE_TAG_BASE + token);
                return;
            }
            // No eligible proxy: fall through to self-broadcast.
        }
        self.start_pab_broadcast(now, mb, None, effects);
    }

    fn start_pab_broadcast(
        &mut self,
        now: SimTime,
        mut mb: Microblock,
        origin: Option<ReplicaId>,
        effects: &mut Effects<StratusMsg>,
    ) {
        mb.disseminator = self.me;
        // Token-bucket limiter: bulk data waits for tokens so that control
        // traffic always has headroom (Section VI, optimization 2).
        let broadcast_bytes = mb.wire_size() * self.n.saturating_sub(1);
        if let Some(limiter) = &mut self.limiter {
            if !limiter.try_consume(now, broadcast_bytes) {
                let delay = limiter.time_until_available(now, broadcast_bytes).max(1);
                self.deferred.push_back((mb, origin));
                effects.timer(delay, LIMITER_TAG);
                return;
            }
        }
        self.telemetry.counter_inc("pab.push");
        self.pab.start_push(&mb, now, origin);
        effects.broadcast(StratusMsg::PabMsg(mb));
    }

    /// Handles a verified availability proof that this replica should act
    /// on locally: record it, make the microblock proposable, and fetch the
    /// data in the background if we do not have it.
    fn adopt_proof(
        &mut self,
        now: SimTime,
        id: MicroblockId,
        proof: smp_crypto::QuorumProof,
        rng: &mut SmallRng,
        effects: &mut Effects<StratusMsg>,
    ) {
        self.pab.store_proof(id, proof.clone());
        self.ava_queue.push(id);
        if !self.store.contains(&id) {
            let targets = self.pab.fetch_targets(&proof, &[], rng);
            if !targets.is_empty() {
                let candidates: Vec<ReplicaId> = proof
                    .signers()
                    .into_iter()
                    .map(ReplicaId)
                    .filter(|r| *r != self.me)
                    .collect();
                let action = self.fetcher.register(vec![id], candidates);
                self.telemetry.counter_inc("fetcher.fetch");
                effects.multicast(targets, StratusMsg::PabRequest { ids: vec![id] });
                effects.timer(self.config.fetch_timeout, action.tag);
                effects.event(MempoolEvent::FetchIssued { count: 1 });
            }
        }
        let _ = now;
    }

    fn handle_forward_decision(
        &mut self,
        now: SimTime,
        decision: ForwardDecision,
        effects: &mut Effects<StratusMsg>,
    ) {
        match decision {
            ForwardDecision::Forward { proxy, mb, token } => {
                effects.send(proxy, StratusMsg::LbForward(mb));
                effects.timer(self.lb.forward_timeout(), FORWARD_TAG_BASE + token);
            }
            ForwardDecision::SelfBroadcast { mb } => {
                self.start_pab_broadcast(now, mb, None, effects);
            }
        }
    }

    fn drain_deferred(&mut self, now: SimTime, effects: &mut Effects<StratusMsg>) {
        while let Some((mb, origin)) = self.deferred.pop_front() {
            let broadcast_bytes = mb.wire_size() * self.n.saturating_sub(1);
            let can_send = match &mut self.limiter {
                Some(l) => l.try_consume(now, broadcast_bytes),
                None => true,
            };
            if can_send {
                self.pab.start_push(&mb, now, origin);
                let mut mb = mb;
                mb.disseminator = self.me;
                effects.broadcast(StratusMsg::PabMsg(mb));
            } else {
                let delay = self
                    .limiter
                    .as_mut()
                    .map(|l| l.time_until_available(now, broadcast_bytes).max(1))
                    .unwrap_or(1);
                self.deferred.push_front((mb, origin));
                effects.timer(delay, LIMITER_TAG);
                break;
            }
        }
    }
}

impl Mempool for StratusMempool {
    type Msg = StratusMsg;

    fn on_client_txs(
        &mut self,
        now: SimTime,
        txs: Vec<Transaction>,
        rng: &mut SmallRng,
    ) -> Effects<StratusMsg> {
        let mut effects = Effects::none();
        self.ensure_started(&mut effects);
        let _span = self.telemetry.span_at("batcher.add", now);
        let outcome = self.batcher.add(now, txs);
        if outcome.arm_timer {
            effects.timer(self.batcher.timeout(), BATCH_TIMEOUT_TAG);
        }
        for mb in outcome.sealed {
            self.handle_new_microblock(now, mb, rng, &mut effects);
        }
        effects
    }

    fn on_message(
        &mut self,
        now: SimTime,
        from: ReplicaId,
        msg: StratusMsg,
        rng: &mut SmallRng,
    ) -> Effects<StratusMsg> {
        let mut effects = Effects::none();
        self.ensure_started(&mut effects);
        match msg {
            StratusMsg::PabMsg(mb) => {
                let id = mb.id;
                let newly = self.store.insert(mb);
                // Acknowledge to the disseminator (push phase, Algorithm 1).
                effects.send(
                    from,
                    StratusMsg::PabAck {
                        id,
                        sig: self.pab.ack_for(&id),
                    },
                );
                if newly {
                    for ev in self.tracker.on_microblock(id, &self.store, now) {
                        effects.event(ev);
                    }
                    self.fetcher.prune(&self.store);
                }
            }
            StratusMsg::PabAck { id, sig } => {
                if let Some(ready) = self.pab.on_ack(id, sig, now) {
                    self.telemetry.counter_inc("pab.stable");
                    self.telemetry
                        .observe_us("pab.stable_time", ready.stable_time);
                    self.estimator.record(ready.stable_time);
                    effects.event(MempoolEvent::MicroblockStable {
                        id,
                        stable_time: ready.stable_time,
                    });
                    match ready.origin {
                        // Proxy: hand the proof back to the original sender,
                        // which takes over the recovery phase (Algorithm 4).
                        Some(origin) if origin != self.me => {
                            effects.send(
                                origin,
                                StratusMsg::PabProof {
                                    id,
                                    proof: ready.proof,
                                },
                            );
                        }
                        // Normal case: broadcast the proof and adopt it.
                        _ => {
                            effects.broadcast(StratusMsg::PabProof {
                                id,
                                proof: ready.proof.clone(),
                            });
                            self.adopt_proof(now, id, ready.proof, rng, &mut effects);
                        }
                    }
                }
            }
            StratusMsg::PabProof { id, proof } => {
                if self.pab.verify_proof(&id, &proof).is_err() {
                    return effects;
                }
                if self.lb.on_proof_received(&id).is_some() {
                    // We are the original sender of a forwarded microblock:
                    // the proxy finished the push phase; take over recovery.
                    effects.broadcast(StratusMsg::PabProof {
                        id,
                        proof: proof.clone(),
                    });
                }
                self.adopt_proof(now, id, proof, rng, &mut effects);
            }
            StratusMsg::PabRequest { ids } => {
                let mbs: Vec<Microblock> = ids
                    .iter()
                    .filter_map(|id| self.store.get(id).cloned())
                    .collect();
                if !mbs.is_empty() {
                    effects.send(from, StratusMsg::PabResponse { mbs });
                }
            }
            StratusMsg::PabResponse { mbs } => {
                for mb in mbs {
                    let id = mb.id;
                    if self.store.insert(mb) {
                        for ev in self.tracker.on_microblock(id, &self.store, now) {
                            effects.event(ev);
                        }
                    }
                }
                self.fetcher.prune(&self.store);
            }
            StratusMsg::LbQuery { token } => {
                effects.send(
                    from,
                    StratusMsg::LbInfo {
                        token,
                        stable_time_us: self.estimator.load_status(),
                    },
                );
            }
            StratusMsg::LbInfo {
                token,
                stable_time_us,
            } => {
                self.pending_load.push((from, stable_time_us));
                if let Some(decision) = self.lb.on_load_info(token, from, stable_time_us) {
                    self.handle_forward_decision(now, decision, &mut effects);
                }
            }
            StratusMsg::LbForward(mb) => {
                // We are the chosen proxy: disseminate on behalf of the
                // original sender (the microblock's creator).
                self.lb.note_proxied();
                let origin = mb.creator;
                self.store.insert(mb.clone());
                self.start_pab_broadcast(now, mb, Some(origin), &mut effects);
            }
        }
        effects
    }

    fn on_timer(&mut self, now: SimTime, tag: TimerTag, rng: &mut SmallRng) -> Effects<StratusMsg> {
        let mut effects = Effects::none();
        if tag == BATCH_TIMEOUT_TAG {
            if let Some(mb) = self.batcher.on_timeout(now) {
                self.handle_new_microblock(now, mb, rng, &mut effects);
            }
        } else if tag == BANLIST_RESET_TAG {
            self.lb.reset_banlist();
            self.pending_reset = true;
            effects.timer(self.lb.banlist_reset_interval(), BANLIST_RESET_TAG);
        } else if tag == LIMITER_TAG {
            self.drain_deferred(now, &mut effects);
        } else if tag >= FORWARD_TAG_BASE {
            if let Some(mb) = self.lb.on_forward_timeout(tag - FORWARD_TAG_BASE) {
                // The proxy never returned a proof: try again (it stays on
                // the banList, so a different proxy will be sampled).
                self.handle_new_microblock(now, mb, rng, &mut effects);
            }
        } else if tag >= SAMPLE_TAG_BASE {
            if let Some(decision) = self.lb.on_sample_timeout(tag - SAMPLE_TAG_BASE) {
                self.handle_forward_decision(now, decision, &mut effects);
            }
        } else if FetchRetryState::owns_tag(tag) {
            if let Some(action) = self.fetcher.on_timer(tag, &self.store) {
                effects.send(action.target, StratusMsg::PabRequest { ids: action.ids });
                effects.timer(self.config.fetch_timeout, action.tag);
            }
        }
        effects
    }

    fn make_payload(&mut self, _now: SimTime) -> Payload {
        let mut refs = Vec::new();
        let mut skipped = Vec::new();
        while refs.len() < self.max_refs {
            let Some(id) = self.ava_queue.pop() else {
                break;
            };
            let Some(proof) = self.pab.proof_of(&id).cloned() else {
                skipped.push(id);
                continue;
            };
            let Some(mb) = self.store.get(&id) else {
                // Provably available but not yet fetched locally: keep it
                // for a later proposal rather than dropping it.
                skipped.push(id);
                continue;
            };
            refs.push(MicroblockRef::proven(
                id,
                mb.creator,
                mb.len() as u32,
                proof,
            ));
        }
        for id in skipped {
            self.ava_queue.push(id);
        }
        if refs.is_empty() {
            Payload::Empty
        } else {
            Payload::Refs(refs)
        }
    }

    fn on_proposal(
        &mut self,
        now: SimTime,
        proposal: &Proposal,
        rng: &mut SmallRng,
    ) -> (FillStatus, Effects<StratusMsg>) {
        let mut effects = Effects::none();
        let refs = match &proposal.payload {
            Payload::Refs(refs) => refs,
            // Per-shard groups are split off by the sharded wrapper before
            // a backend sees them; a whole sharded payload reaching an
            // unsharded backend must not bypass reference verification.
            Payload::Sharded(_) => {
                return (
                    FillStatus::Invalid("sharded payload reached an unsharded mempool"),
                    effects,
                )
            }
            _ => return (FillStatus::Ready, effects),
        };
        // Every reference must carry a valid availability proof, otherwise
        // the proposal triggers a view change (Algorithm 3, lines 22-25).
        for r in refs {
            let Some(proof) = &r.proof else {
                return (
                    FillStatus::Invalid("reference without availability proof"),
                    effects,
                );
            };
            if self.pab.verify_proof(&r.id, proof).is_err() {
                return (FillStatus::Invalid("invalid availability proof"), effects);
            }
        }
        let mut missing = Vec::new();
        for r in refs {
            self.ava_queue.remove(&r.id);
            if let Some(proof) = &r.proof {
                self.pab.store_proof(r.id, proof.clone());
            }
            if !self.store.contains(&r.id) {
                missing.push(r.clone());
            }
        }
        if !missing.is_empty() {
            // Consensus is NOT blocked: the proofs guarantee the data can be
            // recovered in the background (PAB-Provable Availability).
            self.tracker
                .track(proposal, missing.iter().map(|r| r.id).collect(), false);
            for r in &missing {
                let proof = r.proof.as_ref().expect("verified above");
                let targets = self.pab.fetch_targets(proof, &[], rng);
                let candidates: Vec<ReplicaId> = proof
                    .signers()
                    .into_iter()
                    .map(ReplicaId)
                    .filter(|x| *x != self.me)
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let action = self.fetcher.register(vec![r.id], candidates);
                self.telemetry.counter_inc("fetcher.fetch");
                let request_targets = if targets.is_empty() {
                    vec![action.target]
                } else {
                    targets
                };
                effects.multicast(request_targets, StratusMsg::PabRequest { ids: vec![r.id] });
                effects.timer(self.config.fetch_timeout, action.tag);
            }
            effects.event(MempoolEvent::FetchIssued {
                count: missing.len() as u32,
            });
        }
        let _ = now;
        (FillStatus::Ready, effects)
    }

    fn on_commit(&mut self, now: SimTime, proposal: &Proposal) -> Effects<StratusMsg> {
        let mut effects = Effects::none();
        if let Payload::Refs(refs) = &proposal.payload {
            for r in refs {
                self.ava_queue.remove(&r.id);
            }
        }
        for ev in self.tracker.on_commit(proposal, &self.store, now) {
            effects.event(ev);
        }
        effects
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.lb.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    fn load_snapshot(&mut self) -> Option<LoadSnapshot> {
        if !self.lb.enabled() {
            return None;
        }
        let mut own_bans: Vec<ReplicaId> = self.lb.own_banned().into_iter().collect();
        own_bans.sort();
        Some(LoadSnapshot {
            samples: std::mem::take(&mut self.pending_load),
            own_bans,
            reset: std::mem::take(&mut self.pending_reset),
        })
    }

    fn apply_load_view(&mut self, banned: &[ReplicaId]) {
        self.lb.apply_ban_view(&banned.iter().copied().collect());
    }

    fn stats(&self) -> MempoolStats {
        MempoolStats {
            unbatched_txs: self.batcher.pending_txs(),
            stored_microblocks: self.store.len(),
            proposable_microblocks: self.ava_queue.len(),
            created_microblocks: self.created,
            forwarded_microblocks: self.lb.forwarded_total(),
            fetches_issued: self.fetcher.issued(),
        }
    }
}
