//! Distributed load balancing (DLB) — Algorithm 4 of the paper.
//!
//! A busy replica forwards freshly sealed microblocks to a *proxy* chosen
//! with power-of-d-choices sampling: it queries `d` random peers for their
//! load status, picks the least loaded one, and hands it the microblock to
//! disseminate through PAB on its behalf.  The proxy must return the
//! availability proof before a timeout `τ'`, otherwise the microblock is
//! re-forwarded; proxies that are in flight sit on a banList so they are
//! not chosen twice concurrently (and Byzantine proxies that swallow
//! microblocks stay banned until the periodic reset).

use crate::config::DlbConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use smp_types::{Microblock, MicroblockId, ReplicaId, SimTime};
use std::collections::{HashMap, HashSet};

/// Decision produced when a sampling round completes.
#[derive(Clone, Debug, PartialEq)]
pub enum ForwardDecision {
    /// Forward the microblock to this proxy.
    Forward {
        /// The chosen proxy.
        proxy: ReplicaId,
        /// The microblock to forward.
        mb: Microblock,
        /// Token identifying the forward (for the `τ'` timer).
        token: u64,
    },
    /// No usable proxy: disseminate the microblock yourself.
    SelfBroadcast {
        /// The microblock to broadcast.
        mb: Microblock,
    },
}

#[derive(Clone, Debug)]
struct SampleRound {
    mb: Microblock,
    targets: Vec<ReplicaId>,
    replies: HashMap<ReplicaId, Option<SimTime>>,
    decided: bool,
}

#[derive(Clone, Debug)]
struct PendingForward {
    mb: Microblock,
    proxy: ReplicaId,
}

/// The load-forwarding state machine of one replica.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    me: ReplicaId,
    n: usize,
    config: DlbConfig,
    banlist: HashSet<ReplicaId>,
    samples: HashMap<u64, SampleRound>,
    forwards: HashMap<u64, PendingForward>,
    forwarded_by_id: HashMap<MicroblockId, u64>,
    next_token: u64,
    forwarded_total: u64,
    proxied_total: u64,
}

impl LoadBalancer {
    /// Creates the load balancer for replica `me` in a system of `n`.
    pub fn new(me: ReplicaId, n: usize, config: DlbConfig) -> Self {
        LoadBalancer {
            me,
            n,
            config,
            banlist: HashSet::new(),
            samples: HashMap::new(),
            forwards: HashMap::new(),
            forwarded_by_id: HashMap::new(),
            next_token: 1,
            forwarded_total: 0,
            proxied_total: 0,
        }
    }

    /// Whether load balancing is enabled.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Number of microblocks forwarded to proxies so far.
    pub fn forwarded_total(&self) -> u64 {
        self.forwarded_total
    }

    /// Number of microblocks disseminated on behalf of other replicas.
    pub fn proxied_total(&self) -> u64 {
        self.proxied_total
    }

    /// Records that this replica disseminated a microblock for someone else.
    pub fn note_proxied(&mut self) {
        self.proxied_total += 1;
    }

    /// Current banList contents (for tests / reporting).
    pub fn banned(&self) -> Vec<ReplicaId> {
        let mut v: Vec<ReplicaId> = self.banlist.iter().copied().collect();
        v.sort();
        v
    }

    /// Begins a sampling round for `mb`: returns the token and the peers
    /// to query, or `None` if no candidate peers exist (caller broadcasts
    /// the microblock itself).
    pub fn start_sampling(
        &mut self,
        mb: Microblock,
        rng: &mut SmallRng,
    ) -> Option<(u64, Vec<ReplicaId>)> {
        let mut candidates: Vec<ReplicaId> = (0..self.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != self.me && !self.banlist.contains(r))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.shuffle(rng);
        candidates.truncate(self.config.d);
        let token = self.next_token;
        self.next_token += 1;
        self.samples.insert(
            token,
            SampleRound {
                mb,
                targets: candidates.clone(),
                replies: HashMap::new(),
                decided: false,
            },
        );
        Some((token, candidates))
    }

    /// Records a load-status reply.  Returns a decision once every queried
    /// peer has answered.
    pub fn on_load_info(
        &mut self,
        token: u64,
        from: ReplicaId,
        status: Option<SimTime>,
    ) -> Option<ForwardDecision> {
        let round = self.samples.get_mut(&token)?;
        if round.decided || !round.targets.contains(&from) {
            return None;
        }
        round.replies.insert(from, status);
        if round.replies.len() < round.targets.len() {
            return None;
        }
        self.decide(token)
    }

    /// Handles the sampling timeout `τ`: decide with whatever replies have
    /// arrived.
    pub fn on_sample_timeout(&mut self, token: u64) -> Option<ForwardDecision> {
        self.decide(token)
    }

    fn decide(&mut self, token: u64) -> Option<ForwardDecision> {
        let round = self.samples.get_mut(&token)?;
        if round.decided {
            self.samples.remove(&token);
            return None;
        }
        round.decided = true;
        let round = self.samples.remove(&token).expect("round exists");
        let best = round
            .replies
            .iter()
            .filter_map(|(r, s)| s.map(|w| (*r, w)))
            .min_by_key(|(_, w)| *w)
            .map(|(r, _)| r);
        match best {
            Some(proxy) => {
                // Every chosen proxy goes on the banList until it returns a
                // proof (Algorithm 4, lines 17 and 21).
                self.banlist.insert(proxy);
                let token = self.next_token;
                self.next_token += 1;
                self.forwards.insert(
                    token,
                    PendingForward {
                        mb: round.mb.clone(),
                        proxy,
                    },
                );
                self.forwarded_by_id.insert(round.mb.id, token);
                self.forwarded_total += 1;
                Some(ForwardDecision::Forward {
                    proxy,
                    mb: round.mb,
                    token,
                })
            }
            None => Some(ForwardDecision::SelfBroadcast { mb: round.mb }),
        }
    }

    /// Records that the availability proof for a forwarded microblock came
    /// back in time: the proxy is removed from the banList.  Returns the
    /// proxy that is now unbanned.
    pub fn on_proof_received(&mut self, id: &MicroblockId) -> Option<ReplicaId> {
        let token = self.forwarded_by_id.remove(id)?;
        let pending = self.forwards.remove(&token)?;
        self.banlist.remove(&pending.proxy);
        Some(pending.proxy)
    }

    /// Handles the forward timeout `τ'`: if the proof never arrived the
    /// microblock must be re-forwarded (the proxy stays banned).
    pub fn on_forward_timeout(&mut self, token: u64) -> Option<Microblock> {
        let pending = self.forwards.remove(&token)?;
        self.forwarded_by_id.remove(&pending.mb.id);
        Some(pending.mb)
    }

    /// Clears the banList (periodic reset, Algorithm 4 line 33).
    pub fn reset_banlist(&mut self) {
        self.banlist.clear();
    }

    /// The banList reset interval from the configuration.
    pub fn banlist_reset_interval(&self) -> SimTime {
        self.config.banlist_reset_interval
    }

    /// The sampling timeout `τ`.
    pub fn sample_timeout(&self) -> SimTime {
        self.config.sample_timeout
    }

    /// The forward timeout `τ'`.
    pub fn forward_timeout(&self) -> SimTime {
        self.config.forward_timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smp_types::{ClientId, Transaction};

    fn mb(creator: u32, seq: u64) -> Microblock {
        let txs = vec![Transaction::synthetic(ClientId(creator), seq, 128, 0)];
        Microblock::seal(ReplicaId(creator), txs, 0)
    }

    fn lb(d: usize) -> LoadBalancer {
        LoadBalancer::new(ReplicaId(0), 10, DlbConfig::default().with_d(d))
    }

    #[test]
    fn sampling_targets_exclude_self_and_banned() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let (_, targets) = lb.start_sampling(mb(0, 0), &mut rng).unwrap();
        assert_eq!(targets.len(), 3);
        assert!(!targets.contains(&ReplicaId(0)));
    }

    #[test]
    fn least_loaded_replica_wins() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let (token, targets) = lb.start_sampling(mb(0, 1), &mut rng).unwrap();
        assert!(lb.on_load_info(token, targets[0], Some(500)).is_none());
        assert!(lb.on_load_info(token, targets[1], Some(100)).is_none());
        let decision = lb.on_load_info(token, targets[2], Some(900)).unwrap();
        match decision {
            ForwardDecision::Forward { proxy, .. } => assert_eq!(proxy, targets[1]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(lb.forwarded_total(), 1);
        assert_eq!(lb.banned(), vec![targets[1]]);
    }

    #[test]
    fn busy_replies_are_skipped_and_all_busy_means_self_broadcast() {
        let mut lb = lb(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let (token, targets) = lb.start_sampling(mb(0, 2), &mut rng).unwrap();
        lb.on_load_info(token, targets[0], None);
        let decision = lb.on_load_info(token, targets[1], None).unwrap();
        assert!(matches!(decision, ForwardDecision::SelfBroadcast { .. }));
        assert_eq!(lb.forwarded_total(), 0);
    }

    #[test]
    fn sample_timeout_decides_with_partial_replies() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let (token, targets) = lb.start_sampling(mb(0, 3), &mut rng).unwrap();
        lb.on_load_info(token, targets[0], Some(250));
        let decision = lb.on_sample_timeout(token).unwrap();
        match decision {
            ForwardDecision::Forward { proxy, .. } => assert_eq!(proxy, targets[0]),
            other => panic!("unexpected {other:?}"),
        }
        // The timeout can only decide once.
        assert!(lb.on_sample_timeout(token).is_none());
    }

    #[test]
    fn proof_receipt_unbans_proxy() {
        let mut lb = lb(1);
        let mut rng = SmallRng::seed_from_u64(5);
        let m = mb(0, 4);
        let (token, targets) = lb.start_sampling(m.clone(), &mut rng).unwrap();
        let decision = lb.on_load_info(token, targets[0], Some(10)).unwrap();
        let proxy = match decision {
            ForwardDecision::Forward { proxy, .. } => proxy,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(lb.banned(), vec![proxy]);
        assert_eq!(lb.on_proof_received(&m.id), Some(proxy));
        assert!(lb.banned().is_empty());
    }

    #[test]
    fn forward_timeout_returns_microblock_and_keeps_ban() {
        let mut lb = lb(1);
        let mut rng = SmallRng::seed_from_u64(6);
        let m = mb(0, 5);
        let (token, targets) = lb.start_sampling(m.clone(), &mut rng).unwrap();
        let decision = lb.on_load_info(token, targets[0], Some(10)).unwrap();
        let fwd_token = match decision {
            ForwardDecision::Forward { token, .. } => token,
            other => panic!("unexpected {other:?}"),
        };
        let back = lb.on_forward_timeout(fwd_token).unwrap();
        assert_eq!(back.id, m.id);
        // The unresponsive proxy stays banned until the periodic reset.
        assert_eq!(lb.banned().len(), 1);
        lb.reset_banlist();
        assert!(lb.banned().is_empty());
        // After the timeout the proof no longer unbans anything.
        assert_eq!(lb.on_proof_received(&m.id), None);
    }

    #[test]
    fn banned_peers_are_not_sampled_again() {
        let mut lb = LoadBalancer::new(ReplicaId(0), 3, DlbConfig::default().with_d(2));
        let mut rng = SmallRng::seed_from_u64(7);
        // Ban replica 1 by forwarding to it.
        let m = mb(0, 6);
        let (token, targets) = lb.start_sampling(m, &mut rng).unwrap();
        let first = targets[0];
        lb.on_load_info(token, first, Some(1));
        let _ = lb.on_sample_timeout(token);
        // Next sampling round must avoid the banned proxy.
        let (_, targets2) = lb.start_sampling(mb(0, 7), &mut rng).unwrap();
        assert!(!targets2.contains(&first));
    }
}
