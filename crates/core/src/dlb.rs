//! Distributed load balancing (DLB) — Algorithm 4 of the paper.
//!
//! A busy replica forwards freshly sealed microblocks to a *proxy* chosen
//! with power-of-d-choices sampling: it queries `d` random peers for their
//! load status, picks the least loaded one, and hands it the microblock to
//! disseminate through PAB on its behalf.  The proxy must return the
//! availability proof before a timeout `τ'`, otherwise the microblock is
//! re-forwarded; proxies that are in flight sit on a banList so they are
//! not chosen twice concurrently (and Byzantine proxies that swallow
//! microblocks stay banned until the periodic reset).

use crate::config::DlbConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use smp_telemetry::Telemetry;
use smp_types::{Microblock, MicroblockId, ReplicaId, SimTime};
use std::collections::{HashMap, HashSet};

/// Decision produced when a sampling round completes.
#[derive(Clone, Debug, PartialEq)]
pub enum ForwardDecision {
    /// Forward the microblock to this proxy.
    Forward {
        /// The chosen proxy.
        proxy: ReplicaId,
        /// The microblock to forward.
        mb: Microblock,
        /// Token identifying the forward (for the `τ'` timer).
        token: u64,
    },
    /// No usable proxy: disseminate the microblock yourself.
    SelfBroadcast {
        /// The microblock to broadcast.
        mb: Microblock,
    },
}

#[derive(Clone, Debug)]
struct SampleRound {
    mb: Microblock,
    targets: Vec<ReplicaId>,
    replies: HashMap<ReplicaId, Option<SimTime>>,
    decided: bool,
}

#[derive(Clone, Debug)]
struct PendingForward {
    mb: Microblock,
    proxy: ReplicaId,
}

/// The load-forwarding state machine of one replica.
#[derive(Clone, Debug)]
pub struct LoadBalancer {
    me: ReplicaId,
    n: usize,
    config: DlbConfig,
    /// Peers this balancer banned itself (forwards in flight / timed
    /// out).  Owned bans are lifted by `on_proof_received`.
    banlist: HashSet<ReplicaId>,
    /// The coherent ban view imposed by a [`ShardLoadCoordinator`],
    /// replaced wholesale on every `apply_ban_view`.  Kept separate from
    /// the owned bans so a stale imposed view can never make an owned
    /// ban permanent (or vice versa).
    imposed: HashSet<ReplicaId>,
    samples: HashMap<u64, SampleRound>,
    forwards: HashMap<u64, PendingForward>,
    forwarded_by_id: HashMap<MicroblockId, u64>,
    next_token: u64,
    forwarded_total: u64,
    proxied_total: u64,
    /// Observability only — never consulted by any decision path.
    telemetry: Telemetry,
}

impl LoadBalancer {
    /// Creates the load balancer for replica `me` in a system of `n`.
    pub fn new(me: ReplicaId, n: usize, config: DlbConfig) -> Self {
        LoadBalancer {
            me,
            n,
            config,
            banlist: HashSet::new(),
            imposed: HashSet::new(),
            samples: HashMap::new(),
            forwards: HashMap::new(),
            forwarded_by_id: HashMap::new(),
            next_token: 1,
            forwarded_total: 0,
            proxied_total: 0,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Installs a telemetry handle (counters only; decisions are
    /// unaffected whether the handle is live or disabled).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether load balancing is enabled.
    pub fn enabled(&self) -> bool {
        self.config.enabled
    }

    /// Number of microblocks forwarded to proxies so far.
    pub fn forwarded_total(&self) -> u64 {
        self.forwarded_total
    }

    /// Number of microblocks disseminated on behalf of other replicas.
    pub fn proxied_total(&self) -> u64 {
        self.proxied_total
    }

    /// Records that this replica disseminated a microblock for someone else.
    pub fn note_proxied(&mut self) {
        self.proxied_total += 1;
    }

    /// Current effective banList contents — the union of owned and
    /// imposed bans (for sampling, tests and reporting).
    pub fn banned(&self) -> Vec<ReplicaId> {
        let mut v: Vec<ReplicaId> = self.banlist.union(&self.imposed).copied().collect();
        v.sort();
        v
    }

    /// The bans this balancer created itself (forwards in flight or
    /// timed out) — the contribution a [`ShardLoadCoordinator`] absorbs.
    /// Imposed bans are excluded so absorbing after a sync cannot echo
    /// the coordinator's own view back as fresh evidence.
    pub fn own_banned(&self) -> HashSet<ReplicaId> {
        self.banlist.clone()
    }

    /// Whether a peer is currently banned (owned or imposed).
    pub fn is_banned(&self, peer: ReplicaId) -> bool {
        self.banlist.contains(&peer) || self.imposed.contains(&peer)
    }

    /// Imposes a single ban (coordination input from a
    /// [`ShardLoadCoordinator`], as opposed to the balancer's own
    /// forward-in-flight bans).
    pub fn ban(&mut self, peer: ReplicaId) {
        if peer != self.me {
            self.imposed.insert(peer);
            self.telemetry.counter_inc("dlb.bans");
        }
    }

    /// Lifts an imposed ban (owned bans are lifted by the proof
    /// round-trip, `on_proof_received`).
    pub fn unban(&mut self, peer: ReplicaId) {
        if self.imposed.remove(&peer) {
            self.telemetry.counter_inc("dlb.unbans");
        }
    }

    /// Replaces the imposed ban view with a coordinator-supplied
    /// coherent one.  Owned bans are untouched: a proxy with an
    /// outstanding forward from *this* balancer stays banned here even
    /// if the coordinator's view lags.
    pub fn apply_ban_view(&mut self, banned: &HashSet<ReplicaId>) {
        self.imposed = banned.iter().copied().filter(|r| *r != self.me).collect();
    }

    /// Begins a sampling round for `mb`: returns the token and the peers
    /// to query, or `None` if no candidate peers exist (caller broadcasts
    /// the microblock itself).
    pub fn start_sampling(
        &mut self,
        mb: Microblock,
        rng: &mut SmallRng,
    ) -> Option<(u64, Vec<ReplicaId>)> {
        let mut candidates: Vec<ReplicaId> = (0..self.n as u32)
            .map(ReplicaId)
            .filter(|r| *r != self.me && !self.is_banned(*r))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.shuffle(rng);
        candidates.truncate(self.config.d);
        let token = self.next_token;
        self.next_token += 1;
        self.samples.insert(
            token,
            SampleRound {
                mb,
                targets: candidates.clone(),
                replies: HashMap::new(),
                decided: false,
            },
        );
        Some((token, candidates))
    }

    /// Records a load-status reply.  Returns a decision once every queried
    /// peer has answered.
    pub fn on_load_info(
        &mut self,
        token: u64,
        from: ReplicaId,
        status: Option<SimTime>,
    ) -> Option<ForwardDecision> {
        let round = self.samples.get_mut(&token)?;
        if round.decided || !round.targets.contains(&from) {
            return None;
        }
        round.replies.insert(from, status);
        if round.replies.len() < round.targets.len() {
            return None;
        }
        self.decide(token)
    }

    /// Handles the sampling timeout `τ`: decide with whatever replies have
    /// arrived.
    pub fn on_sample_timeout(&mut self, token: u64) -> Option<ForwardDecision> {
        self.decide(token)
    }

    fn decide(&mut self, token: u64) -> Option<ForwardDecision> {
        let round = self.samples.get_mut(&token)?;
        if round.decided {
            self.samples.remove(&token);
            return None;
        }
        round.decided = true;
        let round = self.samples.remove(&token).expect("round exists");
        let best = round
            .replies
            .iter()
            .filter_map(|(r, s)| s.map(|w| (*r, w)))
            .min_by_key(|(_, w)| *w)
            .map(|(r, _)| r);
        match best {
            Some(proxy) => {
                // Every chosen proxy goes on the banList until it returns a
                // proof (Algorithm 4, lines 17 and 21).
                self.banlist.insert(proxy);
                let token = self.next_token;
                self.next_token += 1;
                self.forwards.insert(
                    token,
                    PendingForward {
                        mb: round.mb.clone(),
                        proxy,
                    },
                );
                self.forwarded_by_id.insert(round.mb.id, token);
                self.forwarded_total += 1;
                self.telemetry.counter_inc("dlb.forwarded");
                Some(ForwardDecision::Forward {
                    proxy,
                    mb: round.mb,
                    token,
                })
            }
            None => {
                self.telemetry.counter_inc("dlb.self_broadcast");
                Some(ForwardDecision::SelfBroadcast { mb: round.mb })
            }
        }
    }

    /// Records that the availability proof for a forwarded microblock came
    /// back in time: the proxy is removed from the banList.  Returns the
    /// proxy that is now unbanned.
    pub fn on_proof_received(&mut self, id: &MicroblockId) -> Option<ReplicaId> {
        let token = self.forwarded_by_id.remove(id)?;
        let pending = self.forwards.remove(&token)?;
        self.banlist.remove(&pending.proxy);
        self.telemetry.counter_inc("dlb.unbans");
        Some(pending.proxy)
    }

    /// Handles the forward timeout `τ'`: if the proof never arrived the
    /// microblock must be re-forwarded (the proxy stays banned).
    pub fn on_forward_timeout(&mut self, token: u64) -> Option<Microblock> {
        let pending = self.forwards.remove(&token)?;
        self.forwarded_by_id.remove(&pending.mb.id);
        Some(pending.mb)
    }

    /// Clears the banList — owned and imposed (periodic reset,
    /// Algorithm 4 line 33).
    pub fn reset_banlist(&mut self) {
        self.banlist.clear();
        self.imposed.clear();
        self.telemetry.counter_inc("dlb.banlist_reset");
    }

    /// The banList reset interval from the configuration.
    pub fn banlist_reset_interval(&self) -> SimTime {
        self.config.banlist_reset_interval
    }

    /// The sampling timeout `τ`.
    pub fn sample_timeout(&self) -> SimTime {
        self.config.sample_timeout
    }

    /// The forward timeout `τ'`.
    pub fn forward_timeout(&self) -> SimTime {
        self.config.forward_timeout
    }
}

/// Coordinates the per-shard [`LoadBalancer`]s of a sharded replica
/// (`smp-shard`'s k dissemination pipelines) so DLB decisions are made
/// from **aggregated** per-shard load samples rather than shard-local
/// views.
///
/// Without coordination, shard `a` may ban proxy `P` (forward in flight)
/// while shard `b` — which never sampled `P` — happily forwards to it
/// too, defeating the banList's purpose of never loading one proxy
/// twice concurrently.  The coordinator folds every shard's samples and
/// bans into one view and pushes that view back into each shard:
///
/// 1. each shard records the `LbInfo` replies it observes via
///    [`record`](Self::record),
/// 2. after a shard's balancer acts, its local bans are pulled in via
///    [`absorb`](Self::absorb),
/// 3. [`sync`](Self::sync) imposes the merged ban view on every shard's
///    balancer, so no shard disagrees on `banned()` membership,
/// 4. [`choose_proxy`](Self::choose_proxy) picks a forward target from
///    the *aggregated* load picture (worst case across shards — a peer
///    that is busy on any pipeline is busy, period).
///
/// Synchronisation points are the caller's choice; the sharded executor
/// merges shard outputs deterministically, so running steps 2–3 at those
/// merge points keeps coordination deterministic under both the
/// sequential and the parallel executor.
#[derive(Clone, Debug, Default)]
pub struct ShardLoadCoordinator {
    /// Latest load sample per peer and shard (`None` = peer said busy).
    samples: HashMap<ReplicaId, HashMap<u16, Option<SimTime>>>,
    /// Each shard's own-ban contribution, **replaced** on every
    /// [`absorb`](Self::absorb) so a ban lifted inside a shard (proof
    /// returned) disappears from the merged view at the next round
    /// instead of sticking forever.
    shard_bans: HashMap<u16, HashSet<ReplicaId>>,
    /// Bans imposed directly on the coordinator (operator / policy).
    direct_bans: HashSet<ReplicaId>,
}

impl ShardLoadCoordinator {
    /// An empty coordinator.
    pub fn new() -> Self {
        ShardLoadCoordinator::default()
    }

    /// Records the load status a shard observed for a peer.
    pub fn record(&mut self, shard: u16, peer: ReplicaId, load: Option<SimTime>) {
        self.samples.entry(peer).or_default().insert(shard, load);
    }

    fn merged_bans(&self) -> HashSet<ReplicaId> {
        let mut merged = self.direct_bans.clone();
        for bans in self.shard_bans.values() {
            merged.extend(bans.iter().copied());
        }
        merged
    }

    /// The aggregated load of a peer across every shard that sampled it:
    /// `None` if no shard has a sample, `Some(None)` if any shard saw it
    /// busy, `Some(Some(w))` with the worst (largest) stable time
    /// otherwise.
    pub fn aggregated_load(&self, peer: ReplicaId) -> Option<Option<SimTime>> {
        let per_shard = self.samples.get(&peer)?;
        if per_shard.is_empty() {
            return None;
        }
        let mut worst = 0;
        for load in per_shard.values() {
            match load {
                None => return Some(None),
                Some(w) => worst = worst.max(*w),
            }
        }
        Some(Some(worst))
    }

    /// Bans a peer directly in the merged view (until
    /// [`unban`](Self::unban) or [`reset_banlist`](Self::reset_banlist)).
    pub fn ban(&mut self, peer: ReplicaId) {
        self.direct_bans.insert(peer);
    }

    /// Lifts a direct ban (shard-contributed bans are lifted by the
    /// owning shard returning a proof, observed at the next absorb).
    pub fn unban(&mut self, peer: ReplicaId) {
        self.direct_bans.remove(&peer);
    }

    /// The merged banList (sorted, for tests / reporting).
    pub fn banned(&self) -> Vec<ReplicaId> {
        let mut v: Vec<ReplicaId> = self.merged_bans().into_iter().collect();
        v.sort();
        v
    }

    /// Clears the merged banList (the periodic reset, applied to every
    /// shard on the next [`sync`](Self::sync)).
    pub fn reset_banlist(&mut self) {
        self.direct_bans.clear();
        self.shard_bans.clear();
    }

    /// Replaces `shard`'s contribution to the merged view with the
    /// balancer's current *own* bans (forwards in flight).  Bans the
    /// shard has since lifted drop out of the merged view here.
    pub fn absorb(&mut self, shard: u16, lb: &LoadBalancer) {
        self.absorb_bans(shard, lb.own_banned());
    }

    /// [`absorb`](Self::absorb) from a pre-extracted ban set — for
    /// callers holding a drained `LoadSnapshot` instead of balancer
    /// access (the sharded wrapper, whose instances may live on worker
    /// threads).
    pub fn absorb_bans(&mut self, shard: u16, bans: HashSet<ReplicaId>) {
        self.shard_bans.insert(shard, bans);
    }

    /// Imposes the merged ban view on a shard's balancer (its own bans
    /// are kept separate and unaffected).
    pub fn sync(&self, lb: &mut LoadBalancer) {
        lb.apply_ban_view(&self.merged_bans());
    }

    /// Picks the forward target for the next microblock from the
    /// aggregated view: the unbanned candidate with the smallest
    /// worst-case load, skipping peers that are busy on any shard or
    /// that no shard has sampled.  Ties break towards the lower replica
    /// id so every shard reaches the same decision.
    pub fn choose_proxy(&self, candidates: &[ReplicaId]) -> Option<ReplicaId> {
        let banned = self.merged_bans();
        candidates
            .iter()
            .filter(|r| !banned.contains(r))
            .filter_map(|r| match self.aggregated_load(*r) {
                Some(Some(w)) => Some((w, *r)),
                _ => None,
            })
            .min()
            .map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use smp_types::{ClientId, Transaction};

    fn mb(creator: u32, seq: u64) -> Microblock {
        let txs = vec![Transaction::synthetic(ClientId(creator), seq, 128, 0)];
        Microblock::seal(ReplicaId(creator), txs, 0)
    }

    fn lb(d: usize) -> LoadBalancer {
        LoadBalancer::new(ReplicaId(0), 10, DlbConfig::default().with_d(d))
    }

    #[test]
    fn sampling_targets_exclude_self_and_banned() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(1);
        let (_, targets) = lb.start_sampling(mb(0, 0), &mut rng).unwrap();
        assert_eq!(targets.len(), 3);
        assert!(!targets.contains(&ReplicaId(0)));
    }

    #[test]
    fn least_loaded_replica_wins() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(2);
        let (token, targets) = lb.start_sampling(mb(0, 1), &mut rng).unwrap();
        assert!(lb.on_load_info(token, targets[0], Some(500)).is_none());
        assert!(lb.on_load_info(token, targets[1], Some(100)).is_none());
        let decision = lb.on_load_info(token, targets[2], Some(900)).unwrap();
        match decision {
            ForwardDecision::Forward { proxy, .. } => assert_eq!(proxy, targets[1]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(lb.forwarded_total(), 1);
        assert_eq!(lb.banned(), vec![targets[1]]);
    }

    #[test]
    fn busy_replies_are_skipped_and_all_busy_means_self_broadcast() {
        let mut lb = lb(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let (token, targets) = lb.start_sampling(mb(0, 2), &mut rng).unwrap();
        lb.on_load_info(token, targets[0], None);
        let decision = lb.on_load_info(token, targets[1], None).unwrap();
        assert!(matches!(decision, ForwardDecision::SelfBroadcast { .. }));
        assert_eq!(lb.forwarded_total(), 0);
    }

    #[test]
    fn sample_timeout_decides_with_partial_replies() {
        let mut lb = lb(3);
        let mut rng = SmallRng::seed_from_u64(4);
        let (token, targets) = lb.start_sampling(mb(0, 3), &mut rng).unwrap();
        lb.on_load_info(token, targets[0], Some(250));
        let decision = lb.on_sample_timeout(token).unwrap();
        match decision {
            ForwardDecision::Forward { proxy, .. } => assert_eq!(proxy, targets[0]),
            other => panic!("unexpected {other:?}"),
        }
        // The timeout can only decide once.
        assert!(lb.on_sample_timeout(token).is_none());
    }

    #[test]
    fn proof_receipt_unbans_proxy() {
        let mut lb = lb(1);
        let mut rng = SmallRng::seed_from_u64(5);
        let m = mb(0, 4);
        let (token, targets) = lb.start_sampling(m.clone(), &mut rng).unwrap();
        let decision = lb.on_load_info(token, targets[0], Some(10)).unwrap();
        let proxy = match decision {
            ForwardDecision::Forward { proxy, .. } => proxy,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(lb.banned(), vec![proxy]);
        assert_eq!(lb.on_proof_received(&m.id), Some(proxy));
        assert!(lb.banned().is_empty());
    }

    #[test]
    fn forward_timeout_returns_microblock_and_keeps_ban() {
        let mut lb = lb(1);
        let mut rng = SmallRng::seed_from_u64(6);
        let m = mb(0, 5);
        let (token, targets) = lb.start_sampling(m.clone(), &mut rng).unwrap();
        let decision = lb.on_load_info(token, targets[0], Some(10)).unwrap();
        let fwd_token = match decision {
            ForwardDecision::Forward { token, .. } => token,
            other => panic!("unexpected {other:?}"),
        };
        let back = lb.on_forward_timeout(fwd_token).unwrap();
        assert_eq!(back.id, m.id);
        // The unresponsive proxy stays banned until the periodic reset.
        assert_eq!(lb.banned().len(), 1);
        lb.reset_banlist();
        assert!(lb.banned().is_empty());
        // After the timeout the proof no longer unbans anything.
        assert_eq!(lb.on_proof_received(&m.id), None);
    }

    #[test]
    fn coordinator_aggregates_worst_case_load_across_shards() {
        let mut coord = ShardLoadCoordinator::new();
        assert_eq!(coord.aggregated_load(ReplicaId(1)), None);
        coord.record(0, ReplicaId(1), Some(100));
        coord.record(1, ReplicaId(1), Some(700));
        coord.record(2, ReplicaId(1), Some(300));
        assert_eq!(coord.aggregated_load(ReplicaId(1)), Some(Some(700)));
        // Busy on one shard means busy for the whole replica.
        coord.record(3, ReplicaId(1), None);
        assert_eq!(coord.aggregated_load(ReplicaId(1)), Some(None));
        // A fresh sample on the busy shard clears it.
        coord.record(3, ReplicaId(1), Some(50));
        assert_eq!(coord.aggregated_load(ReplicaId(1)), Some(Some(700)));
    }

    #[test]
    fn coordinator_chooses_one_proxy_from_aggregated_samples() {
        // Shard-local views disagree: shard 0 thinks peer 2 is the least
        // loaded, shard 1 thinks peer 1 is.  The aggregated (worst-case)
        // view must produce ONE decision both shards share.
        let mut coord = ShardLoadCoordinator::new();
        coord.record(0, ReplicaId(1), Some(900));
        coord.record(0, ReplicaId(2), Some(100));
        coord.record(1, ReplicaId(1), Some(200));
        coord.record(1, ReplicaId(2), Some(800));
        let candidates = [ReplicaId(1), ReplicaId(2)];
        // Worst case: peer 1 = 900, peer 2 = 800 → peer 2 wins.
        assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(2)));
        // Banning the winner moves the decision to the runner-up.
        coord.ban(ReplicaId(2));
        assert_eq!(coord.choose_proxy(&candidates), Some(ReplicaId(1)));
        // Unsampled and busy peers are never chosen.
        coord.record(0, ReplicaId(1), None);
        assert_eq!(coord.choose_proxy(&candidates), None);
    }

    #[test]
    fn coordinator_ties_break_deterministically() {
        let mut coord = ShardLoadCoordinator::new();
        coord.record(0, ReplicaId(5), Some(100));
        coord.record(0, ReplicaId(3), Some(100));
        assert_eq!(
            coord.choose_proxy(&[ReplicaId(5), ReplicaId(3)]),
            Some(ReplicaId(3)),
            "equal load must resolve to the lower replica id on every shard"
        );
    }

    #[test]
    fn absorb_and_sync_leave_no_shard_disagreeing_on_bans() {
        // Four shard-local balancers; shard 0 forwards to a proxy and
        // bans it locally — the other shards know nothing about it.
        let n = 10;
        let mut shards: Vec<LoadBalancer> = (0..4)
            .map(|_| LoadBalancer::new(ReplicaId(0), n, DlbConfig::default().with_d(1)))
            .collect();
        let mut rng = SmallRng::seed_from_u64(11);
        let (token, targets) = shards[0].start_sampling(mb(0, 0), &mut rng).unwrap();
        let decision = shards[0].on_load_info(token, targets[0], Some(10)).unwrap();
        let proxy = match decision {
            ForwardDecision::Forward { proxy, .. } => proxy,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(shards[0].banned(), vec![proxy]);
        assert!(
            shards[1..].iter().all(|lb| lb.banned().is_empty()),
            "shard-local views disagree before coordination"
        );

        // Coordination round: absorb every shard, sync every shard.
        let mut coord = ShardLoadCoordinator::new();
        for (i, lb) in shards.iter().enumerate() {
            coord.absorb(i as u16, lb);
        }
        for lb in &mut shards {
            coord.sync(lb);
        }
        for (i, lb) in shards.iter().enumerate() {
            assert_eq!(
                lb.banned(),
                vec![proxy],
                "shard {i} disagrees on banned() membership after sync"
            );
            assert!(lb.is_banned(proxy));
        }

        // No shard will sample the coordinated ban, even those that
        // never talked to the proxy themselves.
        for lb in &mut shards {
            for _ in 0..20 {
                if let Some((_, targets)) = lb.start_sampling(mb(0, 1), &mut rng) {
                    assert!(!targets.contains(&proxy));
                }
            }
        }

        // The periodic reset clears the *imposed* view everywhere; the
        // forwarding shard's own in-flight ban rightly survives until
        // its proof returns or its own periodic reset fires.
        coord.reset_banlist();
        for lb in &mut shards {
            coord.sync(lb);
        }
        assert_eq!(shards[0].banned(), vec![proxy], "own ban survives");
        for (i, lb) in shards.iter().enumerate().skip(1) {
            assert!(lb.banned().is_empty(), "imposed ban on shard {i} cleared");
        }
        shards[0].reset_banlist();
        assert!(shards[0].banned().is_empty());
    }

    #[test]
    fn lifted_shard_bans_drop_out_of_the_merged_view() {
        // Regression: the merged view must not be grow-only.  A ban
        // created by a forward in flight has to disappear from every
        // shard once the proxy returns its proof — otherwise every
        // honest proxy accumulates in the merged view between periodic
        // resets and the proxy pool shrinks to nothing.
        let mut shards: Vec<LoadBalancer> = (0..2)
            .map(|_| LoadBalancer::new(ReplicaId(0), 6, DlbConfig::default().with_d(1)))
            .collect();
        let mut rng = SmallRng::seed_from_u64(12);
        let m = mb(0, 9);
        let (token, targets) = shards[0].start_sampling(m.clone(), &mut rng).unwrap();
        let proxy = match shards[0].on_load_info(token, targets[0], Some(5)).unwrap() {
            ForwardDecision::Forward { proxy, .. } => proxy,
            other => panic!("unexpected {other:?}"),
        };
        let mut coord = ShardLoadCoordinator::new();
        for (i, lb) in shards.iter().enumerate() {
            coord.absorb(i as u16, lb);
        }
        for lb in &mut shards {
            coord.sync(lb);
        }
        assert!(shards.iter().all(|lb| lb.is_banned(proxy)));

        // The proof comes back: shard 0 lifts its own ban, and the next
        // coordination round propagates the lift everywhere.
        assert_eq!(shards[0].on_proof_received(&m.id), Some(proxy));
        for (i, lb) in shards.iter().enumerate() {
            coord.absorb(i as u16, lb);
        }
        for lb in &mut shards {
            coord.sync(lb);
        }
        for (i, lb) in shards.iter().enumerate() {
            assert!(
                !lb.is_banned(proxy),
                "shard {i} still bans the proxy after its forward resolved"
            );
        }
        assert!(coord.banned().is_empty());
    }

    #[test]
    fn imposed_bans_never_mask_or_lift_owned_bans() {
        // An owned ban (forward in flight) must survive a stale imposed
        // view that does not contain it.
        let mut lb = lb(1);
        let mut rng = SmallRng::seed_from_u64(13);
        let m = mb(0, 10);
        let (token, targets) = lb.start_sampling(m.clone(), &mut rng).unwrap();
        let proxy = match lb.on_load_info(token, targets[0], Some(5)).unwrap() {
            ForwardDecision::Forward { proxy, .. } => proxy,
            other => panic!("unexpected {other:?}"),
        };
        lb.apply_ban_view(&HashSet::new()); // stale empty view
        assert!(
            lb.is_banned(proxy),
            "an empty imposed view must not lift the in-flight ban"
        );
        assert_eq!(lb.on_proof_received(&m.id), Some(proxy));
        assert!(!lb.is_banned(proxy));
    }

    #[test]
    fn direct_ban_api_protects_self_and_roundtrips() {
        let mut lb = lb(2);
        lb.ban(ReplicaId(0)); // self — ignored
        assert!(!lb.is_banned(ReplicaId(0)));
        lb.ban(ReplicaId(4));
        assert!(lb.is_banned(ReplicaId(4)));
        lb.unban(ReplicaId(4));
        assert!(!lb.is_banned(ReplicaId(4)));
        let view: HashSet<ReplicaId> = [ReplicaId(0), ReplicaId(2)].into_iter().collect();
        lb.apply_ban_view(&view);
        assert_eq!(lb.banned(), vec![ReplicaId(2)], "self is filtered out");
    }

    #[test]
    fn banned_peers_are_not_sampled_again() {
        let mut lb = LoadBalancer::new(ReplicaId(0), 3, DlbConfig::default().with_d(2));
        let mut rng = SmallRng::seed_from_u64(7);
        // Ban replica 1 by forwarding to it.
        let m = mb(0, 6);
        let (token, targets) = lb.start_sampling(m, &mut rng).unwrap();
        let first = targets[0];
        lb.on_load_info(token, first, Some(1));
        let _ = lb.on_sample_timeout(token);
        // Next sampling round must avoid the banned proxy.
        let (_, targets2) = lb.start_sampling(mb(0, 7), &mut rng).unwrap();
        assert!(!targets2.contains(&first));
    }
}
