//! Integration tests of the Stratus mempool: several instances exchanging
//! messages through a tiny in-test router, checking the PAB and DLB flows
//! end to end (without the network simulator).

// The message-routing loops below use the index both to address the node
// array and as the replica identity.
#![allow(clippy::needless_range_loop)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{Dest, Effects, FillStatus, Mempool, MempoolEvent};
use smp_types::{
    BlockId, ClientId, MempoolConfig, Payload, Proposal, ReplicaId, SystemConfig, Transaction, View,
};
use stratus::{DlbConfig, StratusConfig, StratusMempool, StratusMsg};

const N: usize = 4;

fn system() -> SystemConfig {
    SystemConfig::new(N).with_mempool(MempoolConfig {
        batch_size_bytes: 168 * 4, // four 128-byte transactions per microblock
        ..MempoolConfig::default()
    })
}

fn network(config: StratusConfig) -> (Vec<StratusMempool>, SmallRng) {
    let sys = system();
    let nodes = (0..N as u32)
        .map(|i| StratusMempool::new(&sys, config, ReplicaId(i)))
        .collect();
    (nodes, SmallRng::seed_from_u64(99))
}

fn txs(base: u64, n: usize) -> Vec<Transaction> {
    (0..n)
        .map(|i| Transaction::synthetic(ClientId(0), base + i as u64, 128, 0))
        .collect()
}

/// Routes every message in `effects` to its destination node, collecting
/// any messages those deliveries produce in turn, until quiescence.
/// Timers are NOT fired (tests drive them explicitly where needed).
fn route(
    nodes: &mut [StratusMempool],
    from: usize,
    effects: Effects<StratusMsg>,
    now: u64,
    rng: &mut SmallRng,
) -> Vec<(usize, MempoolEvent)> {
    let mut events = Vec::new();
    let mut queue: Vec<(usize, usize, StratusMsg)> = Vec::new();
    let push =
        |queue: &mut Vec<(usize, usize, StratusMsg)>, from: usize, fx: &Effects<StratusMsg>| {
            for (dest, msg) in &fx.msgs {
                match dest {
                    Dest::One(r) => queue.push((from, r.index(), msg.clone())),
                    Dest::AllButSelf => {
                        for i in 0..N {
                            if i != from {
                                queue.push((from, i, msg.clone()));
                            }
                        }
                    }
                    Dest::Many(rs) => {
                        for r in rs {
                            queue.push((from, r.index(), msg.clone()));
                        }
                    }
                }
            }
        };
    for (i, ev) in effects.events.iter().enumerate() {
        let _ = i;
        events.push((from, ev.clone()));
    }
    push(&mut queue, from, &effects);
    while let Some((src, dst, msg)) = queue.pop() {
        let fx = nodes[dst].on_message(now, ReplicaId(src as u32), msg, rng);
        for ev in &fx.events {
            events.push((dst, ev.clone()));
        }
        push(&mut queue, dst, &fx);
    }
    events
}

#[test]
fn pab_push_phase_makes_microblock_proposable_everywhere() {
    let (mut nodes, mut rng) = network(StratusConfig::default());
    let fx = nodes[0].on_client_txs(0, txs(0, 4), &mut rng);
    assert!(fx
        .msgs
        .iter()
        .any(|(_, m)| matches!(m, StratusMsg::PabMsg(_))));
    let events = route(&mut nodes, 0, fx, 10, &mut rng);
    // The creator observed stability.
    assert!(events
        .iter()
        .any(|(n, e)| *n == 0 && matches!(e, MempoolEvent::MicroblockStable { .. })));
    // After proof broadcast, every replica can propose the microblock.
    for i in 0..N {
        let payload = nodes[i].make_payload(100);
        assert_eq!(
            payload.ref_count(),
            1,
            "replica {i} should hold one proposable ref"
        );
        match payload {
            Payload::Refs(refs) => assert!(refs[0].proof.is_some()),
            other => panic!("unexpected payload {other:?}"),
        }
    }
}

#[test]
fn proposal_with_valid_proofs_is_ready_even_if_data_missing() {
    let (mut nodes, mut rng) = network(StratusConfig::default());
    let fx = nodes[0].on_client_txs(0, txs(0, 4), &mut rng);
    let _ = route(&mut nodes, 0, fx, 10, &mut rng);
    let payload = nodes[1].make_payload(50);
    let proposal = Proposal::new(View(7), 1, BlockId::GENESIS, ReplicaId(1), payload, true);

    // A brand-new replica that never saw the microblock or the proof can
    // still verify the proposal and proceed without blocking.
    let sys = system();
    let mut fresh = StratusMempool::new(&sys, StratusConfig::default(), ReplicaId(3));
    let (status, fx) = fresh.on_proposal(60, &proposal, &mut rng);
    assert_eq!(
        status,
        FillStatus::Ready,
        "Stratus never blocks consensus on missing data"
    );
    assert!(
        fx.msgs
            .iter()
            .any(|(_, m)| matches!(m, StratusMsg::PabRequest { .. })),
        "missing data is fetched in the background"
    );
    assert!(fx
        .events
        .iter()
        .any(|e| matches!(e, MempoolEvent::FetchIssued { .. })));
}

#[test]
fn proposal_without_proof_is_invalid() {
    let (mut nodes, mut rng) = network(StratusConfig::default());
    let fx = nodes[0].on_client_txs(0, txs(0, 4), &mut rng);
    let _ = route(&mut nodes, 0, fx, 10, &mut rng);
    // Strip the proof from the reference.
    let payload = match nodes[1].make_payload(50) {
        Payload::Refs(mut refs) => {
            refs[0].proof = None;
            Payload::Refs(refs)
        }
        other => panic!("unexpected payload {other:?}"),
    };
    let proposal = Proposal::new(View(7), 1, BlockId::GENESIS, ReplicaId(1), payload, true);
    let (status, _) = nodes[2].on_proposal(60, &proposal, &mut rng);
    assert!(matches!(status, FillStatus::Invalid(_)));
}

#[test]
fn committed_proposals_execute_with_latencies() {
    let (mut nodes, mut rng) = network(StratusConfig::default());
    let fx = nodes[0].on_client_txs(1_000, txs(0, 4), &mut rng);
    let _ = route(&mut nodes, 0, fx, 2_000, &mut rng);
    let payload = nodes[2].make_payload(3_000);
    let proposal = Proposal::new(View(9), 2, BlockId::GENESIS, ReplicaId(2), payload, true);
    let (status, _) = nodes[1].on_proposal(4_000, &proposal, &mut rng);
    assert_eq!(status, FillStatus::Ready);
    let fx = nodes[1].on_commit(10_000, &proposal);
    let executed = fx
        .events
        .iter()
        .find_map(|e| match e {
            MempoolEvent::Executed {
                tx_count,
                receive_times,
                ..
            } => Some((*tx_count, receive_times.clone())),
            _ => None,
        })
        .expect("commit executes");
    assert_eq!(executed.0, 4);
    assert_eq!(executed.1.len(), 4);
    assert!(executed.1.iter().all(|t| *t == 1_000));
    // Once referenced, the microblock is no longer proposable here.
    assert_eq!(nodes[1].make_payload(11_000).ref_count(), 0);
}

#[test]
fn duplicate_proposal_references_are_not_reproposed() {
    let (mut nodes, mut rng) = network(StratusConfig::default());
    let fx = nodes[0].on_client_txs(0, txs(0, 4), &mut rng);
    let _ = route(&mut nodes, 0, fx, 10, &mut rng);
    let payload = nodes[3].make_payload(20);
    assert_eq!(payload.ref_count(), 1);
    let proposal = Proposal::new(View(1), 1, BlockId::GENESIS, ReplicaId(3), payload, true);
    // Every other replica sees the proposal; their queues drop the ref.
    for i in 0..3 {
        let _ = nodes[i].on_proposal(30, &proposal, &mut rng);
        assert_eq!(nodes[i].make_payload(40).ref_count(), 0, "replica {i}");
    }
}

#[test]
fn busy_replica_forwards_load_to_proxy_and_proxy_disseminates() {
    // Disable the limiter so the forwarding path is exercised in isolation,
    // and make the estimator tiny so it is easy to drive into the busy state.
    let cfg = StratusConfig {
        dlb: DlbConfig {
            estimator_window: 4,
            busy_factor: 2.0,
            d: 2,
            ..DlbConfig::default()
        },
        data_bandwidth_share: None,
        ..StratusConfig::default()
    };
    let (mut nodes, mut rng) = network(cfg);

    // Drive replica 0 busy: first a normal baseline, then inflated stable
    // times by delaying the acks.
    for round in 0..6u64 {
        let fx = nodes[0].on_client_txs(round * 1_000_000, txs(round * 100, 4), &mut rng);
        // Deliver PabMsg manually and return only one ack, late, so the
        // stable time grows round after round.
        let mb = fx.msgs.iter().find_map(|(_, m)| match m {
            StratusMsg::PabMsg(mb) => Some(mb.clone()),
            _ => None,
        });
        let Some(mb) = mb else { continue };
        let delay = if round < 3 { 10_000 } else { 80_000 };
        let ack_fx = nodes[1].on_message(
            round * 1_000_000 + delay,
            ReplicaId(0),
            StratusMsg::PabMsg(mb),
            &mut rng,
        );
        // Route the ack back to node 0 at the delayed time.
        for (_, m) in ack_fx.msgs {
            let _ = nodes[0].on_message(round * 1_000_000 + delay, ReplicaId(1), m, &mut rng);
        }
    }
    assert!(
        nodes[0].estimator().is_busy(),
        "estimator should report busy after ST inflation"
    );

    // The next sealed microblock is load-balanced instead of broadcast.
    let fx = nodes[0].on_client_txs(10_000_000, txs(10_000, 4), &mut rng);
    assert!(
        fx.msgs
            .iter()
            .any(|(_, m)| matches!(m, StratusMsg::LbQuery { .. })),
        "busy replica samples proxies instead of broadcasting"
    );
    assert!(!fx
        .msgs
        .iter()
        .any(|(_, m)| matches!(m, StratusMsg::PabMsg(_))));

    // Route the whole exchange: queries -> infos -> forward -> proxy PAB.
    let events = route(&mut nodes, 0, fx, 10_000_100, &mut rng);
    assert!(
        nodes[0].load_balancer().forwarded_total() >= 1,
        "microblock was forwarded"
    );
    let proxied: u64 = nodes
        .iter()
        .map(|n| n.load_balancer().proxied_total())
        .sum();
    assert_eq!(
        proxied, 1,
        "exactly one proxy disseminated on behalf of the busy sender"
    );
    // The proxy's dissemination still leads to stability.
    assert!(events
        .iter()
        .any(|(_, e)| matches!(e, MempoolEvent::MicroblockStable { .. })));
    // And the microblock ends up proposable at the non-busy replicas.
    let proposable: usize = (0..N)
        .map(|i| nodes[i].make_payload(20_000_000).ref_count())
        .sum();
    assert!(proposable >= 1);
}

#[test]
fn limiter_defers_bulk_broadcasts_under_a_tight_budget() {
    // A tiny data budget: the second microblock must wait for tokens.
    let sys = SystemConfig::new(N)
        .with_network(smp_types::NetworkPreset::Custom {
            bandwidth_bps: 240_000, // data budget ~3 KB burst at a 10% share
            one_way_delay_us: 1000,
            jitter_us: 0,
        })
        .with_mempool(MempoolConfig {
            batch_size_bytes: 168 * 4,
            ..MempoolConfig::default()
        });
    let cfg = StratusConfig {
        data_bandwidth_share: Some(0.1),
        ..StratusConfig::default()
    };
    let mut node = StratusMempool::new(&sys, cfg, ReplicaId(0));
    let mut rng = SmallRng::seed_from_u64(5);
    let fx1 = node.on_client_txs(0, txs(0, 4), &mut rng);
    let first_broadcasts = fx1
        .msgs
        .iter()
        .filter(|(_, m)| matches!(m, StratusMsg::PabMsg(_)))
        .count();
    let fx2 = node.on_client_txs(10, txs(100, 4), &mut rng);
    let second_broadcasts = fx2
        .msgs
        .iter()
        .filter(|(_, m)| matches!(m, StratusMsg::PabMsg(_)))
        .count();
    assert_eq!(
        first_broadcasts, 1,
        "first microblock fits the burst budget"
    );
    assert_eq!(
        second_broadcasts, 0,
        "second microblock is deferred by the limiter"
    );
    assert!(fx2
        .timers
        .iter()
        .any(|(_, tag)| *tag == stratus::mempool::LIMITER_TAG));
    // After enough simulated time the deferred microblock is released.
    let fx3 = node.on_timer(5_000_000, stratus::mempool::LIMITER_TAG, &mut rng);
    assert!(fx3
        .msgs
        .iter()
        .any(|(_, m)| matches!(m, StratusMsg::PabMsg(_))));
}

#[test]
fn quorum_override_is_clamped_to_valid_range() {
    let sys = system(); // N = 4, f = 1
    let low = StratusMempool::new(&sys, StratusConfig::default().with_quorum(0), ReplicaId(0));
    let high = StratusMempool::new(&sys, StratusConfig::default().with_quorum(99), ReplicaId(0));
    assert_eq!(low.pab_quorum(), 2); // f + 1
    assert_eq!(high.pab_quorum(), 3); // 2f + 1
}
