//! Chained PBFT: the classic three-phase pattern (pre-prepare, prepare,
//! commit) arranged on the same chained, rotating-leader structure as
//! Chained-HotStuff, as the paper does for a fair comparison
//! (Section VII-A).  Prepare and commit votes are broadcast all-to-all,
//! giving the `O(n²)` message complexity of Table I.

use crate::api::{
    CEffects, CEvent, ConsensusEngine, ConsensusMsg, ProposalVerdict, VoteAggregator,
};
use smp_types::{BlockId, Payload, Proposal, ReplicaId, SimTime, SystemConfig, View};
use std::collections::{HashMap, HashSet};

/// Timer-tag base for per-view pacemaker timers (`tag = base + view`).
pub const PBFT_VIEW_TAG_BASE: u64 = 0x5042_4654_0000_0000;

/// Chained PBFT engine.
#[derive(Clone, Debug)]
pub struct PbftEngine {
    me: ReplicaId,
    n: usize,
    quorum: usize,
    view: View,
    view_timeout: SimTime,
    blocks: HashMap<BlockId, Proposal>,
    prepares: VoteAggregator,
    commits: VoteAggregator,
    new_views: VoteAggregator,
    prepared: HashSet<BlockId>,
    committed: HashSet<BlockId>,
    committed_count: u64,
    last_committed: BlockId,
    proposed_in: HashSet<View>,
    payload_requested_for: HashSet<View>,
    view_changes: u64,
}

impl PbftEngine {
    /// Creates the engine for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        PbftEngine {
            me,
            n: config.n,
            quorum: config.consensus_quorum(),
            view: View(1),
            view_timeout: config.view_change_timeout,
            blocks: HashMap::new(),
            prepares: VoteAggregator::new(),
            commits: VoteAggregator::new(),
            new_views: VoteAggregator::new(),
            prepared: HashSet::new(),
            committed: HashSet::new(),
            committed_count: 0,
            last_committed: BlockId::GENESIS,
            proposed_in: HashSet::new(),
            payload_requested_for: HashSet::new(),
            view_changes: 0,
        }
    }

    /// Number of view changes this replica initiated.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn leader_of(&self, view: View) -> ReplicaId {
        view.leader(self.n)
    }

    fn is_leader(&self, view: View) -> bool {
        self.leader_of(view) == self.me
    }

    fn arm_view_timer(&self, fx: &mut CEffects) {
        fx.timer(self.view_timeout, PBFT_VIEW_TAG_BASE + self.view.0);
    }

    fn request_payload_if_leader(&mut self, view: View, fx: &mut CEffects) {
        if self.is_leader(view)
            && !self.proposed_in.contains(&view)
            && self.payload_requested_for.insert(view)
        {
            fx.event(CEvent::NeedPayload { view });
        }
    }

    fn record_prepare(&mut self, view: View, block: BlockId, voter: ReplicaId, fx: &mut CEffects) {
        if self.prepares.record(view, block, voter, self.quorum) {
            self.prepared.insert(block);
            fx.broadcast(ConsensusMsg::Commit {
                view,
                block,
                voter: self.me,
                instance: self.me,
            });
            self.record_commit(view, block, self.me, fx);
        }
    }

    fn record_commit(&mut self, view: View, block: BlockId, voter: ReplicaId, fx: &mut CEffects) {
        if self.commits.record(view, block, voter, self.quorum) && !self.committed.contains(&block)
        {
            if let Some(p) = self.blocks.get(&block).cloned() {
                self.committed.insert(block);
                self.committed_count += 1;
                self.last_committed = block;
                fx.event(CEvent::Committed { proposal: p });
            }
            // Sequential views: move to the next height after committing.
            let next = view.next();
            if next > self.view {
                self.view = next;
                self.arm_view_timer(fx);
            }
            self.request_payload_if_leader(self.view, fx);
        }
    }
}

impl ConsensusEngine for PbftEngine {
    fn on_start(&mut self, _now: SimTime) -> CEffects {
        let mut fx = CEffects::none();
        self.arm_view_timer(&mut fx);
        self.request_payload_if_leader(self.view, &mut fx);
        fx
    }

    fn on_message(&mut self, _now: SimTime, _from: ReplicaId, msg: ConsensusMsg) -> CEffects {
        let mut fx = CEffects::none();
        match msg {
            ConsensusMsg::Propose(p) => {
                if p.proposer != self.leader_of(p.view) || p.view < self.view {
                    return fx;
                }
                if self.blocks.contains_key(&p.id) {
                    return fx;
                }
                if p.view > self.view {
                    self.view = p.view;
                    self.arm_view_timer(&mut fx);
                }
                self.blocks.insert(p.id, p.clone());
                fx.event(CEvent::VerifyProposal { proposal: p });
            }
            ConsensusMsg::Prepare {
                view, block, voter, ..
            } => {
                self.record_prepare(view, block, voter, &mut fx);
            }
            ConsensusMsg::Commit {
                view, block, voter, ..
            } => {
                self.record_commit(view, block, voter, &mut fx);
            }
            ConsensusMsg::NewView { view, voter, .. } => {
                if self.is_leader(view)
                    && self
                        .new_views
                        .record(view, BlockId::GENESIS, voter, self.quorum)
                {
                    if view > self.view {
                        self.view = view;
                        self.arm_view_timer(&mut fx);
                    }
                    self.request_payload_if_leader(view, &mut fx);
                }
            }
            ConsensusMsg::Vote { .. } => {}
        }
        fx
    }

    fn on_timer(&mut self, _now: SimTime, tag: u64) -> CEffects {
        let mut fx = CEffects::none();
        if tag < PBFT_VIEW_TAG_BASE {
            return fx;
        }
        let timer_view = View(tag - PBFT_VIEW_TAG_BASE);
        if timer_view != self.view {
            return fx;
        }
        self.view_changes += 1;
        fx.event(CEvent::ViewChange {
            abandoned: self.view,
        });
        self.view = self.view.next();
        self.arm_view_timer(&mut fx);
        let leader = self.leader_of(self.view);
        if leader == self.me {
            if self
                .new_views
                .record(self.view, BlockId::GENESIS, self.me, self.quorum)
            {
                self.request_payload_if_leader(self.view, &mut fx);
            }
        } else {
            fx.send(
                leader,
                ConsensusMsg::NewView {
                    view: self.view,
                    voter: self.me,
                    high_qc_view: View(0),
                },
            );
        }
        fx
    }

    fn on_payload(&mut self, _now: SimTime, view: View, payload: Payload) -> CEffects {
        let mut fx = CEffects::none();
        if view != self.view || !self.is_leader(view) || self.proposed_in.contains(&view) {
            return fx;
        }
        self.proposed_in.insert(view);
        let height = view.0;
        let proposal = Proposal::new(view, height, self.last_committed, self.me, payload, false);
        self.blocks.insert(proposal.id, proposal.clone());
        fx.broadcast(ConsensusMsg::Propose(proposal.clone()));
        // The leader's pre-prepare doubles as its prepare vote.
        fx.broadcast(ConsensusMsg::Prepare {
            view,
            block: proposal.id,
            voter: self.me,
            instance: self.me,
        });
        self.record_prepare(view, proposal.id, self.me, &mut fx);
        fx
    }

    fn on_proposal_verdict(
        &mut self,
        _now: SimTime,
        block: BlockId,
        verdict: ProposalVerdict,
    ) -> CEffects {
        let mut fx = CEffects::none();
        let Some(p) = self.blocks.get(&block).cloned() else {
            return fx;
        };
        match verdict {
            ProposalVerdict::Accept => {
                fx.broadcast(ConsensusMsg::Prepare {
                    view: p.view,
                    block,
                    voter: self.me,
                    instance: p.proposer,
                });
                self.record_prepare(p.view, block, self.me, &mut fx);
            }
            ProposalVerdict::Reject => {
                self.view_changes += 1;
                fx.event(CEvent::ViewChange { abandoned: p.view });
                let next = p.view.next();
                if next > self.view {
                    self.view = next;
                    self.arm_view_timer(&mut fx);
                }
                fx.send(
                    self.leader_of(self.view),
                    ConsensusMsg::NewView {
                        view: self.view,
                        voter: self.me,
                        high_qc_view: View(0),
                    },
                );
            }
        }
        fx
    }

    fn id(&self) -> ReplicaId {
        self.me
    }

    fn current_view(&self) -> View {
        self.view
    }

    fn committed_count(&self) -> u64 {
        self.committed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{drive_until_quiet, EngineNet};

    fn net(n: usize) -> EngineNet<PbftEngine> {
        let config = SystemConfig::new(n);
        EngineNet::new(
            (0..n as u32)
                .map(|i| PbftEngine::new(&config, ReplicaId(i)))
                .collect(),
        )
    }

    #[test]
    fn blocks_commit_sequentially() {
        let mut net = net(4);
        net.start();
        drive_until_quiet(&mut net, 50);
        let committed = net
            .engines()
            .iter()
            .map(|e| e.committed_count())
            .min()
            .unwrap();
        assert!(
            committed >= 2,
            "sequential PBFT should commit several blocks, got {committed}"
        );
        let chains = net.committed_chains();
        let shortest = chains.iter().map(|c| c.len()).min().unwrap();
        for i in 0..shortest {
            assert!(
                chains.iter().all(|c| c[i] == chains[0][i]),
                "divergence at {i}"
            );
        }
    }

    #[test]
    fn prepare_and_commit_votes_are_all_to_all() {
        let config = SystemConfig::new(4);
        let mut leader = PbftEngine::new(&config, ReplicaId(1));
        let _ = leader.on_start(0);
        let fx = leader.on_payload(0, View(1), Payload::Empty);
        let broadcasts = fx
            .msgs
            .iter()
            .filter(|(dest, _)| matches!(dest, crate::api::CDest::AllButSelf))
            .count();
        // Pre-prepare plus the leader's own prepare are both broadcast.
        assert!(broadcasts >= 2);
    }

    #[test]
    fn view_change_restores_progress_with_silent_leader() {
        let mut net = net(4);
        net.start();
        net.silence(ReplicaId(1)); // leader of view 1
        drive_until_quiet(&mut net, 10);
        net.fire_view_timers();
        drive_until_quiet(&mut net, 30);
        net.fire_view_timers();
        drive_until_quiet(&mut net, 50);
        let committed = net
            .engines()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, e)| e.committed_count())
            .min()
            .unwrap();
        assert!(
            committed >= 1,
            "progress should resume after the view change"
        );
    }

    #[test]
    fn proposals_from_non_leaders_are_ignored() {
        let config = SystemConfig::new(4);
        let mut e = PbftEngine::new(&config, ReplicaId(0));
        let _ = e.on_start(0);
        let bogus = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(3),
            Payload::Empty,
            false,
        );
        let fx = e.on_message(0, ReplicaId(3), ConsensusMsg::Propose(bogus));
        assert!(fx.events.is_empty());
    }
}
