//! Streamlet: the textbook streamlined blockchain protocol (Chan & Shi,
//! 2020), one of the three consensus engines the paper integrates with
//! Stratus (Section VI).
//!
//! Epochs advance on a fixed timer.  The epoch leader proposes a block
//! extending the longest notarized chain; every replica broadcasts its
//! vote; a block with `2f + 1` votes is notarized; three adjacent
//! notarized blocks with consecutive epoch numbers finalize the prefix up
//! to the middle one.

use crate::api::{
    CEffects, CEvent, ConsensusEngine, ConsensusMsg, ProposalVerdict, VoteAggregator,
};
use smp_types::{BlockId, Payload, Proposal, ReplicaId, SimTime, SystemConfig, View};
use std::collections::{HashMap, HashSet};

/// Timer tag for the epoch clock.
pub const EPOCH_TAG: u64 = 0x5354_524c_0000_0001;

/// Streamlet engine.
#[derive(Clone, Debug)]
pub struct StreamletEngine {
    me: ReplicaId,
    n: usize,
    quorum: usize,
    epoch: View,
    epoch_duration: SimTime,
    blocks: HashMap<BlockId, Proposal>,
    votes: VoteAggregator,
    notarized: HashSet<BlockId>,
    finalized: HashSet<BlockId>,
    committed_count: u64,
    longest_notarized_tip: BlockId,
    longest_notarized_height: u64,
    proposed_in: HashSet<View>,
    payload_requested_for: HashSet<View>,
    view_changes: u64,
}

impl StreamletEngine {
    /// Creates the engine for replica `me`.  The epoch duration is derived
    /// from the configured view-change timeout (an epoch must comfortably
    /// fit one proposal round trip).
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        StreamletEngine {
            me,
            n: config.n,
            quorum: config.consensus_quorum(),
            epoch: View(1),
            epoch_duration: (config.view_change_timeout / 2).max(1),
            blocks: HashMap::new(),
            votes: VoteAggregator::new(),
            notarized: HashSet::new(),
            finalized: HashSet::new(),
            committed_count: 0,
            longest_notarized_tip: BlockId::GENESIS,
            longest_notarized_height: 0,
            proposed_in: HashSet::new(),
            payload_requested_for: HashSet::new(),
            view_changes: 0,
        }
    }

    /// Number of epochs that expired without this replica seeing a
    /// proposal from the epoch leader.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn leader_of(&self, epoch: View) -> ReplicaId {
        epoch.leader(self.n)
    }

    fn request_payload_if_leader(&mut self, epoch: View, fx: &mut CEffects) {
        if self.leader_of(epoch) == self.me
            && !self.proposed_in.contains(&epoch)
            && self.payload_requested_for.insert(epoch)
        {
            fx.event(CEvent::NeedPayload { view: epoch });
        }
    }

    fn on_notarized(&mut self, block: BlockId, fx: &mut CEffects) {
        if !self.notarized.insert(block) {
            return;
        }
        let Some(p) = self.blocks.get(&block).cloned() else {
            return;
        };
        if p.height > self.longest_notarized_height {
            self.longest_notarized_height = p.height;
            self.longest_notarized_tip = block;
        }
        // Finalization: three adjacent notarized blocks with consecutive
        // epochs finalize everything up to the middle one.
        let Some(parent) = self.blocks.get(&p.parent).cloned() else {
            return;
        };
        let Some(grandparent) = self.blocks.get(&parent.parent).cloned() else {
            return;
        };
        if !self.notarized.contains(&parent.id) || !self.notarized.contains(&grandparent.id) {
            return;
        }
        if p.view.0 == parent.view.0 + 1 && parent.view.0 == grandparent.view.0 + 1 {
            self.finalize_chain(parent, fx);
        }
    }

    fn finalize_chain(&mut self, tip: Proposal, fx: &mut CEffects) {
        let mut chain = Vec::new();
        let mut cursor = Some(tip);
        while let Some(p) = cursor {
            if self.finalized.contains(&p.id) {
                break;
            }
            cursor = self.blocks.get(&p.parent).cloned();
            chain.push(p);
        }
        for p in chain.into_iter().rev() {
            self.finalized.insert(p.id);
            self.committed_count += 1;
            fx.event(CEvent::Committed { proposal: p });
        }
    }

    fn record_vote(&mut self, epoch: View, block: BlockId, voter: ReplicaId, fx: &mut CEffects) {
        if self.votes.record(epoch, block, voter, self.quorum) {
            self.on_notarized(block, fx);
        }
    }
}

impl ConsensusEngine for StreamletEngine {
    fn on_start(&mut self, _now: SimTime) -> CEffects {
        let mut fx = CEffects::none();
        fx.timer(self.epoch_duration, EPOCH_TAG);
        self.request_payload_if_leader(self.epoch, &mut fx);
        fx
    }

    fn on_message(&mut self, _now: SimTime, _from: ReplicaId, msg: ConsensusMsg) -> CEffects {
        let mut fx = CEffects::none();
        match msg {
            ConsensusMsg::Propose(p) => {
                if p.proposer != self.leader_of(p.view) || self.blocks.contains_key(&p.id) {
                    return fx;
                }
                if p.view > self.epoch {
                    // We are behind: adopt the later epoch.
                    self.epoch = p.view;
                }
                self.blocks.insert(p.id, p.clone());
                fx.event(CEvent::VerifyProposal { proposal: p });
            }
            ConsensusMsg::Prepare {
                view, block, voter, ..
            } => {
                self.record_vote(view, block, voter, &mut fx);
            }
            _ => {}
        }
        fx
    }

    fn on_timer(&mut self, _now: SimTime, tag: u64) -> CEffects {
        let mut fx = CEffects::none();
        if tag != EPOCH_TAG {
            return fx;
        }
        // The epoch clock ticks unconditionally.
        if !self.proposed_in.contains(&self.epoch) && self.leader_of(self.epoch) != self.me {
            // The leader of the finished epoch never reached us.
            self.view_changes += 1;
        }
        self.epoch = self.epoch.next();
        fx.timer(self.epoch_duration, EPOCH_TAG);
        self.request_payload_if_leader(self.epoch, &mut fx);
        fx
    }

    fn on_payload(&mut self, _now: SimTime, epoch: View, payload: Payload) -> CEffects {
        let mut fx = CEffects::none();
        if epoch != self.epoch
            || self.leader_of(epoch) != self.me
            || self.proposed_in.contains(&epoch)
        {
            return fx;
        }
        self.proposed_in.insert(epoch);
        let parent = self.longest_notarized_tip;
        let height = self.longest_notarized_height + 1;
        let proposal = Proposal::new(epoch, height, parent, self.me, payload, false);
        self.blocks.insert(proposal.id, proposal.clone());
        fx.broadcast(ConsensusMsg::Propose(proposal.clone()));
        // The leader votes for its own proposal.
        fx.broadcast(ConsensusMsg::Prepare {
            view: epoch,
            block: proposal.id,
            voter: self.me,
            instance: self.me,
        });
        self.record_vote(epoch, proposal.id, self.me, &mut fx);
        fx
    }

    fn on_proposal_verdict(
        &mut self,
        _now: SimTime,
        block: BlockId,
        verdict: ProposalVerdict,
    ) -> CEffects {
        let mut fx = CEffects::none();
        let Some(p) = self.blocks.get(&block).cloned() else {
            return fx;
        };
        match verdict {
            ProposalVerdict::Accept => {
                // Streamlet votes only for proposals extending the longest
                // notarized chain.
                if p.parent == self.longest_notarized_tip
                    || p.height > self.longest_notarized_height
                {
                    fx.broadcast(ConsensusMsg::Prepare {
                        view: p.view,
                        block,
                        voter: self.me,
                        instance: p.proposer,
                    });
                    self.record_vote(p.view, block, self.me, &mut fx);
                }
            }
            ProposalVerdict::Reject => {
                self.view_changes += 1;
                fx.event(CEvent::ViewChange { abandoned: p.view });
            }
        }
        fx
    }

    fn id(&self) -> ReplicaId {
        self.me
    }

    fn current_view(&self) -> View {
        self.epoch
    }

    fn committed_count(&self) -> u64 {
        self.committed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{drive_until_quiet, EngineNet};

    fn net(n: usize) -> EngineNet<StreamletEngine> {
        let config = SystemConfig::new(n);
        EngineNet::new(
            (0..n as u32)
                .map(|i| StreamletEngine::new(&config, ReplicaId(i)))
                .collect(),
        )
    }

    #[test]
    fn consecutive_epochs_finalize_blocks() {
        let mut net = net(4);
        net.start();
        // Drive several epochs: each fire advances the epoch clock.
        for _ in 0..8 {
            drive_until_quiet(&mut net, 20);
            net.fire_view_timers();
        }
        drive_until_quiet(&mut net, 20);
        let committed = net
            .engines()
            .iter()
            .map(|e| e.committed_count())
            .max()
            .unwrap();
        assert!(
            committed >= 1,
            "three consecutive notarized epochs should finalize, got {committed}"
        );
        // Prefix agreement.
        let chains = net.committed_chains();
        let shortest = chains.iter().map(|c| c.len()).min().unwrap();
        for i in 0..shortest {
            assert!(chains.iter().all(|c| c[i] == chains[0][i]));
        }
    }

    #[test]
    fn epoch_clock_advances_even_without_progress() {
        let config = SystemConfig::new(4);
        let mut e = StreamletEngine::new(&config, ReplicaId(3));
        let _ = e.on_start(0);
        assert_eq!(e.current_view(), View(1));
        let _ = e.on_timer(1, EPOCH_TAG);
        let _ = e.on_timer(2, EPOCH_TAG);
        assert_eq!(e.current_view(), View(3));
        assert!(e.view_changes() >= 1);
    }

    #[test]
    fn votes_are_broadcast() {
        let config = SystemConfig::new(4);
        let mut leader = StreamletEngine::new(&config, ReplicaId(1));
        let _ = leader.on_start(0);
        let fx = leader.on_payload(0, View(1), Payload::Empty);
        let broadcast_votes = fx
            .msgs
            .iter()
            .filter(|(dest, m)| {
                matches!(dest, crate::api::CDest::AllButSelf)
                    && matches!(m, ConsensusMsg::Prepare { .. })
            })
            .count();
        assert_eq!(broadcast_votes, 1);
    }
}
