//! The consensus-engine abstraction.
//!
//! Engines are event-driven state machines, exactly like the mempools: a
//! handler receives an input (message, timer, payload, verification
//! result) and returns [`CEffects`] — messages to send, timers to arm, and
//! outputs for the surrounding replica (payload requests, proposals to
//! verify, committed blocks, view changes).
//!
//! The mempool interaction follows the paper's Figure 1: when the engine
//! becomes the leader it asks for a payload (`MakeProposal`); when it
//! receives a proposal it hands it to the mempool for verification and
//! filling (`FillProposal`) and only proceeds to vote once the mempool
//! reports that consensus may continue.

use serde::{Deserialize, Serialize};
use smp_crypto::QuorumProof;
use smp_types::{wire, BlockId, Payload, Proposal, ReplicaId, SimTime, View, WireSize};

/// Message destination (mirrors the mempool's `Dest`; kept separate so the
/// consensus crate does not depend on the mempool crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CDest {
    /// A single replica.
    One(ReplicaId),
    /// Every replica except the sender.
    AllButSelf,
}

/// Consensus wire messages, shared by all engines (each engine uses the
/// subset it needs).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ConsensusMsg {
    /// A proposal (HotStuff/PBFT pre-prepare, Streamlet proposal,
    /// MirBFT per-leader proposal).
    Propose(Proposal),
    /// A HotStuff vote, sent to the leader of the next view.
    Vote {
        /// View the vote belongs to.
        view: View,
        /// Voted block.
        block: BlockId,
        /// Voting replica.
        voter: ReplicaId,
    },
    /// A PBFT prepare / Streamlet vote, broadcast to everyone.
    Prepare {
        /// View (or epoch) of the vote.
        view: View,
        /// Voted block.
        block: BlockId,
        /// Voting replica.
        voter: ReplicaId,
        /// Originating leader of the instance being voted on (used by the
        /// multi-leader engine; equal to the view leader otherwise).
        instance: ReplicaId,
    },
    /// A PBFT commit vote, broadcast to everyone.
    Commit {
        /// View of the vote.
        view: View,
        /// Voted block.
        block: BlockId,
        /// Voting replica.
        voter: ReplicaId,
        /// Originating leader of the instance being voted on.
        instance: ReplicaId,
    },
    /// A pacemaker new-view message carrying the sender's highest QC view.
    NewView {
        /// The view being entered.
        view: View,
        /// Sender.
        voter: ReplicaId,
        /// Highest quorum-certificate view the sender knows.
        high_qc_view: View,
    },
}

impl ConsensusMsg {
    /// Stable label for bandwidth accounting: proposals vs votes.
    pub fn kind(&self) -> &'static str {
        match self {
            ConsensusMsg::Propose(_) => "proposal",
            ConsensusMsg::Vote { .. }
            | ConsensusMsg::Prepare { .. }
            | ConsensusMsg::Commit { .. }
            | ConsensusMsg::NewView { .. } => "vote",
        }
    }
}

impl WireSize for ConsensusMsg {
    fn wire_size(&self) -> usize {
        match self {
            ConsensusMsg::Propose(p) => p.wire_size(),
            ConsensusMsg::Vote { .. }
            | ConsensusMsg::Prepare { .. }
            | ConsensusMsg::Commit { .. }
            | ConsensusMsg::NewView { .. } => wire::VOTE_BYTES,
        }
    }
}

/// Outputs from the engine to the surrounding replica.
#[derive(Clone, Debug, PartialEq)]
pub enum CEvent {
    /// The engine is the leader of `view` and wants a payload from the
    /// mempool (`MakeProposal`).
    NeedPayload {
        /// View to propose in.
        view: View,
    },
    /// An incoming proposal must be verified/filled by the mempool
    /// (`FillProposal`) before the engine votes on it.
    VerifyProposal {
        /// The proposal to verify.
        proposal: Proposal,
    },
    /// A proposal committed (total order decided at this replica).
    Committed {
        /// The committed proposal.
        proposal: Proposal,
    },
    /// The engine abandoned a view (pacemaker timeout or invalid leader).
    ViewChange {
        /// The view that was abandoned.
        abandoned: View,
    },
}

/// Side effects of one engine handler invocation.
#[derive(Clone, Debug, Default)]
pub struct CEffects {
    /// Messages to send.
    pub msgs: Vec<(CDest, ConsensusMsg)>,
    /// Timers to arm, as `(delay, tag)` pairs.
    pub timers: Vec<(SimTime, u64)>,
    /// Outputs for the replica.
    pub events: Vec<CEvent>,
}

impl CEffects {
    /// No effects.
    pub fn none() -> Self {
        CEffects::default()
    }

    /// Queues a unicast.
    pub fn send(&mut self, to: ReplicaId, msg: ConsensusMsg) {
        self.msgs.push((CDest::One(to), msg));
    }

    /// Queues a broadcast to every other replica.
    pub fn broadcast(&mut self, msg: ConsensusMsg) {
        self.msgs.push((CDest::AllButSelf, msg));
    }

    /// Arms a timer.
    pub fn timer(&mut self, delay: SimTime, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Emits an output event.
    pub fn event(&mut self, ev: CEvent) {
        self.events.push(ev);
    }

    /// Appends all effects of `other`.
    pub fn merge(&mut self, other: CEffects) {
        self.msgs.extend(other.msgs);
        self.timers.extend(other.timers);
        self.events.extend(other.events);
    }
}

/// Result of the mempool's verification of a proposal, reported back to
/// the engine by the replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProposalVerdict {
    /// Vote on it.
    Accept,
    /// Reject it and treat the leader as faulty (view change).
    Reject,
}

/// A leader-based BFT consensus engine.
pub trait ConsensusEngine {
    /// Called once at simulated time 0.
    fn on_start(&mut self, now: SimTime) -> CEffects;

    /// Handles a consensus message from another replica.
    fn on_message(&mut self, now: SimTime, from: ReplicaId, msg: ConsensusMsg) -> CEffects;

    /// Handles a timer armed by a previous handler.
    fn on_timer(&mut self, now: SimTime, tag: u64) -> CEffects;

    /// Supplies the payload requested by a previous
    /// [`CEvent::NeedPayload`].
    fn on_payload(&mut self, now: SimTime, view: View, payload: Payload) -> CEffects;

    /// Reports the mempool's verdict on a proposal previously emitted via
    /// [`CEvent::VerifyProposal`].  For Stratus this is called immediately;
    /// for best-effort mempools it may arrive much later (after missing
    /// microblocks were fetched).
    fn on_proposal_verdict(
        &mut self,
        now: SimTime,
        block: BlockId,
        verdict: ProposalVerdict,
    ) -> CEffects;

    /// The replica this engine runs on.
    fn id(&self) -> ReplicaId;

    /// The current view (or epoch).
    fn current_view(&self) -> View;

    /// Number of proposals committed so far.
    fn committed_count(&self) -> u64;
}

/// A quorum certificate: `2f + 1` votes over a block id.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuorumCert {
    /// Certified block.
    pub block: BlockId,
    /// View in which the block was certified.
    pub view: View,
    /// Aggregated vote signatures (modelled, not re-verified on the hot
    /// path — the wire cost is what matters to the evaluation).
    pub proof: QuorumProof,
}

impl QuorumCert {
    /// The genesis certificate.
    pub fn genesis() -> Self {
        QuorumCert {
            block: BlockId::GENESIS,
            view: View(0),
            proof: QuorumProof::default(),
        }
    }
}

/// Tracks votes per (view, block) until a quorum is reached.
#[derive(Clone, Debug, Default)]
pub struct VoteAggregator {
    votes: std::collections::HashMap<(View, BlockId), std::collections::BTreeSet<ReplicaId>>,
    reached: std::collections::HashSet<(View, BlockId)>,
}

impl VoteAggregator {
    /// Creates an empty aggregator.
    pub fn new() -> Self {
        VoteAggregator::default()
    }

    /// Records a vote; returns `true` exactly once, when `quorum` distinct
    /// voters have been seen for `(view, block)`.
    pub fn record(&mut self, view: View, block: BlockId, voter: ReplicaId, quorum: usize) -> bool {
        if self.reached.contains(&(view, block)) {
            return false;
        }
        let set = self.votes.entry((view, block)).or_default();
        set.insert(voter);
        if set.len() >= quorum {
            self.reached.insert((view, block));
            true
        } else {
            false
        }
    }

    /// Number of votes currently recorded for `(view, block)`.
    pub fn count(&self, view: View, block: BlockId) -> usize {
        self.votes.get(&(view, block)).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_crypto::Digest;

    #[test]
    fn vote_aggregator_reaches_quorum_once() {
        let mut agg = VoteAggregator::new();
        let b = BlockId(Digest::of_u64(1));
        assert!(!agg.record(View(1), b, ReplicaId(0), 3));
        assert!(
            !agg.record(View(1), b, ReplicaId(0), 3),
            "duplicate voter ignored"
        );
        assert!(!agg.record(View(1), b, ReplicaId(1), 3));
        assert!(agg.record(View(1), b, ReplicaId(2), 3));
        assert!(
            !agg.record(View(1), b, ReplicaId(3), 3),
            "quorum reported only once"
        );
        assert_eq!(agg.count(View(1), b), 3);
    }

    #[test]
    fn consensus_msg_kinds_and_sizes() {
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(0),
            Payload::Empty,
            true,
        );
        assert_eq!(ConsensusMsg::Propose(p.clone()).kind(), "proposal");
        let vote = ConsensusMsg::Vote {
            view: View(1),
            block: p.id,
            voter: ReplicaId(1),
        };
        assert_eq!(vote.kind(), "vote");
        assert_eq!(vote.wire_size(), wire::VOTE_BYTES);
        assert!(ConsensusMsg::Propose(p).wire_size() >= wire::PROPOSAL_HEADER_BYTES);
    }

    #[test]
    fn effects_builders() {
        let mut fx = CEffects::none();
        fx.send(
            ReplicaId(1),
            ConsensusMsg::NewView {
                view: View(2),
                voter: ReplicaId(0),
                high_qc_view: View(1),
            },
        );
        fx.broadcast(ConsensusMsg::NewView {
            view: View(2),
            voter: ReplicaId(0),
            high_qc_view: View(1),
        });
        fx.timer(100, 7);
        fx.event(CEvent::ViewChange { abandoned: View(1) });
        let mut other = CEffects::none();
        other.timer(200, 8);
        fx.merge(other);
        assert_eq!(fx.msgs.len(), 2);
        assert_eq!(fx.timers.len(), 2);
        assert_eq!(fx.events.len(), 1);
    }
}
