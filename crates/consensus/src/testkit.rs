//! A tiny in-process network for driving consensus engines in unit tests.
//!
//! The kit delivers messages instantly and in FIFO order, auto-answers
//! `NeedPayload` with an empty payload and `VerifyProposal` with an
//! immediate accept (the real mempool interaction is exercised in the
//! `smp-replica` crate on top of the network simulator).  Timers are
//! recorded and fired on demand so tests can simulate pacemaker timeouts
//! deterministically.

use crate::api::{CDest, CEffects, CEvent, ConsensusEngine, ProposalVerdict};
use smp_types::{BlockId, Payload, ReplicaId};
use std::collections::VecDeque;

/// An in-memory network of engines.
pub struct EngineNet<E: ConsensusEngine> {
    engines: Vec<E>,
    queue: VecDeque<(usize, usize, crate::api::ConsensusMsg)>,
    pending_timers: Vec<(usize, u64)>,
    silenced: Vec<bool>,
    committed: Vec<Vec<BlockId>>,
    now: u64,
}

impl<E: ConsensusEngine> EngineNet<E> {
    /// Builds a network over the given engines (index = replica id).
    pub fn new(engines: Vec<E>) -> Self {
        let n = engines.len();
        EngineNet {
            engines,
            queue: VecDeque::new(),
            pending_timers: Vec::new(),
            silenced: vec![false; n],
            committed: vec![Vec::new(); n],
            now: 0,
        }
    }

    /// Immutable access to the engines.
    pub fn engines(&self) -> &[E] {
        &self.engines
    }

    /// Committed block ids per engine, in commit order.
    pub fn committed_chains(&self) -> &[Vec<BlockId>] {
        &self.committed
    }

    /// Drops all traffic to and from `replica` and stops firing its timers.
    pub fn silence(&mut self, replica: ReplicaId) {
        self.silenced[replica.index()] = true;
    }

    /// Calls `on_start` on every engine and routes the resulting traffic.
    pub fn start(&mut self) {
        for i in 0..self.engines.len() {
            if self.silenced[i] {
                continue;
            }
            let fx = self.engines[i].on_start(self.now);
            self.absorb(i, fx);
        }
    }

    /// Fires every recorded timer once (stale timers are ignored by the
    /// engines themselves).
    pub fn fire_view_timers(&mut self) {
        self.now += 1_000_000;
        let timers = std::mem::take(&mut self.pending_timers);
        for (idx, tag) in timers {
            if self.silenced[idx] {
                continue;
            }
            let fx = self.engines[idx].on_timer(self.now, tag);
            self.absorb(idx, fx);
        }
    }

    /// Delivers queued messages until the queue drains or `budget`
    /// deliveries have been made.  Returns the number of deliveries.
    pub fn run(&mut self, budget: usize) -> usize {
        let mut delivered = 0;
        while delivered < budget {
            let Some((from, to, msg)) = self.queue.pop_front() else {
                break;
            };
            delivered += 1;
            self.now += 100;
            if self.silenced[to] || self.silenced[from] {
                continue;
            }
            let fx = self.engines[to].on_message(self.now, ReplicaId(from as u32), msg);
            self.absorb(to, fx);
        }
        delivered
    }

    fn absorb(&mut self, idx: usize, fx: CEffects) {
        let n = self.engines.len();
        let mut follow_ups: Vec<CEffects> = Vec::new();
        for (dest, msg) in fx.msgs {
            match dest {
                CDest::One(r) => {
                    if r.index() == idx {
                        // Loopback: deliver immediately.
                        let fx2 =
                            self.engines[idx].on_message(self.now, ReplicaId(idx as u32), msg);
                        follow_ups.push(fx2);
                    } else {
                        self.queue.push_back((idx, r.index(), msg));
                    }
                }
                CDest::AllButSelf => {
                    for to in 0..n {
                        if to != idx {
                            self.queue.push_back((idx, to, msg.clone()));
                        }
                    }
                }
            }
        }
        for (_delay, tag) in fx.timers {
            self.pending_timers.push((idx, tag));
        }
        for ev in fx.events {
            match ev {
                CEvent::NeedPayload { view } => {
                    let fx2 = self.engines[idx].on_payload(self.now, view, Payload::Empty);
                    follow_ups.push(fx2);
                }
                CEvent::VerifyProposal { proposal } => {
                    let fx2 = self.engines[idx].on_proposal_verdict(
                        self.now,
                        proposal.id,
                        ProposalVerdict::Accept,
                    );
                    follow_ups.push(fx2);
                }
                CEvent::Committed { proposal } => {
                    self.committed[idx].push(proposal.id);
                }
                CEvent::ViewChange { .. } => {}
            }
        }
        for fx2 in follow_ups {
            self.absorb(idx, fx2);
        }
    }
}

/// Runs the network until no messages remain (or the per-call budget runs
/// out `rounds` times).
pub fn drive_until_quiet<E: ConsensusEngine>(net: &mut EngineNet<E>, rounds: usize) {
    for _ in 0..rounds {
        if net.run(10_000) == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotstuff::HotStuffEngine;
    use smp_types::SystemConfig;

    #[test]
    fn testkit_routes_messages_and_collects_commits() {
        let config = SystemConfig::new(4);
        let engines = (0..4u32)
            .map(|i| HotStuffEngine::new(&config, ReplicaId(i)))
            .collect();
        let mut net: EngineNet<HotStuffEngine> = EngineNet::new(engines);
        net.start();
        drive_until_quiet(&mut net, 20);
        assert!(net.committed_chains().iter().any(|c| !c.is_empty()));
    }
}
