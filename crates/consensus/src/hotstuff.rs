//! Chained HotStuff (three-chain commit rule, rotating leaders, pacemaker).
//!
//! This is the "Chained-HotStuff" configuration the paper bases its
//! evaluation on (Section VII-A): pipelined proposals, a leader per view,
//! votes sent to the *next* leader (linear message complexity), and a
//! three-chain commit rule.  The view-change pacemaker is timeout-driven:
//! a replica that makes no progress within the view timeout broadcasts a
//! new-view message to the next leader, which proposes once it has heard
//! from a quorum.

use crate::api::{
    CEffects, CEvent, ConsensusEngine, ConsensusMsg, ProposalVerdict, QuorumCert, VoteAggregator,
};
use smp_crypto::QuorumProof;
use smp_types::{BlockId, Payload, Proposal, ReplicaId, SimTime, SystemConfig, View};
use std::collections::{HashMap, HashSet};

/// Timer-tag base for per-view pacemaker timers (`tag = base + view`).
pub const VIEW_TAG_BASE: u64 = 0x4854_5300_0000_0000;

/// Chained HotStuff engine.
#[derive(Clone, Debug)]
pub struct HotStuffEngine {
    me: ReplicaId,
    n: usize,
    quorum: usize,
    view: View,
    view_timeout: SimTime,
    high_qc: QuorumCert,
    blocks: HashMap<BlockId, Proposal>,
    votes: VoteAggregator,
    new_views: VoteAggregator,
    committed: HashSet<BlockId>,
    committed_count: u64,
    proposed_in: HashSet<View>,
    payload_requested_for: HashSet<View>,
    view_changes: u64,
}

impl HotStuffEngine {
    /// Creates the engine for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        HotStuffEngine {
            me,
            n: config.n,
            quorum: config.consensus_quorum(),
            view: View(1),
            view_timeout: config.view_change_timeout,
            high_qc: QuorumCert::genesis(),
            blocks: HashMap::new(),
            votes: VoteAggregator::new(),
            new_views: VoteAggregator::new(),
            committed: HashSet::new(),
            committed_count: 0,
            proposed_in: HashSet::new(),
            payload_requested_for: HashSet::new(),
            view_changes: 0,
        }
    }

    /// Number of view changes this replica initiated.
    pub fn view_changes(&self) -> u64 {
        self.view_changes
    }

    fn leader_of(&self, view: View) -> ReplicaId {
        view.leader(self.n)
    }

    fn is_leader(&self, view: View) -> bool {
        self.leader_of(view) == self.me
    }

    fn arm_view_timer(&self, effects: &mut CEffects) {
        effects.timer(self.view_timeout, VIEW_TAG_BASE + self.view.0);
    }

    fn request_payload_if_leader(&mut self, view: View, effects: &mut CEffects) {
        if self.is_leader(view)
            && !self.proposed_in.contains(&view)
            && self.payload_requested_for.insert(view)
        {
            effects.event(CEvent::NeedPayload { view });
        }
    }

    fn advance_to(&mut self, view: View, effects: &mut CEffects) {
        if view <= self.view {
            return;
        }
        self.view = view;
        self.arm_view_timer(effects);
        // Note: entering a view does NOT by itself entitle the leader to
        // propose — it must first hold a QC for the previous view (formed
        // from votes) or a quorum of new-view messages.  Requesting the
        // payload here would fork the chain off an outdated high QC.
    }

    fn height_of(&self, block: &BlockId) -> u64 {
        if *block == BlockId::GENESIS {
            0
        } else {
            self.blocks.get(block).map_or(0, |p| p.height)
        }
    }

    /// Applies the three-chain commit rule after `parent` (the block the
    /// newly accepted proposal extends) received a quorum certificate.
    fn try_commit(&mut self, parent: BlockId, effects: &mut CEffects) {
        let Some(b1) = self.blocks.get(&parent).cloned() else {
            return;
        };
        let Some(b2) = self.blocks.get(&b1.parent).cloned() else {
            return;
        };
        let Some(b3) = self.blocks.get(&b2.parent).cloned() else {
            return;
        };
        // Three consecutive views certify the oldest block of the chain.
        if b1.view.0 != b2.view.0 + 1 || b2.view.0 != b3.view.0 + 1 {
            return;
        }
        self.commit_chain(b3, effects);
    }

    /// Commits `tip` and every uncommitted ancestor, oldest first.
    fn commit_chain(&mut self, tip: Proposal, effects: &mut CEffects) {
        let mut chain = Vec::new();
        let mut cursor = Some(tip);
        while let Some(p) = cursor {
            if self.committed.contains(&p.id) {
                break;
            }
            cursor = self.blocks.get(&p.parent).cloned();
            chain.push(p);
        }
        for p in chain.into_iter().rev() {
            self.committed.insert(p.id);
            self.committed_count += 1;
            effects.event(CEvent::Committed { proposal: p });
        }
    }

    fn vote_for(&mut self, proposal: &Proposal, effects: &mut CEffects) {
        let next_leader = self.leader_of(proposal.view.next());
        effects.send(
            next_leader,
            ConsensusMsg::Vote {
                view: proposal.view,
                block: proposal.id,
                voter: self.me,
            },
        );
        // Receiving a valid proposal for view v is the signal to move to
        // view v + 1 (optimistic responsiveness).
        self.advance_to(proposal.view.next(), effects);
    }
}

impl ConsensusEngine for HotStuffEngine {
    fn on_start(&mut self, _now: SimTime) -> CEffects {
        let mut fx = CEffects::none();
        self.arm_view_timer(&mut fx);
        self.request_payload_if_leader(self.view, &mut fx);
        fx
    }

    fn on_message(&mut self, _now: SimTime, from: ReplicaId, msg: ConsensusMsg) -> CEffects {
        let mut fx = CEffects::none();
        match msg {
            ConsensusMsg::Propose(p) => {
                // Only the legitimate leader of the proposal's view counts.
                if p.proposer != self.leader_of(p.view) || p.view < self.view {
                    return fx;
                }
                if self.blocks.contains_key(&p.id) {
                    return fx;
                }
                self.blocks.insert(p.id, p.clone());
                // The parent now has a quorum certificate (embedded in the
                // proposal); remember it and try to commit the three-chain.
                if self.height_of(&p.parent) + 1 == p.height && p.view > self.high_qc.view {
                    self.high_qc = QuorumCert {
                        block: p.parent,
                        view: View(p.view.0.saturating_sub(1)),
                        proof: QuorumProof::default(),
                    };
                }
                self.try_commit(p.parent, &mut fx);
                // Hand the proposal to the mempool before voting.
                fx.event(CEvent::VerifyProposal { proposal: p });
            }
            ConsensusMsg::Vote { view, block, voter } => {
                // Votes for view v are collected by the leader of v + 1.
                if !self.is_leader(view.next()) {
                    return fx;
                }
                if self.votes.record(view, block, voter, self.quorum) {
                    if view >= self.high_qc.view {
                        self.high_qc = QuorumCert {
                            block,
                            view,
                            proof: QuorumProof::default(),
                        };
                    }
                    self.advance_to(view.next(), &mut fx);
                    self.request_payload_if_leader(view.next(), &mut fx);
                }
            }
            ConsensusMsg::NewView {
                view,
                voter,
                high_qc_view: _,
            } => {
                if !self.is_leader(view) {
                    return fx;
                }
                if self
                    .new_views
                    .record(view, BlockId::GENESIS, voter, self.quorum)
                {
                    self.advance_to(view, &mut fx);
                    self.request_payload_if_leader(view, &mut fx);
                }
            }
            ConsensusMsg::Prepare { .. } | ConsensusMsg::Commit { .. } => {
                // Not used by HotStuff.
            }
        }
        let _ = from;
        fx
    }

    fn on_timer(&mut self, _now: SimTime, tag: u64) -> CEffects {
        let mut fx = CEffects::none();
        if tag < VIEW_TAG_BASE {
            return fx;
        }
        let timer_view = View(tag - VIEW_TAG_BASE);
        if timer_view != self.view {
            return fx; // Stale timer from a view we already left.
        }
        // No progress in this view: move on and tell the next leader.
        let abandoned = self.view;
        self.view_changes += 1;
        fx.event(CEvent::ViewChange { abandoned });
        self.view = self.view.next();
        self.arm_view_timer(&mut fx);
        let next_leader = self.leader_of(self.view);
        let msg = ConsensusMsg::NewView {
            view: self.view,
            voter: self.me,
            high_qc_view: self.high_qc.view,
        };
        if next_leader == self.me {
            // Count our own new-view message immediately.
            if self
                .new_views
                .record(self.view, BlockId::GENESIS, self.me, self.quorum)
            {
                self.request_payload_if_leader(self.view, &mut fx);
            }
        } else {
            fx.send(next_leader, msg);
        }
        fx
    }

    fn on_payload(&mut self, _now: SimTime, view: View, payload: Payload) -> CEffects {
        let mut fx = CEffects::none();
        if view != self.view || !self.is_leader(view) || self.proposed_in.contains(&view) {
            return fx;
        }
        self.proposed_in.insert(view);
        let parent = self.high_qc.block;
        let height = self.height_of(&parent) + 1;
        let proposal = Proposal::new(view, height, parent, self.me, payload, true);
        self.blocks.insert(proposal.id, proposal.clone());
        self.try_commit(parent, &mut fx);
        fx.broadcast(ConsensusMsg::Propose(proposal.clone()));
        // The leader votes for its own proposal.
        self.vote_for(&proposal, &mut fx);
        fx
    }

    fn on_proposal_verdict(
        &mut self,
        _now: SimTime,
        block: BlockId,
        verdict: ProposalVerdict,
    ) -> CEffects {
        let mut fx = CEffects::none();
        let Some(proposal) = self.blocks.get(&block).cloned() else {
            return fx;
        };
        match verdict {
            ProposalVerdict::Accept => {
                if proposal.view.0 + 1 >= self.view.0 {
                    self.vote_for(&proposal, &mut fx);
                }
            }
            ProposalVerdict::Reject => {
                self.view_changes += 1;
                fx.event(CEvent::ViewChange {
                    abandoned: proposal.view,
                });
                let next = proposal.view.next();
                if next > self.view {
                    self.view = next;
                    self.arm_view_timer(&mut fx);
                }
                fx.send(
                    self.leader_of(self.view),
                    ConsensusMsg::NewView {
                        view: self.view,
                        voter: self.me,
                        high_qc_view: self.high_qc.view,
                    },
                );
            }
        }
        fx
    }

    fn id(&self) -> ReplicaId {
        self.me
    }

    fn current_view(&self) -> View {
        self.view
    }

    fn committed_count(&self) -> u64 {
        self.committed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{drive_until_quiet, EngineNet};

    fn net(n: usize) -> EngineNet<HotStuffEngine> {
        let config = SystemConfig::new(n);
        EngineNet::new(
            (0..n as u32)
                .map(|i| HotStuffEngine::new(&config, ReplicaId(i)))
                .collect(),
        )
    }

    #[test]
    fn leader_of_view_one_requests_payload_on_start() {
        let config = SystemConfig::new(4);
        let mut e = HotStuffEngine::new(&config, ReplicaId(1));
        let fx = e.on_start(0);
        assert!(fx
            .events
            .iter()
            .any(|ev| matches!(ev, CEvent::NeedPayload { view } if *view == View(1))));
        let mut e0 = HotStuffEngine::new(&config, ReplicaId(0));
        let fx0 = e0.on_start(0);
        assert!(!fx0
            .events
            .iter()
            .any(|ev| matches!(ev, CEvent::NeedPayload { .. })));
    }

    #[test]
    fn chain_commits_after_three_consecutive_views() {
        let mut net = net(4);
        net.start();
        // Let the network run several rounds with empty payloads.
        drive_until_quiet(&mut net, 30);
        let committed = net
            .engines()
            .iter()
            .map(|e| e.committed_count())
            .min()
            .unwrap();
        assert!(
            committed >= 1,
            "pipelined empty proposals should commit, got {committed}"
        );
        // All replicas commit the same prefix.
        let chains = net.committed_chains();
        let shortest = chains.iter().map(|c| c.len()).min().unwrap();
        for i in 0..shortest {
            let first = chains[0][i];
            assert!(
                chains.iter().all(|c| c[i] == first),
                "divergence at height {i}"
            );
        }
    }

    #[test]
    fn progress_resumes_after_leader_timeout() {
        // Five replicas: with the view-1 leader silent, views 2..5 still
        // give the three consecutive honest-leader views plus the follow-up
        // proposal that the chained commit rule needs.
        let mut net = net(5);
        net.start();
        // Silence replica 1 (the leader of view 1 is replica 1).
        net.silence(ReplicaId(1));
        for _ in 0..5 {
            drive_until_quiet(&mut net, 40);
            net.fire_view_timers();
        }
        drive_until_quiet(&mut net, 60);
        let committed = net
            .engines()
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 1)
            .map(|(_, e)| e.committed_count())
            .min()
            .unwrap();
        assert!(
            committed >= 1,
            "view change should restore progress, got {committed}"
        );
        assert!(net.engines()[0].view_changes() >= 1);
    }

    #[test]
    fn rejected_proposals_do_not_get_votes() {
        let config = SystemConfig::new(4);
        let mut leader = HotStuffEngine::new(&config, ReplicaId(1));
        let mut follower = HotStuffEngine::new(&config, ReplicaId(2));
        let _ = leader.on_start(0);
        let _ = follower.on_start(0);
        let fx = leader.on_payload(0, View(1), Payload::Empty);
        let proposal = fx
            .msgs
            .iter()
            .find_map(|(_, m)| match m {
                ConsensusMsg::Propose(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        let fx = follower.on_message(1, ReplicaId(1), ConsensusMsg::Propose(proposal.clone()));
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, CEvent::VerifyProposal { .. })));
        let fx = follower.on_proposal_verdict(2, proposal.id, ProposalVerdict::Reject);
        assert!(fx
            .events
            .iter()
            .any(|e| matches!(e, CEvent::ViewChange { .. })));
        assert!(!fx
            .msgs
            .iter()
            .any(|(_, m)| matches!(m, ConsensusMsg::Vote { .. })));
    }

    #[test]
    fn stale_proposals_and_foreign_votes_are_ignored() {
        let config = SystemConfig::new(4);
        let mut e = HotStuffEngine::new(&config, ReplicaId(3));
        let _ = e.on_start(0);
        // A proposal from a non-leader is dropped.
        let bogus = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(2),
            Payload::Empty,
            true,
        );
        let fx = e.on_message(0, ReplicaId(2), ConsensusMsg::Propose(bogus));
        assert!(fx.events.is_empty());
        // A vote addressed to a different next-leader is dropped.
        let fx = e.on_message(
            0,
            ReplicaId(0),
            ConsensusMsg::Vote {
                view: View(1),
                block: BlockId::GENESIS,
                voter: ReplicaId(0),
            },
        );
        assert!(fx.events.is_empty() && fx.msgs.is_empty());
    }
}
