//! Leader-based BFT consensus engines for the Stratus reproduction.
//!
//! The paper integrates its shared mempool with three off-the-shelf
//! leader-based protocols — HotStuff, PBFT and Streamlet — and compares
//! against MirBFT as a multi-leader baseline.  This crate provides all
//! four as event-driven [`ConsensusEngine`]s that are *mempool-agnostic*:
//! they ask the surrounding replica for a payload when they lead a view
//! and hand incoming proposals back for verification/filling, exactly the
//! interface the shared-mempool abstraction needs (paper Figure 1).
//!
//! * [`HotStuffEngine`] — chained HotStuff: pipelined, linear message
//!   complexity, three-chain commit, timeout pacemaker.
//! * [`PbftEngine`] — chained PBFT: pre-prepare/prepare/commit with
//!   all-to-all votes.
//! * [`StreamletEngine`] — epoch-based streamlined consensus.
//! * [`MirBftEngine`] — MirBFT-style multi-leader operation (every replica
//!   leads its own instance).

pub mod api;
pub mod hotstuff;
pub mod mirbft;
pub mod pbft;
pub mod streamlet;
pub mod testkit;

pub use api::{
    CDest, CEffects, CEvent, ConsensusEngine, ConsensusMsg, ProposalVerdict, QuorumCert,
    VoteAggregator,
};
pub use hotstuff::HotStuffEngine;
pub use mirbft::MirBftEngine;
pub use pbft::PbftEngine;
pub use streamlet::StreamletEngine;
