//! A MirBFT-style multi-leader engine.
//!
//! MirBFT (Stathakopoulou et al.) runs multiple PBFT instances in
//! parallel, one per leader, so that proposal dissemination is not funnelled
//! through a single replica; the paper uses it as the state-of-the-art
//! multi-leader baseline (Table II, "all replicas act as leaders in an
//! epoch").  This engine reproduces that mechanism: every replica leads
//! its own instance, proposing a batch from its local mempool at a fixed
//! cadence, and each batch is agreed with the PBFT prepare/commit pattern
//! (all-to-all votes, hence the `O(n²)` message complexity of Table I).
//!
//! Cross-instance failure handling (MirBFT's epoch changes) is out of
//! scope, as the paper's comparison runs it in the failure-free setting.

use crate::api::{
    CEffects, CEvent, ConsensusEngine, ConsensusMsg, ProposalVerdict, VoteAggregator,
};
use smp_types::{BlockId, Payload, Proposal, ReplicaId, SimTime, SystemConfig, View};
use std::collections::{HashMap, HashSet};

/// Timer tag for the per-replica proposal cadence.
pub const PROPOSE_INTERVAL_TAG: u64 = 0x4d49_5242_0000_0001;

/// Interval at which each leader proposes its next batch.
pub const DEFAULT_PROPOSE_INTERVAL: SimTime = 100 * smp_types::MICROS_PER_MS;

/// MirBFT-style multi-leader engine.
#[derive(Clone, Debug)]
pub struct MirBftEngine {
    me: ReplicaId,
    quorum: usize,
    propose_interval: SimTime,
    /// Next sequence number of this replica's own instance.
    next_seq: u64,
    blocks: HashMap<BlockId, Proposal>,
    prepares: VoteAggregator,
    commits: VoteAggregator,
    committed: HashSet<BlockId>,
    committed_count: u64,
    /// Last committed block per instance (parent pointer for that leader's
    /// next proposal).
    instance_tips: HashMap<ReplicaId, BlockId>,
    awaiting_payload: bool,
}

impl MirBftEngine {
    /// Creates the engine for replica `me`.
    pub fn new(config: &SystemConfig, me: ReplicaId) -> Self {
        MirBftEngine {
            me,
            quorum: config.consensus_quorum(),
            propose_interval: DEFAULT_PROPOSE_INTERVAL,
            next_seq: 1,
            blocks: HashMap::new(),
            prepares: VoteAggregator::new(),
            commits: VoteAggregator::new(),
            committed: HashSet::new(),
            committed_count: 0,
            instance_tips: HashMap::new(),
            awaiting_payload: false,
        }
    }

    /// The sequence number this replica will use for its next proposal.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn record_prepare(
        &mut self,
        view: View,
        block: BlockId,
        voter: ReplicaId,
        instance: ReplicaId,
        fx: &mut CEffects,
    ) {
        if self.prepares.record(view, block, voter, self.quorum) {
            fx.broadcast(ConsensusMsg::Commit {
                view,
                block,
                voter: self.me,
                instance,
            });
            self.record_commit(view, block, self.me, fx);
        }
    }

    fn record_commit(&mut self, view: View, block: BlockId, voter: ReplicaId, fx: &mut CEffects) {
        if self.commits.record(view, block, voter, self.quorum) && !self.committed.contains(&block)
        {
            if let Some(p) = self.blocks.get(&block).cloned() {
                self.committed.insert(block);
                self.committed_count += 1;
                self.instance_tips.insert(p.proposer, block);
                fx.event(CEvent::Committed { proposal: p });
            }
        }
    }
}

impl ConsensusEngine for MirBftEngine {
    fn on_start(&mut self, _now: SimTime) -> CEffects {
        let mut fx = CEffects::none();
        fx.timer(self.propose_interval, PROPOSE_INTERVAL_TAG);
        self.awaiting_payload = true;
        fx.event(CEvent::NeedPayload {
            view: View(self.next_seq),
        });
        fx
    }

    fn on_message(&mut self, _now: SimTime, _from: ReplicaId, msg: ConsensusMsg) -> CEffects {
        let mut fx = CEffects::none();
        match msg {
            ConsensusMsg::Propose(p) => {
                if self.blocks.contains_key(&p.id) {
                    return fx;
                }
                self.blocks.insert(p.id, p.clone());
                fx.event(CEvent::VerifyProposal { proposal: p });
            }
            ConsensusMsg::Prepare {
                view,
                block,
                voter,
                instance,
            } => {
                self.record_prepare(view, block, voter, instance, &mut fx);
            }
            ConsensusMsg::Commit {
                view, block, voter, ..
            } => {
                self.record_commit(view, block, voter, &mut fx);
            }
            _ => {}
        }
        fx
    }

    fn on_timer(&mut self, _now: SimTime, tag: u64) -> CEffects {
        let mut fx = CEffects::none();
        if tag != PROPOSE_INTERVAL_TAG {
            return fx;
        }
        fx.timer(self.propose_interval, PROPOSE_INTERVAL_TAG);
        if !self.awaiting_payload {
            self.awaiting_payload = true;
            fx.event(CEvent::NeedPayload {
                view: View(self.next_seq),
            });
        }
        fx
    }

    fn on_payload(&mut self, _now: SimTime, view: View, payload: Payload) -> CEffects {
        let mut fx = CEffects::none();
        self.awaiting_payload = false;
        if view.0 != self.next_seq {
            return fx;
        }
        if payload.is_empty() {
            // Nothing to order: skip this cadence slot rather than flooding
            // the network with empty per-leader proposals.
            return fx;
        }
        let parent = self
            .instance_tips
            .get(&self.me)
            .copied()
            .unwrap_or(BlockId::GENESIS);
        let proposal = Proposal::new(view, self.next_seq, parent, self.me, payload, false);
        self.next_seq += 1;
        self.blocks.insert(proposal.id, proposal.clone());
        fx.broadcast(ConsensusMsg::Propose(proposal.clone()));
        fx.broadcast(ConsensusMsg::Prepare {
            view,
            block: proposal.id,
            voter: self.me,
            instance: self.me,
        });
        self.record_prepare(view, proposal.id, self.me, self.me, &mut fx);
        fx
    }

    fn on_proposal_verdict(
        &mut self,
        _now: SimTime,
        block: BlockId,
        verdict: ProposalVerdict,
    ) -> CEffects {
        let mut fx = CEffects::none();
        let Some(p) = self.blocks.get(&block).cloned() else {
            return fx;
        };
        if verdict == ProposalVerdict::Accept {
            fx.broadcast(ConsensusMsg::Prepare {
                view: p.view,
                block,
                voter: self.me,
                instance: p.proposer,
            });
            self.record_prepare(p.view, block, self.me, p.proposer, &mut fx);
        }
        fx
    }

    fn id(&self) -> ReplicaId {
        self.me
    }

    fn current_view(&self) -> View {
        View(self.next_seq)
    }

    fn committed_count(&self) -> u64 {
        self.committed_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::{drive_until_quiet, EngineNet};

    #[test]
    fn empty_payloads_do_not_produce_proposals() {
        let config = SystemConfig::new(4);
        let mut e = MirBftEngine::new(&config, ReplicaId(0));
        let _ = e.on_start(0);
        let fx = e.on_payload(0, View(1), Payload::Empty);
        assert!(fx.msgs.is_empty());
        assert_eq!(e.next_seq(), 1);
    }

    #[test]
    fn every_replica_leads_its_own_instance() {
        let config = SystemConfig::new(4);
        // Build a network where payload requests are answered with a small
        // inline payload so proposals actually flow.
        struct Filler(MirBftEngine);
        impl ConsensusEngine for Filler {
            fn on_start(&mut self, now: SimTime) -> CEffects {
                self.0.on_start(now)
            }
            fn on_message(&mut self, now: SimTime, from: ReplicaId, msg: ConsensusMsg) -> CEffects {
                self.0.on_message(now, from, msg)
            }
            fn on_timer(&mut self, now: SimTime, tag: u64) -> CEffects {
                self.0.on_timer(now, tag)
            }
            fn on_payload(&mut self, now: SimTime, view: View, _p: Payload) -> CEffects {
                let txs = vec![smp_types::Transaction::synthetic(
                    smp_types::ClientId(self.0.id().0),
                    view.0,
                    128,
                    now,
                )];
                self.0.on_payload(now, view, Payload::inline(txs))
            }
            fn on_proposal_verdict(
                &mut self,
                now: SimTime,
                block: BlockId,
                verdict: ProposalVerdict,
            ) -> CEffects {
                self.0.on_proposal_verdict(now, block, verdict)
            }
            fn id(&self) -> ReplicaId {
                self.0.id()
            }
            fn current_view(&self) -> View {
                self.0.current_view()
            }
            fn committed_count(&self) -> u64 {
                self.0.committed_count()
            }
        }
        let mut net: EngineNet<Filler> = EngineNet::new(
            (0..4u32)
                .map(|i| Filler(MirBftEngine::new(&config, ReplicaId(i))))
                .collect(),
        );
        net.start();
        drive_until_quiet(&mut net, 50);
        // All four instances commit their first batch on every replica.
        let committed = net
            .engines()
            .iter()
            .map(|e| e.committed_count())
            .min()
            .unwrap();
        assert!(
            committed >= 4,
            "each of the 4 leaders' batches should commit, got {committed}"
        );
    }

    #[test]
    fn commit_requires_quorum_of_commit_votes() {
        let config = SystemConfig::new(4);
        let mut e = MirBftEngine::new(&config, ReplicaId(0));
        let _ = e.on_start(0);
        let p = Proposal::new(
            View(1),
            1,
            BlockId::GENESIS,
            ReplicaId(2),
            Payload::Empty,
            false,
        );
        let _ = e.on_message(0, ReplicaId(2), ConsensusMsg::Propose(p.clone()));
        for voter in [1u32, 2] {
            let fx = e.on_message(
                0,
                ReplicaId(voter),
                ConsensusMsg::Commit {
                    view: View(1),
                    block: p.id,
                    voter: ReplicaId(voter),
                    instance: ReplicaId(2),
                },
            );
            assert!(fx
                .events
                .iter()
                .all(|ev| !matches!(ev, CEvent::Committed { .. })));
        }
        let fx = e.on_message(
            0,
            ReplicaId(3),
            ConsensusMsg::Commit {
                view: View(1),
                block: p.id,
                voter: ReplicaId(3),
                instance: ReplicaId(2),
            },
        );
        assert!(fx
            .events
            .iter()
            .any(|ev| matches!(ev, CEvent::Committed { .. })));
        assert_eq!(e.committed_count(), 1);
    }
}
