//! Shard executors: how the `k` per-shard dissemination pipelines of a
//! [`crate::ShardedMempool`] are driven.
//!
//! Every [`smp_mempool::Mempool`] call on the wrapper decomposes into a
//! batch of per-shard operations ([`ShardOp`]).  A [`ShardExecutor`]
//! applies the batch and hands the per-shard outputs back **in the order
//! the operations were submitted**, which is what makes the merge at the
//! proposer deterministic regardless of how the shards are scheduled:
//!
//! * [`SequentialExecutor`] runs every operation inline on the calling
//!   thread — the deterministic default the discrete-event simulator
//!   uses.
//! * [`ParallelExecutor`] runs each shard's pipeline (batching, gossip,
//!   fill tracking) on its own `std::thread` worker with a private inbox,
//!   the Narwhal-worker / Mysticeti-instance architecture.  Results are
//!   re-ordered by submission id before they are merged, so outbound
//!   messages and `FillStatus` aggregation are byte-identical to the
//!   sequential executor on the same seed.
//!
//! # Determinism contract
//!
//! Two sources of divergence are pinned down so the executors stay
//! byte-identical (enforced by `tests/conformance.rs`):
//!
//! 1. **Randomness.**  With `k > 1` every shard owns a private
//!    [`SmallRng`] stream derived from `(seed, salt, shard)` by
//!    [`shard_rng_seed`]; the caller's RNG is not consulted, so shard `j`
//!    draws the same stream no matter which thread runs it.  With
//!    `k == 1` both executors run inline and thread the caller's RNG
//!    through, keeping the single-shard wrapper a byte-transparent
//!    pass-through over the bare backend.
//! 2. **Ordering.**  Operations submitted to one shard are applied in
//!    submission order (worker inboxes are FIFO), and outputs are merged
//!    in submission order, never in completion order.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smp_mempool::{Effects, FillStatus, LoadSnapshot, Mempool, MempoolStats, TimerTag};
use smp_telemetry::Telemetry;
use smp_types::{Payload, Proposal, ReplicaId, SimTime, Transaction};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::OnceLock;
use std::thread::JoinHandle;

/// One operation applied to a single shard's backend instance.
pub enum ShardOp<M: Mempool> {
    /// Ingest client transactions already routed to this shard.
    ClientTxs {
        /// Current simulated time.
        now: SimTime,
        /// The shard's share of the arriving transactions.
        txs: Vec<Transaction>,
    },
    /// Deliver a peer message addressed to this shard.
    Message {
        /// Current simulated time.
        now: SimTime,
        /// Sending replica.
        from: ReplicaId,
        /// The unwrapped backend message.
        msg: <M as Mempool>::Msg,
    },
    /// Fire a (demultiplexed) timer owned by this shard.
    Timer {
        /// Current simulated time.
        now: SimTime,
        /// The shard-local timer tag.
        tag: TimerTag,
    },
    /// Drain the shard's proposable content.
    MakePayload {
        /// Current simulated time.
        now: SimTime,
    },
    /// Verify / fill this shard's group of an incoming proposal.
    Proposal {
        /// Current simulated time.
        now: SimTime,
        /// The sub-proposal carrying only this shard's payload group.
        proposal: Proposal,
    },
    /// Commit this shard's group of a decided proposal.
    Commit {
        /// Current simulated time.
        now: SimTime,
        /// The sub-proposal carrying only this shard's payload group.
        proposal: Proposal,
    },
    /// Drain the shard's load-coordination state
    /// ([`Mempool::load_snapshot`]).
    LoadSnapshot,
    /// Impose a coordinator-merged ban view
    /// ([`Mempool::apply_load_view`]).
    ApplyLoadView {
        /// The merged cross-shard ban view.
        banned: Vec<ReplicaId>,
    },
}

// Manual impl: a derive would demand `M: Debug`, but only `M::Msg` (which
// the `Mempool` trait already requires to be `Debug`) appears in fields.
impl<M: Mempool> std::fmt::Debug for ShardOp<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardOp::ClientTxs { now, txs } => f
                .debug_struct("ClientTxs")
                .field("now", now)
                .field("txs", &txs.len())
                .finish(),
            ShardOp::Message { now, from, msg } => f
                .debug_struct("Message")
                .field("now", now)
                .field("from", from)
                .field("msg", msg)
                .finish(),
            ShardOp::Timer { now, tag } => f
                .debug_struct("Timer")
                .field("now", now)
                .field("tag", tag)
                .finish(),
            ShardOp::MakePayload { now } => {
                f.debug_struct("MakePayload").field("now", now).finish()
            }
            ShardOp::Proposal { now, proposal } => f
                .debug_struct("Proposal")
                .field("now", now)
                .field("id", &proposal.id)
                .finish(),
            ShardOp::Commit { now, proposal } => f
                .debug_struct("Commit")
                .field("now", now)
                .field("id", &proposal.id)
                .finish(),
            ShardOp::LoadSnapshot => f.debug_struct("LoadSnapshot").finish(),
            ShardOp::ApplyLoadView { banned } => f
                .debug_struct("ApplyLoadView")
                .field("banned", &banned.len())
                .finish(),
        }
    }
}

/// The output of one [`ShardOp`].
pub enum ShardOutput<M: Mempool> {
    /// Effects from an event-handler operation.
    Effects(Effects<<M as Mempool>::Msg>),
    /// The payload drained by [`ShardOp::MakePayload`].
    Payload(Payload),
    /// Verdict and effects from [`ShardOp::Proposal`].
    Fill(FillStatus, Effects<<M as Mempool>::Msg>),
    /// The drained state from [`ShardOp::LoadSnapshot`] (`None` when the
    /// backend performs no load balancing).
    Snapshot(Option<LoadSnapshot>),
}

impl<M: Mempool> std::fmt::Debug for ShardOutput<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardOutput::Effects(fx) => f.debug_tuple("Effects").field(fx).finish(),
            ShardOutput::Payload(p) => f.debug_tuple("Payload").field(p).finish(),
            ShardOutput::Fill(status, fx) => f.debug_tuple("Fill").field(status).field(fx).finish(),
            ShardOutput::Snapshot(s) => f.debug_tuple("Snapshot").field(s).finish(),
        }
    }
}

impl<M: Mempool> ShardOutput<M> {
    /// Unwraps an effects output (panics on a payload/fill output — an
    /// executor returning the wrong variant is a logic bug).
    pub fn into_effects(self) -> Effects<<M as Mempool>::Msg> {
        match self {
            ShardOutput::Effects(fx) => fx,
            other => panic!("expected Effects output, got {other:?}"),
        }
    }

    /// Unwraps a payload output.
    pub fn into_payload(self) -> Payload {
        match self {
            ShardOutput::Payload(p) => p,
            other => panic!("expected Payload output, got {other:?}"),
        }
    }

    /// Unwraps a fill output.
    pub fn into_fill(self) -> (FillStatus, Effects<<M as Mempool>::Msg>) {
        match self {
            ShardOutput::Fill(status, fx) => (status, fx),
            other => panic!("expected Fill output, got {other:?}"),
        }
    }

    /// Unwraps a load-snapshot output.
    pub fn into_snapshot(self) -> Option<LoadSnapshot> {
        match self {
            ShardOutput::Snapshot(s) => s,
            other => panic!("expected Snapshot output, got {other:?}"),
        }
    }
}

/// Applies one operation to one shard instance.
fn apply<M: Mempool>(shard: &mut M, rng: &mut SmallRng, op: ShardOp<M>) -> ShardOutput<M> {
    match op {
        ShardOp::ClientTxs { now, txs } => ShardOutput::Effects(shard.on_client_txs(now, txs, rng)),
        ShardOp::Message { now, from, msg } => {
            ShardOutput::Effects(shard.on_message(now, from, msg, rng))
        }
        ShardOp::Timer { now, tag } => ShardOutput::Effects(shard.on_timer(now, tag, rng)),
        ShardOp::MakePayload { now } => ShardOutput::Payload(shard.make_payload(now)),
        ShardOp::Proposal { now, proposal } => {
            let (status, fx) = shard.on_proposal(now, &proposal, rng);
            ShardOutput::Fill(status, fx)
        }
        ShardOp::Commit { now, proposal } => ShardOutput::Effects(shard.on_commit(now, &proposal)),
        ShardOp::LoadSnapshot => ShardOutput::Snapshot(shard.load_snapshot()),
        ShardOp::ApplyLoadView { banned } => {
            shard.apply_load_view(&banned);
            ShardOutput::Effects(Effects::none())
        }
    }
}

/// Derives the RNG seed of one shard's private stream.
///
/// `seed` is the system seed, `salt` distinguishes replicas (the replica
/// id in the standard wiring) so peers do not draw correlated streams,
/// and `shard` separates the streams within one replica.  Both executors
/// use this same derivation — that shared stream is half the determinism
/// contract.
pub fn shard_rng_seed(seed: u64, salt: u64, shard: usize) -> u64 {
    let mut x = seed
        ^ salt.rotate_left(17).wrapping_mul(0xd605_1c99_2958_9b1f)
        ^ (shard as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // splitmix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn shard_rngs(seed: u64, salt: u64, k: usize) -> Vec<SmallRng> {
    (0..k)
        .map(|s| SmallRng::seed_from_u64(shard_rng_seed(seed, salt, s)))
        .collect()
}

static FORCE_WORKERS: AtomicBool = AtomicBool::new(false);

/// Forces [`ParallelExecutor::new`] to spawn worker threads even on a
/// single-core host (where it would otherwise degrade to inline
/// execution).  For whole processes the `SMP_FORCE_PARALLEL`
/// environment variable does the same; tests use this function instead
/// because mutating the environment while other threads read it is
/// undefined behaviour on glibc.
pub fn force_parallel_workers(force: bool) {
    FORCE_WORKERS.store(force, Ordering::SeqCst);
}

fn workers_forced() -> bool {
    // The environment is consulted exactly once per process so a
    // concurrently running test cannot race a getenv.
    static ENV: OnceLock<bool> = OnceLock::new();
    FORCE_WORKERS.load(Ordering::SeqCst)
        || *ENV.get_or_init(|| std::env::var_os("SMP_FORCE_PARALLEL").is_some_and(|v| v != "0"))
}

/// Drives the per-shard pipelines of a sharded mempool.
///
/// Implementations must apply each shard's operations in submission order
/// and return outputs in submission order (see the module docs for the
/// full determinism contract).
pub trait ShardExecutor<M: Mempool> {
    /// Number of shards driven.
    fn shard_count(&self) -> usize;

    /// Applies `ops` (pairs of shard index and operation) and returns one
    /// output per operation, in submission order.
    ///
    /// `caller_rng` is threaded through only in the single-shard
    /// pass-through (`k == 1`); with more shards each shard draws from
    /// its private stream.  It may be `None` for RNG-free batches
    /// (payload assembly, commits).
    fn run(
        &mut self,
        ops: Vec<(u16, ShardOp<M>)>,
        caller_rng: Option<&mut SmallRng>,
    ) -> Vec<ShardOutput<M>>;

    /// Per-shard counters (the [`Mempool::stats`] roll-up, unaggregated).
    fn shard_stats(&self) -> Vec<MempoolStats>;

    /// Installs a telemetry handle: shard `i` receives the handle
    /// re-prefixed with `shard.<i>` so its metrics stay distinguishable
    /// after the merge.  Telemetry never influences execution — the
    /// conformance suite runs with it both live and disabled.
    fn set_telemetry(&mut self, _telemetry: Telemetry) {}
}

/// Runs every shard inline on the calling thread.
///
/// This is the deterministic default: no threads, no channels, and at
/// `k == 1` the caller's RNG is threaded straight through so the wrapper
/// stays byte-transparent over the bare backend.
pub struct SequentialExecutor<M: Mempool> {
    shards: Vec<M>,
    rngs: Vec<SmallRng>,
}

impl<M: Mempool> SequentialExecutor<M> {
    /// Builds the executor over `shards` backend instances with private
    /// RNG streams derived from `(seed, salt)`.
    pub fn new(shards: Vec<M>, seed: u64, salt: u64) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let rngs = shard_rngs(seed, salt, shards.len());
        SequentialExecutor { shards, rngs }
    }

    /// A specific inner instance (for inspection; only the sequential
    /// executor can offer this — parallel shards live on their workers).
    pub fn shard(&self, index: usize) -> &M {
        &self.shards[index]
    }
}

impl<M: Mempool> ShardExecutor<M> for SequentialExecutor<M> {
    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn run(
        &mut self,
        ops: Vec<(u16, ShardOp<M>)>,
        mut caller_rng: Option<&mut SmallRng>,
    ) -> Vec<ShardOutput<M>> {
        let passthrough = self.shards.len() == 1;
        ops.into_iter()
            .map(|(shard, op)| {
                let s = shard as usize;
                match (passthrough, caller_rng.as_deref_mut()) {
                    (true, Some(rng)) => apply(&mut self.shards[s], rng, op),
                    // RNG-free ops at k == 1: the private stream is passed
                    // but never drawn from, so pass-through still holds.
                    _ => apply(&mut self.shards[s], &mut self.rngs[s], op),
                }
            })
            .collect()
    }

    fn shard_stats(&self) -> Vec<MempoolStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.set_telemetry(telemetry.with_prefix(&format!("shard.{i}")));
        }
    }
}

/// What travels into a worker's inbox.
enum Cmd<M: Mempool> {
    /// Apply a batch of operations in order; reply with one
    /// `Reply::Outputs` carrying every result.  Batching the whole
    /// hand-off into one channel crossing (instead of one per operation)
    /// is what keeps the cross-shard fan-out cheap: a `k`-shard call
    /// costs `2k` channel operations, not `2 × ops`.
    Ops(Vec<(u64, ShardOp<M>)>),
    /// Reply with a stats snapshot.
    Stats,
    /// Install a telemetry handle on the worker's shard (no reply —
    /// the FIFO inbox orders it before any subsequent `Ops`).
    SetTelemetry(Box<Telemetry>),
    /// Exit the worker loop.
    Shutdown,
}

/// What travels back from a worker.
enum Reply<M: Mempool> {
    Outputs(Vec<(u64, ShardOutput<M>)>),
    Stats(Box<MempoolStats>),
}

struct Worker<M: Mempool> {
    inbox: Sender<Cmd<M>>,
    replies: Receiver<Reply<M>>,
    handle: Option<JoinHandle<()>>,
}

fn worker_loop<M: Mempool>(
    mut shard: M,
    mut rng: SmallRng,
    inbox: Receiver<Cmd<M>>,
    replies: Sender<Reply<M>>,
) {
    while let Ok(cmd) = inbox.recv() {
        let reply = match cmd {
            Cmd::Ops(ops) => Reply::Outputs(
                ops.into_iter()
                    .map(|(id, op)| (id, apply(&mut shard, &mut rng, op)))
                    .collect(),
            ),
            Cmd::Stats => Reply::Stats(Box::new(shard.stats())),
            Cmd::SetTelemetry(telemetry) => {
                shard.set_telemetry(*telemetry);
                continue;
            }
            Cmd::Shutdown => break,
        };
        if replies.send(reply).is_err() {
            break;
        }
    }
}

/// Runs each shard's pipeline on its own worker thread.
///
/// Workers are persistent: each owns its backend instance, its private
/// RNG stream, and a FIFO inbox.  A batch of operations fans out to the
/// owning workers, runs concurrently, and is collected back **by
/// submission id**, so the merged result is bit-for-bit the sequential
/// executor's.  With `k == 1` there is nothing to parallelise and the
/// executor degenerates to an inline [`SequentialExecutor`], preserving
/// the caller-RNG pass-through.
pub struct ParallelExecutor<M: Mempool> {
    mode: ParMode<M>,
}

enum ParMode<M: Mempool> {
    Inline(SequentialExecutor<M>),
    Workers(Vec<Worker<M>>),
}

impl<M> ParallelExecutor<M>
where
    M: Mempool + Send + 'static,
    M::Msg: Send,
{
    /// Builds the executor, spawning one worker thread per shard.
    ///
    /// Degenerate cases run inline instead (which is byte-identical, so
    /// the degradation is unobservable in results): a single shard has
    /// nothing to parallelise, and on a single-core host worker threads
    /// are pure context-switch overhead.  Set `SMP_FORCE_PARALLEL=1` (or
    /// call [`force_parallel_workers`]) to spawn workers regardless of
    /// core count — the conformance tests do, so the worker path is
    /// exercised even on one-core CI runners.
    pub fn new(shards: Vec<M>, seed: u64, salt: u64) -> Self {
        assert!(!shards.is_empty(), "at least one shard is required");
        let single_core = std::thread::available_parallelism()
            .map(|p| p.get() < 2)
            .unwrap_or(false);
        if shards.len() == 1 || (single_core && !workers_forced()) {
            return ParallelExecutor {
                mode: ParMode::Inline(SequentialExecutor::new(shards, seed, salt)),
            };
        }
        let mut rngs = shard_rngs(seed, salt, shards.len()).into_iter();
        let workers = shards
            .into_iter()
            .map(|shard| {
                let rng = rngs.next().expect("one rng per shard");
                let (inbox_tx, inbox_rx) = channel();
                let (reply_tx, reply_rx) = channel();
                let handle = std::thread::Builder::new()
                    .name("smp-shard-worker".to_string())
                    .spawn(move || worker_loop(shard, rng, inbox_rx, reply_tx))
                    .expect("spawn shard worker");
                Worker {
                    inbox: inbox_tx,
                    replies: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelExecutor {
            mode: ParMode::Workers(workers),
        }
    }
}

impl<M: Mempool> ParallelExecutor<M> {
    /// A specific inner instance, when it lives on the calling thread
    /// (the inline degenerate mode).  Worker-owned shards return `None`.
    pub fn shard(&self, index: usize) -> Option<&M> {
        match &self.mode {
            ParMode::Inline(seq) => Some(seq.shard(index)),
            ParMode::Workers(_) => None,
        }
    }
}

impl<M: Mempool> ShardExecutor<M> for ParallelExecutor<M> {
    fn shard_count(&self) -> usize {
        match &self.mode {
            ParMode::Inline(seq) => seq.shard_count(),
            ParMode::Workers(workers) => workers.len(),
        }
    }

    fn run(
        &mut self,
        ops: Vec<(u16, ShardOp<M>)>,
        caller_rng: Option<&mut SmallRng>,
    ) -> Vec<ShardOutput<M>> {
        let workers = match &mut self.mode {
            ParMode::Inline(seq) => return seq.run(ops, caller_rng),
            ParMode::Workers(workers) => workers,
        };
        let n = ops.len();
        // One batch per worker: per-shard submission order is preserved
        // inside the batch, and the whole hand-off costs one send and
        // one recv per *shard* instead of per operation.
        let mut batches: Vec<Vec<(u64, ShardOp<M>)>> =
            (0..workers.len()).map(|_| Vec::new()).collect();
        for (id, (shard, op)) in ops.into_iter().enumerate() {
            batches[shard as usize].push((id as u64, op));
        }
        let mut busy = Vec::new();
        for (s, batch) in batches.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            workers[s]
                .inbox
                .send(Cmd::Ops(batch))
                .expect("shard worker alive");
            busy.push(s);
        }
        let mut out: Vec<Option<ShardOutput<M>>> = (0..n).map(|_| None).collect();
        for s in busy {
            match workers[s].replies.recv().expect("shard worker alive") {
                Reply::Outputs(outputs) => {
                    for (id, output) in outputs {
                        out[id as usize] = Some(output);
                    }
                }
                Reply::Stats(_) => unreachable!("no stats requested during run"),
            }
        }
        out.into_iter()
            .map(|o| o.expect("one output per op"))
            .collect()
    }

    fn shard_stats(&self) -> Vec<MempoolStats> {
        match &self.mode {
            ParMode::Inline(seq) => seq.shard_stats(),
            ParMode::Workers(workers) => workers
                .iter()
                .map(|w| {
                    w.inbox.send(Cmd::Stats).expect("shard worker alive");
                    match w.replies.recv().expect("shard worker alive") {
                        Reply::Stats(stats) => *stats,
                        Reply::Outputs(..) => unreachable!("no ops in flight"),
                    }
                })
                .collect(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        match &mut self.mode {
            ParMode::Inline(seq) => seq.set_telemetry(telemetry),
            ParMode::Workers(workers) => {
                for (i, w) in workers.iter().enumerate() {
                    let handle = telemetry.with_prefix(&format!("shard.{i}"));
                    w.inbox
                        .send(Cmd::SetTelemetry(Box::new(handle)))
                        .expect("shard worker alive");
                }
            }
        }
    }
}

impl<M: Mempool> Drop for ParallelExecutor<M> {
    fn drop(&mut self) {
        if let ParMode::Workers(workers) = &mut self.mode {
            for w in workers.iter() {
                // A worker that already exited (panic) has dropped its
                // receiver; nothing to shut down then.
                let _ = w.inbox.send(Cmd::Shutdown);
            }
            for w in workers.iter_mut() {
                if let Some(handle) = w.handle.take() {
                    let _ = handle.join();
                }
            }
        }
    }
}

/// Runtime-selected executor (the `SystemConfig::executor` knob) behind a
/// single type, so [`crate::ShardedMempool`] does not grow a type
/// parameter per executor.
pub enum Executor<M: Mempool> {
    /// Inline execution.
    Sequential(SequentialExecutor<M>),
    /// One worker thread per shard.
    Parallel(ParallelExecutor<M>),
}

impl<M: Mempool> Executor<M> {
    /// A specific inner instance, when it lives on the calling thread
    /// (sequential or inline-parallel mode); `None` for worker-owned
    /// shards.
    pub fn shard(&self, index: usize) -> Option<&M> {
        match self {
            Executor::Sequential(e) => Some(e.shard(index)),
            Executor::Parallel(e) => e.shard(index),
        }
    }
}

impl<M: Mempool> ShardExecutor<M> for Executor<M> {
    fn shard_count(&self) -> usize {
        match self {
            Executor::Sequential(e) => e.shard_count(),
            Executor::Parallel(e) => e.shard_count(),
        }
    }

    fn run(
        &mut self,
        ops: Vec<(u16, ShardOp<M>)>,
        caller_rng: Option<&mut SmallRng>,
    ) -> Vec<ShardOutput<M>> {
        match self {
            Executor::Sequential(e) => e.run(ops, caller_rng),
            Executor::Parallel(e) => e.run(ops, caller_rng),
        }
    }

    fn shard_stats(&self) -> Vec<MempoolStats> {
        match self {
            Executor::Sequential(e) => e.shard_stats(),
            Executor::Parallel(e) => e.shard_stats(),
        }
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        match self {
            Executor::Sequential(e) => e.set_telemetry(telemetry),
            Executor::Parallel(e) => e.set_telemetry(telemetry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smp_mempool::SimpleSmp;
    use smp_types::{ClientId, MempoolConfig, SystemConfig};

    fn tx(client: u32, seq: u64) -> Transaction {
        Transaction::synthetic(ClientId(client), seq, 128, 0)
    }

    fn small_system() -> SystemConfig {
        SystemConfig::new(4).with_mempool(MempoolConfig {
            batch_size_bytes: 512,
            tx_payload_bytes: 128,
            ..MempoolConfig::default()
        })
    }

    fn instances(sys: &SystemConfig, k: usize) -> Vec<SimpleSmp> {
        (0..k).map(|_| SimpleSmp::new(sys, ReplicaId(0))).collect()
    }

    fn ingest_ops(k: usize, base: u64, per_shard: usize) -> Vec<(u16, ShardOp<SimpleSmp>)> {
        (0..k as u16)
            .map(|s| {
                let txs = (0..per_shard)
                    .map(|i| tx(s as u32, base + i as u64))
                    .collect();
                (s, ShardOp::ClientTxs { now: 0, txs })
            })
            .collect()
    }

    #[test]
    fn shard_rng_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for salt in 0..8u64 {
            for shard in 0..8usize {
                assert!(seen.insert(shard_rng_seed(42, salt, shard)));
            }
        }
    }

    /// Spawns real workers even on single-core hosts (see
    /// [`ParallelExecutor::new`]).
    fn force_parallel() {
        force_parallel_workers(true);
    }

    #[test]
    fn parallel_matches_sequential_output_for_output_order_and_effects() {
        force_parallel();
        let sys = small_system();
        for k in [1usize, 2, 4] {
            let mut seq = SequentialExecutor::new(instances(&sys, k), sys.seed, 3);
            let mut par = ParallelExecutor::new(instances(&sys, k), sys.seed, 3);
            let mut rng_a = SmallRng::seed_from_u64(9);
            let mut rng_b = SmallRng::seed_from_u64(9);
            for round in 0..5u64 {
                let a = seq.run(ingest_ops(k, round * 100, 8), Some(&mut rng_a));
                let b = par.run(ingest_ops(k, round * 100, 8), Some(&mut rng_b));
                assert_eq!(a.len(), b.len());
                for (x, y) in a.into_iter().zip(b) {
                    let (fx, fy) = (x.into_effects(), y.into_effects());
                    assert_eq!(fx.msgs, fy.msgs, "k={k} round={round}");
                    assert_eq!(fx.timers, fy.timers);
                    assert_eq!(fx.events, fy.events);
                }
            }
            assert_eq!(seq.shard_stats(), par.shard_stats());
        }
    }

    #[test]
    fn parallel_preserves_per_shard_fifo_and_submission_order() {
        force_parallel();
        let sys = small_system();
        let k = 4;
        let mut par = ParallelExecutor::new(instances(&sys, k), sys.seed, 0);
        // Interleave two ops per shard in an adversarial order; outputs
        // must come back in exactly the submitted order.
        let mut ops = Vec::new();
        for s in (0..k as u16).rev() {
            ops.push((s, ShardOp::MakePayload { now: 1 }));
            ops.push((s, ShardOp::MakePayload { now: 2 }));
        }
        let outs = par.run(ops, None);
        assert_eq!(outs.len(), 2 * k);
        for o in outs {
            let _ = o.into_payload(); // every output is a payload, in order
        }
    }

    #[test]
    fn dropping_the_parallel_executor_joins_workers() {
        force_parallel();
        let sys = small_system();
        let par = ParallelExecutor::new(instances(&sys, 4), sys.seed, 1);
        drop(par); // must not hang or panic
    }
}
